//! # hash-modulo-alpha
//!
//! Umbrella crate for the Rust reproduction of *Hashing Modulo
//! Alpha-Equivalence* (Maziarz, Ellis, Lawrence, Fitzgibbon, Peyton Jones
//! — PLDI 2021): one `use` pulls in the whole workspace.
//!
//! * [`lang`] (`lambda-lang`) — the expression substrate: arena AST,
//!   parser/printer, uniquify, alpha-equivalence, de Bruijn, evaluator.
//! * [`pmap`] (`persistent-map`) — the persistent treap behind the
//!   incremental engine.
//! * [`hash`] (`alpha-hash`) — the paper's algorithm: invertible
//!   e-summaries (§4), the hashed form (§5), equivalence classes (§3),
//!   the linear-map variant (App. C), incrementality (§6.3) and the CSE
//!   client (§1).
//! * [`baselines`] (`hash-baselines`) — structural, de Bruijn and locally
//!   nameless hashing (Table 1).
//! * [`gen`] (`expr-gen`) — the evaluation workloads (§7, App. B).
//! * [`store`] (`alpha-store`) — the production subsystem: a sharded,
//!   concurrent, content-addressed store deduplicating streams of terms
//!   modulo alpha, with containment queries at subexpression granularity,
//!   corpus-level CSE and shared-DAG analytics, and optional durability
//!   (write-ahead log + snapshots + crash recovery, [`store::persist`]).
//!
//! The architecture notes in `docs/ARCHITECTURE.md` map these crates to
//! the paper's sections and walk the ingest pipeline end to end;
//! `docs/PERSISTENCE_FORMAT.md` is the byte-level spec of the durable
//! store files.
//!
//! ## Hashing in one call
//!
//! ```
//! use hash_modulo_alpha::prelude::*;
//!
//! let mut arena = ExprArena::new();
//! let parsed = parse(&mut arena, r"foo (\x. x+7) (\y. y+7)")?;
//! let (arena, root) = uniquify(&arena, parsed);
//! let scheme: HashScheme<u64> = HashScheme::default();
//! let classes = hash_classes(&arena, root, &scheme);
//! assert!(classes.iter().any(|c| c.len() == 2));
//! # Ok::<(), lambda_lang::ParseError>(())
//! ```
//!
//! ## The store as a service
//!
//! Configure once with [`StoreBuilder`](prelude::StoreBuilder) — hash
//! scheme, shard count, granularity, durability — then ingest from any
//! number of threads:
//!
//! ```
//! use hash_modulo_alpha::prelude::*;
//!
//! let dir = std::env::temp_dir().join(format!("umbrella-doc-{}", std::process::id()));
//! let store: AlphaStore<u64> = AlphaStore::builder()
//!     .seed(0x5EED)
//!     .shards(8)
//!     .subexpressions(2)     // index subterms for containment queries
//!     .open_durable(&dir)?;  // …and survive restarts
//!
//! let mut arena = ExprArena::new();
//! let t = parse(&mut arena, r"map (\x. x + 1) things").unwrap();
//! store.insert(&arena, t);
//! let pattern = parse(&mut arena, r"\q. q + 1").unwrap();
//! assert!(store.contains(&arena, pattern).is_some());
//! assert!(store.stats().is_exact()); // merges confirmed, never hash-trusted
//! drop(store);
//!
//! // A restart later: recovery re-confirms every replayed merge.
//! let reopened: AlphaStore<u64> = AlphaStore::open(&dir)?;
//! assert!(reopened.contains(&arena, pattern).is_some());
//! # std::fs::remove_dir_all(&dir).unwrap();
//! # Ok::<(), PersistError>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use alpha_hash as hash;
pub use alpha_store as store;
pub use expr_gen as gen;
pub use hash_baselines as baselines;
pub use lambda_lang as lang;
pub use persistent_map as pmap;

/// The most commonly used items, re-exported flat.
pub mod prelude {
    pub use alpha_hash::combine::{HashScheme, HashWord};
    pub use alpha_hash::cse::{cse_forest, eliminate_common_subexpressions, CseConfig, ForestCse};
    pub use alpha_hash::equiv::{ground_truth_classes, group_by_hash, hash_classes};
    pub use alpha_hash::hashed::{hash_all_subexpressions, hash_expr};
    pub use alpha_hash::incremental::IncrementalHasher;
    pub use alpha_store::{
        corpus_shared_dag_size, store_backed_cse, AlphaStore, CanonDagStats, ClassId, ConfigError,
        Granularity, InsertOutcome, PersistError, Rewrite, StoreBuilder, StoreError, StoreStats,
        SubexprSummary, TermId, UpdateOutcome, WalOp,
    };
    pub use lambda_lang::{
        alpha_eq, check_unique_binders, parse, print::print, uniquify, ExprArena, ExprNode,
        Literal, NodeId, Symbol,
    };
}
