//! `alphahash` — a small command-line front end for the library, so the
//! algorithm can be tried on real programs without writing Rust:
//!
//! ```text
//! alphahash hash    <file>   # alpha-hash of the whole expression
//! alphahash classes <file>   # all equivalence classes of subexpressions
//! alphahash cse     <file>   # run CSE modulo alpha, print the rewrite
//! alphahash eval    <file>   # evaluate a closed program
//! ```
//!
//! Files contain one expression in the `lambda-lang` syntax (see
//! `lambda_lang::parse`); pass `-` to read from stdin.

use hash_modulo_alpha::prelude::*;
use std::io::Read;

fn read_source(path: &str) -> Result<String, Box<dyn std::error::Error>> {
    if path == "-" {
        let mut buffer = String::new();
        std::io::stdin().read_to_string(&mut buffer)?;
        Ok(buffer)
    } else {
        Ok(std::fs::read_to_string(path)?)
    }
}

fn usage() -> ! {
    eprintln!("usage: alphahash <hash|classes|cse|eval> <file|->");
    std::process::exit(2)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let [command, path] = args.as_slice() else {
        usage()
    };

    let source = read_source(path)?;
    let mut arena = ExprArena::new();
    let parsed = parse(&mut arena, &source)?;
    let (arena, root) = uniquify(&arena, parsed);
    let scheme: HashScheme<u128> = HashScheme::default();

    match command.as_str() {
        "hash" => {
            println!("{:032x}", hash_expr(&arena, root, &scheme));
        }
        "classes" => {
            let classes = hash_classes(&arena, root, &scheme);
            println!(
                "{} subexpressions, {} classes",
                arena.subtree_size(root),
                classes.len()
            );
            let mut sorted = classes;
            sorted.sort_by_key(|c| std::cmp::Reverse(c.len() * arena.subtree_size(c[0])));
            for class in sorted.iter().filter(|c| c.len() >= 2) {
                println!(
                    "  {} x {:>4} nodes  {}",
                    class.len(),
                    arena.subtree_size(class[0]),
                    print(&arena, class[0])
                );
            }
        }
        "cse" => {
            let scheme64: HashScheme<u64> = HashScheme::default();
            let result =
                eliminate_common_subexpressions(&arena, root, &scheme64, CseConfig::default());
            for rewrite in &result.rewrites {
                eprintln!(
                    "-- bound {} = {} ({} occurrences)",
                    rewrite.binder, rewrite.subexpr, rewrite.occurrences
                );
            }
            println!("{}", print(&result.arena, result.root));
        }
        "eval" => {
            let value = lambda_lang::eval::eval(&arena, root)?;
            println!("{value:?}");
        }
        _ => usage(),
    }
    Ok(())
}
