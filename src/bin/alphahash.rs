//! `alphahash` — a small command-line front end for the library, so the
//! algorithm can be tried on real programs without writing Rust:
//!
//! ```text
//! alphahash hash    <file>   # alpha-hash of the whole expression
//! alphahash classes <file>   # all equivalence classes of subexpressions
//! alphahash cse     <file>   # run CSE modulo alpha, print the rewrite
//! alphahash eval    <file>   # evaluate a closed program
//! ```
//!
//! and the daemon tier on top of the same store:
//!
//! ```text
//! alphahash serve --dir DIR [--addr 127.0.0.1:7474] [--sub-min-nodes N]
//!                 [--workers N] [--flush-terms N] [--linger-ms N]
//! alphahash client [--addr 127.0.0.1:7474] insert   <file|->
//! alphahash client [--addr ...]            lookup   <file|->
//! alphahash client [--addr ...]            contains <file|->
//! alphahash client [--addr ...]            update   <term> <path> <file|->
//! alphahash client [--addr ...]            stats | metrics | checkpoint | shutdown
//! ```
//!
//! `update` rewrites a term the server already holds: `<term>` is the
//! handle printed by `insert` (hex), `<path>` is a dot-separated list of
//! child slots into the term's canonical representative (`.` alone for
//! the whole term), and the file holds the replacement expression.
//!
//! Files contain one expression in the `lambda-lang` syntax (see
//! `lambda_lang::parse`); pass `-` to read from stdin.

use hash_modulo_alpha::prelude::*;
use std::io::Read;
use std::sync::Arc;

fn read_source(path: &str) -> Result<String, Box<dyn std::error::Error>> {
    if path == "-" {
        let mut buffer = String::new();
        std::io::stdin().read_to_string(&mut buffer)?;
        Ok(buffer)
    } else {
        Ok(std::fs::read_to_string(path)?)
    }
}

fn usage() -> ! {
    eprintln!(
        "usage: alphahash <hash|classes|cse|eval> <file|->\n\
         \x20      alphahash serve --dir DIR [--addr HOST:PORT] [--sub-min-nodes N]\n\
         \x20                      [--workers N] [--flush-terms N] [--linger-ms N]\n\
         \x20      alphahash client [--addr HOST:PORT] <insert|lookup|contains> <file|->\n\
         \x20      alphahash client [--addr HOST:PORT] update <term-hex> <path> <file|->\n\
         \x20      alphahash client [--addr HOST:PORT] <stats|metrics|checkpoint|shutdown>"
    );
    std::process::exit(2)
}

/// Pulls `--flag value` out of `args`, leaving everything else.
fn take_flag(args: &mut Vec<String>, flag: &str) -> Option<String> {
    let i = args.iter().position(|a| a == flag)?;
    if i + 1 >= args.len() {
        eprintln!("alphahash: {flag} needs a value");
        std::process::exit(2);
    }
    let value = args.remove(i + 1);
    args.remove(i);
    Some(value)
}

fn serve(mut args: Vec<String>) -> Result<(), Box<dyn std::error::Error>> {
    let Some(dir) = take_flag(&mut args, "--dir") else {
        eprintln!("alphahash serve: --dir is required");
        std::process::exit(2);
    };
    let addr = take_flag(&mut args, "--addr").unwrap_or_else(|| "127.0.0.1:7474".to_owned());
    let sub_min_nodes = take_flag(&mut args, "--sub-min-nodes").map(|v| v.parse::<usize>());
    let workers = take_flag(&mut args, "--workers").map_or(Ok(1), |v| v.parse::<usize>())?;
    let flush_terms =
        take_flag(&mut args, "--flush-terms").map_or(Ok(512), |v| v.parse::<usize>())?;
    let linger_ms = take_flag(&mut args, "--linger-ms").map_or(Ok(2u64), |v| v.parse::<u64>())?;
    if !args.is_empty() {
        eprintln!("alphahash serve: unexpected arguments {args:?}");
        std::process::exit(2);
    }

    let mut builder = alpha_store::AlphaStore::<u64>::builder();
    if let Some(min_nodes) = sub_min_nodes {
        builder = builder.subexpressions(min_nodes?);
    }
    let store = Arc::new(builder.open_durable(&dir)?);
    let config = alphahashd::DaemonConfig {
        addr,
        ingest_workers: workers,
        flush_terms,
        linger: std::time::Duration::from_millis(linger_ms),
        handle_signals: true,
        ..alphahashd::DaemonConfig::default()
    };
    let daemon = alphahashd::Daemon::spawn(store, config)?;
    eprintln!(
        "alphahashd: serving {dir} on {} ({} classes, {} terms); \
         SIGINT/SIGTERM or the Shutdown op drains and checkpoints",
        daemon.local_addr(),
        daemon.store().num_classes(),
        daemon.store().num_terms(),
    );
    daemon.join();
    eprintln!("alphahashd: shut down cleanly");
    Ok(())
}

fn client(mut args: Vec<String>) -> Result<(), Box<dyn std::error::Error>> {
    let addr = take_flag(&mut args, "--addr").unwrap_or_else(|| "127.0.0.1:7474".to_owned());
    if args.is_empty() {
        usage();
    }
    let op = args.remove(0);
    let mut client = alphahashd::Client::connect(addr)?;

    // The term-carrying ops parse one expression from a file/stdin.
    let parsed_term = |args: &mut Vec<String>| -> Result<_, Box<dyn std::error::Error>> {
        if args.is_empty() {
            usage();
        }
        let source = read_source(&args.remove(0))?;
        let mut arena = ExprArena::new();
        let root = parse(&mut arena, &source)?;
        Ok((arena, root))
    };

    match op.as_str() {
        "insert" => {
            let (arena, root) = parsed_term(&mut args)?;
            let outcome = client.insert(&arena, root)?;
            println!(
                "term {:#018x} class {:#018x} {}{}",
                outcome.term,
                outcome.class,
                if outcome.fresh { "(fresh)" } else { "(merged)" },
                if outcome.subs_indexed > 0 {
                    format!(" + {} subexpressions indexed", outcome.subs_indexed)
                } else {
                    String::new()
                }
            );
        }
        "update" => {
            if args.len() < 2 {
                usage();
            }
            let term_arg = args.remove(0);
            let term = u64::from_str_radix(term_arg.trim_start_matches("0x"), 16)
                .map_err(|e| format!("bad term handle {term_arg:?}: {e}"))?;
            let path_arg = args.remove(0);
            let path: Vec<u32> = if path_arg == "." {
                Vec::new()
            } else {
                path_arg
                    .split('.')
                    .map(|s| s.parse::<u32>())
                    .collect::<Result<_, _>>()
                    .map_err(|e| format!("bad path {path_arg:?}: {e}"))?
            };
            let (arena, root) = parsed_term(&mut args)?;
            let outcome = client.update(term, &path, &arena, root)?;
            println!(
                "term {:#018x} now class {:#018x} {}{}",
                outcome.term,
                outcome.class,
                if outcome.fresh { "(fresh)" } else { "(merged)" },
                if outcome.subs_indexed > 0 {
                    format!(" + {} subexpressions re-indexed", outcome.subs_indexed)
                } else {
                    String::new()
                }
            );
        }
        "lookup" => {
            let (arena, root) = parsed_term(&mut args)?;
            match client.lookup(&arena, root)? {
                Some(class) => println!("class {class:#018x}"),
                None => {
                    println!("not present");
                    std::process::exit(1);
                }
            }
        }
        "contains" => {
            let (arena, root) = parsed_term(&mut args)?;
            match client.contains(&arena, root)? {
                Some(class) => println!("contained in class {class:#018x}"),
                None => {
                    println!("not contained");
                    std::process::exit(1);
                }
            }
        }
        "stats" => {
            let stats = client.stats()?;
            println!(
                "{} terms -> {} classes ({} confirmed merges, {} hash collisions, {} unconfirmed)",
                stats.terms_ingested,
                stats.num_classes,
                stats.merges_confirmed,
                stats.hash_collisions,
                stats.unconfirmed_merges,
            );
            if stats.subterms_indexed > 0 {
                println!(
                    "{} subterms indexed ({} merged, {} skipped by min_nodes)",
                    stats.subterms_indexed,
                    stats.subterm_merges_confirmed,
                    stats.subterms_skipped_min_nodes,
                );
            }
            match stats.wal_records {
                Some(records) => println!("durable: {records} WAL records since last checkpoint"),
                None => println!("in-memory store"),
            }
            println!(
                "health: {}",
                match stats.health_code {
                    0 => "healthy".to_owned(),
                    1 => format!("degraded ({})", stats.health_reason),
                    _ => format!("read-only ({})", stats.health_reason),
                }
            );
            if let Some((replayed, clean)) = stats.recovery {
                println!(
                    "recovery at open: {}",
                    if clean {
                        "clean reopen (no replay)".to_owned()
                    } else {
                        format!("replayed {replayed} WAL records")
                    }
                );
            }
            if !stats.obs_json.is_empty() {
                println!("{}", stats.obs_json);
            }
        }
        "metrics" => print!("{}", client.metrics_prometheus()?),
        "checkpoint" => {
            client.checkpoint()?;
            println!("checkpointed");
        }
        "shutdown" => {
            client.shutdown()?;
            println!("shutdown requested");
        }
        _ => usage(),
    }
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        usage();
    }
    match args[0].as_str() {
        "serve" => return serve(args.split_off(1)),
        "client" => return client(args.split_off(1)),
        _ => {}
    }
    let [command, path] = args.as_slice() else {
        usage()
    };

    let source = read_source(path)?;
    let mut arena = ExprArena::new();
    let parsed = parse(&mut arena, &source)?;
    let (arena, root) = uniquify(&arena, parsed);
    let scheme: HashScheme<u128> = HashScheme::default();

    match command.as_str() {
        "hash" => {
            println!("{:032x}", hash_expr(&arena, root, &scheme));
        }
        "classes" => {
            let classes = hash_classes(&arena, root, &scheme);
            println!(
                "{} subexpressions, {} classes",
                arena.subtree_size(root),
                classes.len()
            );
            let mut sorted = classes;
            sorted.sort_by_key(|c| std::cmp::Reverse(c.len() * arena.subtree_size(c[0])));
            for class in sorted.iter().filter(|c| c.len() >= 2) {
                println!(
                    "  {} x {:>4} nodes  {}",
                    class.len(),
                    arena.subtree_size(class[0]),
                    print(&arena, class[0])
                );
            }
        }
        "cse" => {
            let scheme64: HashScheme<u64> = HashScheme::default();
            let result =
                eliminate_common_subexpressions(&arena, root, &scheme64, CseConfig::default());
            for rewrite in &result.rewrites {
                eprintln!(
                    "-- bound {} = {} ({} occurrences)",
                    rewrite.binder, rewrite.subexpr, rewrite.occurrences
                );
            }
            println!("{}", print(&result.arena, result.root));
        }
        "eval" => {
            let value = lambda_lang::eval::eval(&arena, root)?;
            println!("{value:?}");
        }
        _ => usage(),
    }
    Ok(())
}
