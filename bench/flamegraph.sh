#!/usr/bin/env bash
# Profile one bench binary under `perf record` and, when a flamegraph
# tool is on PATH, fold the samples into an SVG.
#
#   bench/flamegraph.sh                    # profiles `widemap` at defaults
#   bench/flamegraph.sh sweep -- --shards 16 --threads 4 --workload wide
#   BIN=store_throughput bench/flamegraph.sh
#
# Artifacts land in target/perf/: <bin>.perf.data always; <bin>.svg when
# `inferno-flamegraph` or `flamegraph.pl` is available; a plain
# `perf report` summary otherwise. Without perf installed the script
# still runs the binary under /usr/bin/time so the hook degrades to a
# wall-clock measurement instead of failing.
set -euo pipefail
cd "$(dirname "$0")/.."

BIN="${BIN:-${1:-widemap}}"
if [ "${1:-}" = "$BIN" ]; then shift || true; fi
if [ "${1:-}" = "--" ]; then shift; fi

OUT=target/perf
mkdir -p "$OUT"
cargo build --release -p alpha-hash-bench --bin "$BIN"

if ! command -v perf >/dev/null 2>&1; then
    echo "flamegraph.sh: perf not found; running $BIN without profiling" >&2
    start=$(date +%s.%N)
    "./target/release/$BIN" "$@"
    end=$(date +%s.%N)
    echo "flamegraph.sh: wall clock $(awk -v a="$start" -v b="$end" 'BEGIN{printf "%.2fs", b-a}')" >&2
    exit 0
fi

# DWARF call graphs: the bins are built without frame pointers.
perf record -g --call-graph dwarf,16384 -o "$OUT/$BIN.perf.data" \
    "./target/release/$BIN" "$@"

if command -v inferno-flamegraph >/dev/null 2>&1; then
    perf script -i "$OUT/$BIN.perf.data" \
        | inferno-collapse-perf \
        | inferno-flamegraph > "$OUT/$BIN.svg"
    echo "flamegraph: $OUT/$BIN.svg"
elif command -v flamegraph.pl >/dev/null 2>&1 && command -v stackcollapse-perf.pl >/dev/null 2>&1; then
    perf script -i "$OUT/$BIN.perf.data" \
        | stackcollapse-perf.pl \
        | flamegraph.pl > "$OUT/$BIN.svg"
    echo "flamegraph: $OUT/$BIN.svg"
else
    echo "flamegraph.sh: no flamegraph tool found; top of perf report:" >&2
    perf report -i "$OUT/$BIN.perf.data" --stdio --percent-limit 2 | head -40
fi
echo "perf data: $OUT/$BIN.perf.data"
