#!/usr/bin/env bash
# Shard x thread x granularity x workload throughput sweep.
#
# Builds the release `sweep` binary and writes BENCH_sweep.json next to
# BENCH_store.json. Every knob is an environment variable so CI and
# hand-runs share one entry point:
#
#   bench/sweep.sh                         # full default matrix
#   SHARDS=1,2 THREADS=1,2 TERMS=2000 bench/sweep.sh   # smoke matrix
#
# Extra flags after `--` pass straight through to the binary:
#
#   bench/sweep.sh -- --workload wide --reps 5
set -euo pipefail
cd "$(dirname "$0")/.."

SHARDS="${SHARDS:-1,4,16}"
THREADS="${THREADS:-1,2,4}"
GRANULARITY="${GRANULARITY:-roots,subexpr}"
WORKLOAD="${WORKLOAD:-closed,wide}"
TERMS="${TERMS:-10000}"
REPS="${REPS:-3}"
OUT="${OUT:-BENCH_sweep.json}"

if [ "${1:-}" = "--" ]; then shift; fi

cargo build --release -p alpha-hash-bench --bin sweep
exec ./target/release/sweep \
    --shards "$SHARDS" \
    --threads "$THREADS" \
    --granularity "$GRANULARITY" \
    --workload "$WORKLOAD" \
    --terms "$TERMS" \
    --reps "$REPS" \
    --save-json "$OUT" \
    "$@"
