//! Span/event tracing facade.
//!
//! A [`Tracer`] hands out RAII [`Span`]s: creating one stamps the clock,
//! dropping it emits an [`Event`] to the installed [`Subscriber`]. Call
//! sites are registered statically — an event's `name` is a `&'static
//! str`, so emitting never allocates. The default subscriber is a
//! [`RingSubscriber`] holding the most recent events for post-hoc
//! dumping ("what were the last 1024 things the store did?"); services
//! can install their own sink with [`Tracer::set_subscriber`].
//!
//! When the tracer is disabled ([`Tracer::set_enabled`]`(false)`) spans
//! are disarmed at construction: no clock read, no emission — one
//! relaxed atomic load per call site.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::time::Instant;

/// One traced occurrence: a completed span or an instantaneous event.
#[derive(Clone, Copy, Debug)]
pub struct Event {
    /// Static call-site name, e.g. `"store.apply_chunk"`.
    pub name: &'static str,
    /// Nanoseconds since the tracer's origin at which the event ended.
    pub t_ns: u64,
    /// Duration in nanoseconds (0 for instantaneous events).
    pub dur_ns: u64,
    /// One free argument, event-defined (a count, a byte size, …).
    pub arg: u64,
}

/// A sink for [`Event`]s. Implementations must not block for long and
/// must never call back into the store (events are emitted from inside
/// its hot paths, though never while store locks are held).
pub trait Subscriber: Send + Sync {
    /// Receive one event.
    fn event(&self, e: &Event);
}

/// The default subscriber: a bounded ring of the most recent events.
pub struct RingSubscriber {
    cap: usize,
    buf: Mutex<VecDeque<Event>>,
}

impl RingSubscriber {
    /// A ring holding up to `cap` events (oldest evicted first).
    pub fn new(cap: usize) -> Self {
        RingSubscriber {
            cap: cap.max(1),
            buf: Mutex::new(VecDeque::with_capacity(cap.clamp(1, 4096))),
        }
    }

    /// The buffered events, oldest first.
    pub fn recent(&self) -> Vec<Event> {
        self.buf
            .lock()
            .expect("ring poisoned")
            .iter()
            .copied()
            .collect()
    }
}

impl Default for RingSubscriber {
    fn default() -> Self {
        Self::new(1024)
    }
}

impl Subscriber for RingSubscriber {
    fn event(&self, e: &Event) {
        let mut buf = self.buf.lock().expect("ring poisoned");
        if buf.len() == self.cap {
            buf.pop_front();
        }
        buf.push_back(*e);
    }
}

/// Hands out spans, stamps them against one origin instant, and routes
/// finished events to the current subscriber.
pub struct Tracer {
    origin: Instant,
    enabled: AtomicBool,
    subscriber: RwLock<Arc<dyn Subscriber>>,
}

impl Tracer {
    /// A tracer with the given subscriber, enabled.
    pub fn new(subscriber: Arc<dyn Subscriber>) -> Self {
        Tracer {
            origin: Instant::now(),
            enabled: AtomicBool::new(true),
            subscriber: RwLock::new(subscriber),
        }
    }

    /// A tracer with a default 1024-event ring subscriber.
    pub fn with_ring() -> (Self, Arc<RingSubscriber>) {
        let ring = Arc::new(RingSubscriber::default());
        (Self::new(ring.clone()), ring)
    }

    /// Turn emission on or off. Off means spans are disarmed at
    /// construction: no clock reads, no events.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Is emission currently on?
    #[inline]
    pub fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Replace the subscriber. Spans already in flight emit to the sink
    /// that is installed when they drop.
    pub fn set_subscriber(&self, s: Arc<dyn Subscriber>) {
        *self.subscriber.write().expect("subscriber lock poisoned") = s;
    }

    /// Start a span. If the tracer is disabled this is a no-op shell
    /// (one atomic load, no clock read).
    #[inline]
    pub fn span(&self, name: &'static str) -> Span<'_> {
        Span {
            tracer: self,
            name,
            start: if self.enabled() {
                Some(Instant::now())
            } else {
                None
            },
            arg: 0,
        }
    }

    /// Emit a pre-measured event (used when the duration was captured
    /// outside a span, e.g. under a lock the span must not hold).
    #[inline]
    pub fn event(&self, name: &'static str, dur_ns: u64, arg: u64) {
        if !self.enabled() {
            return;
        }
        self.emit(name, dur_ns, arg);
    }

    fn emit(&self, name: &'static str, dur_ns: u64, arg: u64) {
        let e = Event {
            name,
            t_ns: self.origin.elapsed().as_nanos() as u64,
            dur_ns,
            arg,
        };
        self.subscriber
            .read()
            .expect("subscriber lock poisoned")
            .event(&e);
    }
}

/// An in-flight RAII timer; dropping it emits the event. Obtained from
/// [`Tracer::span`].
pub struct Span<'t> {
    tracer: &'t Tracer,
    name: &'static str,
    start: Option<Instant>,
    arg: u64,
}

impl Span<'_> {
    /// Attach the event's free argument (a count, a byte size, …).
    #[inline]
    pub fn set_arg(&mut self, arg: u64) {
        self.arg = arg;
    }
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        if let Some(start) = self.start {
            let dur = start.elapsed().as_nanos() as u64;
            self.tracer.emit(self.name, dur, self.arg);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_emit_to_ring_in_order() {
        let (tracer, ring) = Tracer::with_ring();
        {
            let mut s = tracer.span("first");
            s.set_arg(7);
        }
        tracer.event("second", 123, 9);
        let events = ring.recent();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].name, "first");
        assert_eq!(events[0].arg, 7);
        assert_eq!(events[1].name, "second");
        assert_eq!(events[1].dur_ns, 123);
        assert_eq!(events[1].arg, 9);
    }

    #[test]
    fn disabled_tracer_emits_nothing() {
        let (tracer, ring) = Tracer::with_ring();
        tracer.set_enabled(false);
        drop(tracer.span("quiet"));
        tracer.event("also-quiet", 1, 1);
        assert!(ring.recent().is_empty());
        tracer.set_enabled(true);
        drop(tracer.span("loud"));
        assert_eq!(ring.recent().len(), 1);
    }

    #[test]
    fn ring_evicts_oldest() {
        let ring = RingSubscriber::new(3);
        let tracer = Tracer::new(Arc::new(RingSubscriber::new(1)));
        // Exercise the ring directly (tracer origin irrelevant here).
        for i in 0..5u64 {
            ring.event(&Event {
                name: "e",
                t_ns: i,
                dur_ns: 0,
                arg: i,
            });
        }
        let events = ring.recent();
        assert_eq!(events.len(), 3);
        assert_eq!(events[0].arg, 2);
        assert_eq!(events[2].arg, 4);
        drop(tracer);
    }

    #[test]
    fn subscriber_can_be_swapped() {
        let (tracer, first) = Tracer::with_ring();
        drop(tracer.span("a"));
        let second = Arc::new(RingSubscriber::default());
        tracer.set_subscriber(second.clone());
        drop(tracer.span("b"));
        assert_eq!(first.recent().len(), 1);
        assert_eq!(second.recent().len(), 1);
        assert_eq!(second.recent()[0].name, "b");
    }
}
