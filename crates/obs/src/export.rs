//! Metric registration and export.
//!
//! A [`Registry`] owns the set of named metrics an instrumented
//! component exposes. Components register their instruments once at
//! construction ([`Registry::counter`] / [`gauge`] / [`histogram`]
//! return shared handles) and call [`Registry::report`] at export time
//! to take an owned [`Report`] snapshot. The report renders to
//! Prometheus text format or a JSON object, and offers typed accessors
//! so tools (benches, tests) can read values programmatically instead
//! of parsing the rendered text.
//!
//! [`gauge`]: Registry::gauge
//! [`histogram`]: Registry::histogram

use crate::hist::{Histogram, HistogramSnapshot};
use crate::metrics::{Counter, Gauge};
use std::fmt::Write as _;
use std::sync::Arc;

/// Static metadata for one metric.
#[derive(Clone, Copy, Debug)]
pub struct Desc {
    /// Export name, e.g. `alpha_store_prepare_ns`. Must be a valid
    /// Prometheus metric name.
    pub name: &'static str,
    /// One-line human description.
    pub help: &'static str,
    /// Unit of the recorded values, e.g. `ns`, `bytes`, `nodes`
    /// (informational; rendered into the HELP line).
    pub unit: &'static str,
}

enum Instrument {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

/// The set of live metrics owned by one component.
///
/// Registration happens at construction time (`&mut self`); after that
/// the registry is only read, so it can be shared behind a plain
/// reference.
#[derive(Default)]
pub struct Registry {
    entries: Vec<(Desc, Instrument)>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// Register a counter and return its shared handle.
    pub fn counter(&mut self, desc: Desc) -> Arc<Counter> {
        let c = Arc::new(Counter::new());
        self.entries.push((desc, Instrument::Counter(c.clone())));
        c
    }

    /// Register a gauge and return its shared handle.
    pub fn gauge(&mut self, desc: Desc) -> Arc<Gauge> {
        let g = Arc::new(Gauge::new());
        self.entries.push((desc, Instrument::Gauge(g.clone())));
        g
    }

    /// Register a histogram and return its shared handle.
    pub fn histogram(&mut self, desc: Desc) -> Arc<Histogram> {
        let h = Arc::new(Histogram::new());
        self.entries.push((desc, Instrument::Histogram(h.clone())));
        h
    }

    /// Snapshot every registered metric, plus the caller's `extras`
    /// (values owned elsewhere — e.g. a store's `StoreStats` counters —
    /// that should appear in the same report).
    pub fn report(&self, extras: Vec<Sample>) -> Report {
        let mut entries: Vec<(Desc, Value)> = self
            .entries
            .iter()
            .map(|(desc, inst)| {
                let v = match inst {
                    Instrument::Counter(c) => Value::Counter(c.get()),
                    Instrument::Gauge(g) => Value::Gauge(g.get()),
                    Instrument::Histogram(h) => Value::Histogram(Box::new(h.snapshot())),
                };
                (*desc, v)
            })
            .collect();
        for s in extras {
            entries.push((s.desc, s.value));
        }
        Report { entries }
    }
}

/// A snapshot value.
#[derive(Clone, Debug)]
enum Value {
    Counter(u64),
    Gauge(u64),
    Histogram(Box<HistogramSnapshot>),
}

/// One externally-owned value to splice into a [`Report`] (used for
/// counters that live outside the registry, like `StoreStats`).
pub struct Sample {
    desc: Desc,
    value: Value,
}

impl Sample {
    /// An extra counter sample.
    pub fn counter(desc: Desc, v: u64) -> Self {
        Sample {
            desc,
            value: Value::Counter(v),
        }
    }

    /// An extra gauge sample.
    pub fn gauge(desc: Desc, v: u64) -> Self {
        Sample {
            desc,
            value: Value::Gauge(v),
        }
    }
}

/// An owned point-in-time snapshot of a [`Registry`] (plus extras),
/// renderable as Prometheus text or JSON and readable programmatically.
pub struct Report {
    entries: Vec<(Desc, Value)>,
}

impl Report {
    /// The value of the named counter, if present.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.entries.iter().find_map(|(d, v)| match v {
            Value::Counter(c) if d.name == name => Some(*c),
            _ => None,
        })
    }

    /// The value of the named gauge, if present.
    pub fn gauge(&self, name: &str) -> Option<u64> {
        self.entries.iter().find_map(|(d, v)| match v {
            Value::Gauge(g) if d.name == name => Some(*g),
            _ => None,
        })
    }

    /// The snapshot of the named histogram, if present.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.entries.iter().find_map(|(d, v)| match v {
            Value::Histogram(h) if d.name == name => Some(&**h),
            _ => None,
        })
    }

    /// Render as a JSON object:
    /// `{"counters": {...}, "gauges": {...}, "histograms": {name:
    /// {"count", "sum", "max", "mean", "p50", "p90", "p99"}}}`.
    pub fn to_json(&self) -> String {
        let mut counters = String::new();
        let mut gauges = String::new();
        let mut hists = String::new();
        for (d, v) in &self.entries {
            match v {
                Value::Counter(c) => {
                    let _ = write!(counters, "{}\"{}\": {}", sep(&counters), d.name, c);
                }
                Value::Gauge(g) => {
                    let _ = write!(gauges, "{}\"{}\": {}", sep(&gauges), d.name, g);
                }
                Value::Histogram(h) => {
                    let _ = write!(
                        hists,
                        "{}\"{}\": {{\"count\": {}, \"sum\": {}, \"max\": {}, \
                         \"mean\": {:.1}, \"p50\": {:.1}, \"p90\": {:.1}, \"p99\": {:.1}}}",
                        sep(&hists),
                        d.name,
                        h.count,
                        h.sum,
                        h.max,
                        h.mean(),
                        h.quantile(0.50),
                        h.quantile(0.90),
                        h.quantile(0.99),
                    );
                }
            }
        }
        format!(
            "{{\"counters\": {{{counters}}}, \"gauges\": {{{gauges}}}, \
             \"histograms\": {{{hists}}}}}"
        )
    }

    /// Render in Prometheus text exposition format. Histograms are
    /// exported as summaries (p50/p90/p99 quantiles, `_sum`, `_count`)
    /// plus a separate `<name>_max` gauge.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        for (d, v) in &self.entries {
            match v {
                Value::Counter(c) => {
                    let _ = writeln!(out, "# HELP {} {} ({})", d.name, d.help, d.unit);
                    let _ = writeln!(out, "# TYPE {} counter", d.name);
                    let _ = writeln!(out, "{} {}", d.name, c);
                }
                Value::Gauge(g) => {
                    let _ = writeln!(out, "# HELP {} {} ({})", d.name, d.help, d.unit);
                    let _ = writeln!(out, "# TYPE {} gauge", d.name);
                    let _ = writeln!(out, "{} {}", d.name, g);
                }
                Value::Histogram(h) => {
                    let _ = writeln!(out, "# HELP {} {} ({})", d.name, d.help, d.unit);
                    let _ = writeln!(out, "# TYPE {} summary", d.name);
                    for (q, label) in [(0.50, "0.5"), (0.90, "0.9"), (0.99, "0.99")] {
                        let _ = writeln!(
                            out,
                            "{}{{quantile=\"{}\"}} {:.1}",
                            d.name,
                            label,
                            h.quantile(q)
                        );
                    }
                    let _ = writeln!(out, "{}_sum {}", d.name, h.sum);
                    let _ = writeln!(out, "{}_count {}", d.name, h.count);
                    let _ = writeln!(out, "# TYPE {}_max gauge", d.name);
                    let _ = writeln!(out, "{}_max {}", d.name, h.max);
                }
            }
        }
        out
    }
}

fn sep(s: &str) -> &'static str {
    if s.is_empty() {
        ""
    } else {
        ", "
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn desc(name: &'static str) -> Desc {
        Desc {
            name,
            help: "test metric",
            unit: "ns",
        }
    }

    #[test]
    fn report_round_trips_values() {
        let mut reg = Registry::new();
        let c = reg.counter(desc("t_hits"));
        let g = reg.gauge(desc("t_resident"));
        let h = reg.histogram(desc("t_latency_ns"));
        c.add(3);
        g.set(99);
        for v in [1u64, 2, 4, 8] {
            h.record(v);
        }
        let extra = Sample::counter(desc("t_extra"), 7);
        let report = reg.report(vec![extra]);

        assert_eq!(report.counter("t_hits"), Some(3));
        assert_eq!(report.counter("t_extra"), Some(7));
        assert_eq!(report.gauge("t_resident"), Some(99));
        let snap = report.histogram("t_latency_ns").expect("registered");
        assert_eq!(snap.count, 4);
        assert_eq!(snap.sum, 15);
        assert_eq!(report.counter("t_resident"), None, "kind-checked lookup");
    }

    #[test]
    fn json_and_prometheus_contain_all_metrics() {
        let mut reg = Registry::new();
        let c = reg.counter(desc("t_hits"));
        let h = reg.histogram(desc("t_latency_ns"));
        c.inc();
        h.record(100);
        let report = reg.report(vec![Sample::gauge(desc("t_bytes"), 4096)]);

        let json = report.to_json();
        assert!(json.contains("\"t_hits\": 1"), "{json}");
        assert!(json.contains("\"t_bytes\": 4096"), "{json}");
        assert!(json.contains("\"t_latency_ns\""), "{json}");
        assert!(json.contains("\"count\": 1"), "{json}");

        let prom = report.to_prometheus();
        assert!(prom.contains("# TYPE t_hits counter"), "{prom}");
        assert!(prom.contains("t_hits 1"), "{prom}");
        assert!(prom.contains("# TYPE t_bytes gauge"), "{prom}");
        assert!(prom.contains("# TYPE t_latency_ns summary"), "{prom}");
        assert!(prom.contains("t_latency_ns{quantile=\"0.99\"}"), "{prom}");
        assert!(prom.contains("t_latency_ns_count 1"), "{prom}");
        assert!(prom.contains("t_latency_ns_max 100"), "{prom}");
    }
}
