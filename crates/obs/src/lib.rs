//! `alpha-obs`: zero-dependency metrics and tracing primitives.
//!
//! The observability layer for the alpha-hash workspace, hand-rolled on
//! `std` alone in the same spirit as `crates/compat` — no registry
//! crates, no macros, no global state. Three pieces:
//!
//! - **Metrics** ([`metrics`], [`hist`]): relaxed-atomic [`Counter`]s
//!   and [`Gauge`]s, and striped lock-free log2-bucket [`Histogram`]s
//!   from which p50/p90/p99/max are derived at snapshot time. Recording
//!   is wait-free and safe inside any critical section.
//! - **Tracing** ([`trace`]): a [`Tracer`] facade handing out RAII
//!   timer [`Span`]s with static call-site names, routed to a pluggable
//!   [`Subscriber`] (default: a ring buffer of recent events). A
//!   runtime toggle disarms spans at one atomic load per call site.
//! - **Export** ([`export`]): a [`Registry`] of named instruments whose
//!   [`Report`] snapshot renders to Prometheus text format or JSON and
//!   offers typed accessors for programmatic reads.
//!
//! The instrumented component (see `alpha-store`'s `obs` feature)
//! decides *what* to measure; this crate only provides the mechanics.
//!
//! [`Counter`]: metrics::Counter
//! [`Gauge`]: metrics::Gauge
//! [`Histogram`]: hist::Histogram
//! [`Tracer`]: trace::Tracer
//! [`Span`]: trace::Span
//! [`Subscriber`]: trace::Subscriber
//! [`Registry`]: export::Registry
//! [`Report`]: export::Report

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod export;
pub mod hist;
pub mod metrics;
pub mod trace;

pub use export::{Desc, Registry, Report, Sample};
pub use hist::{Histogram, HistogramSnapshot};
pub use metrics::{Counter, Gauge};
pub use trace::{Event, RingSubscriber, Span, Subscriber, Tracer};
