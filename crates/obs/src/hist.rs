//! Lock-free log2-bucket histograms.
//!
//! A [`Histogram`] is a fixed array of 65 power-of-two buckets: bucket 0
//! counts exact zeros, bucket `b >= 1` counts values in
//! `[2^(b-1), 2^b - 1]`. That covers the full `u64` range with one
//! `leading_zeros` instruction per record and no allocation, at the cost
//! of ~2x quantile resolution — plenty for latency distributions where
//! the interesting signal is orders of magnitude, not microseconds.
//!
//! Recording never blocks and (in the common case) never contends:
//! buckets are striped [`STRIPES`] ways and each recording thread is
//! pinned round-robin to one stripe, so two store shards hammering the
//! same histogram land on different cache lines. Reads ([`snapshot`])
//! sum the stripes; the result is a consistent-enough view for
//! monitoring (individual bucket counts are each atomically read, the
//! set is not a single linearization point).
//!
//! [`snapshot`]: Histogram::snapshot

use std::cell::Cell;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// Number of buckets: one for zero plus one per bit of `u64`.
pub const BUCKETS: usize = 65;

/// Number of independent copies of the bucket array. Recording threads
/// are spread across stripes to avoid cache-line ping-pong; snapshots
/// sum them back together.
pub const STRIPES: usize = 8;

/// Index of the bucket that `v` falls into: 0 for 0, else
/// `64 - leading_zeros(v)` (so bucket `b` spans `[2^(b-1), 2^b - 1]`).
#[inline]
pub fn bucket_of(v: u64) -> usize {
    (u64::BITS - v.leading_zeros()) as usize
}

/// Inclusive lower bound of bucket `b` (0 for buckets 0 and 1).
#[inline]
pub fn bucket_low(b: usize) -> u64 {
    if b <= 1 {
        0
    } else {
        1u64 << (b - 1)
    }
}

/// Inclusive upper bound of bucket `b`.
#[inline]
pub fn bucket_high(b: usize) -> u64 {
    if b == 0 {
        0
    } else if b >= 64 {
        u64::MAX
    } else {
        (1u64 << b) - 1
    }
}

/// One stripe: its own bucket array plus sum, padded out so adjacent
/// stripes do not share cache lines through the hot leading buckets.
#[repr(align(128))]
struct Stripe {
    buckets: [AtomicU64; BUCKETS],
    sum: AtomicU64,
}

impl Stripe {
    fn new() -> Self {
        Stripe {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
        }
    }
}

/// A striped, lock-free log2 histogram of `u64` samples.
///
/// All methods take `&self`; recording is wait-free (three relaxed
/// atomic RMWs plus one `fetch_max`).
pub struct Histogram {
    stripes: [Stripe; STRIPES],
    /// Global max is kept separately (one contended word, but updated
    /// with `fetch_max` only when the sample actually raises it).
    max: AtomicU64,
}

/// Round-robin assignment of threads to stripes.
static NEXT_STRIPE: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    static MY_STRIPE: Cell<usize> = const { Cell::new(usize::MAX) };
}

#[inline]
fn my_stripe() -> usize {
    MY_STRIPE.with(|s| {
        let v = s.get();
        if v != usize::MAX {
            return v;
        }
        let v = NEXT_STRIPE.fetch_add(1, Ordering::Relaxed) % STRIPES;
        s.set(v);
        v
    })
}

impl Histogram {
    /// A new, empty histogram.
    pub fn new() -> Self {
        Histogram {
            stripes: std::array::from_fn(|_| Stripe::new()),
            max: AtomicU64::new(0),
        }
    }

    /// Record one sample.
    #[inline]
    pub fn record(&self, v: u64) {
        let stripe = &self.stripes[my_stripe()];
        stripe.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        stripe.sum.fetch_add(v, Ordering::Relaxed);
        if v > self.max.load(Ordering::Relaxed) {
            self.max.fetch_max(v, Ordering::Relaxed);
        }
    }

    /// Sum the stripes into an owned, immutable snapshot.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = [0u64; BUCKETS];
        let mut sum = 0u64;
        for stripe in &self.stripes {
            for (b, slot) in stripe.buckets.iter().enumerate() {
                buckets[b] += slot.load(Ordering::Relaxed);
            }
            sum = sum.wrapping_add(stripe.sum.load(Ordering::Relaxed));
        }
        let count = buckets.iter().sum();
        HistogramSnapshot {
            buckets,
            count,
            sum,
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

/// An owned point-in-time view of a [`Histogram`], from which quantiles
/// and the mean are derived.
#[derive(Clone, Debug)]
pub struct HistogramSnapshot {
    /// Per-bucket counts (see [`bucket_of`] for the layout).
    pub buckets: [u64; BUCKETS],
    /// Total number of recorded samples.
    pub count: u64,
    /// Sum of all recorded samples (wrapping).
    pub sum: u64,
    /// Largest recorded sample.
    pub max: u64,
}

impl HistogramSnapshot {
    /// Arithmetic mean of the recorded samples (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Estimate the `q`-quantile (`0.0 ..= 1.0`) by walking the
    /// cumulative bucket counts and interpolating linearly inside the
    /// bucket that crosses the target rank. Exact for bucket-boundary
    /// values; otherwise accurate to the bucket width (a factor of 2).
    /// Returns 0.0 when the histogram is empty.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        // Rank of the target sample, 1-based: ceil(q * count), min 1.
        let rank = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (b, &c) in self.buckets.iter().enumerate() {
            if c == 0 {
                continue;
            }
            if seen + c >= rank {
                let low = bucket_low(b) as f64;
                let high = bucket_high(b) as f64;
                // Position of the target inside this bucket, in (0, 1].
                let within = (rank - seen) as f64 / c as f64;
                let est = low + (high - low) * within;
                // Never report above the observed max.
                return est.min(self.max as f64);
            }
            seen += c;
        }
        self.max as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(7), 3);
        assert_eq!(bucket_of(8), 4);
        assert_eq!(bucket_of(u64::MAX), 64);
        for b in 1..BUCKETS {
            assert_eq!(bucket_of(bucket_low(b).max(1)), b, "low edge of {b}");
            assert_eq!(bucket_of(bucket_high(b)), b, "high edge of {b}");
            if b < 64 {
                assert_eq!(bucket_of(bucket_high(b) + 1), b + 1, "rollover of {b}");
            }
        }
    }

    #[test]
    fn snapshot_counts_sum_and_max() {
        let h = Histogram::new();
        for v in [0u64, 1, 2, 3, 1000, 1_000_000] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 6);
        assert_eq!(s.sum, 1_001_006);
        assert_eq!(s.max, 1_000_000);
        assert_eq!(s.buckets[0], 1); // the zero
        assert_eq!(s.buckets[1], 1); // 1
        assert_eq!(s.buckets[2], 2); // 2, 3
        assert_eq!(s.buckets[10], 1); // 1000 in [512, 1023]
        assert_eq!(s.buckets[20], 1); // 1e6 in [2^19, 2^20-1]
    }

    #[test]
    fn quantiles_on_known_vector() {
        let h = Histogram::new();
        // 100 samples of 8 and 100 samples of 1024.
        for _ in 0..100 {
            h.record(8);
            h.record(1024);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 200);
        // p25 lands inside the [8, 15] bucket.
        let p25 = s.quantile(0.25);
        assert!((8.0..=15.0).contains(&p25), "p25 = {p25}");
        // p75 lands inside the [1024, 2047] bucket — but is capped at the
        // observed max, 1024.
        let p75 = s.quantile(0.75);
        assert!((1024.0..=1024.0).contains(&p75), "p75 = {p75}");
        // p100 is the max exactly.
        assert_eq!(s.quantile(1.0), 1024.0);
        // Empty histogram: all quantiles are 0.
        assert_eq!(Histogram::new().snapshot().quantile(0.5), 0.0);
    }

    #[test]
    fn quantile_interpolates_within_bucket() {
        let h = Histogram::new();
        // 10 samples, all in bucket [16, 31].
        for v in 16..26 {
            h.record(v);
        }
        let s = h.snapshot();
        let p50 = s.quantile(0.5);
        assert!((16.0..=25.0).contains(&p50), "p50 = {p50}");
        let p10 = s.quantile(0.1);
        let p90 = s.quantile(0.9);
        assert!(p10 <= p50 && p50 <= p90, "monotone: {p10} {p50} {p90}");
        assert_eq!(s.quantile(1.0), 25.0);
    }

    #[test]
    fn mean_matches_exact_sum() {
        let h = Histogram::new();
        for v in 1..=10u64 {
            h.record(v);
        }
        let s = h.snapshot();
        assert!((s.mean() - 5.5).abs() < 1e-9);
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        use std::sync::Arc;
        let h = Arc::new(Histogram::new());
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let h = Arc::clone(&h);
                std::thread::spawn(move || {
                    for i in 0..10_000u64 {
                        h.record(t * 10_000 + i);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let s = h.snapshot();
        assert_eq!(s.count, 40_000);
        assert_eq!(s.max, 39_999);
    }
}
