//! Atomic counters and gauges.
//!
//! Both are thin wrappers over a relaxed [`AtomicU64`]: a [`Counter`]
//! only ever goes up, a [`Gauge`] can be set or moved in either
//! direction. Neither allocates, blocks, or takes locks — they are safe
//! to touch from inside any critical section (see the lock-order rules
//! in `docs/OBSERVABILITY.md`).

use std::sync::atomic::{AtomicU64, Ordering};

/// A monotonically increasing event count.
#[derive(Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A counter starting at zero.
    pub fn new() -> Self {
        Counter(AtomicU64::new(0))
    }

    /// Add one.
    #[inline]
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Add `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A point-in-time measurement that can move both ways.
#[derive(Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// A gauge starting at zero.
    pub fn new() -> Self {
        Gauge(AtomicU64::new(0))
    }

    /// Overwrite the value.
    #[inline]
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Add `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Subtract `n` (saturating at zero only in aggregate use; the raw
    /// wrapping subtraction is intentional — pair adds with subs).
    #[inline]
    pub fn sub(&self, n: u64) {
        self.0.fetch_sub(n, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_basics() {
        let c = Counter::new();
        c.inc();
        c.add(41);
        assert_eq!(c.get(), 42);

        let g = Gauge::new();
        g.set(10);
        g.add(5);
        g.sub(3);
        assert_eq!(g.get(), 12);
        g.set(0);
        assert_eq!(g.get(), 0);
    }
}
