//! Locally nameless hashing — paper §2.5.
//!
//! The hash of a subexpression is the hash of its de-Bruijn-ised
//! representation *taken in isolation*: locally bound variables become
//! indices, free variables (of the subterm) keep their names. This is the
//! fastest known **correct** baseline — Table 1's comparison point.
//!
//! It is not compositional at binders: "the hash of `(\x.e)` cannot be
//! obtained from the hash of `e` … we must first de-Bruijn-ise `x` in
//! `e`, and then take the hash of that" (§2.5). Application and let-rhs
//! hashes do combine children in O(1); every `Lam` (and the body side of
//! every `Let`) re-traverses its whole body. Worst case O(n² log n) —
//! the complexity hole our algorithm removes.

use alpha_hash::combine::{HashScheme, HashWord, Mixer};
use alpha_hash::hashed::SubtreeHashes;
use lambda_lang::arena::{ExprArena, ExprNode, NodeId};
use lambda_lang::symbol::Symbol;
use std::collections::BTreeMap;

const SALT_BVAR: u64 = 0x71;
const SALT_FVAR: u64 = 0x72;
const SALT_LAM: u64 = 0x73;
const SALT_APP: u64 = 0x74;
const SALT_LET: u64 = 0x75;
const SALT_LIT: u64 = 0x76;

struct LnHasher<'a, H: HashWord> {
    arena: &'a ExprArena,
    seed: u64,
    name_hashes: Vec<u64>,
    _marker: std::marker::PhantomData<H>,
}

impl<'a, H: HashWord> LnHasher<'a, H> {
    /// Hash of the subtree at `node` in isolation, with `env` mapping the
    /// binders crossed *within this isolated traversal* to their levels.
    /// Iterative (explicit stack): the re-traversals happen on arbitrarily
    /// deep bodies.
    fn iso_hash(&self, node: NodeId) -> H {
        enum Task {
            Enter(NodeId),
            BindThenBody { sym: Symbol, body: NodeId },
            Exit(NodeId),
            Unbind { sym: Symbol, old: Option<u32> },
        }
        let mut env: BTreeMap<Symbol, u32> = BTreeMap::new();
        let mut depth: u32 = 0;
        let mut values: Vec<H> = Vec::new();
        let mut stack = vec![Task::Enter(node)];

        while let Some(task) = stack.pop() {
            match task {
                Task::Enter(n) => match self.arena.node(n) {
                    ExprNode::Var(_) | ExprNode::Lit(_) => stack.push(Task::Exit(n)),
                    ExprNode::Lam(x, b) => {
                        stack.push(Task::Exit(n));
                        stack.push(Task::BindThenBody { sym: x, body: b });
                    }
                    ExprNode::App(f, a) => {
                        stack.push(Task::Exit(n));
                        stack.push(Task::Enter(a));
                        stack.push(Task::Enter(f));
                    }
                    ExprNode::Let(x, r, b) => {
                        stack.push(Task::Exit(n));
                        stack.push(Task::BindThenBody { sym: x, body: b });
                        stack.push(Task::Enter(r));
                    }
                },
                Task::BindThenBody { sym, body } => {
                    let old = env.insert(sym, depth);
                    depth += 1;
                    stack.push(Task::Unbind { sym, old });
                    stack.push(Task::Enter(body));
                }
                Task::Unbind { sym, old } => {
                    match old {
                        Some(v) => {
                            env.insert(sym, v);
                        }
                        None => {
                            env.remove(&sym);
                        }
                    }
                    depth -= 1;
                }
                Task::Exit(n) => {
                    let h: H = match self.arena.node(n) {
                        ExprNode::Var(s) => match env.get(&s) {
                            Some(&level) => Mixer::new(self.seed, SALT_BVAR)
                                .absorb((depth - level - 1) as u64)
                                .finish(),
                            None => Mixer::new(self.seed, SALT_FVAR)
                                .absorb(self.name_hashes[s.index() as usize])
                                .finish(),
                        },
                        ExprNode::Lit(l) => Mixer::new(self.seed, SALT_LIT)
                            .absorb(l.kind_tag())
                            .absorb(l.payload())
                            .finish(),
                        ExprNode::Lam(_, _) => {
                            let body = values.pop().expect("lam body");
                            Mixer::new(self.seed, SALT_LAM).absorb_word(body).finish()
                        }
                        ExprNode::App(_, _) => {
                            let arg = values.pop().expect("app arg");
                            let fun = values.pop().expect("app fun");
                            Mixer::new(self.seed, SALT_APP)
                                .absorb_word(fun)
                                .absorb_word(arg)
                                .finish()
                        }
                        ExprNode::Let(_, _, _) => {
                            let body = values.pop().expect("let body");
                            let rhs = values.pop().expect("let rhs");
                            Mixer::new(self.seed, SALT_LET)
                                .absorb_word(rhs)
                                .absorb_word(body)
                                .finish()
                        }
                    };
                    values.push(h);
                }
            }
        }
        values.pop().expect("iso hash computed")
    }
}

/// Hashes every subexpression with the locally nameless scheme.
///
/// Correct modulo alpha (Table 1: true positives *and* true negatives)
/// but O(n² log n): each binder re-hashes its whole body.
///
/// # Examples
///
/// ```
/// use lambda_lang::{ExprArena, parse};
/// use alpha_hash::combine::HashScheme;
/// use hash_baselines::hash_all_locally_nameless;
///
/// let scheme: HashScheme<u64> = HashScheme::default();
/// let mut a = ExprArena::new();
/// let e1 = parse(&mut a, r"\x. x + free")?;
/// let e2 = parse(&mut a, r"\y. y + free")?;
/// let h1 = hash_all_locally_nameless(&a, e1, &scheme).get(e1);
/// let h2 = hash_all_locally_nameless(&a, e2, &scheme).get(e2);
/// assert_eq!(h1, h2);
/// # Ok::<(), lambda_lang::ParseError>(())
/// ```
pub fn hash_all_locally_nameless<H: HashWord>(
    arena: &ExprArena,
    root: NodeId,
    scheme: &HashScheme<H>,
) -> SubtreeHashes<H> {
    let hasher = LnHasher::<H> {
        arena,
        seed: scheme.seed(),
        name_hashes: alpha_hash::hashed::name_hashes(arena, scheme),
        _marker: std::marker::PhantomData,
    };
    let mut out: Vec<Option<H>> = vec![None; arena.len()];
    let mut stack: Vec<H> = Vec::new();

    // Bottom-up: App/Let combine children in O(1); Lam and the body side
    // of Let re-hash the body subtree in isolation — exactly the §2.5
    // cost model.
    for n in lambda_lang::visit::postorder(arena, root) {
        let h: H = match arena.node(n) {
            ExprNode::Var(s) => Mixer::new(hasher.seed, SALT_FVAR)
                .absorb(hasher.name_hashes[s.index() as usize])
                .finish(),
            ExprNode::Lit(l) => Mixer::new(hasher.seed, SALT_LIT)
                .absorb(l.kind_tag())
                .absorb(l.payload())
                .finish(),
            ExprNode::Lam(_, _) => {
                let _body = stack.pop().expect("lam body hash");
                // Not compositional: re-hash the whole lambda in isolation.
                hasher.iso_hash(n)
            }
            ExprNode::App(_, _) => {
                let arg = stack.pop().expect("app arg hash");
                let fun = stack.pop().expect("app fun hash");
                Mixer::new(hasher.seed, SALT_APP)
                    .absorb_word(fun)
                    .absorb_word(arg)
                    .finish()
            }
            ExprNode::Let(_, _, _) => {
                let _body = stack.pop().expect("let body hash");
                let _rhs = stack.pop().expect("let rhs hash");
                // The let binds in its body: same non-compositionality.
                hasher.iso_hash(n)
            }
        };
        out[n.index()] = Some(h);
        stack.push(h);
    }
    SubtreeHashes::from_vec(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use alpha_hash::equiv::{ground_truth_classes, group_by_hash, same_partition};
    use lambda_lang::parse::parse;
    use lambda_lang::uniquify::uniquify;

    fn scheme() -> HashScheme<u64> {
        HashScheme::new(11)
    }

    fn hash_of(src: &str) -> u64 {
        let mut a = ExprArena::new();
        let root = parse(&mut a, src).unwrap();
        hash_all_locally_nameless(&a, root, &scheme())
            .get(root)
            .unwrap()
    }

    #[test]
    fn respects_alpha_equivalence() {
        assert_eq!(hash_of(r"\x. x + y"), hash_of(r"\p. p + y"));
        assert_ne!(hash_of(r"\x. x + y"), hash_of(r"\q. q + z"));
        assert_eq!(
            hash_of("let bar = x+1 in bar*y"),
            hash_of("let p = x+1 in p*y")
        );
        assert_ne!(hash_of("add x y"), hash_of("add x x"));
    }

    #[test]
    fn no_de_bruijn_false_negative() {
        // The §2.4 counterexample: LN hashes each subterm in isolation,
        // so the two (\x.x+t) get equal hashes regardless of context.
        let mut a = ExprArena::new();
        let root = parse(&mut a, r"\t. foo (\x. x + t) (\y. \x. x + t)").unwrap();
        let hashes = hash_all_locally_nameless(&a, root, &scheme());
        let lams: Vec<NodeId> = lambda_lang::visit::preorder(&a, root)
            .into_iter()
            .filter(|&n| matches!(a.node(n), ExprNode::Lam(_, _)) && a.subtree_size(n) == 6)
            .collect();
        assert_eq!(lams.len(), 2);
        assert_eq!(hashes.get(lams[0]), hashes.get(lams[1]));
    }

    #[test]
    fn no_de_bruijn_false_positive() {
        let mut a = ExprArena::new();
        let root = parse(&mut a, r"\t. foo (\x. t * (x+1)) (\y. \x. y * (x+1))").unwrap();
        let hashes = hash_all_locally_nameless(&a, root, &scheme());
        let lams: Vec<NodeId> = lambda_lang::visit::preorder(&a, root)
            .into_iter()
            .filter(|&n| matches!(a.node(n), ExprNode::Lam(_, _)) && a.subtree_size(n) == 10)
            .collect();
        assert_eq!(lams.len(), 2);
        assert_ne!(
            hashes.get(lams[0]),
            hashes.get(lams[1]),
            "t and y are different free variables"
        );
    }

    #[test]
    fn classes_match_ground_truth() {
        for src in [
            r"foo (\x. x+7) (\y. y+7)",
            "(a + (v+7)) * (v+7)",
            r"\t. foo (\x. x + t) (\y. \x. x + t)",
            "foo (let x = bar in x+2) (let x = pubx in x+2)",
        ] {
            let mut a = ExprArena::new();
            let parsed = parse(&mut a, src).unwrap();
            let (b, root) = uniquify(&a, parsed);
            let classes = group_by_hash(&hash_all_locally_nameless(&b, root, &scheme()));
            let truth = ground_truth_classes(&b, root);
            assert!(same_partition(&classes, &truth), "mismatch for {src}");
        }
    }

    #[test]
    fn agrees_with_our_algorithm_on_classes() {
        for src in [
            r"\f. f (\x. f x) (\y. f y)",
            "let w = v + 7 in (a + w) * w",
            r"map (\y. y+1) (map (\x. x+1) vs)",
        ] {
            let mut a = ExprArena::new();
            let parsed = parse(&mut a, src).unwrap();
            let (b, root) = uniquify(&a, parsed);
            let s = scheme();
            let ln = group_by_hash(&hash_all_locally_nameless(&b, root, &s));
            let ours = group_by_hash(&alpha_hash::hashed::hash_all_subexpressions(&b, root, &s));
            assert!(same_partition(&ln, &ours), "mismatch for {src}");
        }
    }

    #[test]
    fn deep_input_is_stack_safe() {
        // 20k nested lambdas: quadratic-ish cost but must not overflow.
        let mut a = ExprArena::new();
        let mut e = a.var_named("base");
        for i in 0..2_000 {
            let x = a.intern(&format!("x{i}"));
            e = a.lam(x, e);
        }
        let hashes = hash_all_locally_nameless(&a, e, &scheme());
        assert!(hashes.get(e).is_some());
    }
}
