//! Structural (purely syntactic) hashing — paper §2.3.
//!
//! The classic hash-consing hash: a node's hash combines its constructor,
//! any names it carries (binder names *and* variable names included), and
//! its children's hashes. One O(1) combination per node ⇒ O(n) total.
//!
//! Perfect for structure sharing; wrong for alpha-equivalence — `\x.x+1`
//! and `\y.y+1` hash differently (false negatives, §2.2). With the
//! unique-binder preprocessing it produces no false positives, hence
//! Table 1's "True pos. = Yes, True neg. = No".

use alpha_hash::combine::{HashScheme, HashWord, Mixer};
use alpha_hash::hashed::SubtreeHashes;
use lambda_lang::arena::{ExprArena, ExprNode, NodeId};
use lambda_lang::visit::postorder;

const SALT_VAR: u64 = 0x51;
const SALT_LAM: u64 = 0x52;
const SALT_APP: u64 = 0x53;
const SALT_LET: u64 = 0x54;
const SALT_LIT: u64 = 0x55;

/// Hashes every subexpression syntactically. O(n).
///
/// # Examples
///
/// ```
/// use lambda_lang::{ExprArena, parse};
/// use alpha_hash::combine::HashScheme;
/// use hash_baselines::hash_all_structural;
///
/// let scheme: HashScheme<u64> = HashScheme::default();
/// let mut a = ExprArena::new();
/// let e1 = parse(&mut a, r"\x. x + 1")?;
/// let e2 = parse(&mut a, r"\y. y + 1")?;
/// let h = hash_all_structural(&a, e1, &scheme);
/// let g = hash_all_structural(&a, e2, &scheme);
/// // False negative: alpha-equivalent but differently named ⇒ different.
/// assert_ne!(h.get(e1), g.get(e2));
/// # Ok::<(), lambda_lang::ParseError>(())
/// ```
pub fn hash_all_structural<H: HashWord>(
    arena: &ExprArena,
    root: NodeId,
    scheme: &HashScheme<H>,
) -> SubtreeHashes<H> {
    let name_hashes = alpha_hash::hashed::name_hashes(arena, scheme);
    let seed = scheme.seed();
    let mut out: Vec<Option<H>> = vec![None; arena.len()];
    let mut stack: Vec<H> = Vec::new();

    for n in postorder(arena, root) {
        let h: H = match arena.node(n) {
            ExprNode::Var(s) => Mixer::new(seed, SALT_VAR)
                .absorb(name_hashes[s.index() as usize])
                .finish(),
            ExprNode::Lit(l) => Mixer::new(seed, SALT_LIT)
                .absorb(l.kind_tag())
                .absorb(l.payload())
                .finish(),
            ExprNode::Lam(x, _) => {
                let body = stack.pop().expect("lam body hash");
                Mixer::new(seed, SALT_LAM)
                    .absorb(name_hashes[x.index() as usize])
                    .absorb_word(body)
                    .finish()
            }
            ExprNode::App(_, _) => {
                let arg = stack.pop().expect("app arg hash");
                let fun = stack.pop().expect("app fun hash");
                Mixer::new(seed, SALT_APP)
                    .absorb_word(fun)
                    .absorb_word(arg)
                    .finish()
            }
            ExprNode::Let(x, _, _) => {
                let body = stack.pop().expect("let body hash");
                let rhs = stack.pop().expect("let rhs hash");
                Mixer::new(seed, SALT_LET)
                    .absorb(name_hashes[x.index() as usize])
                    .absorb_word(rhs)
                    .absorb_word(body)
                    .finish()
            }
        };
        out[n.index()] = Some(h);
        stack.push(h);
    }
    SubtreeHashes::from_vec(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lambda_lang::parse::parse;

    fn hash_of(src: &str) -> u64 {
        let mut a = ExprArena::new();
        let root = parse(&mut a, src).unwrap();
        let scheme = HashScheme::new(7);
        hash_all_structural(&a, root, &scheme).get(root).unwrap()
    }

    #[test]
    fn identical_trees_hash_equal() {
        assert_eq!(hash_of("f x (g y)"), hash_of("f x (g y)"));
        assert_eq!(hash_of(r"\x. x + 1"), hash_of(r"\x. x + 1"));
    }

    #[test]
    fn false_negative_on_alpha_renaming() {
        // §2.2: the failure mode this baseline exists to demonstrate.
        assert_ne!(hash_of(r"\x. x + 1"), hash_of(r"\y. y + 1"));
        assert_ne!(
            hash_of("let bar = x+1 in bar*y"),
            hash_of("let p = x+1 in p*y")
        );
    }

    #[test]
    fn distinct_trees_hash_differently() {
        assert_ne!(hash_of("f x"), hash_of("f y"));
        assert_ne!(hash_of("1"), hash_of("2"));
        assert_ne!(hash_of("1"), hash_of("1.0"));
        assert_ne!(hash_of(r"\x. x"), hash_of("let x = x in x"));
    }

    #[test]
    fn subexpression_hashes_are_recorded() {
        let mut a = ExprArena::new();
        let root = parse(&mut a, "f (g x) (g x)").unwrap();
        let scheme: HashScheme<u64> = HashScheme::new(7);
        let hashes = hash_all_structural(&a, root, &scheme);
        assert_eq!(hashes.len(), 9); // 2 apps + f + 2×(g x)
                                     // The two syntactically identical `g x` subtrees hash equal.
        let gs: Vec<u64> = lambda_lang::visit::preorder(&a, root)
            .into_iter()
            .filter(|&n| a.subtree_size(n) == 3)
            .map(|n| hashes.get(n).unwrap())
            .collect();
        assert_eq!(gs.len(), 2);
        assert_eq!(gs[0], gs[1]);
    }

    #[test]
    fn deep_input_is_stack_safe() {
        let mut a = ExprArena::new();
        let x = a.intern("x");
        let mut e = a.var(x);
        for _ in 0..200_000 {
            e = a.lam(x, e);
        }
        let scheme: HashScheme<u64> = HashScheme::new(7);
        let hashes = hash_all_structural(&a, e, &scheme);
        assert!(hashes.get(e).is_some());
    }
}
