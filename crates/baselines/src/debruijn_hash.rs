//! De Bruijn hashing — paper §2.4.
//!
//! Convert the whole expression to de Bruijn form (bound occurrences →
//! indices counting intervening binders, free variables keep names), then
//! hash structurally. One environment lookup per variable occurrence in a
//! balanced-tree map ⇒ O(n log n).
//!
//! As §2.4 shows, this baseline is wrong in both directions for
//! subexpressions in context:
//!
//! * **false negatives** — in `\t. foo (\x.x+t) (\y.\x.x+t)` the two
//!   `\x.x+t` subterms are alpha-equivalent but their `t` occurrences get
//!   indices `%1` vs `%2`;
//! * **false positives** — in `\t. foo (\x.t*(x+1)) (\y.\x.y*(x+1))` the
//!   inner lambdas both read `\.%1*(%0+1)` yet refer to different outer
//!   variables.

use alpha_hash::combine::{HashScheme, HashWord, Mixer};
use alpha_hash::hashed::SubtreeHashes;
use lambda_lang::arena::{ExprArena, ExprNode, NodeId};
use lambda_lang::symbol::Symbol;
use lambda_lang::visit::{walk_scoped, ScopeEvent};
use std::collections::BTreeMap;

const SALT_BVAR: u64 = 0x61;
const SALT_FVAR: u64 = 0x62;
const SALT_LAM: u64 = 0x63;
const SALT_APP: u64 = 0x64;
const SALT_LET: u64 = 0x65;
const SALT_LIT: u64 = 0x66;

/// Hashes every subexpression of the global de Bruijn conversion.
/// O(n log n): one ordered-map operation per binder/occurrence.
///
/// # Examples
///
/// ```
/// use lambda_lang::{ExprArena, parse};
/// use alpha_hash::combine::HashScheme;
/// use hash_baselines::hash_all_debruijn;
///
/// let scheme: HashScheme<u64> = HashScheme::default();
/// let mut a = ExprArena::new();
/// let e1 = parse(&mut a, r"\x. x + 1")?;
/// let e2 = parse(&mut a, r"\y. y + 1")?;
/// // Whole-expression hashing modulo alpha works (that is why de Bruijn
/// // is tempting)…
/// let h1 = hash_all_debruijn(&a, e1, &scheme).get(e1);
/// let h2 = hash_all_debruijn(&a, e2, &scheme).get(e2);
/// assert_eq!(h1, h2);
/// # Ok::<(), lambda_lang::ParseError>(())
/// ```
pub fn hash_all_debruijn<H: HashWord>(
    arena: &ExprArena,
    root: NodeId,
    scheme: &HashScheme<H>,
) -> SubtreeHashes<H> {
    let name_hashes = alpha_hash::hashed::name_hashes(arena, scheme);
    let seed = scheme.seed();
    let mut out: Vec<Option<H>> = vec![None; arena.len()];
    let mut stack: Vec<H> = Vec::new();

    // Scope state: binder → level at which it was bound; depth = number
    // of binders currently in scope. A BTreeMap gives the O(log n)
    // per-lookup cost the paper's complexity row assumes.
    let mut env: BTreeMap<Symbol, Vec<u32>> = BTreeMap::new(); // stack per name: shadowing-safe
    let mut depth: u32 = 0;

    walk_scoped(arena, root, |ev| match ev {
        ScopeEvent::Bind { sym, .. } => {
            env.entry(sym).or_default().push(depth);
            depth += 1;
        }
        ScopeEvent::Unbind { sym, .. } => {
            let levels = env.get_mut(&sym).expect("unbind without bind");
            levels.pop();
            if levels.is_empty() {
                env.remove(&sym);
            }
            depth -= 1;
        }
        ScopeEvent::Enter(_) => {}
        ScopeEvent::Exit(n) => {
            let h: H = match arena.node(n) {
                ExprNode::Var(s) => match env.get(&s).and_then(|ls| ls.last()) {
                    Some(&level) => {
                        let index = depth - level - 1;
                        Mixer::new(seed, SALT_BVAR).absorb(index as u64).finish()
                    }
                    None => Mixer::new(seed, SALT_FVAR)
                        .absorb(name_hashes[s.index() as usize])
                        .finish(),
                },
                ExprNode::Lit(l) => Mixer::new(seed, SALT_LIT)
                    .absorb(l.kind_tag())
                    .absorb(l.payload())
                    .finish(),
                ExprNode::Lam(_, _) => {
                    let body = stack.pop().expect("lam body hash");
                    // Binder is anonymous in de Bruijn form.
                    Mixer::new(seed, SALT_LAM).absorb_word(body).finish()
                }
                ExprNode::App(_, _) => {
                    let arg = stack.pop().expect("app arg hash");
                    let fun = stack.pop().expect("app fun hash");
                    Mixer::new(seed, SALT_APP)
                        .absorb_word(fun)
                        .absorb_word(arg)
                        .finish()
                }
                ExprNode::Let(_, _, _) => {
                    let body = stack.pop().expect("let body hash");
                    let rhs = stack.pop().expect("let rhs hash");
                    Mixer::new(seed, SALT_LET)
                        .absorb_word(rhs)
                        .absorb_word(body)
                        .finish()
                }
            };
            out[n.index()] = Some(h);
            stack.push(h);
        }
    });

    SubtreeHashes::from_vec(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lambda_lang::parse::parse;

    fn scheme() -> HashScheme<u64> {
        HashScheme::new(9)
    }

    fn whole_hash(src: &str) -> u64 {
        let mut a = ExprArena::new();
        let root = parse(&mut a, src).unwrap();
        hash_all_debruijn(&a, root, &scheme()).get(root).unwrap()
    }

    /// Hash of a specific subexpression within `src`: the `k`-th (in
    /// pre-order) node that is a lambda of subtree size `size`.
    fn lam_hash(src: &str, size: usize, k: usize) -> u64 {
        let mut a = ExprArena::new();
        let root = parse(&mut a, src).unwrap();
        let hashes = hash_all_debruijn(&a, root, &scheme());
        let lams: Vec<NodeId> = lambda_lang::visit::preorder(&a, root)
            .into_iter()
            .filter(|&n| matches!(a.node(n), ExprNode::Lam(_, _)) && a.subtree_size(n) == size)
            .collect();
        hashes.get(lams[k]).unwrap()
    }

    #[test]
    fn whole_expressions_hash_modulo_alpha() {
        assert_eq!(whole_hash(r"\x. x + 1"), whole_hash(r"\y. y + 1"));
        assert_eq!(
            whole_hash("let bar = x+1 in bar*y"),
            whole_hash("let p = x+1 in p*y")
        );
        assert_ne!(whole_hash(r"\x. x + y"), whole_hash(r"\x. x + z"));
    }

    #[test]
    fn paper_false_negative() {
        // §2.4: two alpha-equivalent (\x.x+t) subterms hash differently
        // because t's index depends on the enclosing lambdas.
        let src = r"\t. foo (\x. x + t) (\y. \x. x + t)";
        // Sizes: (\x. x+t) has 6 nodes.
        let h_first = lam_hash(src, 6, 0);
        let h_second = lam_hash(src, 6, 1);
        assert_ne!(h_first, h_second, "expected the §2.4 false negative");
    }

    #[test]
    fn paper_false_positive() {
        // §2.4: (\x. t*(x+1)) and (\x. y*(x+1)) hash EQUAL under de
        // Bruijn although they are not alpha-equivalent (different free
        // variables — t vs the y bound one level further out).
        let src = r"\t. foo (\x. t * (x+1)) (\y. \x. y * (x+1))";
        // Each inner lambda has 10 nodes; the enclosing \y.\x chain has 11
        // and is filtered out, so indices 0 and 1 are the two candidates.
        let h_first = lam_hash(src, 10, 0);
        let h_second = lam_hash(src, 10, 1); // inner \x of the \y.\x chain
        assert_eq!(h_first, h_second, "expected the §2.4 false positive");
    }

    #[test]
    fn shadowing_resolves_to_innermost() {
        // \x. \x. x — inner x refers to the inner binder (index 0),
        // making the term equal to \a. \b. b.
        assert_eq!(whole_hash(r"\x. \x. x"), whole_hash(r"\a. \b. b"));
        assert_ne!(whole_hash(r"\x. \x. x"), whole_hash(r"\a. \b. a"));
    }

    #[test]
    fn lets_count_as_binders() {
        assert_eq!(
            whole_hash("let w = 1 in w + z"),
            whole_hash("let q = 1 in q + z")
        );
        assert_ne!(
            whole_hash("let w = 1 in w + z"),
            whole_hash("let w = 1 in z + w")
        );
    }

    #[test]
    fn deep_input_is_stack_safe() {
        let mut a = ExprArena::new();
        let mut e = a.var_named("base");
        for i in 0..150_000 {
            let x = a.intern(&format!("x{i}"));
            e = a.lam(x, e);
        }
        let hashes = hash_all_debruijn(&a, e, &scheme());
        assert!(hashes.get(e).is_some());
    }
}
