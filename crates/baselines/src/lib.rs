//! # hash-baselines
//!
//! The three baseline subexpression hashers of the paper's Table 1:
//!
//! | Algorithm | Complexity | True pos. | True neg. | Module |
//! |-----------|------------|-----------|-----------|--------|
//! | Structural (§2.3) | O(n) | Yes | **No** | [`structural`] |
//! | De Bruijn (§2.4) | O(n log n) | **No** | **No** | [`debruijn_hash`] |
//! | Locally Nameless (§2.5) | O(n² log n) | Yes | Yes | [`locally_nameless`] |
//!
//! ("True pos./neg." refer to correctness as an alpha-equivalence
//! classifier for subexpressions *in context*, assuming the §2.2
//! unique-binder preprocessing. Structural and De Bruijn are *incorrect*
//! baselines, kept — as in the paper — to define the complexity floor;
//! Locally Nameless is the fastest known correct baseline.)
//!
//! All three share the interface of the main algorithm: one call hashes
//! every subexpression, returning
//! [`alpha_hash::hashed::SubtreeHashes`].

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod debruijn_hash;
pub mod locally_nameless;
pub mod structural;

pub use debruijn_hash::hash_all_debruijn;
pub use locally_nameless::hash_all_locally_nameless;
pub use structural::hash_all_structural;
