//! # expr-gen
//!
//! Workload generators for the evaluation of *Hashing Modulo
//! Alpha-Equivalence* (PLDI 2021):
//!
//! * [`random_terms`] — the §7.1 synthetic families: roughly **balanced**
//!   random lambda terms and **wildly unbalanced** spines with deeply
//!   nested lambdas (Figure 2's two panels).
//! * [`adversarial`] — Appendix B.1's adversarial pairs: structurally
//!   identical wrappers around two inequivalent seeds, built so that a
//!   low-level hash collision propagates to the root (Figure 4).
//! * [`models`] — synthetic stand-ins for the §7.2 real-life expressions:
//!   MNIST-CNN (n≈840), GMM (n≈1810) and BERT with a layer knob
//!   (n≈12975 at 12 layers), for Table 2 and Figure 3.
//! * [`wide`] — open application spines that sustain a configurable
//!   free-variable width, the context-sensitive-corpus regime where
//!   e-summary maps stay wide (the tiered var-map's target workload).
//!
//! All generators produce expressions whose binding sites are distinct
//! (the §2.2 precondition), so they can be hashed directly.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod adversarial;
pub mod arith;
pub mod models;
pub mod random_terms;
pub mod wide;

pub use adversarial::adversarial_pair;
pub use arith::arithmetic;
pub use models::{bert, gmm, mnist_cnn};
pub use random_terms::{balanced, unbalanced};
pub use wide::wide_open_spine;
