//! Random lambda terms for the synthetic evaluation (paper §7.1).
//!
//! Two families, as in Figure 2:
//!
//! * [`balanced`] — "roughly balanced trees, at each point generating a
//!   `Lam` or `App` node with equal probability. Each `Lam` node has a
//!   fresh binder, and at variable occurrences we choose one of the
//!   in-scope bound variables."
//! * [`unbalanced`] — "wildly unbalanced trees with very deeply nested
//!   lambdas", the shape of machine-generated `let`-heavy code; the
//!   workload that exposes the locally nameless baseline's quadratic
//!   behaviour.
//!
//! Generators hit the requested node count exactly, produce distinct
//! binders by construction (no uniquify pass needed), and are
//! deterministic given the RNG.

use lambda_lang::arena::{ExprArena, NodeId};
use lambda_lang::symbol::Symbol;
use rand::Rng;

/// Generates a roughly balanced random term with exactly `size` nodes.
///
/// # Panics
///
/// Panics if `size == 0`.
pub fn balanced<R: Rng>(arena: &mut ExprArena, size: usize, rng: &mut R) -> NodeId {
    assert!(size > 0, "size must be positive");

    enum Task {
        Gen(usize),
        Bind(Symbol),
        Unbind,
        BuildLam(Symbol),
        BuildApp,
    }

    let mut scope: Vec<Symbol> = Vec::new();
    let mut results: Vec<NodeId> = Vec::new();
    let mut stack = vec![Task::Gen(size)];
    let mut binder_counter = 0usize;

    while let Some(task) = stack.pop() {
        match task {
            Task::Bind(sym) => scope.push(sym),
            Task::Unbind => {
                scope.pop();
            }
            Task::BuildLam(sym) => {
                let body = results.pop().expect("lam body");
                results.push(arena.lam(sym, body));
            }
            Task::BuildApp => {
                let arg = results.pop().expect("app arg");
                let fun = results.pop().expect("app fun");
                results.push(arena.app(fun, arg));
            }
            Task::Gen(budget) => {
                let make_lam = if budget == 1 {
                    false
                } else if scope.is_empty() || budget == 2 {
                    true
                } else {
                    rng.random_bool(0.5)
                };
                if budget == 1 {
                    // A variable occurrence: one of the in-scope binders
                    // (a free fallback only for the degenerate size-1
                    // call).
                    let node = if scope.is_empty() {
                        arena.var_named("free")
                    } else {
                        let pick = scope[rng.random_range(0..scope.len())];
                        arena.var(pick)
                    };
                    results.push(node);
                } else if make_lam {
                    binder_counter += 1;
                    let sym = arena.intern(&format!("b{binder_counter}_{}", arena.len()));
                    stack.push(Task::BuildLam(sym));
                    stack.push(Task::Unbind);
                    stack.push(Task::Gen(budget - 1));
                    stack.push(Task::Bind(sym));
                } else {
                    // Balanced split of the remaining budget, with a
                    // little jitter so trees are not perfectly regular.
                    let remaining = budget - 1;
                    let half = remaining / 2;
                    let jitter = (half / 4).max(1);
                    let lo = half.saturating_sub(jitter).max(1);
                    let hi = (half + jitter).min(remaining - 1).max(lo);
                    let left = rng.random_range(lo..=hi);
                    let right = remaining - left;
                    stack.push(Task::BuildApp);
                    stack.push(Task::Gen(right));
                    stack.push(Task::Gen(left));
                }
            }
        }
    }

    let root = results.pop().expect("generated a root");
    debug_assert!(results.is_empty());
    root
}

/// Generates a wildly unbalanced term with exactly `size` nodes: a long
/// spine where each step is, with equal probability, a fresh-binder `Lam`
/// or an `App` of the spine to an in-scope variable leaf.
pub fn unbalanced<R: Rng>(arena: &mut ExprArena, size: usize, rng: &mut R) -> NodeId {
    assert!(size > 0, "size must be positive");

    // Plan the spine top-down, then build it bottom-up.
    enum Step {
        Lam(Symbol),
        /// App(spine, leaf): the leaf variable was chosen from the
        /// binders in scope at this point.
        App(Symbol),
    }

    let mut steps: Vec<Step> = Vec::new();
    let mut scope: Vec<Symbol> = Vec::new();
    let mut remaining = size - 1; // reserve the innermost leaf
    let mut binder_counter = 0usize;

    while remaining > 0 {
        let can_app = remaining >= 2 && !scope.is_empty();
        let make_lam = if !can_app { true } else { rng.random_bool(0.5) };
        if make_lam {
            binder_counter += 1;
            let sym = arena.intern(&format!("u{binder_counter}_{}", arena.len()));
            scope.push(sym);
            steps.push(Step::Lam(sym));
            remaining -= 1;
        } else {
            let pick = scope[rng.random_range(0..scope.len())];
            steps.push(Step::App(pick));
            remaining -= 2;
        }
    }

    // Innermost leaf: a variable bound somewhere above (scope cannot be
    // empty: the first step is always a Lam).
    let mut expr = if scope.is_empty() {
        arena.var_named("free")
    } else {
        let pick = scope[rng.random_range(0..scope.len())];
        arena.var(pick)
    };

    for step in steps.into_iter().rev() {
        expr = match step {
            Step::Lam(sym) => arena.lam(sym, expr),
            Step::App(leaf_sym) => {
                let leaf = arena.var(leaf_sym);
                arena.app(expr, leaf)
            }
        };
    }
    expr
}

#[cfg(test)]
mod tests {
    use super::*;
    use lambda_lang::uniquify::check_unique_binders;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn balanced_hits_exact_size() {
        let mut rng = StdRng::seed_from_u64(1);
        for size in [1, 2, 3, 5, 10, 100, 1234, 20_000] {
            let mut arena = ExprArena::new();
            let root = balanced(&mut arena, size, &mut rng);
            assert_eq!(arena.subtree_size(root), size, "size {size}");
        }
    }

    #[test]
    fn unbalanced_hits_exact_size() {
        let mut rng = StdRng::seed_from_u64(2);
        for size in [1, 2, 3, 5, 10, 100, 1235, 20_001] {
            let mut arena = ExprArena::new();
            let root = unbalanced(&mut arena, size, &mut rng);
            assert_eq!(arena.subtree_size(root), size, "size {size}");
        }
    }

    #[test]
    fn generated_terms_have_unique_binders() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut arena = ExprArena::new();
        let b = balanced(&mut arena, 5_000, &mut rng);
        assert!(check_unique_binders(&arena, b).is_ok());
        let u = unbalanced(&mut arena, 5_000, &mut rng);
        assert!(check_unique_binders(&arena, u).is_ok());
    }

    #[test]
    fn balanced_is_shallow_unbalanced_is_deep() {
        let mut rng = StdRng::seed_from_u64(4);
        let size = 10_000;
        let mut arena = ExprArena::new();
        let b = balanced(&mut arena, size, &mut rng);
        let u = unbalanced(&mut arena, size, &mut rng);
        let depth_b = arena.subtree_depth(b);
        let depth_u = arena.subtree_depth(u);
        assert!(depth_b < 200, "balanced depth {depth_b}");
        assert!(depth_u > size / 4, "unbalanced depth {depth_u}");
    }

    #[test]
    fn deterministic_given_seed() {
        let gen_hash = |seed: u64| {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut arena = ExprArena::new();
            let root = balanced(&mut arena, 500, &mut rng);
            let scheme: alpha_hash::HashScheme<u64> = alpha_hash::HashScheme::new(1);
            alpha_hash::hash_expr(&arena, root, &scheme)
        };
        assert_eq!(gen_hash(42), gen_hash(42));
        assert_ne!(gen_hash(42), gen_hash(43));
    }

    #[test]
    fn closed_terms_mostly() {
        // All variable occurrences are bound (scope picks), so the only
        // free names are the arithmetic primitives — none here.
        let mut rng = StdRng::seed_from_u64(5);
        let mut arena = ExprArena::new();
        let b = balanced(&mut arena, 2_000, &mut rng);
        assert!(lambda_lang::stats::free_vars(&arena, b).is_empty());
        let u = unbalanced(&mut arena, 2_000, &mut rng);
        assert!(lambda_lang::stats::free_vars(&arena, u).is_empty());
    }

    #[test]
    fn very_large_generation_is_stack_safe() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut arena = ExprArena::with_capacity(1_000_000);
        let u = unbalanced(&mut arena, 1_000_000, &mut rng);
        assert_eq!(arena.subtree_size(u), 1_000_000);
    }
}
