//! Synthetic real-life expressions (paper §7.2, Table 2, Figure 3).
//!
//! The paper hashes Knossos-IR dumps of three machine-learning workloads:
//! "MNIST CNN" (a convolution kernel, n = 840), "GMM" (the ADBench
//! Gaussian-Mixture-Model objective, n = 1810) and "BERT" (a PyTorch
//! transformer, n = 12975 at 12 layers, size linear in the layer count
//! via loop unrolling). Those IR dumps are not shippable artifacts, so
//! these builders construct *synthetic equivalents* with the same shape
//! characteristics — see DESIGN.md ("Substitutions").
//!
//! The defining feature of that IR is **A-normal form**: every
//! intermediate value is let-bound, so a program of n nodes is one long
//! let chain in which each binder scopes the entire rest of the program.
//! That shape is why the locally nameless baseline (which re-hashes a
//! binder's whole body) goes quadratic on BERT in the paper's Table 2
//! (820 ms vs our algorithm's 3.6 ms) and why its Figure 3 curve bends
//! quadratically; the builders here reproduce it.
//!
//! All binders are fresh symbols, so outputs satisfy the unique-binder
//! invariant directly. Node counts are tuned to the paper's exactly.

use lambda_lang::arena::{ExprArena, NodeId};
use lambda_lang::symbol::Symbol;

/// An A-normal-form builder: operations are accumulated as a let chain,
/// `finish` closes the chain over a result expression.
struct Anf<'a> {
    arena: &'a mut ExprArena,
    chain: Vec<(Symbol, NodeId)>,
}

impl<'a> Anf<'a> {
    fn new(arena: &'a mut ExprArena) -> Self {
        Anf {
            arena,
            chain: Vec::new(),
        }
    }

    /// Let-binds `rhs` to a fresh name and returns the name.
    fn bind(&mut self, hint: &str, rhs: NodeId) -> Symbol {
        let sym = self.arena.fresh(hint);
        self.chain.push((sym, rhs));
        sym
    }

    /// A reference to a bound intermediate.
    fn var(&mut self, sym: Symbol) -> NodeId {
        self.arena.var(sym)
    }

    /// A reference to a named (free) parameter, e.g. a weight.
    fn param(&mut self, name: &str) -> NodeId {
        self.arena.var_named(name)
    }

    /// `bind(hint, a ⊕ b)` for a binary primitive.
    fn bin(&mut self, hint: &str, op: &str, a: NodeId, b: NodeId) -> Symbol {
        let rhs = self.arena.prim2(op, a, b);
        self.bind(hint, rhs)
    }

    /// `bind(hint, ⊕ a)` for a unary primitive.
    fn un(&mut self, hint: &str, op: &str, a: NodeId) -> Symbol {
        let rhs = self.arena.prim1(op, a);
        self.bind(hint, rhs)
    }

    /// Dot product Σᵢ wᵢ·xᵢ in ANF; returns the accumulator symbol.
    fn dot(
        &mut self,
        w_prefix: &str,
        terms: usize,
        mut input: impl FnMut(&mut Self, usize) -> NodeId,
    ) -> Symbol {
        let mut acc: Option<Symbol> = None;
        for i in 0..terms {
            let w = self.param(&format!("{w_prefix}{i}"));
            let x = input(self, i);
            let prod = self.bin("m", "mul", w, x);
            acc = Some(match acc {
                None => prod,
                Some(a) => {
                    let av = self.var(a);
                    let pv = self.var(prod);
                    self.bin("s", "add", av, pv)
                }
            });
        }
        acc.expect("at least one term")
    }

    /// Wraps the accumulated chain around `result`.
    fn finish(self, result: NodeId) -> NodeId {
        let mut body = result;
        for (sym, rhs) in self.chain.into_iter().rev() {
            body = self.arena.let_(sym, rhs, body);
        }
        body
    }
}

/// Pads `expr` with semantics-neutral wrappers (unary `tanh` chains and,
/// if one node is still missing, a vacuous lambda) until the subtree has
/// exactly `target` nodes.
///
/// # Panics
///
/// Panics if the expression is already larger than `target`.
fn pad_to_exact(arena: &mut ExprArena, mut expr: NodeId, target: usize) -> NodeId {
    let mut size = arena.subtree_size(expr);
    assert!(
        size <= target,
        "expression too large to pad: {size} > {target}"
    );
    while target - size >= 2 {
        expr = arena.prim1("tanh", expr);
        size += 2;
    }
    if target - size == 1 {
        let unused = arena.fresh("pad");
        expr = arena.lam(unused, expr);
        size += 1;
    }
    debug_assert_eq!(size, target);
    expr
}

/// The "MNIST CNN" expression with explicit shape knobs: output
/// `channels`, a `kernel`×`kernel` window, a dense head of `head_terms`.
/// ANF throughout (one global let chain).
pub fn mnist_cnn_with(
    arena: &mut ExprArena,
    channels: usize,
    kernel: usize,
    head_terms: usize,
) -> NodeId {
    let mut anf = Anf::new(arena);
    let mut channel_syms = Vec::new();
    for c in 0..channels {
        // Convolution window: Σ_{i,j} w_c_ij · img_ij, every step bound.
        let mut acc: Option<Symbol> = None;
        for i in 0..kernel {
            for j in 0..kernel {
                let w = anf.param(&format!("w{c}_{i}_{j}"));
                let x = anf.param(&format!("img_{i}_{j}"));
                let prod = anf.bin("p", "mul", w, x);
                acc = Some(match acc {
                    None => prod,
                    Some(a) => {
                        let av = anf.var(a);
                        let pv = anf.var(prod);
                        anf.bin("s", "add", av, pv)
                    }
                });
            }
        }
        let bias = anf.param(&format!("bias{c}"));
        let accv = anf.var(acc.expect("window"));
        let pre = anf.bin("b", "add", accv, bias);
        // ReLU.
        let zero = anf.arena.float(0.0);
        let prev = anf.var(pre);
        let relu = anf.bin("r", "max", zero, prev);
        channel_syms.push(relu);
    }

    // Dense head over (cycled) channel activations.
    let head = anf.dot("head_w", head_terms, |anf, i| {
        let sym = channel_syms[i % channel_syms.len()];
        anf.var(sym)
    });
    let head_bias = anf.param("head_bias");
    let hv = anf.var(head);
    let out = anf.bin("o", "add", hv, head_bias);
    let ov = anf.var(out);
    let squashed = anf.un("t", "tanh", ov);
    let result = anf.var(squashed);
    anf.finish(result)
}

/// The "MNIST CNN" expression tuned to the paper's n = 840 exactly.
pub fn mnist_cnn(arena: &mut ExprArena) -> NodeId {
    let base = mnist_cnn_with(arena, 2, 5, 16);
    pad_to_exact(arena, base, 840)
}

/// The "GMM" expression with explicit shape knobs: mixture `components`
/// and data `dims`. ANF throughout.
pub fn gmm_with(arena: &mut ExprArena, components: usize, dims: usize) -> NodeId {
    let mut anf = Anf::new(arena);
    let mut scores = Vec::new();
    for k in 0..components {
        // Diagonal Mahalanobis quadratic form, every step bound.
        let mut acc: Option<Symbol> = None;
        for d in 0..dims {
            let x = anf.param(&format!("x{d}"));
            let mu = anf.param(&format!("mu{k}_{d}"));
            let diff = anf.bin("d", "sub", x, mu);
            let d1 = anf.var(diff);
            let d2 = anf.var(diff);
            let sq = anf.bin("q", "mul", d1, d2);
            let isig = anf.param(&format!("isig{k}_{d}"));
            let sqv = anf.var(sq);
            let scaled = anf.bin("w", "mul", sqv, isig);
            acc = Some(match acc {
                None => scaled,
                Some(a) => {
                    let av = anf.var(a);
                    let sv = anf.var(scaled);
                    anf.bin("a", "add", av, sv)
                }
            });
        }
        // Component score: logw_k − 0.5·q + logdet_k, then exp.
        let half = anf.arena.float(0.5);
        let qv = anf.var(acc.expect("quadratic form"));
        let halfq = anf.bin("h", "mul", half, qv);
        let logw = anf.param(&format!("logw{k}"));
        let hv = anf.var(halfq);
        let centred = anf.bin("c", "sub", logw, hv);
        let logdet = anf.param(&format!("logdet{k}"));
        let cv = anf.var(centred);
        let score = anf.bin("e", "add", cv, logdet);
        let sv = anf.var(score);
        let expd = anf.un("x", "exp", sv);
        scores.push(expd);
    }

    // log-sum-exp.
    let mut sum: Option<Symbol> = None;
    for &s in &scores {
        sum = Some(match sum {
            None => s,
            Some(a) => {
                let av = anf.var(a);
                let sv = anf.var(s);
                anf.bin("l", "add", av, sv)
            }
        });
    }
    let sv = anf.var(sum.expect("lse"));
    let lse = anf.un("z", "log", sv);
    let result = anf.var(lse);
    anf.finish(result)
}

/// The "GMM" expression tuned to the paper's n = 1810 exactly.
pub fn gmm(arena: &mut ExprArena) -> NodeId {
    let base = gmm_with(arena, 8, 8);
    pad_to_exact(arena, base, 1810)
}

/// One BERT encoder layer in ANF, reading the hidden state from
/// `h: Symbol` and returning the layer-output symbol. Weight names carry
/// the `layer_tag` when `distinct_weights`, otherwise they are shared
/// across layers (the loop-unrolled shape).
fn bert_layer(
    anf: &mut Anf<'_>,
    h: Symbol,
    heads: usize,
    dim: usize,
    ff_dim: usize,
    weight_tag: &str,
) -> Symbol {
    let mut head_ctx = Vec::new();
    for a in 0..heads {
        // Q/K/V projections against the hidden state.
        let mut proj_syms = Vec::new();
        for proj in ["q", "k", "v"] {
            let prefix = format!("{proj}w{weight_tag}_{a}_");
            let sym = anf.dot(&prefix, dim, |anf, _| anf.var(h));
            proj_syms.push(sym);
        }
        let (q, k, v) = (proj_syms[0], proj_syms[1], proj_syms[2]);
        let qv = anf.var(q);
        let kv = anf.var(k);
        let qk = anf.bin("g", "mul", qv, kv);
        let scale = anf.param("attn_scale");
        let qkv_ = anf.var(qk);
        let scaled = anf.bin("n", "div", qkv_, scale);
        let sv = anf.var(scaled);
        let score = anf.un("e", "exp", sv);
        let scv = anf.var(score);
        let vv = anf.var(v);
        let ctx = anf.bin("c", "mul", scv, vv);
        head_ctx.push(ctx);
    }

    // Mix heads + residual.
    let mut mix: Option<Symbol> = None;
    for (a, &ctx) in head_ctx.iter().enumerate() {
        let w = anf.param(&format!("ow{weight_tag}_{a}"));
        let cv = anf.var(ctx);
        let term = anf.bin("x", "mul", w, cv);
        mix = Some(match mix {
            None => term,
            Some(m) => {
                let mv = anf.var(m);
                let tv = anf.var(term);
                anf.bin("y", "add", mv, tv)
            }
        });
    }
    let mixv = anf.var(mix.expect("mix"));
    let hv = anf.var(h);
    let attn_out = anf.bin("ao", "add", mixv, hv);

    // Feed-forward with tanh activation + residual.
    let f1 = anf.dot(&format!("f1w{weight_tag}_"), ff_dim, |anf, _| {
        anf.var(attn_out)
    });
    let f1v = anf.var(f1);
    let act = anf.un("t", "tanh", f1v);
    let f2 = anf.dot(&format!("f2w{weight_tag}_"), ff_dim, |anf, _| anf.var(act));
    let f2v = anf.var(f2);
    let aov = anf.var(attn_out);
    anf.bin("ho", "add", f2v, aov)
}

/// The "BERT" expression with explicit shape knobs, as one global ANF
/// let chain (the Knossos/SSA shape: every binder scopes the rest of the
/// program, which is what makes locally nameless quadratic here).
pub fn bert_with(
    arena: &mut ExprArena,
    layers: usize,
    heads: usize,
    dim: usize,
    ff_dim: usize,
) -> NodeId {
    assert!(layers >= 1);
    let mut anf = Anf::new(arena);
    // Embedding.
    let mut h = anf.dot("emb_w", dim, |anf, i| anf.param(&format!("tok{i}")));
    for _ in 0..layers {
        // Loop-unrolled weights: shared names across layers.
        h = bert_layer(&mut anf, h, heads, dim, ff_dim, "");
    }
    // Classifier head.
    let cls = anf.param("cls_w");
    let hv = anf.var(h);
    let logits = anf.bin("lg", "mul", cls, hv);
    let lv = anf.var(logits);
    let out = anf.un("cl", "tanh", lv);
    let result = anf.var(out);
    anf.finish(result)
}

/// The "BERT" expression: a global ANF unrolling of `layers` encoder
/// layers, size linear in `layers` (Figure 3). Knobs tuned so
/// `bert(arena, 12)` matches the paper's n = 12975 exactly.
pub fn bert(arena: &mut ExprArena, layers: usize) -> NodeId {
    let base = bert_with(arena, layers, 4, 6, 6);
    if layers == 12 {
        let size = arena.subtree_size(base);
        if size <= 12_975 {
            // A few nodes of neutral padding, invisible at this scale but
            // landing exactly on the paper's reported n.
            return pad_to_exact(arena, base, 12_975);
        }
    }
    base
}

/// A modular BERT variant where each layer is a lambda block applied to
/// the previous hidden state: `let h1 = (\h. BLOCK) h0 in …`. With shared
/// weight names the layer lambdas are **alpha-equivalent across layers**,
/// which is the structure-sharing showcase (see the `dedup_sharing`
/// example).
pub fn bert_modular(arena: &mut ExprArena, layers: usize) -> NodeId {
    assert!(layers >= 1);
    let heads = 4;
    let dim = 8;
    let ff_dim = 10;

    let mut outer = Anf::new(arena);
    let mut h_prev = outer.dot("emb_w", dim, |anf, i| anf.param(&format!("tok{i}")));
    for _ in 0..layers {
        // Build the layer body as its own ANF chain under a lambda.
        let h_param = outer.arena.fresh("h");
        let mut inner = Anf::new(outer.arena);
        let out_sym = bert_layer(&mut inner, h_param, heads, dim, ff_dim, "");
        let result = inner.var(out_sym);
        let block = inner.finish(result);
        let lam = outer.arena.lam(h_param, block);
        let arg = outer.var(h_prev);
        let applied = outer.arena.app(lam, arg);
        h_prev = outer.bind("h", applied);
    }
    let cls = outer.param("cls_w");
    let hv = outer.var(h_prev);
    let logits = outer.bin("lg", "mul", cls, hv);
    let lv = outer.var(logits);
    let out = outer.un("cl", "tanh", lv);
    let result = outer.var(out);
    outer.finish(result)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lambda_lang::uniquify::check_unique_binders;

    #[test]
    fn sizes_match_the_paper_targets() {
        let mut arena = ExprArena::new();
        let m = mnist_cnn(&mut arena);
        let m_size = arena.subtree_size(m);
        let g = gmm(&mut arena);
        let g_size = arena.subtree_size(g);
        let b = bert(&mut arena, 12);
        let b_size = arena.subtree_size(b);
        println!("mnist={m_size} gmm={g_size} bert12={b_size}");
        // Paper: 840 / 1810 / 12975 — matched exactly.
        assert_eq!(m_size, 840);
        assert_eq!(g_size, 1810);
        assert_eq!(b_size, 12_975);
    }

    #[test]
    fn all_models_have_unique_binders() {
        let mut arena = ExprArena::new();
        let m = mnist_cnn(&mut arena);
        assert!(check_unique_binders(&arena, m).is_ok());
        let g = gmm(&mut arena);
        assert!(check_unique_binders(&arena, g).is_ok());
        let b = bert(&mut arena, 3);
        assert!(check_unique_binders(&arena, b).is_ok());
        let bm = bert_modular(&mut arena, 3);
        assert!(check_unique_binders(&arena, bm).is_ok());
    }

    #[test]
    fn bert_size_is_linear_in_layers() {
        let mut arena = ExprArena::new();
        let sizes: Vec<usize> = (1..=4)
            .map(|l| {
                let b = bert_with(&mut arena, l, 4, 8, 10);
                arena.subtree_size(b)
            })
            .collect();
        let d1 = sizes[1] - sizes[0];
        let d2 = sizes[2] - sizes[1];
        let d3 = sizes[3] - sizes[2];
        assert_eq!(d1, d2);
        assert_eq!(d2, d3);
    }

    #[test]
    fn models_are_deep_let_chains() {
        // The ANF shape: depth comparable to size (each let scopes the
        // rest), which is what drives the paper's Table 2 LN blow-up.
        let mut arena = ExprArena::new();
        let g = gmm(&mut arena);
        let size = arena.subtree_size(g);
        let depth = arena.subtree_depth(g);
        // Each let contributes one level and ~6–7 nodes, so an ANF chain
        // has depth within a small constant of size (a balanced tree of
        // this size would be depth ~11).
        assert!(depth * 8 > size, "not ANF-deep: size={size} depth={depth}");
    }

    #[test]
    fn modular_bert_layers_are_alpha_equivalent_blocks() {
        use alpha_hash::equiv::hash_classes;
        let mut arena = ExprArena::new();
        let b = bert_modular(&mut arena, 4);
        let scheme: alpha_hash::HashScheme<u64> = alpha_hash::HashScheme::new(1);
        let classes = hash_classes(&arena, b, &scheme);
        // The four layer lambdas form one class of size 4.
        let lam_class = classes.iter().find(|c| {
            c.len() == 4
                && matches!(arena.node(c[0]), lambda_lang::ExprNode::Lam(_, _))
                && arena.subtree_size(c[0]) > 100
        });
        assert!(
            lam_class.is_some(),
            "expected 4 alpha-equivalent layer blocks"
        );
    }

    #[test]
    fn models_are_deterministic() {
        let build_hash = || {
            let mut arena = ExprArena::new();
            let g = gmm(&mut arena);
            let scheme: alpha_hash::HashScheme<u64> = alpha_hash::HashScheme::new(2);
            alpha_hash::hash_expr(&arena, g, &scheme)
        };
        assert_eq!(build_hash(), build_hash());
    }
}
