//! Closed arithmetic programs — evaluable workloads for semantics tests.
//!
//! The CSE client (paper §1) must be semantics-preserving; property tests
//! check `eval(e) == eval(cse(e))` on programs from this generator. The
//! programs are closed, total (no division, wrapping integer arithmetic)
//! and deliberately share subexpressions so CSE has something to find.

use lambda_lang::arena::{ExprArena, NodeId};
use lambda_lang::symbol::Symbol;
use rand::Rng;

/// Generates a closed, total arithmetic program of roughly `target_size`
/// nodes: nested `let`s over integer literals, `add`/`sub`/`mul`
/// combinations of literals and let-bound variables, with deliberate
/// repetition of subtrees.
pub fn arithmetic<R: Rng>(arena: &mut ExprArena, target_size: usize, rng: &mut R) -> NodeId {
    let mut scope: Vec<Symbol> = Vec::new();
    let mut lets: Vec<(Symbol, NodeId)> = Vec::new();
    let mut budget = target_size;

    // A chain of lets, each binding a small expression over what is
    // already in scope.
    while budget > 12 {
        let rhs = small_expr(arena, &scope, rng, 3);
        let size = arena.subtree_size(rhs) + 2; // let + later var use
        let sym = arena.fresh("v");
        lets.push((sym, rhs));
        scope.push(sym);
        budget = budget.saturating_sub(size);
    }

    let mut body = small_expr(arena, &scope, rng, 3);
    // Use several bound variables so rewrites are observable.
    for _ in 0..3 {
        if let Some(&sym) = pick(&scope, rng) {
            let v = arena.var(sym);
            body = arena.prim2(op(rng), body, v);
        }
    }
    for (sym, rhs) in lets.into_iter().rev() {
        body = arena.let_(sym, rhs, body);
    }
    body
}

fn pick<'a, T, R: Rng>(items: &'a [T], rng: &mut R) -> Option<&'a T> {
    if items.is_empty() {
        None
    } else {
        Some(&items[rng.random_range(0..items.len())])
    }
}

fn op<R: Rng>(rng: &mut R) -> &'static str {
    ["add", "sub", "mul"][rng.random_range(0..3)]
}

fn small_expr<R: Rng>(
    arena: &mut ExprArena,
    scope: &[Symbol],
    rng: &mut R,
    depth: usize,
) -> NodeId {
    if depth == 0 || rng.random_bool(0.3) {
        return leaf(arena, scope, rng);
    }
    let a = small_expr(arena, scope, rng, depth - 1);
    let b = if rng.random_bool(0.4) {
        // Deliberate duplication: an exact copy of the sibling, so CSE
        // has shared subexpressions to discover. (These subtrees contain
        // no binders, so copying preserves the unique-binder invariant.)
        copy_binderless_subtree(arena, a)
    } else {
        leaf(arena, scope, rng)
    };
    arena.prim2(op(rng), a, b)
}

/// Duplicates a subtree containing no binding forms.
fn copy_binderless_subtree(arena: &mut ExprArena, root: NodeId) -> NodeId {
    use lambda_lang::arena::ExprNode;
    let order = lambda_lang::visit::postorder(arena, root);
    let mut remap: std::collections::HashMap<NodeId, NodeId> =
        std::collections::HashMap::with_capacity(order.len());
    for n in order {
        let new_id = match arena.node(n) {
            ExprNode::Var(s) => arena.var(s),
            ExprNode::Lit(l) => arena.lit(l),
            ExprNode::App(f, a) => {
                let (f2, a2) = (remap[&f], remap[&a]);
                arena.app(f2, a2)
            }
            other => unreachable!("arith subtrees have no binders: {other:?}"),
        };
        remap.insert(n, new_id);
    }
    remap[&root]
}

fn leaf<R: Rng>(arena: &mut ExprArena, scope: &[Symbol], rng: &mut R) -> NodeId {
    if !scope.is_empty() && rng.random_bool(0.6) {
        let sym = *pick(scope, rng).expect("non-empty scope");
        arena.var(sym)
    } else {
        arena.int(rng.random_range(-4..=9))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lambda_lang::eval::eval;
    use lambda_lang::stats::free_vars;
    use lambda_lang::uniquify::check_unique_binders;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn programs_are_closed_unique_and_evaluable() {
        let mut rng = StdRng::seed_from_u64(31);
        for size in [20usize, 50, 150, 400] {
            let mut arena = ExprArena::new();
            let root = arithmetic(&mut arena, size, &mut rng);
            // Free variables are only the arithmetic primitives.
            for (&sym, _) in free_vars(&arena, root).iter() {
                let name = arena.name(sym);
                assert!(
                    matches!(name, "add" | "sub" | "mul"),
                    "unexpected free variable {name}"
                );
            }
            assert!(check_unique_binders(&arena, root).is_ok());
            eval(&arena, root).unwrap_or_else(|e| panic!("size {size}: {e}"));
        }
    }

    #[test]
    fn sizes_are_in_the_requested_ballpark() {
        let mut rng = StdRng::seed_from_u64(32);
        let mut arena = ExprArena::new();
        let root = arithmetic(&mut arena, 300, &mut rng);
        let n = arena.subtree_size(root);
        assert!((100..=700).contains(&n), "size {n}");
    }

    #[test]
    fn contains_shared_subexpressions_often() {
        use alpha_hash::equiv::hash_classes;
        let mut rng = StdRng::seed_from_u64(33);
        let mut found_sharing = 0;
        for _ in 0..10 {
            let mut arena = ExprArena::new();
            let root = arithmetic(&mut arena, 200, &mut rng);
            let scheme: alpha_hash::HashScheme<u64> = alpha_hash::HashScheme::new(1);
            let classes = hash_classes(&arena, root, &scheme);
            if classes
                .iter()
                .any(|c| c.len() >= 2 && arena.subtree_size(c[0]) >= 4)
            {
                found_sharing += 1;
            }
        }
        assert!(
            found_sharing >= 5,
            "only {found_sharing}/10 programs had sharing"
        );
    }
}
