//! Adversarial expression pairs (paper Appendix B.1).
//!
//! "We start with two small non-alpha-equivalent expressions with no free
//! variables:
//!
//! ```text
//! e1 = \x. x (x x)
//! e2 = \x. (x x) x
//! ```
//!
//! Then, until the right expression size is reached, we transform the
//! expressions by wrapping both of them in either a `Lam` or an `App`
//! node" — a pair of highly unbalanced expressions differing only at the
//! very bottom. A hash collision between the seeds propagates all the way
//! to the roots, because both sides are extended identically; this is the
//! construction that stresses Theorem 6.7's bound in Figure 4.

use lambda_lang::arena::{ExprArena, NodeId};
use lambda_lang::symbol::Symbol;
use rand::Rng;

/// Builds `\x. x (x x)` — seed `e1`.
pub fn seed_e1(arena: &mut ExprArena) -> NodeId {
    let x = arena.fresh("x");
    let v1 = arena.var(x);
    let v2 = arena.var(x);
    let v3 = arena.var(x);
    let inner = arena.app(v2, v3);
    let body = arena.app(v1, inner);
    arena.lam(x, body)
}

/// Builds `\x. (x x) x` — seed `e2`, not alpha-equivalent to `e1`.
pub fn seed_e2(arena: &mut ExprArena) -> NodeId {
    let x = arena.fresh("x");
    let v1 = arena.var(x);
    let v2 = arena.var(x);
    let v3 = arena.var(x);
    let inner = arena.app(v1, v2);
    let body = arena.app(inner, v3);
    arena.lam(x, body)
}

/// Generates an adversarial pair of expressions, each with exactly
/// `size` nodes (`size ≥ 6`, the seed size), wrapped identically by a
/// random `Lam`/`App` spine.
///
/// The two expressions are never alpha-equivalent, but they are
/// *structurally* as close as possible, maximising the chance that a
/// low-level hash collision survives to the root.
///
/// # Panics
///
/// Panics if `size < 6`.
pub fn adversarial_pair<R: Rng>(
    arena: &mut ExprArena,
    size: usize,
    rng: &mut R,
) -> (NodeId, NodeId) {
    assert!(size >= 6, "adversarial seeds have 6 nodes");

    // Plan the shared wrapper spine top-down (budget excludes the seeds).
    enum Step {
        Lam,
        /// `App(spine, leaf)` — the leaf's scope index is recorded in
        /// `scope_picks` so both sides pick the *same* binder position.
        App,
    }
    let mut steps: Vec<Step> = Vec::new();
    let mut scope_len = 0usize;
    let mut scope_picks: Vec<usize> = Vec::new(); // index choices, reused on both sides
    let mut remaining = size - 6;
    while remaining > 0 {
        let can_app = remaining >= 2 && scope_len > 0;
        let make_lam = if !can_app { true } else { rng.random_bool(0.5) };
        if make_lam {
            steps.push(Step::Lam);
            scope_len += 1;
            remaining -= 1;
        } else {
            scope_picks.push(rng.random_range(0..scope_len));
            steps.push(Step::App);
            remaining -= 2;
        }
    }

    // Materialise both sides with *matching* binder structure. Each side
    // gets its own fresh binder names (binders must be unique within each
    // expression), but the index choices for leaves are shared, so the
    // two wrappers are alpha-equivalent by construction.
    let build = |arena: &mut ExprArena, seed_root: NodeId, rng_tag: &str| -> NodeId {
        let mut scope: Vec<Symbol> = Vec::new();
        let mut pick_cursor = 0usize;
        // Walk the plan top-down to allocate binders/leaf choices...
        let mut concrete: Vec<(bool, Option<Symbol>)> = Vec::new();
        for step in &steps {
            match step {
                Step::Lam => {
                    let sym = arena.fresh(&format!("a{rng_tag}"));
                    scope.push(sym);
                    concrete.push((true, Some(sym)));
                }
                Step::App => {
                    let pick = scope[scope_picks[pick_cursor]];
                    pick_cursor += 1;
                    concrete.push((false, Some(pick)));
                }
            }
        }
        // ...then build bottom-up.
        let mut expr = seed_root;
        for (is_lam, sym) in concrete.into_iter().rev() {
            expr = if is_lam {
                arena.lam(sym.expect("binder"), expr)
            } else {
                let leaf = arena.var(sym.expect("leaf"));
                arena.app(expr, leaf)
            };
        }
        expr
    };

    let s1 = seed_e1(arena);
    let s2 = seed_e2(arena);
    let e1 = build(arena, s1, "l");
    let e2 = build(arena, s2, "r");
    (e1, e2)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lambda_lang::alpha::alpha_eq;
    use lambda_lang::uniquify::check_unique_binders;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn seeds_are_size_6_and_inequivalent() {
        let mut arena = ExprArena::new();
        let e1 = seed_e1(&mut arena);
        let e2 = seed_e2(&mut arena);
        assert_eq!(arena.subtree_size(e1), 6);
        assert_eq!(arena.subtree_size(e2), 6);
        assert!(!alpha_eq(&arena, e1, &arena, e2));
    }

    #[test]
    fn pair_hits_exact_size_and_stays_inequivalent() {
        let mut rng = StdRng::seed_from_u64(7);
        for size in [6, 7, 8, 16, 128, 1024] {
            let mut arena = ExprArena::new();
            let (e1, e2) = adversarial_pair(&mut arena, size, &mut rng);
            assert_eq!(arena.subtree_size(e1), size);
            assert_eq!(arena.subtree_size(e2), size);
            assert!(!alpha_eq(&arena, e1, &arena, e2), "size {size}");
            assert!(check_unique_binders(&arena, e1).is_ok());
            assert!(check_unique_binders(&arena, e2).is_ok());
        }
    }

    #[test]
    fn wrappers_are_alpha_equivalent_shells() {
        // Replacing both seeds by the SAME seed must give alpha-equivalent
        // expressions: the wrapper spines match.
        let mut rng = StdRng::seed_from_u64(8);
        let mut arena = ExprArena::new();
        let (e1, e2) = adversarial_pair(&mut arena, 64, &mut rng);
        // Full-width hashes differ (they must: not alpha-equivalent).
        let scheme: alpha_hash::HashScheme<u128> = alpha_hash::HashScheme::new(1);
        assert_ne!(
            alpha_hash::hash_expr(&arena, e1, &scheme),
            alpha_hash::hash_expr(&arena, e2, &scheme)
        );
    }

    #[test]
    fn sixteen_bit_hashes_collide_eventually() {
        // The whole point of the construction: at b=16, some seed finds a
        // colliding pair within a modest number of trials.
        let mut rng = StdRng::seed_from_u64(9);
        let mut collisions: u64 = 0;
        let trials: u64 = 3000;
        for i in 0..trials {
            let mut arena = ExprArena::new();
            let (e1, e2) = adversarial_pair(&mut arena, 128, &mut rng);
            let scheme: alpha_hash::HashScheme<u16> = alpha_hash::HashScheme::new(i);
            if alpha_hash::hash_expr(&arena, e1, &scheme)
                == alpha_hash::hash_expr(&arena, e2, &scheme)
            {
                collisions += 1;
            }
        }
        // Expected ≥ trials/2^16 ≈ 0.05 for a perfect hash; adversarial
        // pairs should collide more often, but even a perfect hash can
        // have 0 here. We only check the machinery doesn't blow up and
        // collisions are not absurdly frequent.
        assert!(
            collisions < trials / 10,
            "suspiciously many collisions: {collisions}"
        );
    }
}
