//! Wide **open**-term spines: the regime where e-summary var-maps stay
//! wide for the whole traversal.
//!
//! The paper's synthetic families ([`crate::random_terms`]) are closed:
//! every variable occurrence is bound nearby, so the live var-map stays
//! narrow and the flat map tiers win on constants. Context-sensitive
//! corpora are the opposite — terms carry dozens-to-thousands of free
//! variables hashed by shared-context position (Blaauwbroek–Olšák–
//! Geuvers, arXiv 2401.02948), so the map under the summariser's merges
//! *sustains* a large width. That is exactly the regime where a
//! sorted-Vec spill pays O(width) per merge step (the documented
//! worst-case Θ(n·width) wall-time cliff) and the persistent-tree tier
//! restores O(log width).
//!
//! [`wide_open_spine`] builds that workload directly: an application
//! spine over *fresh free* variables, interleaving one `Lam` binding an
//! existing free variable for each fresh one introduced once the target
//! width is reached, so the live width climbs to `width` and then stays
//! there for the rest of the spine. The result is an open term — the
//! variables still live at the root are genuinely free.

use lambda_lang::arena::{ExprArena, NodeId};
use lambda_lang::symbol::Symbol;
use rand::Rng;

/// Builds an open application spine with exactly `size` nodes whose live
/// free-variable width climbs to `width` and is then sustained until the
/// root. Binders introduced by the interleaved `Lam` steps are distinct
/// by construction (each binds a variable that occurs exactly once), so
/// the term satisfies the §2.2 distinct-binders precondition.
///
/// `width == usize::MAX` (or any width the budget never reaches) gives
/// the unsustained variant: every step introduces a fresh free variable
/// and the width grows linearly with the spine — the Θ(n²) shape for the
/// flat tiers.
///
/// # Panics
///
/// Panics if `size == 0` or `width == 0`.
pub fn wide_open_spine<R: Rng>(
    arena: &mut ExprArena,
    size: usize,
    width: usize,
    rng: &mut R,
) -> NodeId {
    assert!(size > 0, "size must be positive");
    assert!(width > 0, "width must be positive");

    // Variables currently free in the spine built so far. Leaf symbols
    // are globally fresh, so a later Lam over one of them never captures
    // anything else.
    let mut live: Vec<Symbol> = Vec::new();
    let mut counter = 0usize;
    let mut fresh = |arena: &mut ExprArena| {
        counter += 1;
        arena.intern(&format!("w{counter}_{}", arena.len()))
    };

    // Innermost leaf: the first free variable.
    let first = fresh(arena);
    live.push(first);
    let mut expr = arena.var(first);
    let mut remaining = size - 1;

    while remaining > 0 {
        // Sustain: once at (or above) the target width, spend one node
        // binding a random live variable before widening again. Also the
        // only legal move when the budget cannot fit an App + leaf.
        if (live.len() >= width || remaining < 2) && !live.is_empty() {
            let pick = rng.random_range(0..live.len());
            let sym = live.swap_remove(pick);
            expr = arena.lam(sym, expr);
            remaining -= 1;
            continue;
        }
        // Widen: apply the spine to a fresh free variable (2 nodes).
        let sym = fresh(arena);
        live.push(sym);
        let leaf = arena.var(sym);
        expr = arena.app(expr, leaf);
        remaining -= 2;
    }
    expr
}

#[cfg(test)]
mod tests {
    use super::*;
    use lambda_lang::stats::free_vars;
    use lambda_lang::uniquify::check_unique_binders;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn hits_exact_size_and_stays_open() {
        let mut rng = StdRng::seed_from_u64(1);
        for (size, width) in [(1, 1), (2, 4), (3, 4), (64, 8), (1_001, 64), (10_000, 64)] {
            let mut arena = ExprArena::new();
            let root = wide_open_spine(&mut arena, size, width, &mut rng);
            assert_eq!(arena.subtree_size(root), size, "size {size} width {width}");
            assert!(check_unique_binders(&arena, root).is_ok());
            if size > 2 * width {
                let free = free_vars(&arena, root);
                assert!(
                    !free.is_empty(),
                    "sustained spines stay open (size {size} width {width})"
                );
            }
        }
    }

    #[test]
    fn sustains_the_requested_width() {
        // The summariser's own accounting is the ground truth for how
        // wide the live maps actually got: with sustained width W, each
        // App joins a 1-entry map into a ~W-entry map, so the peak map
        // length the hasher reports must reach W.
        let mut rng = StdRng::seed_from_u64(2);
        let mut arena = ExprArena::new();
        let width = 64;
        let root = wide_open_spine(&mut arena, 10_000, width, &mut rng);
        let scheme: alpha_hash::HashScheme<u64> = alpha_hash::HashScheme::new(7);
        let mut s = alpha_hash::hashed::HashedSummariser::new(&arena, &scheme);
        let summary = s.summarise(&arena, root);
        assert!(
            summary.varmap.len() + width <= 10_000,
            "sanity: most fresh vars were bound along the spine"
        );
        // The root still sees a wide-open map.
        assert!(
            summary.varmap.len() >= width / 2,
            "root map width {} should be near the sustained width {width}",
            summary.varmap.len()
        );
    }

    #[test]
    fn unsustained_width_grows_with_the_spine() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut arena = ExprArena::new();
        let root = wide_open_spine(&mut arena, 5_000, usize::MAX, &mut rng);
        let free = free_vars(&arena, root);
        assert!(
            free.len() >= 2_000,
            "linear-width spine: {} free vars",
            free.len()
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let hash_of = |seed: u64| {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut arena = ExprArena::new();
            let root = wide_open_spine(&mut arena, 2_000, 32, &mut rng);
            let scheme: alpha_hash::HashScheme<u64> = alpha_hash::HashScheme::new(1);
            alpha_hash::hash_expr(&arena, root, &scheme)
        };
        assert_eq!(hash_of(9), hash_of(9));
        assert_ne!(hash_of(9), hash_of(10));
    }
}
