//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment for this workspace has no network access, so the
//! real `rand` cannot be fetched. This vendored micro-crate implements the
//! exact 0.9-style API subset the workspace uses — [`Rng::random`],
//! [`Rng::random_bool`], [`Rng::random_range`], [`SeedableRng::seed_from_u64`]
//! and [`rngs::StdRng`] — on top of a splitmix64 generator.
//!
//! The generator is deterministic per seed (all workspace tests and
//! benchmarks seed explicitly), statistically strong enough for test-input
//! generation, and **not** cryptographically secure. Swap this path
//! dependency back to crates.io `rand` when network access is available;
//! no call sites need to change.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// The splitmix64 finaliser: a strong 64-bit mixing function.
#[inline]
fn splitmix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Core random-number source: everything derives from `next_u64`.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits (high half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Rngs that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed. Equal seeds give equal
    /// streams.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from an `Rng` (the stand-in for
/// rand's `StandardUniform` distribution).
pub trait UniformSample: Sized {
    /// Draws one uniformly distributed value.
    fn uniform_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl UniformSample for $t {
            #[inline]
            fn uniform_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl UniformSample for u128 {
    #[inline]
    fn uniform_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl UniformSample for bool {
    #[inline]
    fn uniform_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl UniformSample for f64 {
    #[inline]
    fn uniform_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Integer types uniform ranges can be sampled over (the stand-in for
/// rand's `SampleUniform`). The single generic range impl below keeps type
/// inference identical to real rand: `items[rng.random_range(0..n)]`
/// resolves the literal to `usize` via the indexing context.
pub trait SampleUniform: Copy + PartialOrd {
    /// Widens to `i128` (lossless for every implementor).
    fn to_i128(self) -> i128;
    /// Narrows from `i128` (caller guarantees the value is in range).
    fn from_i128(v: i128) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn to_i128(self) -> i128 {
                self as i128
            }
            #[inline]
            fn from_i128(v: i128) -> Self {
                v as $t
            }
        }
    )*};
}
impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges a value can be drawn from uniformly.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample from empty range");
        let span = (self.end.to_i128() - self.start.to_i128()) as u128;
        T::from_i128(self.start.to_i128() + (rng.next_u64() as u128 % span) as i128)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample from empty range");
        let span = (hi.to_i128() - lo.to_i128() + 1) as u128;
        T::from_i128(lo.to_i128() + (rng.next_u64() as u128 % span) as i128)
    }
}

/// Convenience sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// A uniformly random value of type `T`.
    fn random<T: UniformSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::uniform_sample(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "p={p} is not a probability");
        f64::uniform_sample(self) < p
    }

    /// A uniformly random value from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn random_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named generators.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// The workspace's standard generator: splitmix64 over a 64-bit state.
    ///
    /// Unlike the real `rand::rngs::StdRng` (ChaCha12) this is **not**
    /// cryptographically secure; it is deterministic, fast and uniform,
    /// which is all the test and benchmark workloads need.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            splitmix64(self.state)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // Pre-mix so that small consecutive seeds give unrelated streams.
            StdRng {
                state: splitmix64(seed ^ 0xA076_1D64_78BD_642F),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.random::<u64>(), c.random::<u64>());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = rng.random_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = rng.random_range(5usize..=5);
            assert_eq!(y, 5);
            let z = rng.random_range(-4i64..=4);
            assert!((-4..=4).contains(&z));
        }
    }

    #[test]
    fn bool_probability_roughly_respected() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| rng.random_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "{hits}");
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = StdRng::seed_from_u64(3);
        let _ = rng.random_range(5usize..5);
    }
}
