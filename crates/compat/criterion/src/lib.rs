//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! The build environment has no network access, so this vendored
//! micro-crate implements the API subset the workspace's benches use:
//! [`Criterion::benchmark_group`], group configuration
//! (`sample_size`/`measurement_time`/`warm_up_time`), [`BenchmarkId`],
//! `bench_with_input`/`bench_function`, [`Bencher::iter`], and the
//! [`criterion_group!`]/[`criterion_main!`] macros.
//!
//! Instead of criterion's statistical analysis and HTML reports, each
//! benchmark warms up for `warm_up_time`, then repeats the measured
//! closure until `measurement_time` elapses (or an iteration cap is hit)
//! and prints the mean wall-clock time per iteration. That is enough to
//! compare algorithms and spot regressions by eye; swap the path
//! dependency back to crates.io `criterion` for publication-grade numbers.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::fmt;
use std::time::{Duration, Instant};

/// Prevents the optimiser from discarding a value (forwarder to
/// [`std::hint::black_box`]).
#[inline]
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifies one benchmark within a group: a function name plus a
/// parameter rendered into the report line.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    name: String,
    parameter: Option<String>,
}

impl BenchmarkId {
    /// An id for `function_name` at `parameter`.
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            name: function_name.into(),
            parameter: Some(parameter.to_string()),
        }
    }

    /// An id carrying only a parameter (the group supplies the name).
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            name: String::new(),
            parameter: Some(parameter.to_string()),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.parameter {
            Some(p) if self.name.is_empty() => write!(f, "{p}"),
            Some(p) => write!(f, "{}/{}", self.name, p),
            None => write!(f, "{}", self.name),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        BenchmarkId {
            name: name.to_owned(),
            parameter: None,
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> Self {
        BenchmarkId {
            name,
            parameter: None,
        }
    }
}

/// Runs the measured closure and accumulates timing.
pub struct Bencher {
    warm_up: Duration,
    measurement: Duration,
    max_iters: u64,
    /// Filled in by [`Bencher::iter`]: (total time, iterations).
    result: Option<(Duration, u64)>,
}

impl Bencher {
    /// Times `routine`, first warming up, then measuring until the
    /// measurement budget elapses.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: at least one run, until the warm-up budget is spent.
        let warm_start = Instant::now();
        loop {
            black_box(routine());
            if warm_start.elapsed() >= self.warm_up {
                break;
            }
        }
        // Measurement.
        let mut iters: u64 = 0;
        let start = Instant::now();
        let total = loop {
            black_box(routine());
            iters += 1;
            let elapsed = start.elapsed();
            if elapsed >= self.measurement || iters >= self.max_iters {
                break elapsed;
            }
        };
        self.result = Some((total, iters));
    }
}

fn format_duration(d: Duration) -> String {
    let ns = d.as_secs_f64() * 1e9;
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

/// A named collection of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'c> {
    _criterion: &'c mut Criterion,
    name: String,
    sample_size: usize,
    measurement: Duration,
    warm_up: Duration,
}

impl BenchmarkGroup<'_> {
    /// Sets the nominal sample count (used here only to cap iterations).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Sets the measurement budget per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement = d;
        self
    }

    /// Sets the warm-up budget per benchmark.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up = d;
        self
    }

    /// Benchmarks `routine`, passing it `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut routine: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher {
            warm_up: self.warm_up,
            measurement: self.measurement,
            max_iters: (self.sample_size as u64).saturating_mul(10_000).max(1),
            result: None,
        };
        routine(&mut bencher, input);
        self.report(&id, &bencher);
        self
    }

    /// Benchmarks `routine` with no explicit input.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        self.bench_with_input(id, &(), move |b, _| routine(b))
    }

    fn report(&self, id: &BenchmarkId, bencher: &Bencher) {
        match bencher.result {
            Some((total, iters)) if iters > 0 => {
                let per_iter = total / u32::try_from(iters).unwrap_or(u32::MAX).max(1);
                println!(
                    "{}/{id}  time: {}  ({iters} iterations)",
                    self.name,
                    format_duration(per_iter),
                );
            }
            _ => println!("{}/{id}  (no measurement taken)", self.name),
        }
    }

    /// Ends the group (reporting already happened per-benchmark).
    pub fn finish(self) {}
}

/// Entry point mirroring `criterion::Criterion`.
pub struct Criterion {
    /// Substring filter from argv (first free argument), as `cargo bench x`
    /// passes it; benchmarks whose group name does not contain the filter
    /// are still run by this stand-in (filtering is a nicety we skip), but
    /// the field is kept so the constructor parses argv compatibly.
    _filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        let filter = std::env::args()
            .skip(1)
            .find(|a| !a.starts_with('-') && !a.ends_with(std::env::consts::EXE_SUFFIX));
        Criterion { _filter: filter }
    }
}

impl Criterion {
    /// Starts a benchmark group named `name`.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size: 100,
            measurement: Duration::from_secs(1),
            warm_up: Duration::from_millis(200),
        }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function<F>(&mut self, name: &str, routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut group = self.benchmark_group(name.to_owned());
        group.bench_function(BenchmarkId::from(""), routine);
        group.finish();
        self
    }
}

/// Bundles benchmark functions into one group runner, as in real criterion:
/// `criterion_group!(name, bench_fn_a, bench_fn_b);`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generates `main` running the given groups:
/// `criterion_main!(group_a, group_b);`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_and_reports() {
        let mut criterion = Criterion::default();
        let mut group = criterion.benchmark_group("smoke");
        group
            .sample_size(10)
            .measurement_time(Duration::from_millis(20))
            .warm_up_time(Duration::from_millis(1));
        let mut observed = 0u64;
        group.bench_with_input(BenchmarkId::new("sum", 1000), &1000u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>());
            observed += 1;
        });
        group.finish();
        assert_eq!(observed, 1);
    }

    #[test]
    fn id_formats() {
        assert_eq!(BenchmarkId::new("alg", 42).to_string(), "alg/42");
        assert_eq!(BenchmarkId::from_parameter(7).to_string(), "7");
        assert_eq!(BenchmarkId::from("plain").to_string(), "plain");
    }
}
