//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! crate.
//!
//! The build environment has no network access, so this vendored
//! micro-crate implements the API subset the workspace's property tests
//! use: the [`proptest!`] macro (with `#![proptest_config(..)]`),
//! [`strategy::Strategy`] with `prop_map`, [`arbitrary::any`], integer-range
//! and tuple strategies, [`collection::vec`] / [`collection::btree_map`],
//! [`prop_oneof!`], and the `prop_assert*` macros.
//!
//! Differences from real proptest, deliberately accepted for a test-only
//! shim:
//!
//! * **No shrinking** — a failing case reports its generated inputs but is
//!   not minimised.
//! * **Deterministic seeding** — case `i` of test `t` always sees the same
//!   inputs, derived from `fnv(module::t) ^ mix(i)`, so failures reproduce
//!   across runs without a persistence file.
//!
//! Swap the path dependency back to crates.io `proptest` when network
//! access is available; call sites need no changes.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

/// Test-runner plumbing: configuration, error type, deterministic RNG.
pub mod test_runner {
    use std::fmt;

    /// Per-test configuration. Only `cases` is honoured by this stand-in.
    #[derive(Clone, Debug)]
    pub struct Config {
        /// Number of random cases to run per test.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` random cases.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            // Real proptest defaults to 256; 64 keeps the offline test
            // suite fast while still exercising varied inputs.
            Config { cases: 64 }
        }
    }

    /// A failed property within one generated case.
    #[derive(Debug)]
    pub struct TestCaseError(String);

    impl TestCaseError {
        /// A failure carrying `message`.
        pub fn fail(message: impl Into<String>) -> Self {
            TestCaseError(message.into())
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.0)
        }
    }

    /// Deterministic generator driving all strategies (splitmix64).
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// A generator with the given seed.
        pub fn new(seed: u64) -> Self {
            TestRng {
                state: seed ^ 0x6C62_272E_07BB_0142,
            }
        }

        /// The next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// A uniform value in `[0, bound)`.
        ///
        /// # Panics
        ///
        /// Panics if `bound == 0`.
        pub fn below(&mut self, bound: u64) -> u64 {
            assert!(bound > 0, "below(0)");
            self.next_u64() % bound
        }
    }

    /// FNV-1a, used to derive per-test seeds from the test's name.
    pub fn fnv1a(s: &str) -> u64 {
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        for b in s.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h
    }
}

/// The [`Strategy`](strategy::Strategy) trait and combinators.
pub mod strategy {
    use crate::test_runner::TestRng;
    use std::fmt::Debug;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The type of generated values.
        type Value: Debug;

        /// Generates one value.
        fn new_value(&self, rng: &mut TestRng) -> Self::Value;

        /// A strategy applying `f` to every generated value.
        fn prop_map<O: Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn new_value(&self, rng: &mut TestRng) -> Self::Value {
            (**self).new_value(rng)
        }
    }

    impl<T: Debug> Strategy for Box<dyn Strategy<Value = T>> {
        type Value = T;
        fn new_value(&self, rng: &mut TestRng) -> T {
            (**self).new_value(rng)
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Clone, Debug)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O: Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn new_value(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.new_value(rng))
        }
    }

    /// Uniform choice between alternative strategies (built by
    /// [`prop_oneof!`](crate::prop_oneof)).
    pub struct Union<T> {
        arms: Vec<Box<dyn Strategy<Value = T>>>,
    }

    impl<T: Debug> Union<T> {
        /// A union of the given arms.
        ///
        /// # Panics
        ///
        /// Panics if `arms` is empty.
        pub fn new(arms: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<T: Debug> Strategy for Union<T> {
        type Value = T;
        fn new_value(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.arms.len() as u64) as usize;
            self.arms[i].new_value(rng)
        }
    }

    /// `Just`-style constant strategy (for completeness).
    #[derive(Clone, Debug)]
    pub struct Just<T>(pub T);

    impl<T: Clone + Debug> Strategy for Just<T> {
        type Value = T;
        fn new_value(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128 + 1) as u128;
                    (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.new_value(rng),)+)
                }
            }
        };
    }
    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
}

/// `any::<T>()` and the [`Arbitrary`](arbitrary::Arbitrary) trait.
pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::fmt::Debug;
    use std::marker::PhantomData;

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized + Debug {
        /// Generates one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for u128 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
        }
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    /// The strategy returned by [`any`].
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn new_value(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// A strategy producing arbitrary values of `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

/// Collection strategies.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::collections::BTreeMap;
    use std::ops::{Range, RangeInclusive};

    /// A range of collection sizes, inclusive of `lo`, exclusive of `hi`.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl SizeRange {
        fn pick(self, rng: &mut TestRng) -> usize {
            if self.hi <= self.lo + 1 {
                self.lo
            } else {
                self.lo + rng.below((self.hi - self.lo) as u64) as usize
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: r.end().saturating_add(1),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    /// See [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Self::Value {
            let len = self.size.pick(rng);
            (0..len).map(|_| self.element.new_value(rng)).collect()
        }
    }

    /// A strategy for `Vec`s whose length lies in `size` and whose elements
    /// come from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`btree_map`].
    pub struct BTreeMapStrategy<K, V> {
        keys: K,
        values: V,
        size: SizeRange,
    }

    impl<K, V> Strategy for BTreeMapStrategy<K, V>
    where
        K: Strategy,
        K::Value: Ord,
        V: Strategy,
    {
        type Value = BTreeMap<K::Value, V::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Self::Value {
            let len = self.size.pick(rng);
            (0..len)
                .map(|_| (self.keys.new_value(rng), self.values.new_value(rng)))
                .collect()
        }
    }

    /// A strategy for `BTreeMap`s with up to `size` entries (duplicate keys
    /// collapse, exactly as in real proptest).
    pub fn btree_map<K, V>(keys: K, values: V, size: impl Into<SizeRange>) -> BTreeMapStrategy<K, V>
    where
        K: Strategy,
        K::Value: Ord,
        V: Strategy,
    {
        BTreeMapStrategy {
            keys,
            values,
            size: size.into(),
        }
    }
}

/// The common imports: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{Config as ProptestConfig, TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Defines property tests.
///
/// In test code each function carries `#[test]` as usual; the doctest
/// below omits it (and calls the function directly) only because doctests
/// cannot run nested test items.
///
/// ```
/// use proptest::prelude::*;
///
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(32))]
///
///     fn addition_commutes(a in 0u32..1000, b in 0u32..1000) {
///         prop_assert_eq!(a + b, b + a);
///     }
/// }
/// addition_commutes();
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! { $crate::test_runner::Config::default(); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    ($cfg:expr; $($(#[$meta:meta])* fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            // The closure-call is the `?`-free early-return mechanism the
            // prop_assert* macros rely on.
            #[allow(clippy::redundant_closure_call)]
            fn $name() {
                let config: $crate::test_runner::Config = $cfg;
                let test_seed = $crate::test_runner::fnv1a(concat!(
                    module_path!(), "::", stringify!($name)
                ));
                for case in 0..config.cases {
                    let mut __proptest_rng = $crate::test_runner::TestRng::new(
                        test_seed ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                    );
                    let mut __proptest_inputs: ::std::vec::Vec<::std::string::String> =
                        ::std::vec::Vec::new();
                    $(
                        let __proptest_value = $crate::strategy::Strategy::new_value(
                            &($strat),
                            &mut __proptest_rng,
                        );
                        __proptest_inputs.push(::std::format!(
                            "{} = {:?}", stringify!($arg), __proptest_value
                        ));
                        let $arg = __proptest_value;
                    )+
                    let __proptest_result = (move ||
                        -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    if let ::std::result::Result::Err(err) = __proptest_result {
                        ::std::panic!(
                            "proptest case {case}/{total} failed: {err}\n  inputs: {inputs}",
                            case = case,
                            total = config.cases,
                            err = err,
                            inputs = __proptest_inputs.join(", "),
                        );
                    }
                }
            }
        )*
    };
}

/// Asserts a condition inside a [`proptest!`] body, failing the current
/// case (with its inputs reported) instead of panicking directly.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(::std::format!($($fmt)+)),
            );
        }
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), left, right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(left == right, $($fmt)+);
    }};
}

/// Asserts inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left != right,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            left
        );
    }};
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $(::std::boxed::Box::new($strat)
                as ::std::boxed::Box<dyn $crate::strategy::Strategy<Value = _>>),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(40))]

        #[test]
        fn ranges_in_bounds(x in 10usize..20, y in -5i64..=5) {
            prop_assert!((10..20).contains(&x));
            prop_assert!((-5..=5).contains(&y));
        }

        #[test]
        fn tuples_and_maps(pair in (any::<u8>(), 0u16..100)) {
            let (a, b) = pair;
            prop_assert!(b < 100);
            prop_assert_eq!(a as u16 + b, b + a as u16);
        }

        #[test]
        fn collections_sized(v in crate::collection::vec(any::<u8>(), 0..10),
                             m in crate::collection::btree_map(any::<u8>(), any::<u16>(), 0..5)) {
            prop_assert!(v.len() < 10);
            prop_assert!(m.len() < 5);
        }

        #[test]
        fn oneof_and_map(op in prop_oneof![
            (any::<u8>()).prop_map(|x| (false, x)),
            (any::<u8>()).prop_map(|x| (true, x)),
        ]) {
            let (_flag, _x) = op;
        }
    }

    #[test]
    fn failing_property_reports_inputs() {
        // A deliberately failing proptest body, run by hand.
        let result = std::panic::catch_unwind(|| {
            proptest! {
                fn always_fails(x in 0u8..10) {
                    prop_assert!(x > 100, "x was {}", x);
                }
            }
            always_fails();
        });
        let message = *result.unwrap_err().downcast::<String>().unwrap();
        assert!(message.contains("inputs:"), "{message}");
        assert!(message.contains("x ="), "{message}");
    }
}
