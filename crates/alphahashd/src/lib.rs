//! # alphahashd
//!
//! The **network daemon front door** for the
//! [`alpha-store`](alpha_store): a long-lived TCP server that turns the
//! in-process store library into shared infrastructure many client
//! processes can feed at once — the deployment shape the ROADMAP's
//! production north star (and the paper's compiler/CSE service framing)
//! calls for.
//!
//! Three pieces, one crate:
//!
//! * [`wire`] — the versioned, length-framed, CRC-checked binary
//!   protocol (hand-rolled over `std::io`, like the persistence format;
//!   no tokio, no serde). Byte-level spec in `docs/PROTOCOL.md`, kept
//!   honest by a spec-grep test.
//! * [`server`] — [`server::Daemon`]: a `TcpListener` accept
//!   loop, thread-per-connection handlers, and a **batching ingest
//!   pipeline** — bounded channels into accumulator workers that
//!   coalesce terms under size/latency watermarks and feed
//!   [`try_insert_batch`](alpha_store::AlphaStore::try_insert_batch),
//!   so many small clients get batched-ingest throughput. Read ops keep
//!   serving while a degraded store refuses ingest with typed errors;
//!   graceful shutdown drains, checkpoints the WAL, and releases the
//!   directory lock so the next open is a clean reopen.
//! * [`client`] — [`client::Client`], the blocking,
//!   reconnect-aware client library the `alphahash serve`/`client` CLI
//!   subcommands are built on.
//!
//! ## Quick start
//!
//! ```
//! use std::sync::Arc;
//! use alpha_store::AlphaStore;
//! use alphahashd::server::{Daemon, DaemonConfig};
//! use alphahashd::client::Client;
//! use lambda_lang::{parse, ExprArena};
//!
//! let store: Arc<AlphaStore<u64>> = Arc::new(AlphaStore::default());
//! let daemon = Daemon::spawn(store, DaemonConfig::default())?;
//! let mut client = Client::connect(daemon.local_addr().to_string())?;
//!
//! let mut arena = ExprArena::new();
//! let a = parse(&mut arena, r"\x. x + 1").unwrap();
//! let b = parse(&mut arena, r"\y. y + 1").unwrap();
//! let first = client.insert(&arena, a)?;
//! let second = client.insert(&arena, b)?; // alpha-equivalent: same class
//! assert_eq!(first.class, second.class);
//! assert!(first.fresh && !second.fresh);
//!
//! client.shutdown()?;
//! daemon.join();
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![deny(missing_docs)]
// Unsafe is confined to the one `signal(2)` declaration in `signal`;
// everything else is checked Rust (`forbid` would not allow even that
// module-scoped exception).
#![deny(unsafe_code)]

pub mod client;
pub(crate) mod ingest;
pub mod server;
pub mod signal;
pub mod wire;

pub use client::{Client, ClientError};
pub use server::{Daemon, DaemonConfig};
pub use wire::{RemoteOutcome, RemoteStats, ServerHello, WireError};
