//! The blocking, reconnect-aware client for `alphahashd`.
//!
//! One [`Client`] owns at most one TCP connection and re-establishes it
//! lazily: the first operation after a connection loss redials and
//! re-handshakes. Read-side operations (`lookup`, `contains`, `stats`,
//! `metrics_prometheus`) additionally retry once after a transport
//! error, because they are safe to repeat; ingest operations are
//! at-most-once per call — a transport error surfaces to the caller,
//! who decides whether re-inserting (idempotent at the class level) is
//! what they want.

use std::net::TcpStream;
use std::time::Duration;

use lambda_lang::{ExprArena, NodeId};

use crate::wire::{self, RemoteOutcome, RemoteStats, ServerHello, WireError};

/// How many terms ride in one streamed batch chunk by default — matches
/// the daemon's default flush watermark so one chunk fills one store
/// batch.
pub const DEFAULT_CHUNK_TERMS: usize = 512;

/// What a client operation can fail with.
#[derive(Debug)]
pub enum ClientError {
    /// The connection failed (dial, read, write, or mid-frame close).
    /// The client will redial on the next operation.
    Io(std::io::Error),
    /// The server sent bytes that violate the protocol.
    Protocol(String),
    /// The server answered with a typed error response.
    Remote {
        /// Stable wire error code (see `docs/PROTOCOL.md`).
        code: u8,
        /// The server's human-readable description.
        message: String,
    },
}

impl ClientError {
    /// Whether this is the server's typed "store is read-only" refusal
    /// ([`wire::ERR_READ_ONLY`]) — the error ingest gets while reads
    /// keep serving, until a checkpoint heals the store.
    pub fn is_read_only(&self) -> bool {
        matches!(self, ClientError::Remote { code, .. } if *code == wire::ERR_READ_ONLY)
    }

    /// Whether this is the server's typed "invalid rewrite" refusal
    /// ([`wire::ERR_INVALID_REWRITE`]) — the update was rejected before
    /// any state changed (unknown term, bad path, or a replacement that
    /// would capture a host binder).
    pub fn is_invalid_rewrite(&self) -> bool {
        matches!(self, ClientError::Remote { code, .. } if *code == wire::ERR_INVALID_REWRITE)
    }

    /// The typed wire error code, when this is a remote refusal.
    pub fn remote_code(&self) -> Option<u8> {
        match self {
            ClientError::Remote { code, .. } => Some(*code),
            _ => None,
        }
    }
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "connection error: {e}"),
            ClientError::Protocol(msg) => write!(f, "protocol violation: {msg}"),
            ClientError::Remote { code, message } => {
                write!(f, "server error {code:#04x}: {message}")
            }
        }
    }
}

impl std::error::Error for ClientError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ClientError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<WireError> for ClientError {
    fn from(e: WireError) -> Self {
        match e {
            WireError::Io(e) => ClientError::Io(e),
            WireError::Frame(msg) => ClientError::Protocol(msg),
        }
    }
}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// A blocking `alphahashd` connection (see the module docs for the
/// reconnect contract).
pub struct Client {
    addr: String,
    conn: Option<Conn>,
    chunk_terms: usize,
}

struct Conn {
    stream: TcpStream,
    hello: ServerHello,
}

impl Client {
    /// Dials `addr` (e.g. `"127.0.0.1:7474"`) and performs the
    /// handshake. Fails fast on an unreachable server; after that,
    /// reconnection is lazy.
    pub fn connect(addr: impl Into<String>) -> Result<Client, ClientError> {
        let mut client = Client {
            addr: addr.into(),
            conn: None,
            chunk_terms: DEFAULT_CHUNK_TERMS,
        };
        client.ensure_conn()?;
        Ok(client)
    }

    /// Overrides how many terms ride in one streamed batch chunk.
    pub fn set_chunk_terms(&mut self, terms: usize) {
        self.chunk_terms = terms.max(1);
    }

    /// The hello the server sent on the current (or most recent)
    /// connection.
    pub fn server_hello(&mut self) -> Result<ServerHello, ClientError> {
        Ok(self.ensure_conn()?.hello.clone())
    }

    fn ensure_conn(&mut self) -> Result<&mut Conn, ClientError> {
        if self.conn.is_none() {
            let stream = TcpStream::connect(&self.addr)?;
            stream.set_nodelay(true).ok();
            let mut conn = Conn {
                stream,
                hello: ServerHello {
                    version: 0,
                    hash_bits: 0,
                    shard_count: 0,
                    subexpr_min_nodes: None,
                },
            };
            let mut out = Vec::new();
            wire::put_handshake(&mut out, wire::PROTOCOL_VERSION);
            wire::write_frame(&mut conn.stream, &out)?;
            let payload = read_response(&mut conn.stream)?;
            let mut input = payload.as_slice();
            match wire::take_u8(&mut input)? {
                wire::RESP_OK => {
                    conn.hello = wire::take_hello(&mut input)?;
                }
                code => {
                    let message = wire::take_str(&mut input).unwrap_or_default();
                    return Err(ClientError::Remote { code, message });
                }
            }
            self.conn = Some(conn);
        }
        Ok(self.conn.as_mut().expect("just ensured"))
    }

    /// Runs `f` against a live connection; on a transport error the
    /// connection is dropped (so the next call redials) and, when
    /// `retry` says the operation is safe to repeat, redials once and
    /// retries immediately.
    fn with_conn<T>(
        &mut self,
        retry: bool,
        mut f: impl FnMut(&mut Conn) -> Result<T, ClientError>,
    ) -> Result<T, ClientError> {
        match f(self.ensure_conn()?) {
            Ok(v) => Ok(v),
            Err(e @ (ClientError::Io(_) | ClientError::Protocol(_))) => {
                self.conn = None;
                if retry {
                    f(self.ensure_conn()?)
                } else {
                    Err(e)
                }
            }
            Err(e) => Err(e),
        }
    }

    /// Ingests one term, returning its remote outcome.
    pub fn insert(
        &mut self,
        arena: &ExprArena,
        root: NodeId,
    ) -> Result<RemoteOutcome, ClientError> {
        let mut payload = Vec::new();
        wire::put_u8(&mut payload, wire::OP_INSERT);
        wire::put_term(&mut payload, arena, root);
        self.with_conn(false, |conn| {
            wire::write_frame(&mut conn.stream, &payload)?;
            let resp = read_response(&mut conn.stream)?;
            let mut input = resp.as_slice();
            match wire::take_u8(&mut input)? {
                wire::RESP_OK => Ok(wire::take_outcome(&mut input)?),
                code => Err(remote(code, &mut input)),
            }
        })
    }

    /// Ingests `roots` as a streamed batch, returning one outcome per
    /// term in order. The batch fails as a unit on the first refused
    /// chunk (the typed error is returned; earlier chunks were already
    /// ingested server-side — re-inserting them is idempotent at the
    /// class level).
    pub fn insert_batch(
        &mut self,
        arena: &ExprArena,
        roots: &[NodeId],
    ) -> Result<Vec<RemoteOutcome>, ClientError> {
        let chunk_terms = self.chunk_terms;
        self.with_conn(false, |conn| {
            let mut announce = Vec::new();
            wire::put_u8(&mut announce, wire::OP_INSERT_BATCH);
            wire::write_frame(&mut conn.stream, &announce)?;
            for chunk in roots.chunks(chunk_terms.max(1)) {
                let mut payload = Vec::new();
                wire::put_u8(&mut payload, wire::OP_BATCH_CHUNK);
                wire::put_u32(
                    &mut payload,
                    u32::try_from(chunk.len()).expect("chunk fits u32"),
                );
                for &root in chunk {
                    wire::put_term(&mut payload, arena, root);
                }
                wire::write_frame(&mut conn.stream, &payload)?;
            }
            let mut end = Vec::new();
            wire::put_u8(&mut end, wire::OP_BATCH_END);
            wire::write_frame(&mut conn.stream, &end)?;

            let mut outcomes = Vec::with_capacity(roots.len());
            loop {
                let resp = read_response(&mut conn.stream)?;
                let mut input = resp.as_slice();
                match wire::take_u8(&mut input)? {
                    wire::RESP_CHUNK => {
                        let count = wire::take_u32(&mut input)?;
                        for _ in 0..count {
                            outcomes.push(wire::take_outcome(&mut input)?);
                        }
                    }
                    wire::RESP_END => {
                        let _total = wire::take_u64(&mut input)?;
                        return Ok(outcomes);
                    }
                    code => {
                        let err = remote(code, &mut input);
                        // Drain the remaining per-chunk responses and the
                        // END so the connection stays usable, then
                        // surface the first error.
                        loop {
                            let resp = read_response(&mut conn.stream)?;
                            let mut input = resp.as_slice();
                            if wire::take_u8(&mut input)? == wire::RESP_END {
                                break;
                            }
                        }
                        return Err(err);
                    }
                }
            }
        })
    }

    /// Incrementally rewrites a previously ingested term in place: the
    /// subtree at `path` (child-slot steps into the term's canonical
    /// representative; empty replaces the whole term) becomes the term
    /// rooted at `root` in `arena`. `term` is the handle bits a prior
    /// [`RemoteOutcome::term`] carried. Not retried on transport errors
    /// — an update is a write, and the caller decides whether repeating
    /// it (against the term's *new* class) is what they want.
    pub fn update(
        &mut self,
        term: u64,
        path: &[u32],
        arena: &ExprArena,
        root: NodeId,
    ) -> Result<RemoteOutcome, ClientError> {
        let mut payload = Vec::new();
        wire::put_u8(&mut payload, wire::OP_UPDATE);
        wire::put_update(&mut payload, term, path, arena, root);
        self.with_conn(false, |conn| {
            wire::write_frame(&mut conn.stream, &payload)?;
            let resp = read_response(&mut conn.stream)?;
            let mut input = resp.as_slice();
            match wire::take_u8(&mut input)? {
                wire::RESP_OK => Ok(wire::take_outcome(&mut input)?),
                code => Err(remote(code, &mut input)),
            }
        })
    }

    /// Exact-match class lookup (no ingest). `Some(bits)` is the class
    /// as opaque [`alpha_store::ClassId::to_bits`] bits.
    pub fn lookup(&mut self, arena: &ExprArena, root: NodeId) -> Result<Option<u64>, ClientError> {
        self.unary_opt_class(wire::OP_LOOKUP, arena, root)
    }

    /// Containment query modulo alpha (subexpression-granularity
    /// servers match proper subterms too).
    pub fn contains(
        &mut self,
        arena: &ExprArena,
        root: NodeId,
    ) -> Result<Option<u64>, ClientError> {
        self.unary_opt_class(wire::OP_CONTAINS, arena, root)
    }

    fn unary_opt_class(
        &mut self,
        op: u8,
        arena: &ExprArena,
        root: NodeId,
    ) -> Result<Option<u64>, ClientError> {
        let mut payload = Vec::new();
        wire::put_u8(&mut payload, op);
        wire::put_term(&mut payload, arena, root);
        self.with_conn(true, |conn| {
            wire::write_frame(&mut conn.stream, &payload)?;
            let resp = read_response(&mut conn.stream)?;
            let mut input = resp.as_slice();
            match wire::take_u8(&mut input)? {
                wire::RESP_OK => Ok(wire::take_opt_class(&mut input)?),
                code => Err(remote(code, &mut input)),
            }
        })
    }

    /// Batched containment query: one `Option<class bits>` per pattern,
    /// in order.
    pub fn contains_batch(
        &mut self,
        arena: &ExprArena,
        roots: &[NodeId],
    ) -> Result<Vec<Option<u64>>, ClientError> {
        let chunk_terms = self.chunk_terms;
        self.with_conn(true, |conn| {
            let mut announce = Vec::new();
            wire::put_u8(&mut announce, wire::OP_CONTAINS_BATCH);
            wire::write_frame(&mut conn.stream, &announce)?;
            for chunk in roots.chunks(chunk_terms.max(1)) {
                let mut payload = Vec::new();
                wire::put_u8(&mut payload, wire::OP_BATCH_CHUNK);
                wire::put_u32(
                    &mut payload,
                    u32::try_from(chunk.len()).expect("chunk fits u32"),
                );
                for &root in chunk {
                    wire::put_term(&mut payload, arena, root);
                }
                wire::write_frame(&mut conn.stream, &payload)?;
            }
            let mut end = Vec::new();
            wire::put_u8(&mut end, wire::OP_BATCH_END);
            wire::write_frame(&mut conn.stream, &end)?;

            let mut classes = Vec::with_capacity(roots.len());
            loop {
                let resp = read_response(&mut conn.stream)?;
                let mut input = resp.as_slice();
                match wire::take_u8(&mut input)? {
                    wire::RESP_CHUNK => {
                        let count = wire::take_u32(&mut input)?;
                        for _ in 0..count {
                            classes.push(wire::take_opt_class(&mut input)?);
                        }
                    }
                    wire::RESP_END => {
                        let _total = wire::take_u64(&mut input)?;
                        return Ok(classes);
                    }
                    code => {
                        let err = remote(code, &mut input);
                        loop {
                            let resp = read_response(&mut conn.stream)?;
                            let mut input = resp.as_slice();
                            if wire::take_u8(&mut input)? == wire::RESP_END {
                                break;
                            }
                        }
                        return Err(err);
                    }
                }
            }
        })
    }

    /// Fetches the server's stats/health/recovery snapshot.
    pub fn stats(&mut self) -> Result<RemoteStats, ClientError> {
        self.simple_op(wire::OP_STATS, true, |input| Ok(wire::take_stats(input)?))
    }

    /// Fetches the Prometheus exposition-format metrics text (requires
    /// an `obs`-enabled server).
    pub fn metrics_prometheus(&mut self) -> Result<String, ClientError> {
        self.simple_op(wire::OP_METRICS_PROMETHEUS, true, |input| {
            Ok(wire::take_str(input)?)
        })
    }

    /// Asks the server to checkpoint (snapshot + WAL reset). Also the
    /// remote healing edge for a read-only store.
    pub fn checkpoint(&mut self) -> Result<(), ClientError> {
        self.simple_op(wire::OP_CHECKPOINT, false, |_| Ok(()))
    }

    /// Asks the daemon to shut down gracefully. The acknowledgement
    /// arrives before the drain starts; the socket then closes.
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        let out = self.simple_op(wire::OP_SHUTDOWN, false, |_| Ok(()));
        self.conn = None;
        out
    }

    fn simple_op<T>(
        &mut self,
        op: u8,
        retry: bool,
        parse: impl Fn(&mut &[u8]) -> Result<T, ClientError>,
    ) -> Result<T, ClientError> {
        self.with_conn(retry, |conn| {
            let mut payload = Vec::new();
            wire::put_u8(&mut payload, op);
            wire::write_frame(&mut conn.stream, &payload)?;
            let resp = read_response(&mut conn.stream)?;
            let mut input = resp.as_slice();
            match wire::take_u8(&mut input)? {
                wire::RESP_OK => parse(&mut input),
                code => Err(remote(code, &mut input)),
            }
        })
    }

    /// Sets the socket read timeout used while waiting for responses
    /// (`None`, the default, blocks indefinitely).
    pub fn set_read_timeout(&mut self, timeout: Option<Duration>) -> Result<(), ClientError> {
        self.ensure_conn()?.stream.set_read_timeout(timeout)?;
        Ok(())
    }
}

/// Reads one response frame; an EOF between frames becomes an
/// `UnexpectedEof` I/O error here, because a client awaiting a response
/// was *not* between requests.
fn read_response(stream: &mut TcpStream) -> Result<Vec<u8>, ClientError> {
    match wire::read_frame(stream)? {
        Some(payload) => Ok(payload),
        None => Err(ClientError::Io(std::io::Error::new(
            std::io::ErrorKind::UnexpectedEof,
            "server closed the connection before responding",
        ))),
    }
}

fn remote(code: u8, input: &mut &[u8]) -> ClientError {
    let message = wire::take_str(input).unwrap_or_default();
    ClientError::Remote { code, message }
}
