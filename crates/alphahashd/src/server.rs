//! The daemon itself: a `TcpListener` accept loop, thread-per-connection
//! request handlers, the batching ingest pool, and the graceful-shutdown
//! drain.
//!
//! ## Thread & lock structure
//!
//! ```text
//! accept thread ──spawns──▶ handler threads (one per connection)
//!      │                        │ reads framed requests
//!      │                        ├─ ingest ops ──▶ IngestPool queues ──▶ worker threads
//!      │                        │                 (bounded; backpressure)   │
//!      │                        ├─ read ops ─────────────────────────▶ store shards
//!      │                        └─ checkpoint ──▶ store maintenance lock (exclusive)
//!      └─ on shutdown: stop accepting → join handlers → drain+join workers
//!         → checkpoint → drop store (releases the dir lock)
//! ```
//!
//! The store's own lock order (maintenance → WAL → shards → canon
//! table) is unchanged; the daemon adds no locks of its own around the
//! store, so `Checkpoint` serializes against serving exactly the way
//! in-process `checkpoint()` serializes against `insert_batch`.

use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::sync_channel;
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use alpha_hash::HashWord;
use alpha_store::{AlphaStore, Granularity};
use lambda_lang::ExprArena;

use crate::ingest::{IngestConfig, IngestPool, Job, Reply};
use crate::wire::{self, RemoteStats, ServerHello, WireError};

/// Tuning for [`Daemon::spawn`]. The defaults are sized for the 1-core
/// container the benches run on: one ingest worker, a 512-term flush
/// watermark (the store's internal chunk size), a 2 ms linger.
#[derive(Clone, Debug)]
pub struct DaemonConfig {
    /// Address to bind (e.g. `"127.0.0.1:7474"`; port 0 picks a free
    /// port, observable via [`Daemon::local_addr`]).
    pub addr: String,
    /// Accumulator worker threads feeding `try_insert_batch`.
    pub ingest_workers: usize,
    /// Flush as soon as a worker has accumulated this many terms.
    pub flush_terms: usize,
    /// Flush no later than this after a worker's first pending term.
    pub linger: Duration,
    /// Bounded depth of each worker's job queue (the backpressure
    /// point for ingest).
    pub queue_depth: usize,
    /// Also drain on SIGINT/SIGTERM (the CLI sets this; tests drive
    /// shutdown through [`Daemon::request_shutdown`] or the wire op).
    pub handle_signals: bool,
}

impl Default for DaemonConfig {
    fn default() -> Self {
        DaemonConfig {
            addr: "127.0.0.1:0".to_owned(),
            ingest_workers: 1,
            flush_terms: 512,
            linger: Duration::from_millis(2),
            queue_depth: 64,
            handle_signals: false,
        }
    }
}

/// How often blocked reads and the accept loop wake up to check the
/// shutdown flag.
const POLL_INTERVAL: Duration = Duration::from_millis(50);

/// A running daemon. Dropping the handle does **not** stop it; call
/// [`Daemon::request_shutdown`] (or send the wire `Shutdown` op, or
/// signal the process when `handle_signals` is set) and then
/// [`Daemon::join`].
pub struct Daemon<H: HashWord> {
    store: Arc<AlphaStore<H>>,
    local_addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
}

impl<H: HashWord> Daemon<H> {
    /// Binds `config.addr` and starts serving `store`. The store stays
    /// shared: the caller keeps its `Arc` and may query it in-process
    /// while the daemon serves it over the wire (the loopback tests do
    /// exactly that).
    pub fn spawn(store: Arc<AlphaStore<H>>, config: DaemonConfig) -> std::io::Result<Daemon<H>> {
        let listener = TcpListener::bind(&config.addr)?;
        let local_addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let shutdown = Arc::new(AtomicBool::new(false));
        if config.handle_signals {
            crate::signal::install();
        }
        let pool = IngestPool::spawn(
            Arc::clone(&store),
            IngestConfig {
                workers: config.ingest_workers.max(1),
                flush_terms: config.flush_terms.max(1),
                linger: config.linger,
                queue_depth: config.queue_depth.max(1),
            },
        );
        let accept_thread = {
            let store = Arc::clone(&store);
            let shutdown = Arc::clone(&shutdown);
            let handle_signals = config.handle_signals;
            std::thread::Builder::new()
                .name("alphahashd-accept".to_owned())
                .spawn(move || accept_loop(listener, store, pool, shutdown, handle_signals))
                .expect("spawn accept thread")
        };
        Ok(Daemon {
            store,
            local_addr,
            shutdown,
            accept_thread: Some(accept_thread),
        })
    }

    /// The address the daemon actually bound (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The store behind the daemon, for in-process inspection (the
    /// oracle tests compare it against a fresh single-process build).
    pub fn store(&self) -> &Arc<AlphaStore<H>> {
        &self.store
    }

    /// Asks the daemon to drain and stop, as if a `Shutdown` op had
    /// arrived. Returns immediately; [`Daemon::join`] waits for the
    /// drain (including the final checkpoint) to finish.
    pub fn request_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
    }

    /// Waits until the daemon has fully shut down: accept loop exited,
    /// every handler joined, ingest drained, WAL checkpointed.
    pub fn join(mut self) {
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
    }
}

/// The accept loop, and — once the shutdown flag trips — the drain.
fn accept_loop<H: HashWord>(
    listener: TcpListener,
    store: Arc<AlphaStore<H>>,
    pool: Arc<IngestPool>,
    shutdown: Arc<AtomicBool>,
    handle_signals: bool,
) {
    let handlers: Mutex<Vec<JoinHandle<()>>> = Mutex::new(Vec::new());
    while !shutdown.load(Ordering::SeqCst) {
        if handle_signals && crate::signal::triggered() {
            shutdown.store(true, Ordering::SeqCst);
            break;
        }
        match listener.accept() {
            Ok((stream, _peer)) => {
                let store = Arc::clone(&store);
                let pool = Arc::clone(&pool);
                let shutdown = Arc::clone(&shutdown);
                let handle = std::thread::Builder::new()
                    .name("alphahashd-conn".to_owned())
                    .spawn(move || {
                        // Handler errors are connection-local: a peer
                        // that violates the protocol loses its
                        // connection, nothing else.
                        let _ = handle_connection(stream, &store, &pool, &shutdown);
                    })
                    .expect("spawn connection handler");
                let mut guard = handlers.lock().expect("handler list lock");
                guard.push(handle);
                // Opportunistically reap finished handlers so the list
                // does not grow with total connections served.
                guard.retain(|h| !h.is_finished());
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(POLL_INTERVAL);
            }
            Err(_) => std::thread::sleep(POLL_INTERVAL),
        }
    }
    // Drain: stop accepting (listener drops at end of scope; handlers
    // see the flag through their read timeouts and finish their
    // in-flight request first), then stop ingest, then checkpoint.
    drop(listener);
    for handle in std::mem::take(&mut *handlers.lock().expect("handler list lock")) {
        let _ = handle.join();
    }
    pool.close();
    if store.is_durable() {
        // A failed final checkpoint must not abort the drain: the WAL
        // still holds everything, so the next open replays instead of
        // reopening clean. Surface it on stderr and keep going.
        if let Err(e) = store.checkpoint() {
            eprintln!("alphahashd: shutdown checkpoint failed: {e}");
        }
    }
}

/// Per-connection request loop: handshake, then frames until EOF,
/// protocol violation, or shutdown.
fn handle_connection<H: HashWord>(
    mut stream: TcpStream,
    store: &AlphaStore<H>,
    pool: &IngestPool,
    shutdown: &AtomicBool,
) -> Result<(), WireError> {
    stream.set_nodelay(true).ok();
    stream.set_read_timeout(Some(POLL_INTERVAL)).ok();
    // Handshake first: magic + client version, answered with the hello.
    let payload = match read_frame_polling(&mut stream, Some(shutdown))? {
        Some(p) => p,
        None => return Ok(()),
    };
    let client_version = wire::take_handshake(&mut payload.as_slice())?;
    if client_version != wire::PROTOCOL_VERSION {
        let mut out = Vec::new();
        wire::put_error(
            &mut out,
            wire::ERR_UNSUPPORTED_VERSION,
            &format!(
                "server speaks protocol version {}, client sent {client_version}",
                wire::PROTOCOL_VERSION
            ),
        );
        wire::write_frame(&mut stream, &out)?;
        return Ok(());
    }
    let mut hello = Vec::new();
    wire::put_u8(&mut hello, wire::RESP_OK);
    wire::put_hello(
        &mut hello,
        &ServerHello {
            version: wire::PROTOCOL_VERSION,
            hash_bits: u16::try_from(H::BITS).expect("hash width fits u16"),
            shard_count: u32::try_from(store.shard_count()).unwrap_or(u32::MAX),
            subexpr_min_nodes: match store.granularity() {
                Granularity::Roots => None,
                Granularity::Subexpressions { min_nodes } => Some(min_nodes as u64),
            },
        },
    );
    wire::write_frame(&mut stream, &hello)?;

    loop {
        let payload = match read_frame_polling(&mut stream, Some(shutdown))? {
            Some(p) => p,
            None => return Ok(()),
        };
        let mut input = payload.as_slice();
        let op = wire::take_u8(&mut input)?;
        match op {
            wire::OP_INSERT => handle_insert(&mut stream, pool, payload[1..].to_vec())?,
            wire::OP_INSERT_BATCH => {
                handle_insert_batch(&mut stream, pool)?;
            }
            wire::OP_LOOKUP => {
                let reply = with_decoded_term(&mut input, |arena, root| {
                    ok_opt_class(store.lookup(arena, root).map(|c| c.to_bits()))
                });
                wire::write_frame(&mut stream, &reply)?;
            }
            wire::OP_CONTAINS => {
                let reply = with_decoded_term(&mut input, |arena, root| {
                    ok_opt_class(store.contains(arena, root).map(|c| c.to_bits()))
                });
                wire::write_frame(&mut stream, &reply)?;
            }
            wire::OP_CONTAINS_BATCH => handle_contains_batch(&mut stream, store)?,
            wire::OP_UPDATE => {
                let reply = handle_update(store, &mut input);
                wire::write_frame(&mut stream, &reply)?;
            }
            wire::OP_STATS => {
                let mut out = Vec::new();
                wire::put_u8(&mut out, wire::RESP_OK);
                wire::put_stats(&mut out, &gather_stats(store));
                wire::write_frame(&mut stream, &out)?;
            }
            wire::OP_METRICS_PROMETHEUS => {
                let mut out = Vec::new();
                metrics_response(store, &mut out);
                wire::write_frame(&mut stream, &out)?;
            }
            wire::OP_CHECKPOINT => {
                let mut out = Vec::new();
                match store.checkpoint() {
                    Ok(()) => wire::put_u8(&mut out, wire::RESP_OK),
                    Err(e) => {
                        wire::put_error(&mut out, wire::persist_error_code(&e), &e.to_string());
                    }
                }
                wire::write_frame(&mut stream, &out)?;
            }
            wire::OP_SHUTDOWN => {
                let mut out = Vec::new();
                wire::put_u8(&mut out, wire::RESP_OK);
                wire::write_frame(&mut stream, &out)?;
                shutdown.store(true, Ordering::SeqCst);
                return Ok(());
            }
            // A bare chunk/end without an announce is a sequencing bug.
            wire::OP_BATCH_CHUNK | wire::OP_BATCH_END => {
                let mut out = Vec::new();
                wire::put_error(&mut out, wire::ERR_MALFORMED, "batch chunk outside a batch");
                wire::write_frame(&mut stream, &out)?;
            }
            _ => {
                let mut out = Vec::new();
                wire::put_error(&mut out, wire::ERR_BAD_OP, &format!("unknown op {op:#04x}"));
                wire::write_frame(&mut stream, &out)?;
            }
        }
    }
}

/// Decodes one term and runs `f` on it, packaging term-decode failures
/// as the typed `ERR_TERM` response.
fn with_decoded_term(
    input: &mut &[u8],
    f: impl FnOnce(&ExprArena, lambda_lang::NodeId) -> Vec<u8>,
) -> Vec<u8> {
    let mut arena = ExprArena::new();
    match wire::take_term(input, &mut arena) {
        Ok(root) => f(&arena, root),
        Err(e) => {
            let mut out = Vec::new();
            wire::put_error(
                &mut out,
                wire::ERR_TERM,
                &format!("term failed to decode: {e}"),
            );
            out
        }
    }
}

/// One incremental rewrite, handled inline on the connection thread:
/// updates are point operations against an existing term, so they skip
/// the ingest accumulator (there is nothing to batch) and go straight
/// through the store's own update serialization. The WAL lands before
/// the response, like any other durable op.
fn handle_update<H: HashWord>(store: &AlphaStore<H>, input: &mut &[u8]) -> Vec<u8> {
    let mut arena = ExprArena::new();
    let mut out = Vec::new();
    let (term_bits, path, patch_root) = match wire::take_update(input, &mut arena) {
        Ok(parts) => parts,
        Err(e) => {
            wire::put_error(
                &mut out,
                wire::ERR_TERM,
                &format!("update request failed to decode: {e}"),
            );
            return out;
        }
    };
    let rewrite = alpha_store::Rewrite {
        path: &path,
        arena: &arena,
        root: patch_root,
    };
    match store.try_update(alpha_store::TermId::from_bits(term_bits), rewrite) {
        Ok(outcome) => {
            wire::put_u8(&mut out, wire::RESP_OK);
            wire::put_outcome(&mut out, &wire::RemoteOutcome::from(&outcome));
        }
        Err(e) => wire::put_error(&mut out, wire::store_error_code(&e), &e.to_string()),
    }
    out
}

fn ok_opt_class(class: Option<u64>) -> Vec<u8> {
    let mut out = Vec::new();
    wire::put_u8(&mut out, wire::RESP_OK);
    wire::put_opt_class(&mut out, class);
    out
}

/// Single insert: one term rides the accumulator path like everything
/// else, so lone-term clients still aggregate into store batches.
fn handle_insert(
    stream: &mut TcpStream,
    pool: &IngestPool,
    terms: Vec<u8>,
) -> Result<(), WireError> {
    let (reply_tx, reply_rx) = sync_channel::<Reply>(1);
    let submitted = pool.submit(Job {
        terms,
        count: 1,
        reply: reply_tx,
    });
    let mut out = Vec::new();
    match submitted {
        Err(_) => {
            wire::put_error(&mut out, wire::ERR_SHUTTING_DOWN, "daemon is draining");
        }
        Ok(()) => match reply_rx.recv() {
            Ok(Reply::Outcomes(outcomes)) => {
                wire::put_u8(&mut out, wire::RESP_OK);
                wire::put_outcome(&mut out, &outcomes[0]);
            }
            Ok(Reply::Refused { code, message }) => wire::put_error(&mut out, code, &message),
            Err(_) => {
                wire::put_error(&mut out, wire::ERR_SHUTTING_DOWN, "ingest worker went away");
            }
        },
    }
    wire::write_frame(stream, &out)
}

/// Streamed insert batch: forward each incoming chunk to the pool as
/// its own job (so ingestion starts while later chunks are still in
/// flight), then answer chunk-for-chunk after the client's END.
fn handle_insert_batch(stream: &mut TcpStream, pool: &IngestPool) -> Result<(), WireError> {
    let mut pending: Vec<(u32, std::sync::mpsc::Receiver<Reply>)> = Vec::new();
    let mut refused_on_submit = false;
    loop {
        let payload = match read_frame_polling(stream, None)? {
            Some(p) => p,
            None => return Ok(()), // torn connection: jobs already
                                   // submitted still complete server-side
        };
        let mut input = payload.as_slice();
        match wire::take_u8(&mut input)? {
            wire::OP_BATCH_CHUNK => {
                let count = wire::take_u32(&mut input)?;
                let (reply_tx, reply_rx) = sync_channel::<Reply>(1);
                let job = Job {
                    terms: input.to_vec(),
                    count,
                    reply: reply_tx,
                };
                if refused_on_submit || pool.submit(job).is_err() {
                    // Keep reading to END so the response sequence stays
                    // aligned, but refuse this and later chunks.
                    refused_on_submit = true;
                    pending.push((count, never_reply()));
                } else {
                    pending.push((count, reply_rx));
                }
            }
            wire::OP_BATCH_END => break,
            op => {
                let mut out = Vec::new();
                wire::put_error(
                    &mut out,
                    wire::ERR_MALFORMED,
                    &format!("expected batch chunk/end, got op {op:#04x}"),
                );
                wire::write_frame(stream, &out)?;
                return Ok(());
            }
        }
    }
    let mut total_ok: u64 = 0;
    for (count, reply_rx) in pending {
        let mut out = Vec::new();
        match reply_rx.recv().ok() {
            Some(Reply::Outcomes(outcomes)) => {
                debug_assert_eq!(outcomes.len() as u32, count);
                total_ok += outcomes.len() as u64;
                wire::put_u8(&mut out, wire::RESP_CHUNK);
                wire::put_u32(
                    &mut out,
                    u32::try_from(outcomes.len()).expect("chunk fits u32"),
                );
                for o in &outcomes {
                    wire::put_outcome(&mut out, o);
                }
            }
            Some(Reply::Refused { code, message }) => wire::put_error(&mut out, code, &message),
            None => {
                wire::put_error(&mut out, wire::ERR_SHUTTING_DOWN, "daemon is draining");
            }
        }
        wire::write_frame(stream, &out)?;
    }
    let mut out = Vec::new();
    wire::put_u8(&mut out, wire::RESP_END);
    wire::put_u64(&mut out, total_ok);
    wire::write_frame(stream, &out)
}

/// A receiver that reports "no reply will ever come" — used to keep the
/// per-chunk response alignment when a chunk was never submitted.
fn never_reply() -> std::sync::mpsc::Receiver<Reply> {
    let (_tx, rx) = sync_channel::<Reply>(1);
    rx
}

/// Streamed containment batch: chunks are answered as they arrive (no
/// ingest pipeline involved — `contains_batch` is a read).
fn handle_contains_batch<H: HashWord>(
    stream: &mut TcpStream,
    store: &AlphaStore<H>,
) -> Result<(), WireError> {
    let mut responses: Vec<Vec<u8>> = Vec::new();
    let mut total: u64 = 0;
    loop {
        let payload = match read_frame_polling(stream, None)? {
            Some(p) => p,
            None => return Ok(()),
        };
        let mut input = payload.as_slice();
        match wire::take_u8(&mut input)? {
            wire::OP_BATCH_CHUNK => {
                let count = wire::take_u32(&mut input)?;
                let mut arena = ExprArena::new();
                let mut roots = Vec::with_capacity(count as usize);
                let mut decode_err = None;
                for _ in 0..count {
                    match wire::take_term(&mut input, &mut arena) {
                        Ok(root) => roots.push(root),
                        Err(e) => {
                            decode_err = Some(e);
                            break;
                        }
                    }
                }
                let mut out = Vec::new();
                match decode_err {
                    Some(e) => {
                        wire::put_error(
                            &mut out,
                            wire::ERR_TERM,
                            &format!("pattern failed to decode: {e}"),
                        );
                    }
                    None => {
                        let classes = store.contains_batch(&arena, &roots);
                        total += classes.len() as u64;
                        wire::put_u8(&mut out, wire::RESP_CHUNK);
                        wire::put_u32(
                            &mut out,
                            u32::try_from(classes.len()).expect("chunk fits u32"),
                        );
                        for c in classes {
                            wire::put_opt_class(&mut out, c.map(|c| c.to_bits()));
                        }
                    }
                }
                responses.push(out);
            }
            wire::OP_BATCH_END => break,
            op => {
                let mut out = Vec::new();
                wire::put_error(
                    &mut out,
                    wire::ERR_MALFORMED,
                    &format!("expected batch chunk/end, got op {op:#04x}"),
                );
                wire::write_frame(stream, &out)?;
                return Ok(());
            }
        }
    }
    for out in responses {
        wire::write_frame(stream, &out)?;
    }
    let mut out = Vec::new();
    wire::put_u8(&mut out, wire::RESP_END);
    wire::put_u64(&mut out, total);
    wire::write_frame(stream, &out)
}

/// Snapshot of everything [`wire::RemoteStats`] carries.
fn gather_stats<H: HashWord>(store: &AlphaStore<H>) -> RemoteStats {
    let stats = store.stats();
    let health = store.health();
    RemoteStats {
        terms_ingested: stats.terms_ingested,
        classes_created: stats.classes_created,
        merges_confirmed: stats.merges_confirmed,
        hash_collisions: stats.hash_collisions,
        unconfirmed_merges: stats.unconfirmed_merges,
        subterms_indexed: stats.subterms_indexed,
        subterm_merges_confirmed: stats.subterm_merges_confirmed,
        subterms_skipped_min_nodes: stats.subterms_skipped_min_nodes,
        num_classes: store.num_classes() as u64,
        num_terms: store.num_terms() as u64,
        wal_records: store.wal_records(),
        health_code: health.code(),
        health_reason: health.reason().to_owned(),
        recovery: store.recovery_info().map(|r| (r.replayed_records, r.clean)),
        obs_json: obs_json(store),
    }
}

#[cfg(feature = "obs")]
fn obs_json<H: HashWord>(store: &AlphaStore<H>) -> String {
    store.obs_report().to_json()
}

#[cfg(not(feature = "obs"))]
fn obs_json<H: HashWord>(_store: &AlphaStore<H>) -> String {
    String::new()
}

#[cfg(feature = "obs")]
fn metrics_response<H: HashWord>(store: &AlphaStore<H>, out: &mut Vec<u8>) {
    wire::put_u8(out, wire::RESP_OK);
    wire::put_str(out, &store.obs_report().to_prometheus());
}

#[cfg(not(feature = "obs"))]
fn metrics_response<H: HashWord>(_store: &AlphaStore<H>, out: &mut Vec<u8>) {
    wire::put_error(
        out,
        wire::ERR_UNSUPPORTED,
        "server built without the obs feature",
    );
}

/// Like [`wire::read_frame`] but over a socket with a read timeout:
/// between frames, timeouts poll the shutdown flag (an idle connection
/// closes when the daemon drains); once a frame has started, it is
/// always read to completion so in-flight requests drain cleanly.
///
/// Pass `shutdown: None` while inside a streamed batch: the batch is
/// one in-flight request, so the drain waits for its END rather than
/// tearing it mid-stream (a dead peer still ends it via EOF).
fn read_frame_polling(
    stream: &mut TcpStream,
    shutdown: Option<&AtomicBool>,
) -> Result<Option<Vec<u8>>, WireError> {
    let mut header = [0u8; 8];
    let mut filled = 0usize;
    while filled < header.len() {
        match std::io::Read::read(stream, &mut header[filled..]) {
            Ok(0) => {
                return if filled == 0 {
                    Ok(None)
                } else {
                    Err(WireError::Frame(format!(
                        "connection closed {filled} bytes into a frame header"
                    )))
                };
            }
            Ok(n) => filled += n,
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                if filled == 0 && shutdown.is_some_and(|s| s.load(Ordering::SeqCst)) {
                    return Ok(None);
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(WireError::Io(e)),
        }
    }
    let len = u32::from_le_bytes(header[..4].try_into().expect("4 bytes"));
    let crc = u32::from_le_bytes(header[4..].try_into().expect("4 bytes"));
    if len > wire::MAX_FRAME_LEN {
        return Err(WireError::Frame(format!(
            "frame length {len} exceeds MAX_FRAME_LEN {}",
            wire::MAX_FRAME_LEN
        )));
    }
    let mut payload = vec![0u8; len as usize];
    let mut filled = 0usize;
    while filled < payload.len() {
        match std::io::Read::read(stream, &mut payload[filled..]) {
            Ok(0) => {
                return Err(WireError::Frame(format!(
                    "connection closed {filled} bytes into a {len}-byte payload"
                )));
            }
            Ok(n) => filled += n,
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut
                    || e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(WireError::Io(e)),
        }
    }
    let actual = alpha_store::persist::format::crc32(&payload);
    if actual != crc {
        return Err(WireError::Frame(format!(
            "payload CRC {actual:#010x} does not match header CRC {crc:#010x}"
        )));
    }
    Ok(Some(payload))
}
