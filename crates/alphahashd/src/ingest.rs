//! The daemon's batching ingest pipeline: connection handlers hand raw
//! encoded term runs to a small pool of accumulator workers over bounded
//! channels; each worker coalesces jobs under a size/latency watermark
//! and feeds the store one [`try_insert_batch`] per flush.
//!
//! This is how many small clients get batched-ingest throughput: a
//! client sending one term per request still rides a multi-hundred-term
//! `insert_batch` call on the store side, amortizing the prepare pass
//! and shard-lock acquisitions across everything that arrived within
//! the linger window.
//!
//! Backpressure is structural: the per-worker queues are bounded
//! `sync_channel`s, so when the store falls behind, handler submits
//! block, handlers stop reading their sockets, and TCP pushes back on
//! the clients — no unbounded buffering anywhere in the path.
//!
//! [`try_insert_batch`]: alpha_store::AlphaStore::try_insert_batch

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, RecvTimeoutError, SyncSender};
use std::sync::{Arc, Mutex, RwLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use alpha_hash::HashWord;
use alpha_store::AlphaStore;
use lambda_lang::ExprArena;

use crate::wire::{self, RemoteOutcome};

/// One unit of ingest work: `count` terms, encoded back-to-back with
/// [`wire::put_term`], plus the channel the outcome goes back on.
pub(crate) struct Job {
    /// `count` encoded terms, concatenated.
    pub(crate) terms: Vec<u8>,
    /// How many terms `terms` holds.
    pub(crate) count: u32,
    /// Where the handler waits for this job's outcome. Capacity 1, so
    /// a worker's reply send never blocks.
    pub(crate) reply: SyncSender<Reply>,
}

/// What a worker sends back for one [`Job`].
pub(crate) enum Reply {
    /// The job's terms were ingested; one outcome per term, in order.
    Outcomes(Vec<RemoteOutcome>),
    /// The job failed as a unit: a term failed to decode, or the store
    /// refused the flush. The wire code and message to forward.
    Refused {
        /// Stable wire error code (`ERR_TERM`, `ERR_READ_ONLY`, …).
        code: u8,
        /// Human-readable description for the client.
        message: String,
    },
}

/// The handler-facing side of the pipeline: submit jobs round-robin
/// until [`IngestPool::close`] drains the workers.
pub(crate) struct IngestPool {
    /// `None` once the pool is closed; workers observe the hangup when
    /// every sender clone is gone.
    senders: RwLock<Option<Vec<SyncSender<Job>>>>,
    next: AtomicUsize,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

/// Tuning for the accumulator workers (see [`DaemonConfig`] for the
/// user-facing knobs that feed this).
///
/// [`DaemonConfig`]: crate::server::DaemonConfig
#[derive(Clone, Copy, Debug)]
pub(crate) struct IngestConfig {
    pub(crate) workers: usize,
    pub(crate) flush_terms: usize,
    pub(crate) linger: Duration,
    pub(crate) queue_depth: usize,
}

impl IngestPool {
    /// Spawns `config.workers` accumulator threads over `store`.
    pub(crate) fn spawn<H: HashWord>(
        store: Arc<AlphaStore<H>>,
        config: IngestConfig,
    ) -> Arc<IngestPool> {
        let mut senders = Vec::with_capacity(config.workers);
        let mut workers = Vec::with_capacity(config.workers);
        for i in 0..config.workers {
            let (tx, rx) = sync_channel::<Job>(config.queue_depth);
            let store = Arc::clone(&store);
            let handle = std::thread::Builder::new()
                .name(format!("alphahashd-ingest-{i}"))
                .spawn(move || worker_loop(&store, &rx, config))
                .expect("spawn ingest worker");
            senders.push(tx);
            workers.push(handle);
        }
        Arc::new(IngestPool {
            senders: RwLock::new(Some(senders)),
            next: AtomicUsize::new(0),
            workers: Mutex::new(workers),
        })
    }

    /// Submits one job to the next worker round-robin, blocking when
    /// that worker's queue is full (this is the backpressure point).
    /// `Err` means the pool is already draining for shutdown.
    pub(crate) fn submit(&self, job: Job) -> Result<(), Job> {
        // Clone the target sender out of the lock so a blocking send
        // never holds the lock against other handlers (or close()).
        let sender = {
            let guard = self.senders.read().expect("ingest senders lock");
            match guard.as_ref() {
                None => return Err(job),
                Some(senders) => {
                    let i = self.next.fetch_add(1, Ordering::Relaxed) % senders.len();
                    senders[i].clone()
                }
            }
        };
        sender.send(job).map_err(|e| e.0)
    }

    /// Stops accepting jobs, lets the workers drain everything already
    /// queued, and joins them. Idempotent.
    pub(crate) fn close(&self) {
        // Dropping the senders hangs up the channels; each worker loop
        // exits once its queue is empty AND hung up, so nothing queued
        // is lost.
        self.senders.write().expect("ingest senders lock").take();
        let workers = std::mem::take(&mut *self.workers.lock().expect("ingest workers lock"));
        for handle in workers {
            let _ = handle.join();
        }
    }
}

/// One accumulator worker: block for a first job, then keep absorbing
/// jobs until the flush watermark (`flush_terms`) or the linger
/// deadline, then ingest the accumulated run as one store batch.
fn worker_loop<H: HashWord>(store: &AlphaStore<H>, rx: &Receiver<Job>, config: IngestConfig) {
    loop {
        let first = match rx.recv() {
            Ok(job) => job,
            // Hangup with an empty queue: drain complete.
            Err(_) => return,
        };
        let mut jobs = vec![first];
        let mut total = jobs[0].count as usize;
        let deadline = Instant::now() + config.linger;
        while total < config.flush_terms {
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            match rx.recv_timeout(deadline - now) {
                Ok(job) => {
                    total += job.count as usize;
                    jobs.push(job);
                }
                Err(RecvTimeoutError::Timeout) => break,
                Err(RecvTimeoutError::Disconnected) => break,
            }
        }
        flush(store, jobs);
    }
}

/// Decodes every job's terms into one arena and ingests them as one
/// `try_insert_batch`, then distributes per-job outcome slices (or the
/// typed error) back to the waiting handlers.
fn flush<H: HashWord>(store: &AlphaStore<H>, jobs: Vec<Job>) {
    let mut arena = ExprArena::new();
    let mut roots = Vec::new();
    // (job, start index into roots) for jobs that decoded cleanly.
    let mut decoded: Vec<(Job, usize)> = Vec::with_capacity(jobs.len());
    for job in jobs {
        let start = roots.len();
        let mut input = job.terms.as_slice();
        let mut ok = true;
        for _ in 0..job.count {
            match wire::take_term(&mut input, &mut arena) {
                Ok(root) => roots.push(root),
                Err(e) => {
                    // The job's encoded run is damaged: refuse the whole
                    // job and drop whatever it half-decoded from the
                    // batch (the arena keeps the orphan nodes; they are
                    // never used as roots).
                    roots.truncate(start);
                    let _ = job.reply.try_send(Reply::Refused {
                        code: wire::ERR_TERM,
                        message: format!("term failed to decode: {e}"),
                    });
                    ok = false;
                    break;
                }
            }
        }
        if ok && !input.is_empty() {
            roots.truncate(start);
            let _ = job.reply.try_send(Reply::Refused {
                code: wire::ERR_TERM,
                message: format!("{} trailing bytes after the last term", input.len()),
            });
            ok = false;
        }
        if ok {
            decoded.push((job, start));
        }
    }
    if roots.is_empty() {
        return;
    }
    match store.try_insert_batch(&arena, &roots) {
        Ok(outcomes) => {
            for (job, start) in decoded {
                let slice = &outcomes[start..start + job.count as usize];
                let _ = job.reply.try_send(Reply::Outcomes(
                    slice.iter().map(RemoteOutcome::from).collect(),
                ));
            }
        }
        Err(e) => {
            // Chunk-atomic failure inside the store: some prefix of the
            // flush may be applied (memory and WAL agree on it), the
            // rest was not. Every job in the flush gets the typed error;
            // clients treat the batch as failed and may retry once the
            // store heals — re-inserting an already-applied term is
            // idempotent at the class level by construction.
            let code = wire::store_error_code(&e);
            let message = e.to_string();
            for (job, _) in decoded {
                let _ = job.reply.try_send(Reply::Refused {
                    code,
                    message: message.clone(),
                });
            }
        }
    }
}
