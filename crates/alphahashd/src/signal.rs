//! Minimal SIGINT/SIGTERM latching without a libc dependency (the
//! offline container has no crates.io, so the usual `signal-hook` /
//! `libc` route is unavailable — the same constraint that makes the
//! compat crates exist).
//!
//! The handler does the only async-signal-safe thing there is to do:
//! set a static atomic flag. The daemon's accept loop polls
//! [`triggered`] and turns it into the normal graceful drain.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Once;

static TRIGGERED: AtomicBool = AtomicBool::new(false);
static INSTALL: Once = Once::new();

const SIGINT: i32 = 2;
const SIGTERM: i32 = 15;

/// The crate forbids unsafe everywhere but here: registering a process
/// signal handler has no safe std surface, so this module declares
/// `signal(2)` directly (the prototype libc would otherwise provide)
/// and confines the handler body to one atomic store.
#[allow(unsafe_code)]
mod ffi {
    extern "C" {
        /// `signal(2)` — always present in the C runtime the Rust std
        /// already links against.
        pub(super) fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }

    pub(super) extern "C" fn on_signal(_signum: i32) {
        super::TRIGGERED.store(true, std::sync::atomic::Ordering::SeqCst);
    }

    pub(super) fn install_for(signum: i32) {
        // SAFETY: `signal` is the C standard library's own registration
        // entry point; the handler only performs an atomic store, which
        // is async-signal-safe.
        unsafe {
            signal(signum, on_signal);
        }
    }
}

/// Installs the SIGINT/SIGTERM latch (idempotent).
pub fn install() {
    INSTALL.call_once(|| {
        ffi::install_for(SIGINT);
        ffi::install_for(SIGTERM);
    });
}

/// Whether a latched signal has arrived since [`install`].
pub fn triggered() -> bool {
    TRIGGERED.load(Ordering::SeqCst)
}
