//! The `alphahashd` wire protocol: framing, operation/status codes, and
//! the payload codecs shared by server and client.
//!
//! The byte-level contract lives in `docs/PROTOCOL.md`; the
//! [`spec_documents_the_compiled_constants`](#) test at the bottom of
//! this file keeps that document honest against the compiled constants,
//! the same pattern `persist/format.rs` uses for the persistence spec.
//!
//! Everything is little-endian, hand-rolled over `std::io` like the
//! persistence format — no serde, no tokio. A connection is a sequence
//! of **frames**; each frame is one request or response payload guarded
//! by length and CRC:
//!
//! ```text
//! [len: u32][crc32(payload): u32][payload: len bytes]
//! ```
//!
//! Request payloads start with an op code byte, response payloads with a
//! status byte; batch operations stream as an announce frame, chunk
//! frames, and an end frame in each direction (see `docs/PROTOCOL.md`).

use std::io::{self, Read, Write};

use alpha_store::persist::format::crc32;
use lambda_lang::visit::postorder;
use lambda_lang::{ExprArena, ExprNode, Literal, NodeId};

/// First bytes of every connection: the client's handshake frame opens
/// with this magic so a server can reject strangers (an HTTP request,
/// a stray TLS hello) before parsing anything else.
pub const PROTOCOL_MAGIC: [u8; 4] = *b"AHDP";

/// Wire protocol version, bumped on any incompatible frame or payload
/// change. Client sends it in the handshake; a server that cannot speak
/// it answers [`ERR_UNSUPPORTED_VERSION`] and closes.
///
/// Version 2 added the [`OP_UPDATE`] operation and widened
/// [`RemoteOutcome`] with the term handle (33 → 41 bytes), so version-1
/// clients cannot parse version-2 responses.
pub const PROTOCOL_VERSION: u16 = 2;

/// Hard upper bound on one frame's payload, enforced by both sides
/// before allocating: a length prefix beyond this is treated as a
/// protocol violation, not an allocation request.
pub const MAX_FRAME_LEN: u32 = 64 * 1024 * 1024;

// ---------------------------------------------------------------------
// Op codes (first byte of a request payload).

/// Ingest one term; response carries its [`RemoteOutcome`].
pub const OP_INSERT: u8 = 0x01;
/// Announce a streamed insert batch ([`OP_BATCH_CHUNK`]* then
/// [`OP_BATCH_END`] follow on the same connection).
pub const OP_INSERT_BATCH: u8 = 0x02;
/// One chunk of a streamed batch: `[count: u32]` followed by that many
/// encoded terms.
pub const OP_BATCH_CHUNK: u8 = 0x03;
/// Terminates a streamed batch; the server's responses follow.
pub const OP_BATCH_END: u8 = 0x04;
/// Exact-match class lookup of one term (no ingest).
pub const OP_LOOKUP: u8 = 0x05;
/// Containment query modulo alpha for one pattern.
pub const OP_CONTAINS: u8 = 0x06;
/// Announce a streamed containment batch (same chunk framing as insert).
pub const OP_CONTAINS_BATCH: u8 = 0x07;
/// Store statistics + health + recovery snapshot ([`RemoteStats`]).
pub const OP_STATS: u8 = 0x08;
/// Prometheus exposition-format metrics text (requires the `obs`
/// feature server-side; otherwise [`ERR_UNSUPPORTED`]).
pub const OP_METRICS_PROMETHEUS: u8 = 0x09;
/// Checkpoint the store (snapshot + WAL reset), serialized against
/// serving by the store's maintenance lock.
pub const OP_CHECKPOINT: u8 = 0x0A;
/// Ask the daemon to shut down gracefully: drain, checkpoint, release
/// the directory lock. Acknowledged before the drain begins.
pub const OP_SHUTDOWN: u8 = 0x0B;
/// Incrementally rewrite one previously ingested term in place
/// ([`alpha_store::AlphaStore::try_update`]): payload is the term
/// handle, the rewrite path and the replacement term (see
/// [`put_update`]). Response carries the updated [`RemoteOutcome`].
pub const OP_UPDATE: u8 = 0x0C;

// ---------------------------------------------------------------------
// Status codes (first byte of a response payload).

/// Success; body is op-specific.
pub const RESP_OK: u8 = 0x00;
/// One chunk of a streamed batch response: `[count: u32]` + items.
pub const RESP_CHUNK: u8 = 0x01;
/// Terminates a streamed batch response: `[total items: u64]`.
pub const RESP_END: u8 = 0x02;

/// Frame or payload the server could not parse (bad handshake, bad
/// CRC is a connection-fatal [`WireError::Frame`] instead).
pub const ERR_MALFORMED: u8 = 0x80;
/// Handshake carried a protocol version this server does not speak.
pub const ERR_UNSUPPORTED_VERSION: u8 = 0x81;
/// Unknown op code.
pub const ERR_BAD_OP: u8 = 0x82;
/// A term payload failed to decode (forward reference, bad tag, …).
pub const ERR_TERM: u8 = 0x83;
/// The store is read-only ([`alpha_store::StoreError::Degraded`]):
/// ingest refused, reads still serving.
pub const ERR_READ_ONLY: u8 = 0x84;
/// The daemon is draining for shutdown and no longer accepts work.
pub const ERR_SHUTTING_DOWN: u8 = 0x85;
/// The operation is not compiled into this server (e.g.
/// [`OP_METRICS_PROMETHEUS`] without the `obs` feature).
pub const ERR_UNSUPPORTED: u8 = 0x86;
/// An [`OP_UPDATE`] rewrite was refused before any state changed
/// ([`alpha_store::StoreError::InvalidRewrite`]): unknown term handle,
/// a path that does not resolve, or a replacement that would capture a
/// binder of the host term.
pub const ERR_INVALID_REWRITE: u8 = 0x87;

/// [`alpha_store::PersistError::Io`] surfaced by an ingest/checkpoint.
pub const ERR_PERSIST_IO: u8 = 0x90;
/// [`alpha_store::PersistError::Corrupt`] — on-disk damage.
pub const ERR_PERSIST_CORRUPT: u8 = 0x91;
/// [`alpha_store::PersistError::Mismatch`] — configuration disagreement.
pub const ERR_PERSIST_MISMATCH: u8 = 0x92;
/// [`alpha_store::PersistError::Locked`] — directory lock contention.
pub const ERR_PERSIST_LOCKED: u8 = 0x93;
/// [`alpha_store::PersistError::Wal`] — live WAL failure.
pub const ERR_PERSIST_WAL: u8 = 0x94;
/// [`alpha_store::PersistError::Snapshot`] — snapshot protocol failure.
pub const ERR_PERSIST_SNAPSHOT: u8 = 0x95;

/// The stable wire code for a [`alpha_store::StoreError`], per the
/// PROTOCOL.md error table: `Degraded` (the read-only refusal) maps to
/// [`ERR_READ_ONLY`]; `Persist` maps per variant.
pub fn store_error_code(e: &alpha_store::StoreError) -> u8 {
    match e {
        alpha_store::StoreError::Degraded { .. } => ERR_READ_ONLY,
        alpha_store::StoreError::Persist(p) => persist_error_code(p),
        alpha_store::StoreError::InvalidRewrite { .. } => ERR_INVALID_REWRITE,
    }
}

/// The stable wire code for a [`alpha_store::PersistError`] variant.
pub fn persist_error_code(e: &alpha_store::PersistError) -> u8 {
    use alpha_store::PersistError as P;
    match e {
        P::Io(_) => ERR_PERSIST_IO,
        P::Corrupt { .. } => ERR_PERSIST_CORRUPT,
        P::Mismatch { .. } => ERR_PERSIST_MISMATCH,
        P::Locked { .. } => ERR_PERSIST_LOCKED,
        P::Wal { .. } => ERR_PERSIST_WAL,
        P::Snapshot { .. } => ERR_PERSIST_SNAPSHOT,
    }
}

// ---------------------------------------------------------------------
// Errors.

/// What can go wrong speaking the protocol, from either side's view.
#[derive(Debug)]
pub enum WireError {
    /// The underlying socket failed or closed unexpectedly.
    Io(io::Error),
    /// The peer violated the framing or payload contract: oversized
    /// length prefix, CRC mismatch, truncated payload, impossible tag.
    /// Connection-fatal — there is no resynchronization point.
    Frame(String),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Io(e) => write!(f, "wire i/o error: {e}"),
            WireError::Frame(msg) => write!(f, "wire protocol violation: {msg}"),
        }
    }
}

impl std::error::Error for WireError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            WireError::Io(e) => Some(e),
            WireError::Frame(_) => None,
        }
    }
}

impl From<io::Error> for WireError {
    fn from(e: io::Error) -> Self {
        WireError::Io(e)
    }
}

fn frame_err(msg: impl Into<String>) -> WireError {
    WireError::Frame(msg.into())
}

// ---------------------------------------------------------------------
// Framing.

/// Writes one frame: length + CRC header, then the payload, flushed.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> Result<(), WireError> {
    let len = u32::try_from(payload.len()).map_err(|_| frame_err("payload exceeds u32"))?;
    if len > MAX_FRAME_LEN {
        return Err(frame_err(format!(
            "payload of {len} bytes exceeds MAX_FRAME_LEN {MAX_FRAME_LEN}"
        )));
    }
    let mut header = [0u8; 8];
    header[..4].copy_from_slice(&len.to_le_bytes());
    header[4..].copy_from_slice(&crc32(payload).to_le_bytes());
    w.write_all(&header)?;
    w.write_all(payload)?;
    w.flush()?;
    Ok(())
}

/// Reads one frame, verifying the length bound and the payload CRC.
/// `Ok(None)` means the peer closed the connection cleanly *between*
/// frames; EOF mid-frame is a [`WireError::Frame`].
pub fn read_frame(r: &mut impl Read) -> Result<Option<Vec<u8>>, WireError> {
    let mut header = [0u8; 8];
    match read_full(r, &mut header)? {
        0 => return Ok(None),
        8 => {}
        n => {
            return Err(frame_err(format!(
                "connection closed {n} bytes into a frame header"
            )))
        }
    }
    let len = u32::from_le_bytes(header[..4].try_into().expect("4 bytes"));
    let crc = u32::from_le_bytes(header[4..].try_into().expect("4 bytes"));
    if len > MAX_FRAME_LEN {
        return Err(frame_err(format!(
            "frame length {len} exceeds MAX_FRAME_LEN {MAX_FRAME_LEN}"
        )));
    }
    let mut payload = vec![0u8; len as usize];
    let got = read_full(r, &mut payload)?;
    if got != payload.len() {
        return Err(frame_err(format!(
            "connection closed {got} bytes into a {len}-byte payload"
        )));
    }
    let actual = crc32(&payload);
    if actual != crc {
        return Err(frame_err(format!(
            "payload CRC {actual:#010x} does not match header CRC {crc:#010x}"
        )));
    }
    Ok(Some(payload))
}

/// Reads until `buf` is full or EOF; returns the bytes read. Unlike
/// `read_exact` this reports a clean EOF at offset 0 distinguishably,
/// and retries on `Interrupted`.
fn read_full(r: &mut impl Read, buf: &mut [u8]) -> Result<usize, WireError> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => break,
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(WireError::Io(e)),
        }
    }
    Ok(filled)
}

// ---------------------------------------------------------------------
// Scalar codecs (the persistence format's idiom, re-rolled here because
// those helpers are crate-private to alpha-store and return its error).

pub(crate) fn put_u8(out: &mut Vec<u8>, v: u8) {
    out.push(v);
}

pub(crate) fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, u32::try_from(s.len()).expect("string fits u32"));
    out.extend_from_slice(s.as_bytes());
}

pub(crate) fn take_u8(input: &mut &[u8]) -> Result<u8, WireError> {
    Ok(take_bytes(input, 1)?[0])
}

pub(crate) fn take_bytes<'a>(input: &mut &'a [u8], n: usize) -> Result<&'a [u8], WireError> {
    if input.len() < n {
        return Err(frame_err(format!(
            "payload truncated: wanted {n} more bytes, have {}",
            input.len()
        )));
    }
    let (head, tail) = input.split_at(n);
    *input = tail;
    Ok(head)
}

pub(crate) fn take_u16(input: &mut &[u8]) -> Result<u16, WireError> {
    let b = take_bytes(input, 2)?;
    Ok(u16::from_le_bytes(b.try_into().expect("2 bytes")))
}

pub(crate) fn take_u32(input: &mut &[u8]) -> Result<u32, WireError> {
    let b = take_bytes(input, 4)?;
    Ok(u32::from_le_bytes(b.try_into().expect("4 bytes")))
}

pub(crate) fn take_u64(input: &mut &[u8]) -> Result<u64, WireError> {
    let b = take_bytes(input, 8)?;
    Ok(u64::from_le_bytes(b.try_into().expect("8 bytes")))
}

pub(crate) fn take_str(input: &mut &[u8]) -> Result<String, WireError> {
    let len = take_u32(input)? as usize;
    let bytes = take_bytes(input, len)?;
    String::from_utf8(bytes.to_vec()).map_err(|_| frame_err("string is not UTF-8"))
}

// ---------------------------------------------------------------------
// Term codec.

const NODE_VAR: u8 = 0;
const NODE_LAM: u8 = 1;
const NODE_APP: u8 = 2;
const NODE_LET: u8 = 3;
const NODE_LIT: u8 = 4;

const LIT_I64: u8 = 0;
const LIT_F64_BITS: u8 = 1;
const LIT_BOOL: u8 = 2;

/// Encodes one term as a postorder node run: a name table (the binder
/// and variable names this term uses), then the nodes, children
/// referenced by their position earlier in the run. The root is the
/// last node. Appended to `out` so batch chunks concatenate terms.
pub fn put_term(out: &mut Vec<u8>, arena: &ExprArena, root: NodeId) {
    let order = postorder(arena, root);
    // Positions of emitted nodes, keyed by arena id. Names are interned
    // into a per-term table in first-use order.
    let mut pos = std::collections::HashMap::with_capacity(order.len());
    let mut names: Vec<&str> = Vec::new();
    let mut name_idx: std::collections::HashMap<&str, u32> = std::collections::HashMap::new();
    // First pass: build the name table in first-use order.
    for &id in &order {
        match arena.node(id) {
            ExprNode::Var(s) | ExprNode::Lam(s, _) | ExprNode::Let(s, _, _) => {
                let name = arena.name(s);
                name_idx.entry(name).or_insert_with(|| {
                    names.push(name);
                    u32::try_from(names.len() - 1).expect("name table fits u32")
                });
            }
            ExprNode::App(..) | ExprNode::Lit(_) => {}
        }
    }
    put_u32(
        out,
        u32::try_from(names.len()).expect("name table fits u32"),
    );
    for name in &names {
        put_str(out, name);
    }
    put_u32(out, u32::try_from(order.len()).expect("node run fits u32"));
    for (i, &id) in order.iter().enumerate() {
        let i = u32::try_from(i).expect("node run fits u32");
        match arena.node(id) {
            ExprNode::Var(s) => {
                put_u8(out, NODE_VAR);
                put_u32(out, name_idx[arena.name(s)]);
            }
            ExprNode::Lam(s, body) => {
                put_u8(out, NODE_LAM);
                put_u32(out, name_idx[arena.name(s)]);
                put_u32(out, pos[&body]);
            }
            ExprNode::App(f, a) => {
                put_u8(out, NODE_APP);
                put_u32(out, pos[&f]);
                put_u32(out, pos[&a]);
            }
            ExprNode::Let(s, rhs, body) => {
                put_u8(out, NODE_LET);
                put_u32(out, name_idx[arena.name(s)]);
                put_u32(out, pos[&rhs]);
                put_u32(out, pos[&body]);
            }
            ExprNode::Lit(lit) => {
                put_u8(out, NODE_LIT);
                match lit {
                    Literal::I64(v) => {
                        put_u8(out, LIT_I64);
                        put_u64(out, v as u64);
                    }
                    Literal::F64Bits(bits) => {
                        put_u8(out, LIT_F64_BITS);
                        put_u64(out, bits);
                    }
                    Literal::Bool(b) => {
                        put_u8(out, LIT_BOOL);
                        put_u8(out, u8::from(b));
                    }
                }
            }
        }
        pos.insert(id, i);
    }
}

/// Decodes one term into `arena`, returning its root. Rejects forward
/// or self child references and out-of-range name indices, so a decoded
/// term is always a well-formed tree.
pub fn take_term(input: &mut &[u8], arena: &mut ExprArena) -> Result<NodeId, WireError> {
    let name_count = take_u32(input)? as usize;
    let mut syms = Vec::with_capacity(name_count);
    for _ in 0..name_count {
        let name = take_str(input)?;
        syms.push(arena.intern(&name));
    }
    let node_count = take_u32(input)? as usize;
    if node_count == 0 {
        return Err(frame_err("term has zero nodes"));
    }
    let mut ids: Vec<NodeId> = Vec::with_capacity(node_count);
    let sym = |syms: &[lambda_lang::Symbol], i: u32| {
        syms.get(i as usize)
            .copied()
            .ok_or_else(|| frame_err(format!("name index {i} out of range ({name_count} names)")))
    };
    for i in 0..node_count {
        let child = |ids: &[NodeId], p: u32| {
            if (p as usize) < i {
                Ok(ids[p as usize])
            } else {
                Err(frame_err(format!(
                    "child reference {p} at node {i} is not backward"
                )))
            }
        };
        let id = match take_u8(input)? {
            NODE_VAR => {
                let s = sym(&syms, take_u32(input)?)?;
                arena.var(s)
            }
            NODE_LAM => {
                let s = sym(&syms, take_u32(input)?)?;
                let body = child(&ids, take_u32(input)?)?;
                arena.lam(s, body)
            }
            NODE_APP => {
                let f = child(&ids, take_u32(input)?)?;
                let a = child(&ids, take_u32(input)?)?;
                arena.app(f, a)
            }
            NODE_LET => {
                let s = sym(&syms, take_u32(input)?)?;
                let rhs = child(&ids, take_u32(input)?)?;
                let body = child(&ids, take_u32(input)?)?;
                arena.let_(s, rhs, body)
            }
            NODE_LIT => match take_u8(input)? {
                LIT_I64 => arena.lit(Literal::I64(take_u64(input)? as i64)),
                LIT_F64_BITS => arena.lit(Literal::F64Bits(take_u64(input)?)),
                LIT_BOOL => arena.lit(Literal::Bool(take_u8(input)? != 0)),
                tag => return Err(frame_err(format!("unknown literal tag {tag}"))),
            },
            tag => return Err(frame_err(format!("unknown node tag {tag}"))),
        };
        ids.push(id);
    }
    Ok(*ids.last().expect("node_count > 0"))
}

// ---------------------------------------------------------------------
// Shared payload structures.

/// What the server tells a client right after the handshake.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ServerHello {
    /// Protocol version the server will speak on this connection.
    pub version: u16,
    /// Hash width of the store behind the daemon (64 or 128).
    pub hash_bits: u16,
    /// Shards in the store.
    pub shard_count: u32,
    /// `None` for roots granularity, `Some(min_nodes)` for
    /// subexpression granularity.
    pub subexpr_min_nodes: Option<u64>,
}

/// Encodes the handshake request payload (what `Client::connect` sends).
pub fn put_handshake(out: &mut Vec<u8>, version: u16) {
    out.extend_from_slice(&PROTOCOL_MAGIC);
    put_u16(out, version);
}

/// Decodes a handshake request, returning the client's version.
pub fn take_handshake(input: &mut &[u8]) -> Result<u16, WireError> {
    let magic = take_bytes(input, 4)?;
    if magic != PROTOCOL_MAGIC {
        return Err(frame_err(
            "handshake magic mismatch: not an alphahashd client",
        ));
    }
    take_u16(input)
}

/// Encodes the server hello body (after the [`RESP_OK`] status byte).
pub fn put_hello(out: &mut Vec<u8>, hello: &ServerHello) {
    put_u16(out, hello.version);
    put_u16(out, hello.hash_bits);
    put_u32(out, hello.shard_count);
    match hello.subexpr_min_nodes {
        None => put_u8(out, 0),
        Some(m) => {
            put_u8(out, 1);
            put_u64(out, m);
        }
    }
}

/// Decodes a server hello body.
pub fn take_hello(input: &mut &[u8]) -> Result<ServerHello, WireError> {
    let version = take_u16(input)?;
    let hash_bits = take_u16(input)?;
    let shard_count = take_u32(input)?;
    let subexpr_min_nodes = match take_u8(input)? {
        0 => None,
        1 => Some(take_u64(input)?),
        tag => return Err(frame_err(format!("unknown granularity tag {tag}"))),
    };
    Ok(ServerHello {
        version,
        hash_bits,
        shard_count,
        subexpr_min_nodes,
    })
}

/// One ingested or updated term's outcome as it crosses the wire: the
/// term handle and class as opaque `to_bits` words plus the freshness
/// and subexpression summary of the operation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RemoteOutcome {
    /// The term handle, as [`alpha_store::TermId::to_bits`] bits — what
    /// [`OP_UPDATE`] takes to address this term later.
    pub term: u64,
    /// The class, as [`alpha_store::ClassId::to_bits`] bits.
    pub class: u64,
    /// `true` iff this operation created the class.
    pub fresh: bool,
    /// Proper subexpression occurrences indexed by this operation.
    pub subs_indexed: u64,
    /// Of those, occurrences merged into an existing class.
    pub subs_merged: u64,
    /// Occurrences skipped by the granularity's `min_nodes` floor.
    pub subs_skipped_min_nodes: u64,
}

impl From<&alpha_store::InsertOutcome> for RemoteOutcome {
    fn from(o: &alpha_store::InsertOutcome) -> Self {
        RemoteOutcome {
            term: o.term.to_bits(),
            class: o.class.to_bits(),
            fresh: o.fresh,
            subs_indexed: o.subs.indexed,
            subs_merged: o.subs.merged,
            subs_skipped_min_nodes: o.subs.skipped_min_nodes,
        }
    }
}

impl From<&alpha_store::UpdateOutcome> for RemoteOutcome {
    fn from(o: &alpha_store::UpdateOutcome) -> Self {
        RemoteOutcome {
            term: o.term.to_bits(),
            class: o.class.to_bits(),
            fresh: o.fresh,
            subs_indexed: o.subs.indexed,
            subs_merged: o.subs.merged,
            subs_skipped_min_nodes: o.subs.skipped_min_nodes,
        }
    }
}

/// Encodes one [`RemoteOutcome`] (a fixed 41-byte record).
pub fn put_outcome(out: &mut Vec<u8>, o: &RemoteOutcome) {
    put_u64(out, o.term);
    put_u64(out, o.class);
    put_u8(out, u8::from(o.fresh));
    put_u64(out, o.subs_indexed);
    put_u64(out, o.subs_merged);
    put_u64(out, o.subs_skipped_min_nodes);
}

/// Decodes one [`RemoteOutcome`].
pub fn take_outcome(input: &mut &[u8]) -> Result<RemoteOutcome, WireError> {
    Ok(RemoteOutcome {
        term: take_u64(input)?,
        class: take_u64(input)?,
        fresh: take_u8(input)? != 0,
        subs_indexed: take_u64(input)?,
        subs_merged: take_u64(input)?,
        subs_skipped_min_nodes: take_u64(input)?,
    })
}

/// Encodes an [`OP_UPDATE`] request body (after the op byte): the term
/// handle, the rewrite path (child-slot steps into the term's canonical
/// representative), and the replacement term.
pub fn put_update(out: &mut Vec<u8>, term: u64, path: &[u32], arena: &ExprArena, root: NodeId) {
    put_u64(out, term);
    put_u32(out, u32::try_from(path.len()).expect("path fits u32"));
    for &slot in path {
        put_u32(out, slot);
    }
    put_term(out, arena, root);
}

/// Decodes an [`OP_UPDATE`] request body into `(term bits, path, patch
/// root)`, with the patch decoded into `arena`.
pub fn take_update(
    input: &mut &[u8],
    arena: &mut ExprArena,
) -> Result<(u64, Vec<u32>, NodeId), WireError> {
    let term = take_u64(input)?;
    let path_len = take_u32(input)? as usize;
    let mut path = Vec::with_capacity(path_len.min(1024));
    for _ in 0..path_len {
        path.push(take_u32(input)?);
    }
    let root = take_term(input, arena)?;
    Ok((term, path, root))
}

/// Encodes an optional class (lookup / contains responses and
/// contains-batch items): presence byte + bits when present.
pub fn put_opt_class(out: &mut Vec<u8>, class: Option<u64>) {
    match class {
        None => put_u8(out, 0),
        Some(bits) => {
            put_u8(out, 1);
            put_u64(out, bits);
        }
    }
}

/// Decodes an optional class.
pub fn take_opt_class(input: &mut &[u8]) -> Result<Option<u64>, WireError> {
    match take_u8(input)? {
        0 => Ok(None),
        1 => Ok(Some(take_u64(input)?)),
        tag => Err(frame_err(format!("unknown option tag {tag}"))),
    }
}

/// Point-in-time store state as served by [`OP_STATS`]: the ingest
/// counters, the class/term census, durability and health, what
/// recovery did at open, and (when the server has the `obs` feature)
/// the full metrics report as JSON.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct RemoteStats {
    /// Terms ingested.
    pub terms_ingested: u64,
    /// Classes created.
    pub classes_created: u64,
    /// Root-level merges confirmed by canonical comparison.
    pub merges_confirmed: u64,
    /// True hash collisions kept as separate classes.
    pub hash_collisions: u64,
    /// Always zero — merges are never taken on hash alone.
    pub unconfirmed_merges: u64,
    /// Subexpression entries indexed.
    pub subterms_indexed: u64,
    /// Subexpression merges confirmed.
    pub subterm_merges_confirmed: u64,
    /// Subexpressions skipped by the `min_nodes` floor.
    pub subterms_skipped_min_nodes: u64,
    /// Distinct classes currently in the store.
    pub num_classes: u64,
    /// Terms currently tracked by the store.
    pub num_terms: u64,
    /// WAL records since the last checkpoint; `None` for in-memory.
    pub wal_records: Option<u64>,
    /// Health state code (0 healthy / 1 degraded / 2 read-only).
    pub health_code: u8,
    /// Health failure description (empty when healthy).
    pub health_reason: String,
    /// WAL records replayed when the store was opened, with the
    /// clean-reopen flag; `None` for in-memory or fresh stores.
    pub recovery: Option<(u64, bool)>,
    /// `obs_report().to_json()` when the server has the `obs` feature,
    /// empty otherwise.
    pub obs_json: String,
}

/// Encodes a [`RemoteStats`] body.
pub fn put_stats(out: &mut Vec<u8>, s: &RemoteStats) {
    put_u64(out, s.terms_ingested);
    put_u64(out, s.classes_created);
    put_u64(out, s.merges_confirmed);
    put_u64(out, s.hash_collisions);
    put_u64(out, s.unconfirmed_merges);
    put_u64(out, s.subterms_indexed);
    put_u64(out, s.subterm_merges_confirmed);
    put_u64(out, s.subterms_skipped_min_nodes);
    put_u64(out, s.num_classes);
    put_u64(out, s.num_terms);
    match s.wal_records {
        None => put_u8(out, 0),
        Some(n) => {
            put_u8(out, 1);
            put_u64(out, n);
        }
    }
    put_u8(out, s.health_code);
    put_str(out, &s.health_reason);
    match s.recovery {
        None => put_u8(out, 0),
        Some((replayed, clean)) => {
            put_u8(out, 1);
            put_u64(out, replayed);
            put_u8(out, u8::from(clean));
        }
    }
    put_str(out, &s.obs_json);
}

/// Decodes a [`RemoteStats`] body.
pub fn take_stats(input: &mut &[u8]) -> Result<RemoteStats, WireError> {
    let mut s = RemoteStats {
        terms_ingested: take_u64(input)?,
        classes_created: take_u64(input)?,
        merges_confirmed: take_u64(input)?,
        hash_collisions: take_u64(input)?,
        unconfirmed_merges: take_u64(input)?,
        subterms_indexed: take_u64(input)?,
        subterm_merges_confirmed: take_u64(input)?,
        subterms_skipped_min_nodes: take_u64(input)?,
        num_classes: take_u64(input)?,
        num_terms: take_u64(input)?,
        ..RemoteStats::default()
    };
    s.wal_records = match take_u8(input)? {
        0 => None,
        1 => Some(take_u64(input)?),
        tag => return Err(frame_err(format!("unknown option tag {tag}"))),
    };
    s.health_code = take_u8(input)?;
    s.health_reason = take_str(input)?;
    s.recovery = match take_u8(input)? {
        0 => None,
        1 => Some((take_u64(input)?, take_u8(input)? != 0)),
        tag => return Err(frame_err(format!("unknown option tag {tag}"))),
    };
    s.obs_json = take_str(input)?;
    Ok(s)
}

/// Encodes an error response: status byte + message string.
pub fn put_error(out: &mut Vec<u8>, code: u8, message: &str) {
    put_u8(out, code);
    put_str(out, message);
}

#[cfg(test)]
mod tests {
    use super::*;
    use lambda_lang::parse;

    #[test]
    fn term_round_trips_exactly() {
        let mut src_arena = ExprArena::new();
        let root =
            parse(&mut src_arena, r"let f = \x. \y. x + (y * 2) in f true 3").expect("parses");
        let mut bytes = Vec::new();
        put_term(&mut bytes, &src_arena, root);
        let mut input = bytes.as_slice();
        let mut dst_arena = ExprArena::new();
        let decoded = take_term(&mut input, &mut dst_arena).expect("decodes");
        assert!(input.is_empty(), "decoder consumed the whole run");
        assert!(
            lambda_lang::alpha_eq(&src_arena, root, &dst_arena, decoded),
            "decoded term is alpha-equal to the original"
        );
        // Names survive verbatim, so the round trip is printed-identical
        // too, not just alpha-equal.
        assert_eq!(
            lambda_lang::print(&src_arena, root),
            lambda_lang::print(&dst_arena, decoded)
        );
    }

    #[test]
    fn term_decoder_rejects_forward_references() {
        let mut bytes = Vec::new();
        put_u32(&mut bytes, 0); // no names
        put_u32(&mut bytes, 2); // two nodes
        put_u8(&mut bytes, NODE_APP); // children point forward/self
        put_u32(&mut bytes, 0);
        put_u32(&mut bytes, 1);
        put_u8(&mut bytes, NODE_LIT);
        put_u8(&mut bytes, LIT_BOOL);
        put_u8(&mut bytes, 1);
        let mut arena = ExprArena::new();
        let err = take_term(&mut bytes.as_slice(), &mut arena);
        assert!(matches!(err, Err(WireError::Frame(_))));
    }

    #[test]
    fn frame_round_trips_and_rejects_corruption() {
        let payload = b"hello alphahashd".to_vec();
        let mut buf = Vec::new();
        write_frame(&mut buf, &payload).expect("writes");
        let got = read_frame(&mut buf.as_slice())
            .expect("reads")
            .expect("one frame");
        assert_eq!(got, payload);
        // Flip one payload bit: the CRC must catch it.
        let mut bad = buf.clone();
        let last = bad.len() - 1;
        bad[last] ^= 0x01;
        assert!(matches!(
            read_frame(&mut bad.as_slice()),
            Err(WireError::Frame(_))
        ));
        // Clean EOF between frames is None, not an error.
        assert!(read_frame(&mut [].as_slice()).expect("clean eof").is_none());
    }

    #[test]
    fn stats_and_outcome_round_trip() {
        let stats = RemoteStats {
            terms_ingested: 10,
            classes_created: 4,
            merges_confirmed: 6,
            num_classes: 4,
            num_terms: 10,
            wal_records: Some(7),
            health_code: 2,
            health_reason: "disk full".to_owned(),
            recovery: Some((3, false)),
            obs_json: "{}".to_owned(),
            ..RemoteStats::default()
        };
        let mut bytes = Vec::new();
        put_stats(&mut bytes, &stats);
        assert_eq!(take_stats(&mut bytes.as_slice()).expect("decodes"), stats);

        let outcome = RemoteOutcome {
            term: 0x0002_0000_0000_0009,
            class: 0xDEAD_BEEF_0000_0001,
            fresh: true,
            subs_indexed: 5,
            subs_merged: 2,
            subs_skipped_min_nodes: 1,
        };
        let mut bytes = Vec::new();
        put_outcome(&mut bytes, &outcome);
        assert_eq!(bytes.len(), 41, "the spec's fixed record size");
        assert_eq!(
            take_outcome(&mut bytes.as_slice()).expect("decodes"),
            outcome
        );
    }

    #[test]
    fn update_request_round_trips() {
        let mut arena = ExprArena::new();
        let patch = parse(&mut arena, "v * 4").expect("parses");
        let mut bytes = Vec::new();
        put_update(&mut bytes, 0x0001_0000_0000_0002, &[0, 1], &arena, patch);
        let mut input = bytes.as_slice();
        let mut dst = ExprArena::new();
        let (term, path, root) = take_update(&mut input, &mut dst).expect("decodes");
        assert!(input.is_empty());
        assert_eq!(term, 0x0001_0000_0000_0002);
        assert_eq!(path, vec![0, 1]);
        assert!(lambda_lang::alpha_eq(&arena, patch, &dst, root));
    }

    /// `docs/PROTOCOL.md` is the authoritative byte-level description of
    /// this protocol; this test fails if the compiled constants drift
    /// from what the document claims (same pattern as the persistence
    /// spec-grep test in `alpha-store`).
    #[test]
    fn spec_documents_the_compiled_constants() {
        let spec = include_str!("../../../docs/PROTOCOL.md");
        let magic = std::str::from_utf8(&PROTOCOL_MAGIC).expect("ascii magic");
        for needle in [
            format!("`\"{magic}\"`"),
            format!("version: **{PROTOCOL_VERSION}**"),
            format!("{} MiB", MAX_FRAME_LEN / (1024 * 1024)),
        ] {
            assert!(
                spec.contains(&needle),
                "docs/PROTOCOL.md does not mention {needle:?} — update the spec \
                 (or this test) so document and code agree"
            );
        }
        for (name, code) in [
            ("OP_INSERT", OP_INSERT),
            ("OP_INSERT_BATCH", OP_INSERT_BATCH),
            ("OP_BATCH_CHUNK", OP_BATCH_CHUNK),
            ("OP_BATCH_END", OP_BATCH_END),
            ("OP_LOOKUP", OP_LOOKUP),
            ("OP_CONTAINS", OP_CONTAINS),
            ("OP_CONTAINS_BATCH", OP_CONTAINS_BATCH),
            ("OP_STATS", OP_STATS),
            ("OP_METRICS_PROMETHEUS", OP_METRICS_PROMETHEUS),
            ("OP_CHECKPOINT", OP_CHECKPOINT),
            ("OP_SHUTDOWN", OP_SHUTDOWN),
            ("OP_UPDATE", OP_UPDATE),
            ("RESP_OK", RESP_OK),
            ("RESP_CHUNK", RESP_CHUNK),
            ("RESP_END", RESP_END),
            ("ERR_MALFORMED", ERR_MALFORMED),
            ("ERR_UNSUPPORTED_VERSION", ERR_UNSUPPORTED_VERSION),
            ("ERR_BAD_OP", ERR_BAD_OP),
            ("ERR_TERM", ERR_TERM),
            ("ERR_READ_ONLY", ERR_READ_ONLY),
            ("ERR_SHUTTING_DOWN", ERR_SHUTTING_DOWN),
            ("ERR_UNSUPPORTED", ERR_UNSUPPORTED),
            ("ERR_INVALID_REWRITE", ERR_INVALID_REWRITE),
            ("ERR_PERSIST_IO", ERR_PERSIST_IO),
            ("ERR_PERSIST_CORRUPT", ERR_PERSIST_CORRUPT),
            ("ERR_PERSIST_MISMATCH", ERR_PERSIST_MISMATCH),
            ("ERR_PERSIST_LOCKED", ERR_PERSIST_LOCKED),
            ("ERR_PERSIST_WAL", ERR_PERSIST_WAL),
            ("ERR_PERSIST_SNAPSHOT", ERR_PERSIST_SNAPSHOT),
        ] {
            let row = format!("`{name}` | `{code:#04X}`");
            assert!(
                spec.contains(&row),
                "docs/PROTOCOL.md is missing the code-table row {row:?}"
            );
        }
    }
}
