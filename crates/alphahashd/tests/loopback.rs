//! Loopback integration tests: a real daemon on 127.0.0.1, real TCP
//! clients, and the in-process store as the oracle.
//!
//! The load-bearing property is **remote = local**: whatever N
//! concurrent wire clients ingest must leave the daemon's store in
//! exactly the state a fresh single-process `insert_batch` of the same
//! corpus produces — same classes, same census, zero unconfirmed
//! merges — because the daemon is a transport, not a second
//! implementation of the store's semantics.

use std::collections::BTreeMap;
use std::io::Write;
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::{Duration, Instant};

use alpha_store::{AlphaStore, FaultKind, FaultVfs};
use alphahashd::client::Client;
use alphahashd::server::{Daemon, DaemonConfig};
use alphahashd::wire;
use lambda_lang::arena::{ExprArena, NodeId};
use lambda_lang::uniquify::uniquify_into;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A fresh temp directory, removed on drop (even when a case fails).
struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        use std::sync::atomic::{AtomicU64, Ordering};
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let path = std::env::temp_dir().join(format!(
            "alphahashd-loopback-{}-{}-{}",
            std::process::id(),
            tag,
            COUNTER.fetch_add(1, Ordering::Relaxed)
        ));
        TempDir(path)
    }

    fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// A varied corpus with alpha-duplicates (every other term is an
/// alpha-renaming), deterministic in `seed`.
fn corpus(arena: &mut ExprArena, seed: u64, count: usize) -> Vec<NodeId> {
    let mut roots = Vec::with_capacity(count);
    for i in 0..count {
        let mut rng = StdRng::seed_from_u64(seed ^ (i as u64 % 16));
        let size = 6 + (i % 4) * 8;
        let mut scratch = ExprArena::new();
        let root = match i % 3 {
            0 => expr_gen::balanced(&mut scratch, size, &mut rng),
            1 => expr_gen::unbalanced(&mut scratch, size, &mut rng),
            _ => expr_gen::arithmetic(&mut scratch, size.max(8), &mut rng),
        };
        if i % 2 == 0 {
            roots.push(uniquify_into(&scratch, root, arena));
        } else {
            roots.push(arena.import_subtree(&scratch, root));
        }
    }
    roots
}

/// Everything observable about a store's classes, keyed by canonical
/// text: member, occurrence and node counts. Equal maps ⇒ identical
/// partitions with identical bookkeeping.
fn class_census(store: &AlphaStore<u64>) -> BTreeMap<String, (u64, u64, usize)> {
    let mut census = BTreeMap::new();
    for class in store.classes() {
        census.insert(
            store.canonical_text(class),
            (
                store.members(class),
                store.occurrences(class),
                store.node_count(class),
            ),
        );
    }
    census
}

fn spawn_daemon(store: Arc<AlphaStore<u64>>) -> Daemon<u64> {
    Daemon::spawn(store, DaemonConfig::default()).expect("bind loopback daemon")
}

/// N concurrent wire clients ingest disjoint slices; the daemon-side
/// store must equal a fresh single-process build of the same corpus —
/// classes, census, and the full stats block (collision-free at u64,
/// so even the created/merged split is interleaving-independent in
/// roots mode).
#[test]
fn concurrent_clients_match_single_process_oracle() {
    const CLIENTS: usize = 4;
    const TERMS: usize = 600;
    let mut arena = ExprArena::new();
    let roots = corpus(&mut arena, 0xA11CE, TERMS);

    let store: Arc<AlphaStore<u64>> = Arc::new(AlphaStore::builder().seed(0xD0).build());
    let daemon = spawn_daemon(Arc::clone(&store));
    let addr = daemon.local_addr().to_string();

    let slice_len = TERMS / CLIENTS;
    std::thread::scope(|scope| {
        for c in 0..CLIENTS {
            let addr = addr.clone();
            let arena = &arena;
            let slice = &roots[c * slice_len..(c + 1) * slice_len];
            scope.spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                // Small chunks so the accumulator really coalesces work
                // from different connections into shared store batches.
                client.set_chunk_terms(37);
                let outcomes = client.insert_batch(arena, slice).expect("ingest slice");
                assert_eq!(
                    outcomes.len(),
                    slice.len(),
                    "one outcome per term, in order"
                );
                outcomes
            });
        }
    });

    // Oracle: the same corpus through one in-process batch.
    let oracle: AlphaStore<u64> = AlphaStore::builder().seed(0xD0).build();
    oracle.insert_batch(&arena, &roots);

    let daemon_stats = store.stats();
    let oracle_stats = oracle.stats();
    assert_eq!(
        daemon_stats, oracle_stats,
        "stats match the single-process build exactly"
    );
    assert_eq!(
        daemon_stats.unconfirmed_merges, 0,
        "exactness survives the wire"
    );
    assert_eq!(
        class_census(&store),
        class_census(&oracle),
        "class censuses are identical"
    );
    assert_eq!(store.num_classes(), oracle.num_classes());
    assert_eq!(store.num_terms(), TERMS);

    let mut client = Client::connect(addr).expect("connect");
    client.shutdown().expect("shutdown op");
    daemon.join();
}

/// The same oracle equivalence in subexpression granularity, where the
/// daemon also has to preserve the subterm index. The created/merged
/// *split* is chunk-boundary-dependent by documented design, so the
/// oracle comparison is the census plus the interleaving-independent
/// aggregates.
#[test]
fn concurrent_clients_match_oracle_subexpressions() {
    const CLIENTS: usize = 3;
    const TERMS: usize = 240;
    let mut arena = ExprArena::new();
    let roots = corpus(&mut arena, 0x5EED, TERMS);

    let build = || {
        AlphaStore::<u64>::builder()
            .seed(0xD1)
            .subexpressions(3)
            .build()
    };
    let store = Arc::new(build());
    let daemon = spawn_daemon(Arc::clone(&store));
    let addr = daemon.local_addr().to_string();

    let slice_len = TERMS / CLIENTS;
    std::thread::scope(|scope| {
        for c in 0..CLIENTS {
            let addr = addr.clone();
            let arena = &arena;
            let slice = &roots[c * slice_len..(c + 1) * slice_len];
            scope.spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                client.set_chunk_terms(19);
                let outcomes = client.insert_batch(arena, slice).expect("ingest slice");
                assert_eq!(outcomes.len(), slice.len());
            });
        }
    });

    let oracle = build();
    oracle.insert_batch(&arena, &roots);

    let d = store.stats();
    let o = oracle.stats();
    assert_eq!(
        class_census(&store),
        class_census(&oracle),
        "identical partitions"
    );
    assert_eq!(d.terms_ingested, o.terms_ingested);
    assert_eq!(d.classes_created, o.classes_created);
    assert_eq!(d.subterms_indexed, o.subterms_indexed);
    assert_eq!(d.subterms_skipped_min_nodes, o.subterms_skipped_min_nodes);
    assert_eq!(d.hash_collisions, o.hash_collisions);
    assert_eq!(
        d.merges_confirmed + d.subterm_merges_confirmed,
        o.merges_confirmed + o.subterm_merges_confirmed,
        "total merges reconcile regardless of chunk boundaries"
    );
    assert_eq!(d.unconfirmed_merges, 0);

    // Containment queries over the wire see the subterm index.
    let mut client = Client::connect(addr).expect("connect");
    let hits = client
        .contains_batch(&arena, &roots[..20])
        .expect("contains batch");
    assert_eq!(hits.len(), 20);
    assert!(
        hits.iter().all(Option::is_some),
        "every ingested root is contained"
    );

    client.shutdown().expect("shutdown op");
    daemon.join();
}

/// A store that went read-only refuses wire ingest with the typed
/// `ERR_READ_ONLY` code while `Lookup`/`Contains`/`Stats` keep
/// answering, and a remote `Checkpoint` heals it — the satellite
/// requirement that the health machine maps end-to-end.
#[test]
fn read_only_store_refuses_wire_ingest_with_typed_code() {
    let mut arena = ExprArena::new();
    let roots = corpus(&mut arena, 0xC0FFEE, 12);
    let dir = TempDir::new("read-only");
    let fault = FaultVfs::new();
    let store: Arc<AlphaStore<u64>> = Arc::new(
        AlphaStore::<u64>::builder()
            .seed(0xFA17)
            .sync_on_commit(true)
            .vfs(Arc::new(fault.clone()))
            .persist_retries(1)
            .persist_backoff(Duration::from_millis(0))
            .open_durable(dir.path())
            .expect("open durable"),
    );
    let daemon = spawn_daemon(Arc::clone(&store));
    let mut client = Client::connect(daemon.local_addr().to_string()).expect("connect");

    let (known, lost) = roots.split_at(8);
    let outcomes = client
        .insert_batch(&arena, known)
        .expect("healthy wire ingest");
    assert_eq!(outcomes.len(), known.len());

    // The disk dies for good. The flush that carries the next insert
    // exhausts the retry policy: that first failure surfaces as the
    // persistence error that flipped the store...
    fault.fail_always(FaultKind::Enospc);
    let err = client.insert(&arena, lost[0]).expect_err("disk is dead");
    let code = err.remote_code().expect("typed remote error");
    assert!(
        (wire::ERR_PERSIST_IO..=wire::ERR_PERSIST_SNAPSHOT).contains(&code),
        "first refusal carries the persist-error code, got {code:#04x}: {err}"
    );

    // ...and every ingest after it is refused up front with the typed
    // read-only code.
    let err = client
        .insert(&arena, lost[1])
        .expect_err("read-only refusal");
    assert!(err.is_read_only(), "expected ERR_READ_ONLY, got: {err}");
    let err = client
        .insert_batch(&arena, lost)
        .expect_err("batch refused too");
    assert!(err.is_read_only(), "batch refusal is typed too, got: {err}");

    // Read ops keep serving over the same connection.
    assert!(client
        .lookup(&arena, known[0])
        .expect("lookup serves")
        .is_some());
    assert!(client
        .contains(&arena, known[0])
        .expect("contains serves")
        .is_some());
    let stats = client.stats().expect("stats serves");
    assert_eq!(stats.health_code, 2, "health is read-only on the wire");
    assert!(!stats.health_reason.is_empty());
    assert_eq!(stats.terms_ingested, known.len() as u64);

    // The operator fixes the disk; a *remote* checkpoint heals.
    fault.clear();
    client
        .checkpoint()
        .expect("remote checkpoint over healed disk");
    let stats = client.stats().expect("stats after heal");
    assert_eq!(stats.health_code, 0, "healed");
    let outcomes = client
        .insert_batch(&arena, lost)
        .expect("ingest after heal");
    assert_eq!(outcomes.len(), lost.len());

    client.shutdown().expect("shutdown op");
    daemon.join();
}

/// A connection torn mid-batch (chunks sent, no END, socket dropped)
/// must leave the store consistent: the chunks that arrived are
/// ingested exactly (they were already committed to the pipeline), the
/// partition stays exact, and the daemon keeps serving new clients.
#[test]
fn torn_connection_mid_batch_leaves_store_consistent() {
    let mut arena = ExprArena::new();
    let roots = corpus(&mut arena, 0x7EA6, 9);
    let store: Arc<AlphaStore<u64>> = Arc::new(AlphaStore::builder().seed(0xD2).build());
    let daemon = spawn_daemon(Arc::clone(&store));
    let addr = daemon.local_addr();

    // Raw wire client: handshake, announce, one 3-term chunk, then DROP
    // the socket without OP_BATCH_END.
    {
        let mut stream = TcpStream::connect(addr).expect("connect raw");
        let mut hs = Vec::new();
        wire::put_handshake(&mut hs, wire::PROTOCOL_VERSION);
        wire::write_frame(&mut stream, &hs).expect("handshake");
        let hello = wire::read_frame(&mut stream)
            .expect("hello")
            .expect("hello frame");
        assert_eq!(hello[0], wire::RESP_OK);

        let announce = vec![wire::OP_INSERT_BATCH];
        wire::write_frame(&mut stream, &announce).expect("announce");

        let mut chunk = Vec::new();
        chunk.push(wire::OP_BATCH_CHUNK);
        chunk.extend_from_slice(&3u32.to_le_bytes());
        for &root in &roots[..3] {
            wire::put_term(&mut chunk, &arena, root);
        }
        wire::write_frame(&mut stream, &chunk).expect("chunk");
        // Torn: no END, just drop.
    }

    // The submitted chunk still completes server-side; wait for it.
    let deadline = Instant::now() + Duration::from_secs(10);
    while store.num_terms() < 3 {
        assert!(Instant::now() < deadline, "torn chunk was never ingested");
        std::thread::sleep(Duration::from_millis(10));
    }
    assert_eq!(
        store.num_terms(),
        3,
        "exactly the delivered chunk, nothing else"
    );
    assert_eq!(store.stats().unconfirmed_merges, 0);

    // A connection torn mid-FRAME (header promises more than arrives)
    // must not wedge or corrupt anything either.
    {
        let mut stream = TcpStream::connect(addr).expect("connect raw");
        let mut hs = Vec::new();
        wire::put_handshake(&mut hs, wire::PROTOCOL_VERSION);
        wire::write_frame(&mut stream, &hs).expect("handshake");
        let _ = wire::read_frame(&mut stream).expect("hello");
        // A frame header claiming 1 MiB, followed by silence.
        stream
            .write_all(&(1_048_576u32).to_le_bytes())
            .expect("len");
        stream.write_all(&0u32.to_le_bytes()).expect("crc");
        stream.write_all(b"partial").expect("some payload");
        // Drop mid-frame.
    }

    // The daemon still serves: a normal client finishes the corpus and
    // the result equals the single-process oracle over the same
    // effective multiset (first 3 + all 9 again).
    let mut client = Client::connect(addr.to_string()).expect("connect");
    let outcomes = client
        .insert_batch(&arena, &roots)
        .expect("post-tear ingest");
    assert_eq!(outcomes.len(), roots.len());

    let oracle: AlphaStore<u64> = AlphaStore::builder().seed(0xD2).build();
    oracle.insert_batch(&arena, &roots[..3]);
    oracle.insert_batch(&arena, &roots);
    assert_eq!(class_census(&store), class_census(&oracle));
    assert_eq!(store.stats(), oracle.stats());

    client.shutdown().expect("shutdown op");
    daemon.join();
}

/// The wire handshake rejects unknown protocol versions with the typed
/// code instead of guessing.
#[test]
fn handshake_rejects_unknown_version() {
    let store: Arc<AlphaStore<u64>> = Arc::new(AlphaStore::default());
    let daemon = spawn_daemon(Arc::clone(&store));

    let mut stream = TcpStream::connect(daemon.local_addr()).expect("connect raw");
    let mut hs = Vec::new();
    wire::put_handshake(&mut hs, 99);
    wire::write_frame(&mut stream, &hs).expect("handshake");
    let resp = wire::read_frame(&mut stream)
        .expect("response")
        .expect("frame");
    assert_eq!(resp[0], wire::ERR_UNSUPPORTED_VERSION);

    daemon.request_shutdown();
    daemon.join();
}

/// Graceful shutdown (over the wire) drains in-flight ingest,
/// checkpoints the WAL, and releases the directory lock — so the next
/// open is a CLEAN reopen: nothing replayed, no recovery checkpoint,
/// and the state equals what was ingested. This is the acceptance
/// criterion pinned by `AlphaStore::recovery_info`.
#[test]
fn graceful_shutdown_checkpoints_for_clean_reopen() {
    let mut arena = ExprArena::new();
    let roots = corpus(&mut arena, 0xFADE, 40);
    let dir = TempDir::new("graceful");

    {
        let store: Arc<AlphaStore<u64>> = Arc::new(
            AlphaStore::<u64>::builder()
                .seed(0xD3)
                .open_durable(dir.path())
                .expect("open durable"),
        );
        let daemon = spawn_daemon(Arc::clone(&store));
        let mut client = Client::connect(daemon.local_addr().to_string()).expect("connect");
        let outcomes = client.insert_batch(&arena, &roots).expect("wire ingest");
        assert_eq!(outcomes.len(), roots.len());
        assert!(
            store.wal_records().expect("durable") > 0,
            "WAL has the ingest"
        );

        client.shutdown().expect("shutdown op");
        daemon.join();
        // `daemon` held the last in-scope Arc besides ours; dropping
        // ours below releases the dir lock for the reopen.
        assert_eq!(
            store.wal_records(),
            Some(0),
            "shutdown checkpointed: WAL reset under a fresh epoch"
        );
    }

    let reopened = AlphaStore::<u64>::open(dir.path()).expect("reopen after graceful shutdown");
    let info = reopened
        .recovery_info()
        .expect("recovery info on a reopened store");
    assert!(
        info.clean,
        "clean reopen: snapshot already held every WAL record"
    );
    assert_eq!(info.replayed_records, 0, "nothing to replay");

    // And the state is exactly what the clients ingested.
    let oracle: AlphaStore<u64> = AlphaStore::builder().seed(0xD3).build();
    oracle.insert_batch(&arena, &roots);
    assert_eq!(reopened.num_terms(), roots.len());
    assert_eq!(class_census(&reopened), class_census(&oracle));
    assert_eq!(reopened.stats(), oracle.stats());
}

/// In-flight work is drained, not dropped: a shutdown requested while
/// a batch is mid-stream still answers that batch completely before
/// the daemon exits.
#[test]
fn shutdown_drains_in_flight_batch() {
    let mut arena = ExprArena::new();
    let roots = corpus(&mut arena, 0xD7A1, 120);
    let store: Arc<AlphaStore<u64>> = Arc::new(AlphaStore::builder().seed(0xD4).build());
    let daemon = spawn_daemon(Arc::clone(&store));
    let addr = daemon.local_addr().to_string();

    let ingest = std::thread::spawn({
        let arena_roots: Vec<NodeId> = roots.clone();
        let addr = addr.clone();
        let arena = {
            // Move a private copy of the corpus into the thread.
            let mut dst = ExprArena::new();
            let copied: Vec<NodeId> = arena_roots
                .iter()
                .map(|&r| dst.import_subtree(&arena, r))
                .collect();
            (dst, copied)
        };
        move || {
            let (arena, roots) = arena;
            let mut client = Client::connect(addr).expect("connect");
            client.set_chunk_terms(8);
            client
                .insert_batch(&arena, &roots)
                .expect("in-flight batch completes")
        }
    });
    // Wait until the batch is demonstrably mid-flight (some terms
    // ingested, surely not all), then pull the plug.
    let deadline = Instant::now() + Duration::from_secs(10);
    while store.num_terms() == 0 {
        assert!(Instant::now() < deadline, "batch never started");
        std::thread::sleep(Duration::from_millis(1));
    }
    daemon.request_shutdown();
    let outcomes = ingest.join().expect("ingest thread");
    assert_eq!(
        outcomes.len(),
        roots.len(),
        "every term answered despite the shutdown race"
    );
    daemon.join();
    assert_eq!(store.num_terms(), roots.len());
    assert_eq!(store.stats().unconfirmed_merges, 0);
}

/// The wire `Update` op is the local `update` exactly: a daemon-side
/// rewrite must leave the store in the same state as the identical
/// local call on an identical store, echo the term handle, and make the
/// rewritten class visible to wire lookups — remote = local, extended
/// to the incremental path.
#[test]
fn wire_update_matches_local_update() {
    use lambda_lang::parse::parse;

    let mut arena = ExprArena::new();
    let t = parse(&mut arena, r"\x. x + (v * 3)").unwrap();
    let extra = parse(&mut arena, r"\y. y + (v * 3)").unwrap();
    let patch = parse(&mut arena, "v * 4").unwrap();

    let build = || {
        AlphaStore::<u64>::builder()
            .seed(0xD5)
            .subexpressions(1)
            .build()
    };
    let store = Arc::new(build());
    let daemon = spawn_daemon(Arc::clone(&store));
    let mut client = Client::connect(daemon.local_addr().to_string()).expect("connect");

    let ins = client.insert(&arena, t).expect("wire insert");
    let dup = client.insert(&arena, extra).expect("wire insert dup");
    assert_eq!(ins.class, dup.class, "alpha-duplicates share a class");

    // Rewrite the multiplication argument: lam body (0), then the
    // application's argument (1).
    let out = client
        .update(ins.term, &[0, 1], &arena, patch)
        .expect("wire update");
    assert_eq!(out.term, ins.term, "the handle is echoed back");
    assert_ne!(out.class, ins.class, "the term moved to a new class");
    assert!(out.fresh, "nothing else is alpha-equal to the rewrite");
    assert!(out.subs_indexed > 0, "sub mode re-indexes changed entries");

    // The daemon store equals a local store that did the same ops.
    let oracle = build();
    let o_ins = oracle.insert(&arena, t);
    oracle.insert(&arena, extra);
    let o_out = oracle.update(
        o_ins.term,
        alpha_store::Rewrite {
            path: &[0, 1],
            arena: &arena,
            root: patch,
        },
    );
    assert_eq!(out.fresh, o_out.fresh);
    assert_eq!(class_census(&store), class_census(&oracle));
    assert_eq!(store.stats(), oracle.stats());
    assert_eq!(store.stats().unconfirmed_merges, 0);

    // And the rewritten term answers wire lookups.
    let rewritten = parse(&mut arena, r"\q. q + (v * 4)").unwrap();
    let hit = client.lookup(&arena, rewritten).expect("wire lookup");
    assert_eq!(hit, Some(out.class));
    let gone = client.lookup(&arena, t).expect("wire lookup old");
    assert_eq!(gone, Some(ins.class), "the duplicate still holds the class");

    client.shutdown().expect("shutdown op");
    daemon.join();
}

/// Update refusals are typed end-to-end: a rewrite the store rejects
/// comes back as `ERR_INVALID_REWRITE` (before any state changes), and
/// a read-only store refuses updates with `ERR_READ_ONLY` exactly like
/// ingest — while reads keep serving.
#[test]
fn wire_update_refusals_are_typed() {
    use lambda_lang::parse::parse;

    let mut arena = ExprArena::new();
    let t = parse(&mut arena, r"\x. x + 1").unwrap();
    let patch = parse(&mut arena, "2").unwrap();

    let dir = TempDir::new("update-refusals");
    let fault = FaultVfs::new();
    let store: Arc<AlphaStore<u64>> = Arc::new(
        AlphaStore::<u64>::builder()
            .seed(0xFA18)
            .sync_on_commit(true)
            .vfs(Arc::new(fault.clone()))
            .persist_retries(0)
            .persist_backoff(Duration::from_millis(0))
            .open_durable(dir.path())
            .expect("open durable"),
    );
    let daemon = spawn_daemon(Arc::clone(&store));
    let mut client = Client::connect(daemon.local_addr().to_string()).expect("connect");

    let ins = client.insert(&arena, t).expect("wire insert");
    let census_before = class_census(&store);

    // A path that does not resolve is a typed refusal...
    let err = client
        .update(ins.term, &[0, 0, 0, 0], &arena, patch)
        .expect_err("bad path refused");
    assert!(
        err.is_invalid_rewrite(),
        "expected ERR_INVALID_REWRITE: {err}"
    );

    // ...and so is a term handle the store never issued.
    let err = client
        .update(u64::MAX, &[], &arena, patch)
        .expect_err("bogus handle refused");
    assert!(
        err.is_invalid_rewrite(),
        "expected ERR_INVALID_REWRITE: {err}"
    );
    assert_eq!(
        class_census(&store),
        census_before,
        "refusals change nothing"
    );

    // The disk dies; the store flips read-only; updates are refused up
    // front with the same typed code as ingest.
    fault.fail_always(FaultKind::Enospc);
    let _ = client.insert(&arena, patch).expect_err("disk is dead");
    let err = client
        .update(ins.term, &[0, 1], &arena, patch)
        .expect_err("read-only refusal");
    assert!(err.is_read_only(), "expected ERR_READ_ONLY, got: {err}");
    assert_eq!(class_census(&store), census_before, "nothing changed");

    // Reads still serve over the same connection.
    assert!(client.lookup(&arena, t).expect("lookup serves").is_some());

    fault.clear();
    client.shutdown().expect("shutdown op");
    daemon.join();
}

/// A connection torn immediately after sending a complete `Update`
/// frame (reply never read) must leave the store consistent: the update
/// was received, so it applies exactly once, stays exact, and the
/// daemon keeps serving; a half-sent update frame applies nothing.
#[test]
fn torn_connection_mid_update_leaves_store_consistent() {
    use lambda_lang::parse::parse;

    let mut arena = ExprArena::new();
    let t = parse(&mut arena, r"\x. x + (v * 3)").unwrap();
    let patch = parse(&mut arena, "v * 4").unwrap();

    let store: Arc<AlphaStore<u64>> = Arc::new(AlphaStore::builder().seed(0xD6).build());
    let daemon = spawn_daemon(Arc::clone(&store));
    let addr = daemon.local_addr();

    let mut client = Client::connect(addr.to_string()).expect("connect");
    let ins = client.insert(&arena, t).expect("insert");

    // Raw wire client: handshake, one complete update frame, then DROP
    // the socket without reading the response.
    {
        let mut stream = TcpStream::connect(addr).expect("connect raw");
        let mut hs = Vec::new();
        wire::put_handshake(&mut hs, wire::PROTOCOL_VERSION);
        wire::write_frame(&mut stream, &hs).expect("handshake");
        let _ = wire::read_frame(&mut stream).expect("hello");

        let mut req = Vec::new();
        req.push(wire::OP_UPDATE);
        wire::put_update(&mut req, ins.term, &[0, 1], &arena, patch);
        wire::write_frame(&mut stream, &req).expect("update frame");
        // Torn: response never read, socket dropped.
    }

    // The received update still completes server-side; wait for it.
    let rewritten = parse(&mut arena, r"\q. q + (v * 4)").unwrap();
    let deadline = Instant::now() + Duration::from_secs(10);
    while store.lookup(&arena, rewritten).is_none() {
        assert!(Instant::now() < deadline, "torn update was never applied");
        std::thread::sleep(Duration::from_millis(10));
    }
    assert_eq!(store.lookup(&arena, t), None, "the old class is stale");
    assert_eq!(store.num_terms(), 1, "repointed, not re-minted");
    assert_eq!(store.stats().unconfirmed_merges, 0);

    // A half-sent update frame (header promises more than arrives) must
    // apply nothing and not wedge the daemon.
    let census_after_update = class_census(&store);
    {
        let mut stream = TcpStream::connect(addr).expect("connect raw");
        let mut hs = Vec::new();
        wire::put_handshake(&mut hs, wire::PROTOCOL_VERSION);
        wire::write_frame(&mut stream, &hs).expect("handshake");
        let _ = wire::read_frame(&mut stream).expect("hello");
        let mut req = Vec::new();
        req.push(wire::OP_UPDATE);
        wire::put_update(&mut req, ins.term, &[0, 1], &arena, patch);
        stream
            .write_all(&(req.len() as u32 + 64).to_le_bytes())
            .expect("len");
        stream.write_all(&0u32.to_le_bytes()).expect("crc");
        stream.write_all(&req).expect("partial payload");
        // Drop mid-frame.
    }
    std::thread::sleep(Duration::from_millis(50));
    assert_eq!(
        class_census(&store),
        census_after_update,
        "a torn frame applies nothing"
    );

    // The daemon still serves a normal client end to end.
    let mut client = Client::connect(addr.to_string()).expect("connect after tears");
    let hit = client.lookup(&arena, rewritten).expect("lookup");
    assert!(hit.is_some());

    client.shutdown().expect("shutdown op");
    daemon.join();
}
