//! # persistent-map
//!
//! A persistent (immutable, structurally shared) ordered map, implemented
//! as a treap with `Arc`-shared nodes (shareable across threads, so incremental hashers can be cached inside a concurrent store).
//!
//! ## Why this exists
//!
//! The paper's Haskell implementation of *Hashing Modulo Alpha-Equivalence*
//! gets persistence for free from `Data.Map`: when the §4.8 algorithm folds
//! the smaller variable map into the bigger one, the child's map version
//! survives untouched. The batch summariser in this workspace does not need
//! that (it records each node's O(1) hash before consuming its map), but the
//! **incremental engine** (paper §6.3) must *retain every node's variable
//! map* so that a rewrite can re-merge along the path to the root. Retaining
//! `n` BTreeMaps costs O(n²) memory in the worst case; retaining `n` treap
//! versions costs O(total update work) ≈ O(n log n), exactly like Haskell.
//!
//! ## Design
//!
//! * Treap priorities are derived deterministically from the key's hash, so
//!   a given key set always produces the same tree shape (canonical form),
//!   and expected depth is O(log n).
//! * All operations take `&self` and return a new map sharing structure
//!   with the old one. `Clone` is O(1).
//!
//! ## Example
//!
//! ```
//! use persistent_map::PMap;
//!
//! let empty: PMap<&str, i32> = PMap::new();
//! let (one, _) = empty.insert("a", 1);
//! let (two, _) = one.insert("b", 2);
//! let (gone, removed) = two.remove(&"a");
//! assert_eq!(removed, Some(1));
//! assert_eq!(one.get(&"a"), Some(&1)); // old versions unaffected
//! assert_eq!(gone.len(), 1);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::collections::hash_map::DefaultHasher;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

type Link<K, V> = Option<Arc<TreapNode<K, V>>>;

#[derive(Debug)]
struct TreapNode<K, V> {
    key: K,
    value: V,
    priority: u64,
    size: usize,
    left: Link<K, V>,
    right: Link<K, V>,
}

fn size<K, V>(link: &Link<K, V>) -> usize {
    link.as_ref().map_or(0, |n| n.size)
}

fn priority_of<K: Hash>(key: &K) -> u64 {
    let mut hasher = DefaultHasher::new();
    key.hash(&mut hasher);
    // splitmix64 finaliser to spread consecutive hashes.
    let mut z = hasher.finish().wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A persistent ordered map with O(1) clone and O(log n) expected-time
/// insert/remove/lookup. See the crate docs for the role it plays in the
/// incremental hashing engine.
pub struct PMap<K, V> {
    root: Link<K, V>,
}

impl<K, V> Clone for PMap<K, V> {
    fn clone(&self) -> Self {
        PMap {
            root: self.root.clone(),
        }
    }
}

impl<K, V> Default for PMap<K, V> {
    fn default() -> Self {
        PMap { root: None }
    }
}

impl<K: Ord + Hash + Clone, V: Clone> PMap<K, V> {
    /// Creates an empty map.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of entries. O(1).
    pub fn len(&self) -> usize {
        size(&self.root)
    }

    /// Whether the map is empty.
    pub fn is_empty(&self) -> bool {
        self.root.is_none()
    }

    /// Looks up a key. O(log n) expected.
    pub fn get(&self, key: &K) -> Option<&V> {
        let mut cur = &self.root;
        while let Some(node) = cur {
            match key.cmp(&node.key) {
                std::cmp::Ordering::Less => cur = &node.left,
                std::cmp::Ordering::Greater => cur = &node.right,
                std::cmp::Ordering::Equal => return Some(&node.value),
            }
        }
        None
    }

    /// Whether the key is present.
    pub fn contains_key(&self, key: &K) -> bool {
        self.get(key).is_some()
    }

    /// Returns a new map with `key ↦ value`, along with the previous value
    /// for `key` if any. The original map is unchanged.
    pub fn insert(&self, key: K, value: V) -> (Self, Option<V>) {
        let priority = priority_of(&key);
        let (root, old) = insert_rec(&self.root, key, value, priority);
        (PMap { root }, old)
    }

    /// Returns a new map without `key`, along with the removed value if it
    /// was present. The original map is unchanged.
    pub fn remove(&self, key: &K) -> (Self, Option<V>) {
        let (root, old) = remove_rec(&self.root, key);
        (PMap { root }, old)
    }

    /// Updates the entry for `key` through `f`: `f` receives the current
    /// value (if any) and returns the new value (or `None` to delete).
    /// This mirrors the paper's `alterVM` (§4.8).
    pub fn alter(&self, key: K, f: impl FnOnce(Option<&V>) -> Option<V>) -> Self {
        match f(self.get(&key)) {
            Some(v) => self.insert(key, v).0,
            None => self.remove(&key).0,
        }
    }

    /// In-order iterator over `(key, value)` pairs.
    pub fn iter(&self) -> Iter<'_, K, V> {
        let mut iter = Iter { stack: Vec::new() };
        iter.push_left_spine(&self.root);
        iter
    }

    /// Unions `smaller` into `self` (the bigger map), calling `join`
    /// **exactly once per entry of `smaller`** — with the bigger map's
    /// value for that key if present — to decide the merged value. Keys
    /// present only in `self` keep their value without a `join` call,
    /// which is what makes this the §4.8 smaller-into-bigger merge: the
    /// work (and the Lemma 6.1 `merge_ops` accounting the caller keeps)
    /// is proportional to the smaller side.
    ///
    /// The recursion is priority-directed (the higher-priority root wins
    /// and the other tree is split by its key), which gives the classic
    /// O(m log(n/m + 1)) bound for m = `smaller.len()`, n = `self.len()`
    /// — degrading gracefully to O(n + m) when the maps interleave and to
    /// O(m log n) when `smaller` is tiny. Because priorities derive
    /// deterministically from keys, the result has the canonical shape
    /// for its key set no matter how the union interleaved.
    ///
    /// `join` call order is **unspecified** (it follows the tree
    /// structure, not key order); callers must fold with commutative
    /// state, as the XOR map-hash does.
    pub fn union_join(
        &self,
        smaller: &Self,
        mut join: impl FnMut(&K, Option<&V>, &V) -> V,
    ) -> Self {
        PMap {
            root: union_rec(&self.root, &smaller.root, &mut join),
        }
    }

    /// Splits into (entries < `key`, value at `key`, entries > `key`).
    /// Both sides share structure with `self`. O(log n) expected.
    pub fn split(&self, key: &K) -> (Self, Option<V>, Self) {
        let (l, v, r) = split_rec(&self.root, key);
        (PMap { root: l }, v, PMap { root: r })
    }

    /// In-order iterator over keys.
    pub fn keys(&self) -> impl Iterator<Item = &K> {
        self.iter().map(|(k, _)| k)
    }

    /// In-order iterator over values.
    pub fn values(&self) -> impl Iterator<Item = &V> {
        self.iter().map(|(_, v)| v)
    }
}

fn insert_rec<K: Ord + Hash + Clone, V: Clone>(
    link: &Link<K, V>,
    key: K,
    value: V,
    priority: u64,
) -> (Link<K, V>, Option<V>) {
    let Some(node) = link else {
        return (
            Some(Arc::new(TreapNode {
                key,
                value,
                priority,
                size: 1,
                left: None,
                right: None,
            })),
            None,
        );
    };
    match key.cmp(&node.key) {
        std::cmp::Ordering::Equal => {
            let old = node.value.clone();
            (
                Some(Arc::new(TreapNode {
                    key,
                    value,
                    priority: node.priority,
                    size: node.size,
                    left: node.left.clone(),
                    right: node.right.clone(),
                })),
                Some(old),
            )
        }
        std::cmp::Ordering::Less => {
            let (new_left, old) = insert_rec(&node.left, key, value, priority);
            let rebuilt = rebuild(node, new_left, node.right.clone());
            (Some(rotate_if_needed(rebuilt)), old)
        }
        std::cmp::Ordering::Greater => {
            let (new_right, old) = insert_rec(&node.right, key, value, priority);
            let rebuilt = rebuild(node, node.left.clone(), new_right);
            (Some(rotate_if_needed(rebuilt)), old)
        }
    }
}

fn rebuild<K: Clone, V: Clone>(
    node: &Arc<TreapNode<K, V>>,
    left: Link<K, V>,
    right: Link<K, V>,
) -> Arc<TreapNode<K, V>> {
    Arc::new(TreapNode {
        key: node.key.clone(),
        value: node.value.clone(),
        priority: node.priority,
        size: 1 + size(&left) + size(&right),
        left,
        right,
    })
}

/// Restores the heap property when a freshly inserted child may outrank its
/// parent.
fn rotate_if_needed<K: Clone, V: Clone>(node: Arc<TreapNode<K, V>>) -> Arc<TreapNode<K, V>> {
    if let Some(left) = &node.left {
        if left.priority > node.priority {
            // Rotate right: left child becomes the root.
            let new_right = rebuild(&node, left.right.clone(), node.right.clone());
            return rebuild(left, left.left.clone(), Some(new_right));
        }
    }
    if let Some(right) = &node.right {
        if right.priority > node.priority {
            // Rotate left: right child becomes the root.
            let new_left = rebuild(&node, node.left.clone(), right.left.clone());
            return rebuild(right, Some(new_left), right.right.clone());
        }
    }
    node
}

fn remove_rec<K: Ord + Hash + Clone, V: Clone>(
    link: &Link<K, V>,
    key: &K,
) -> (Link<K, V>, Option<V>) {
    let Some(node) = link else {
        return (None, None);
    };
    match key.cmp(&node.key) {
        std::cmp::Ordering::Equal => {
            let merged = merge(node.left.clone(), node.right.clone());
            (merged, Some(node.value.clone()))
        }
        std::cmp::Ordering::Less => {
            let (new_left, old) = remove_rec(&node.left, key);
            if old.is_none() {
                // Nothing removed: share the original tree.
                return (Some(node.clone()), None);
            }
            (Some(rebuild(node, new_left, node.right.clone())), old)
        }
        std::cmp::Ordering::Greater => {
            let (new_right, old) = remove_rec(&node.right, key);
            if old.is_none() {
                return (Some(node.clone()), None);
            }
            (Some(rebuild(node, node.left.clone(), new_right)), old)
        }
    }
}

fn split_rec<K: Ord + Hash + Clone, V: Clone>(
    link: &Link<K, V>,
    key: &K,
) -> (Link<K, V>, Option<V>, Link<K, V>) {
    let Some(node) = link else {
        return (None, None, None);
    };
    match key.cmp(&node.key) {
        std::cmp::Ordering::Equal => (
            node.left.clone(),
            Some(node.value.clone()),
            node.right.clone(),
        ),
        std::cmp::Ordering::Less => {
            let (ll, v, lr) = split_rec(&node.left, key);
            (ll, v, Some(rebuild(node, lr, node.right.clone())))
        }
        std::cmp::Ordering::Greater => {
            let (rl, v, rr) = split_rec(&node.right, key);
            (Some(rebuild(node, node.left.clone(), rl)), v, rr)
        }
    }
}

/// Priority-directed union: the higher-priority root becomes the result
/// root and the other tree is split by its key. `join` fires once per
/// node that originated in `small` (see [`PMap::union_join`]).
fn union_rec<K: Ord + Hash + Clone, V: Clone, F: FnMut(&K, Option<&V>, &V) -> V>(
    big: &Link<K, V>,
    small: &Link<K, V>,
    join: &mut F,
) -> Link<K, V> {
    match (big, small) {
        (b, None) => b.clone(),
        (None, Some(_)) => map_absent(small, join),
        (Some(b), Some(s)) => {
            if b.priority >= s.priority {
                let (sl, sv, sr) = split_rec(small, &b.key);
                let left = union_rec(&b.left, &sl, join);
                let right = union_rec(&b.right, &sr, join);
                let value = match &sv {
                    Some(v) => join(&b.key, Some(&b.value), v),
                    None => b.value.clone(),
                };
                Some(Arc::new(TreapNode {
                    key: b.key.clone(),
                    value,
                    priority: b.priority,
                    size: 1 + size(&left) + size(&right),
                    left,
                    right,
                }))
            } else {
                let (bl, bv, br) = split_rec(big, &s.key);
                let left = union_rec(&bl, &s.left, join);
                let right = union_rec(&br, &s.right, join);
                let value = join(&s.key, bv.as_ref(), &s.value);
                Some(Arc::new(TreapNode {
                    key: s.key.clone(),
                    value,
                    priority: s.priority,
                    size: 1 + size(&left) + size(&right),
                    left,
                    right,
                }))
            }
        }
    }
}

/// Rebuilds a small-only subtree, applying `join(key, None, value)` to
/// every entry (shape and priorities preserved).
fn map_absent<K: Clone, V: Clone, F: FnMut(&K, Option<&V>, &V) -> V>(
    link: &Link<K, V>,
    join: &mut F,
) -> Link<K, V> {
    link.as_ref().map(|n| {
        let left = map_absent(&n.left, join);
        let value = join(&n.key, None, &n.value);
        let right = map_absent(&n.right, join);
        Arc::new(TreapNode {
            key: n.key.clone(),
            value,
            priority: n.priority,
            size: n.size,
            left,
            right,
        })
    })
}

/// Merges two treaps where every key in `a` precedes every key in `b`.
fn merge<K: Clone, V: Clone>(a: Link<K, V>, b: Link<K, V>) -> Link<K, V> {
    match (a, b) {
        (None, b) => b,
        (a, None) => a,
        (Some(na), Some(nb)) => {
            if na.priority >= nb.priority {
                let new_right = merge(na.right.clone(), Some(nb));
                Some(rebuild(&na, na.left.clone(), new_right))
            } else {
                let new_left = merge(Some(na), nb.left.clone());
                Some(rebuild(&nb, new_left, nb.right.clone()))
            }
        }
    }
}

/// In-order iterator over a [`PMap`].
pub struct Iter<'a, K, V> {
    stack: Vec<&'a TreapNode<K, V>>,
}

impl<'a, K, V> Iter<'a, K, V> {
    fn push_left_spine(&mut self, mut link: &'a Link<K, V>) {
        while let Some(node) = link {
            self.stack.push(node);
            link = &node.left;
        }
    }
}

impl<'a, K, V> Iterator for Iter<'a, K, V> {
    type Item = (&'a K, &'a V);

    fn next(&mut self) -> Option<Self::Item> {
        let node = self.stack.pop()?;
        self.push_left_spine(&node.right);
        Some((&node.key, &node.value))
    }
}

impl<K: Ord + Hash + Clone, V: Clone> FromIterator<(K, V)> for PMap<K, V> {
    fn from_iter<I: IntoIterator<Item = (K, V)>>(iter: I) -> Self {
        let mut map = PMap::new();
        for (k, v) in iter {
            map = map.insert(k, v).0;
        }
        map
    }
}

impl<K: Ord + Hash + Clone, V: Clone + PartialEq> PartialEq for PMap<K, V> {
    fn eq(&self, other: &Self) -> bool {
        self.len() == other.len()
            && self
                .iter()
                .zip(other.iter())
                .all(|((k1, v1), (k2, v2))| k1 == k2 && v1 == v2)
    }
}

impl<K: Ord + Hash + Clone, V: Clone + Eq> Eq for PMap<K, V> {}

impl<K: Ord + Hash + Clone + fmt::Debug, V: Clone + fmt::Debug> fmt::Debug for PMap<K, V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_map().entries(self.iter()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_map() {
        let m: PMap<i32, i32> = PMap::new();
        assert!(m.is_empty());
        assert_eq!(m.len(), 0);
        assert_eq!(m.get(&1), None);
        assert_eq!(m.iter().count(), 0);
    }

    #[test]
    fn insert_get_remove() {
        let m: PMap<i32, &str> = PMap::new();
        let (m, old) = m.insert(1, "one");
        assert_eq!(old, None);
        let (m, old) = m.insert(2, "two");
        assert_eq!(old, None);
        assert_eq!(m.get(&1), Some(&"one"));
        assert_eq!(m.get(&2), Some(&"two"));
        assert_eq!(m.len(), 2);

        let (m, removed) = m.remove(&1);
        assert_eq!(removed, Some("one"));
        assert_eq!(m.get(&1), None);
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn insert_replaces_value() {
        let m: PMap<i32, i32> = PMap::new();
        let (m, _) = m.insert(1, 10);
        let (m, old) = m.insert(1, 20);
        assert_eq!(old, Some(10));
        assert_eq!(m.get(&1), Some(&20));
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn persistence_old_versions_survive() {
        let m0: PMap<i32, i32> = PMap::new();
        let (m1, _) = m0.insert(1, 1);
        let (m2, _) = m1.insert(2, 2);
        let (m3, _) = m2.remove(&1);

        assert_eq!(m0.len(), 0);
        assert_eq!(m1.len(), 1);
        assert_eq!(m2.len(), 2);
        assert_eq!(m3.len(), 1);
        assert_eq!(m1.get(&1), Some(&1));
        assert_eq!(m3.get(&1), None);
        assert_eq!(m3.get(&2), Some(&2));
    }

    #[test]
    fn remove_missing_key_shares_tree() {
        let m: PMap<i32, i32> = (0..10).map(|i| (i, i)).collect();
        let (m2, removed) = m.remove(&100);
        assert_eq!(removed, None);
        assert_eq!(m2.len(), 10);
        assert_eq!(m, m2);
    }

    #[test]
    fn iteration_is_in_key_order() {
        let keys = [5, 3, 9, 1, 7, 2, 8, 0, 6, 4];
        let m: PMap<i32, i32> = keys.iter().map(|&k| (k, k * 10)).collect();
        let collected: Vec<i32> = m.keys().copied().collect();
        assert_eq!(collected, (0..10).collect::<Vec<_>>());
        assert_eq!(
            m.values().copied().sum::<i32>(),
            (0..10).map(|k| k * 10).sum()
        );
    }

    #[test]
    fn alter_inserts_updates_and_removes() {
        let m: PMap<&str, i32> = PMap::new();
        let m = m.alter("x", |old| {
            assert_eq!(old, None);
            Some(1)
        });
        assert_eq!(m.get(&"x"), Some(&1));
        let m = m.alter("x", |old| old.map(|v| v + 1));
        assert_eq!(m.get(&"x"), Some(&2));
        let m = m.alter("x", |_| None);
        assert!(m.is_empty());
    }

    #[test]
    fn equality_by_contents() {
        let a: PMap<i32, i32> = [(1, 1), (2, 2)].into_iter().collect();
        let b: PMap<i32, i32> = [(2, 2), (1, 1)].into_iter().collect();
        assert_eq!(a, b);
        let c = a.insert(3, 3).0;
        assert_ne!(a, c);
    }

    #[test]
    fn canonical_shape_for_same_key_set() {
        // Deterministic priorities mean insertion order cannot change the
        // tree; we can only observe this indirectly, via iteration and
        // equality, but also via Debug output of the same contents.
        let a: PMap<i32, i32> = (0..100).map(|i| (i, i)).collect();
        let b: PMap<i32, i32> = (0..100).rev().map(|i| (i, i)).collect();
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
    }

    #[test]
    fn large_map_depth_is_logarithmic_enough() {
        // Insert 100k keys; operations must stay fast and the recursion
        // must not overflow (expected depth ~2·log2(n) ≈ 34).
        let mut m: PMap<u64, u64> = PMap::new();
        for i in 0..100_000u64 {
            m = m.insert(i, i).0;
        }
        assert_eq!(m.len(), 100_000);
        for i in (0..100_000u64).step_by(997) {
            assert_eq!(m.get(&i), Some(&i));
        }
        for i in 0..50_000u64 {
            m = m.remove(&i).0;
        }
        assert_eq!(m.len(), 50_000);
    }

    #[test]
    fn split_partitions_around_key() {
        let m: PMap<i32, i32> = (0..20).map(|i| (i, i * 10)).collect();
        let (lo, mid, hi) = m.split(&7);
        assert_eq!(mid, Some(70));
        assert_eq!(
            lo.keys().copied().collect::<Vec<_>>(),
            (0..7).collect::<Vec<_>>()
        );
        assert_eq!(
            hi.keys().copied().collect::<Vec<_>>(),
            (8..20).collect::<Vec<_>>()
        );
        let (lo2, none, hi2) = m.split(&100);
        assert_eq!(none, None);
        assert_eq!(lo2.len(), 20);
        assert!(hi2.is_empty());
        assert_eq!(m.len(), 20); // original untouched
    }

    #[test]
    fn union_join_matches_btreemap_oracle() {
        use std::collections::BTreeMap;
        // Overlapping, disjoint, and nested key sets, several sizes.
        let cases: &[(Vec<i32>, Vec<i32>)] = &[
            (vec![], vec![1, 2, 3]),
            (vec![1, 2, 3], vec![]),
            ((0..50).collect(), (25..60).collect()),
            ((0..100).step_by(2).collect(), (1..100).step_by(2).collect()),
            ((0..100).collect(), vec![13, 42, 77]),
        ];
        for (big_keys, small_keys) in cases {
            let big: PMap<i32, i64> = big_keys.iter().map(|&k| (k, i64::from(k))).collect();
            let small: PMap<i32, i64> = small_keys
                .iter()
                .map(|&k| (k, i64::from(k) * 100))
                .collect();
            let mut joins = 0usize;
            let merged = big.union_join(&small, |_k, old, new| {
                joins += 1;
                old.copied().unwrap_or(0) + new
            });
            assert_eq!(joins, small.len(), "join fires once per smaller entry");
            let mut oracle: BTreeMap<i32, i64> = big.iter().map(|(k, v)| (*k, *v)).collect();
            for (k, v) in small.iter() {
                let old = oracle.get(k).copied();
                oracle.insert(*k, old.unwrap_or(0) + v);
            }
            let got: BTreeMap<i32, i64> = merged.iter().map(|(k, v)| (*k, *v)).collect();
            assert_eq!(got, oracle);
            // Canonical shape: same contents built by insertion compare
            // equal in Debug form too (deterministic priorities).
            let rebuilt: PMap<i32, i64> = oracle.into_iter().collect();
            assert_eq!(format!("{merged:?}"), format!("{rebuilt:?}"));
            // Inputs unchanged.
            assert_eq!(big.len(), big_keys.len());
            assert_eq!(small.len(), small_keys.len());
        }
    }

    #[test]
    fn clone_is_cheap_and_independent() {
        let m: PMap<i32, i32> = (0..10).map(|i| (i, i)).collect();
        let snapshot = m.clone();
        let m2 = m.insert(42, 42).0;
        assert_eq!(snapshot.len(), 10);
        assert_eq!(m2.len(), 11);
    }
}
