//! Model-based property tests: `PMap` must behave exactly like
//! `std::collections::BTreeMap` under arbitrary operation sequences, and
//! old versions must be unaffected by later operations.

use persistent_map::PMap;
use proptest::prelude::*;
use std::collections::BTreeMap;

#[derive(Clone, Debug)]
enum Op {
    Insert(u8, u16),
    Remove(u8),
    AlterAdd(u8, u16),
    AlterDelete(u8),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (any::<u8>(), any::<u16>()).prop_map(|(k, v)| Op::Insert(k, v)),
        any::<u8>().prop_map(Op::Remove),
        (any::<u8>(), any::<u16>()).prop_map(|(k, v)| Op::AlterAdd(k, v)),
        any::<u8>().prop_map(Op::AlterDelete),
    ]
}

fn assert_same(pmap: &PMap<u8, u16>, model: &BTreeMap<u8, u16>) {
    assert_eq!(pmap.len(), model.len());
    let pairs: Vec<(u8, u16)> = pmap.iter().map(|(&k, &v)| (k, v)).collect();
    let model_pairs: Vec<(u8, u16)> = model.iter().map(|(&k, &v)| (k, v)).collect();
    assert_eq!(pairs, model_pairs);
}

proptest! {
    #[test]
    fn pmap_matches_btreemap(ops in proptest::collection::vec(op_strategy(), 0..200)) {
        let mut pmap: PMap<u8, u16> = PMap::new();
        let mut model: BTreeMap<u8, u16> = BTreeMap::new();

        for op in ops {
            match op {
                Op::Insert(k, v) => {
                    let (next, old) = pmap.insert(k, v);
                    let model_old = model.insert(k, v);
                    prop_assert_eq!(old, model_old);
                    pmap = next;
                }
                Op::Remove(k) => {
                    let (next, old) = pmap.remove(&k);
                    let model_old = model.remove(&k);
                    prop_assert_eq!(old, model_old);
                    pmap = next;
                }
                Op::AlterAdd(k, v) => {
                    pmap = pmap.alter(k, |old| Some(old.copied().unwrap_or(0).wrapping_add(v)));
                    let entry = model.entry(k).or_insert(0);
                    *entry = entry.wrapping_add(v);
                }
                Op::AlterDelete(k) => {
                    pmap = pmap.alter(k, |_| None);
                    model.remove(&k);
                }
            }
            // Point lookups agree on every key touched so far.
            for k in model.keys() {
                prop_assert_eq!(pmap.get(k), model.get(k));
            }
        }
        assert_same(&pmap, &model);
    }

    #[test]
    fn versions_are_immutable(
        base in proptest::collection::btree_map(any::<u8>(), any::<u16>(), 0..50),
        ops in proptest::collection::vec(op_strategy(), 1..50),
    ) {
        let pmap: PMap<u8, u16> = base.iter().map(|(&k, &v)| (k, v)).collect();
        let snapshot = pmap.clone();

        // Apply destructive operations to a separate lineage.
        let mut working = pmap;
        for op in ops {
            working = match op {
                Op::Insert(k, v) => working.insert(k, v).0,
                Op::Remove(k) => working.remove(&k).0,
                Op::AlterAdd(k, v) => working.alter(k, |_| Some(v)),
                Op::AlterDelete(k) => working.alter(k, |_| None),
            };
        }

        // The snapshot still matches the original model exactly.
        assert_same(&snapshot, &base);
    }

    #[test]
    fn from_iterator_agrees_with_incremental(
        entries in proptest::collection::vec((any::<u8>(), any::<u16>()), 0..100)
    ) {
        let collected: PMap<u8, u16> = entries.iter().copied().collect();
        let mut incremental: PMap<u8, u16> = PMap::new();
        for &(k, v) in &entries {
            incremental = incremental.insert(k, v).0;
        }
        prop_assert_eq!(collected, incremental);
    }
}
