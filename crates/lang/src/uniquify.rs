//! Binder uniquification — the preprocessing step of paper §2.2.
//!
//! All the hashing algorithms assume "every binding site binds a distinct
//! variable name". This pass establishes the invariant by giving every
//! binder a fresh name (free variables are untouched), in time O(n log n).
//! [`check_unique_binders`] verifies the invariant; the summarisers
//! `debug_assert!` it at their entry points.

use crate::arena::{ExprArena, ExprNode, NodeId};
use crate::symbol::Symbol;
use std::collections::{HashMap, HashSet};

enum Task {
    Visit(NodeId),
    BuildLam {
        fresh: Symbol,
        undo: (Symbol, Option<Symbol>),
    },
    BuildApp,
    /// The rhs of this `Let` has been visited; bind the binder and visit
    /// the body.
    LetBody {
        binder: Symbol,
        body: NodeId,
    },
    BuildLet {
        fresh: Symbol,
        undo: (Symbol, Option<Symbol>),
    },
}

/// Copies the subtree at `root` into `dst`, renaming every binder to a
/// fresh name so that all binding sites are distinct (both within the copy
/// and against anything already interned in `dst`). Free variables keep
/// their names. Returns the new root. Iterative; safe at any depth.
///
/// # Examples
///
/// ```
/// use lambda_lang::arena::ExprArena;
/// use lambda_lang::parse::parse;
/// use lambda_lang::uniquify::{uniquify_into, check_unique_binders};
/// use lambda_lang::alpha::alpha_eq;
///
/// let mut a = ExprArena::new();
/// // Shadowing: two binding sites named x.
/// let e = parse(&mut a, r"\x. \x. x")?;
/// assert!(check_unique_binders(&a, e).is_err());
///
/// let mut b = ExprArena::new();
/// let u = uniquify_into(&a, e, &mut b);
/// assert!(check_unique_binders(&b, u).is_ok());
/// assert!(alpha_eq(&a, e, &b, u)); // alpha-classes are preserved
/// # Ok::<(), lambda_lang::parse::ParseError>(())
/// ```
pub fn uniquify_into(src: &ExprArena, root: NodeId, dst: &mut ExprArena) -> NodeId {
    let mut env: HashMap<Symbol, Symbol> = HashMap::new();
    let mut results: Vec<NodeId> = Vec::new();
    let mut stack = vec![Task::Visit(root)];

    while let Some(task) = stack.pop() {
        match task {
            Task::Visit(n) => match src.node(n) {
                ExprNode::Var(s) => {
                    let sym = match env.get(&s) {
                        Some(&renamed) => renamed,
                        None => dst.intern(src.name(s)),
                    };
                    let id = dst.var(sym);
                    results.push(id);
                }
                ExprNode::Lit(l) => {
                    let id = dst.lit(l);
                    results.push(id);
                }
                ExprNode::Lam(x, b) => {
                    let fresh = dst.fresh(src.name(x));
                    let old = env.insert(x, fresh);
                    stack.push(Task::BuildLam {
                        fresh,
                        undo: (x, old),
                    });
                    stack.push(Task::Visit(b));
                }
                ExprNode::App(f, a) => {
                    stack.push(Task::BuildApp);
                    stack.push(Task::Visit(a));
                    stack.push(Task::Visit(f));
                }
                ExprNode::Let(x, rhs, body) => {
                    stack.push(Task::LetBody { binder: x, body });
                    stack.push(Task::Visit(rhs));
                }
            },
            Task::BuildLam { fresh, undo } => {
                let body = results.pop().expect("lam body result");
                let id = dst.lam(fresh, body);
                results.push(id);
                restore(&mut env, undo);
            }
            Task::BuildApp => {
                let arg = results.pop().expect("app arg result");
                let func = results.pop().expect("app func result");
                let id = dst.app(func, arg);
                results.push(id);
            }
            Task::LetBody { binder, body } => {
                // rhs has been visited in the *outer* scope; now shadow.
                let fresh = dst.fresh(src.name(binder));
                let old = env.insert(binder, fresh);
                stack.push(Task::BuildLet {
                    fresh,
                    undo: (binder, old),
                });
                stack.push(Task::Visit(body));
            }
            Task::BuildLet { fresh, undo } => {
                let body = results.pop().expect("let body result");
                let rhs = results.pop().expect("let rhs result");
                let id = dst.let_(fresh, rhs, body);
                results.push(id);
                restore(&mut env, undo);
            }
        }
    }

    let root = results.pop().expect("uniquify produced a root");
    debug_assert!(results.is_empty());
    root
}

fn restore(env: &mut HashMap<Symbol, Symbol>, (sym, old): (Symbol, Option<Symbol>)) {
    match old {
        Some(v) => {
            env.insert(sym, v);
        }
        None => {
            env.remove(&sym);
        }
    }
}

/// Convenience wrapper: uniquify into a fresh arena.
pub fn uniquify(src: &ExprArena, root: NodeId) -> (ExprArena, NodeId) {
    let mut dst = ExprArena::new();
    let new_root = uniquify_into(src, root, &mut dst);
    (dst, new_root)
}

/// Checks the unique-binder invariant required by the hashing algorithms:
/// no two binding sites in the subtree share a symbol.
///
/// # Errors
///
/// Returns the first duplicated binder symbol found.
pub fn check_unique_binders(arena: &ExprArena, root: NodeId) -> Result<(), Symbol> {
    let mut seen: HashSet<Symbol> = HashSet::new();
    for n in crate::visit::preorder(arena, root) {
        if let Some(x) = arena.node(n).binder() {
            if !seen.insert(x) {
                return Err(x);
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alpha::alpha_eq;
    use crate::parse::parse;

    fn uniquified(src: &str) -> (ExprArena, NodeId, ExprArena, NodeId) {
        let mut a = ExprArena::new();
        let root = parse(&mut a, src).unwrap();
        let (b, new_root) = uniquify(&a, root);
        (a, root, b, new_root)
    }

    #[test]
    fn preserves_alpha_class() {
        for src in [
            r"\x. x + y",
            r"let x = 1 in let x = x + 1 in x",
            r"(\x. x) (\x. x)",
            r"\x. \x. \x. x",
            "foo (let bar = x+1 in bar*y) (let p = x+1 in p*y)",
        ] {
            let (a, r, b, u) = uniquified(src);
            assert!(alpha_eq(&a, r, &b, u), "uniquify changed class of {src}");
            assert!(
                check_unique_binders(&b, u).is_ok(),
                "binders not unique for {src}"
            );
        }
    }

    #[test]
    fn free_variables_keep_their_names() {
        let (_, _, b, u) = uniquified(r"\x. x + y");
        let text = crate::print::print(&b, u);
        assert!(text.contains("+ y"), "free y renamed: {text}");
    }

    #[test]
    fn detects_duplicate_binders() {
        let mut a = ExprArena::new();
        let e = parse(&mut a, r"(\x. x) (\x. x)").unwrap();
        assert!(check_unique_binders(&a, e).is_err());

        let e2 = parse(&mut a, r"(\x. x) (\y. y)").unwrap();
        assert!(check_unique_binders(&a, e2).is_ok());
    }

    #[test]
    fn let_rhs_sees_outer_binding() {
        // `let x = 1 in let x = x in x` — the inner rhs `x` refers to the
        // OUTER binder; uniquify must keep it that way.
        let (a, r, b, u) = uniquified("let x = 1 in let x = x in x");
        assert!(alpha_eq(&a, r, &b, u));
        // And NOT equivalent to a version where the inner rhs is self-bound
        // (which isn't even expressible with non-recursive let).
        let mut c = ExprArena::new();
        let other = parse(&mut c, "let p = 1 in let q = p in p").unwrap();
        assert!(!alpha_eq(&b, u, &c, other));
    }

    #[test]
    fn shadowed_occurrences_rebind_correctly() {
        let (a, r, b, u) = uniquified(r"\x. x ((\x. x) x)");
        assert!(alpha_eq(&a, r, &b, u));
        assert!(check_unique_binders(&b, u).is_ok());
    }

    #[test]
    fn idempotent_up_to_alpha() {
        let (_, _, b, u) = uniquified(r"\x. let y = x in y x");
        let (c, u2) = uniquify(&b, u);
        assert!(alpha_eq(&b, u, &c, u2));
    }

    #[test]
    fn stack_safe_on_deep_input() {
        let mut a = ExprArena::new();
        let x = a.intern("x");
        let mut e = a.var(x);
        for _ in 0..150_000 {
            e = a.lam(x, e); // 150k shadowing binders
        }
        let (b, u) = uniquify(&a, e);
        assert!(check_unique_binders(&b, u).is_ok());
        assert_eq!(b.subtree_size(u), 150_001);
    }

    #[test]
    fn size_is_preserved() {
        let (a, r, b, u) = uniquified("let w = v + 7 in (a + w) * w");
        assert_eq!(a.subtree_size(r), b.subtree_size(u));
    }
}
