//! Expression statistics: free variables, binder inventories, summary
//! metrics used by the workload generators and the benchmark reports.

use crate::arena::{ExprArena, ExprNode, NodeId};
use crate::symbol::Symbol;
use crate::visit::{walk_scoped, ScopeEvent};
use std::collections::BTreeMap;

/// Occurrence counts of the free variables of the subtree at `root`,
/// respecting scoping (a name is free only where no enclosing binder binds
/// it). Iterative; handles shadowing.
///
/// # Examples
///
/// ```
/// use lambda_lang::arena::ExprArena;
/// use lambda_lang::parse::parse;
/// use lambda_lang::stats::free_vars;
///
/// let mut a = ExprArena::new();
/// let e = parse(&mut a, r"\x. x + y + y")?;
/// let fv = free_vars(&a, e);
/// let mut names: Vec<(&str, usize)> =
///     fv.iter().map(|(&s, &n)| (a.name(s), n)).collect();
/// names.sort(); // the map is keyed by symbol index, not by name
/// assert_eq!(names, vec![("add", 2), ("y", 2)]);
/// # Ok::<(), lambda_lang::parse::ParseError>(())
/// ```
pub fn free_vars(arena: &ExprArena, root: NodeId) -> BTreeMap<Symbol, usize> {
    let mut counts: BTreeMap<Symbol, usize> = BTreeMap::new();
    // Shadowing-aware scope: per-symbol nesting depth.
    let mut bound: BTreeMap<Symbol, u32> = BTreeMap::new();
    walk_scoped(arena, root, |ev| match ev {
        ScopeEvent::Bind { sym, .. } => {
            *bound.entry(sym).or_insert(0) += 1;
        }
        ScopeEvent::Unbind { sym, .. } => {
            let depth = bound.get_mut(&sym).expect("unbind without bind");
            *depth -= 1;
            if *depth == 0 {
                bound.remove(&sym);
            }
        }
        ScopeEvent::Enter(n) => {
            if let ExprNode::Var(s) = arena.node(n) {
                if !bound.contains_key(&s) {
                    *counts.entry(s).or_insert(0) += 1;
                }
            }
        }
        ScopeEvent::Exit(_) => {}
    });
    counts
}

/// Whether the subtree has no free variables.
pub fn is_closed(arena: &ExprArena, root: NodeId) -> bool {
    free_vars(arena, root).is_empty()
}

/// All binder symbols in the subtree, in pre-order.
pub fn binders(arena: &ExprArena, root: NodeId) -> Vec<Symbol> {
    crate::visit::preorder(arena, root)
        .into_iter()
        .filter_map(|n| arena.node(n).binder())
        .collect()
}

/// Shape summary of an expression, for benchmark reports.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ExprStats {
    /// Total node count.
    pub nodes: usize,
    /// Longest root-to-leaf path, in nodes.
    pub depth: usize,
    /// Number of binding sites (lambdas + lets).
    pub binders: usize,
    /// Number of variable occurrences.
    pub var_occurrences: usize,
    /// Number of distinct free variables.
    pub free_vars: usize,
}

/// Computes [`ExprStats`] in two iterative passes.
pub fn stats(arena: &ExprArena, root: NodeId) -> ExprStats {
    let mut nodes = 0usize;
    let mut binder_count = 0usize;
    let mut var_occurrences = 0usize;
    for n in crate::visit::preorder(arena, root) {
        nodes += 1;
        let node = arena.node(n);
        if node.binder().is_some() {
            binder_count += 1;
        }
        if matches!(node, ExprNode::Var(_)) {
            var_occurrences += 1;
        }
    }
    ExprStats {
        nodes,
        depth: arena.subtree_depth(root),
        binders: binder_count,
        var_occurrences,
        free_vars: free_vars(arena, root).len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse;

    fn parsed(src: &str) -> (ExprArena, NodeId) {
        let mut a = ExprArena::new();
        let r = parse(&mut a, src).unwrap();
        (a, r)
    }

    #[test]
    fn free_vars_respect_scope() {
        let (a, r) = parsed(r"\x. x y");
        let fv = free_vars(&a, r);
        assert_eq!(fv.len(), 1);
        let (&sym, &count) = fv.iter().next().unwrap();
        assert_eq!(a.name(sym), "y");
        assert_eq!(count, 1);
    }

    #[test]
    fn shadowing_does_not_leak() {
        // The occurrence of x inside the inner lambda is bound by the inner
        // binder; after leaving it, x is bound by the outer one. No free x.
        let (a, r) = parsed(r"\x. (\x. x) x");
        assert!(free_vars(&a, r).is_empty());
    }

    #[test]
    fn let_rhs_occurrence_is_free() {
        let (a, r) = parsed("let x = x in x");
        let fv = free_vars(&a, r);
        assert_eq!(fv.len(), 1);
        let (&sym, &count) = fv.iter().next().unwrap();
        assert_eq!(a.name(sym), "x");
        assert_eq!(count, 1, "only the rhs occurrence is free");
    }

    #[test]
    fn is_closed_detects_closedness() {
        let (a, r) = parsed(r"\x. x");
        assert!(is_closed(&a, r));
        let (b, s) = parsed(r"\x. x y");
        assert!(!is_closed(&b, s));
    }

    #[test]
    fn binders_in_preorder() {
        let (a, r) = parsed(r"\x. let y = 1 in \z. x");
        let names: Vec<&str> = binders(&a, r).into_iter().map(|s| a.name(s)).collect();
        assert_eq!(names, vec!["x", "y", "z"]);
    }

    #[test]
    fn stats_counts_everything() {
        let (a, r) = parsed(r"\x. x + y");
        // Nodes: lam, app, app, add, x, y = 6.
        let st = stats(&a, r);
        assert_eq!(st.nodes, 6);
        assert_eq!(st.binders, 1);
        assert_eq!(st.var_occurrences, 3); // add, x, y
        assert_eq!(st.free_vars, 2); // add, y
        assert_eq!(st.depth, 4);
    }
}
