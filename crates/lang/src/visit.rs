//! Stack-safe tree traversals.
//!
//! Every pass in this workspace must survive the paper's unbalanced 10⁷-node
//! workloads (§7.1), whose depth is Θ(n). These drivers use an explicit
//! work stack instead of recursion.

use crate::arena::{Children, ExprArena, NodeId};
use crate::symbol::Symbol;

/// Events emitted by [`walk_scoped`].
///
/// `Enter` events arrive in pre-order and `Exit` events in post-order.
/// `Bind`/`Unbind` bracket exactly the region where a binder is in scope:
/// for `Lam(x, body)` the bind happens before `body`; for `Let(x, rhs,
/// body)` it happens *after* `rhs` (non-recursive let) and before `body`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ScopeEvent {
    /// About to visit a node (pre-order).
    Enter(NodeId),
    /// `sym`, bound at `node`, comes into scope.
    Bind {
        /// The binding node (a `Lam` or `Let`).
        node: NodeId,
        /// The bound symbol.
        sym: Symbol,
    },
    /// `sym`, bound at `node`, goes out of scope.
    Unbind {
        /// The binding node (a `Lam` or `Let`).
        node: NodeId,
        /// The bound symbol.
        sym: Symbol,
    },
    /// Finished visiting a node (post-order).
    Exit(NodeId),
}

enum Task {
    Enter(NodeId),
    Bind(NodeId, Symbol),
    Unbind(NodeId, Symbol),
    Exit(NodeId),
}

/// Reusable scratch space for [`walk_scoped_with`].
///
/// A scoped walk needs a work stack; callers that walk many subtrees (the
/// store's fused ingest pass, the per-subexpression canonicalizer) keep one
/// `ScopeStack` alive so steady-state traversal performs no allocation.
/// The stack is cleared on entry to every walk; its contents between walks
/// are unspecified.
#[derive(Default)]
pub struct ScopeStack {
    tasks: Vec<Task>,
}

impl ScopeStack {
    /// An empty scratch stack.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Depth-first traversal with scope bracketing. Iterative: safe on trees of
/// any depth.
///
/// # Examples
///
/// Count variable occurrences that are bound:
///
/// ```
/// use lambda_lang::arena::{ExprArena, ExprNode};
/// use lambda_lang::visit::{walk_scoped, ScopeEvent};
/// use std::collections::HashSet;
///
/// let mut a = ExprArena::new();
/// let x = a.intern("x");
/// let vx = a.var(x);
/// let free = a.var_named("free");
/// let app = a.app(vx, free);
/// let lam = a.lam(x, app);
///
/// let mut in_scope = HashSet::new();
/// let mut bound_occurrences = 0;
/// walk_scoped(&a, lam, |ev| match ev {
///     ScopeEvent::Bind { sym, .. } => { in_scope.insert(sym); }
///     ScopeEvent::Unbind { sym, .. } => { in_scope.remove(&sym); }
///     ScopeEvent::Enter(n) => {
///         if let ExprNode::Var(s) = a.node(n) {
///             if in_scope.contains(&s) { bound_occurrences += 1; }
///         }
///     }
///     ScopeEvent::Exit(_) => {}
/// });
/// assert_eq!(bound_occurrences, 1);
/// ```
pub fn walk_scoped(arena: &ExprArena, root: NodeId, f: impl FnMut(ScopeEvent)) {
    walk_scoped_with(arena, root, &mut ScopeStack::new(), f);
}

/// [`walk_scoped`] with caller-provided scratch space — the allocation-free
/// variant for passes that walk many subtrees (one fused ingest pass plus
/// one canonicalizing sub-walk *per indexed subexpression* in the store's
/// `Subexpressions` mode all share a single [`ScopeStack`]).
pub fn walk_scoped_with(
    arena: &ExprArena,
    root: NodeId,
    scratch: &mut ScopeStack,
    mut f: impl FnMut(ScopeEvent),
) {
    use crate::arena::ExprNode;
    let stack = &mut scratch.tasks;
    stack.clear();
    stack.push(Task::Enter(root));
    while let Some(task) = stack.pop() {
        match task {
            Task::Enter(n) => {
                f(ScopeEvent::Enter(n));
                match arena.node(n) {
                    ExprNode::Var(_) | ExprNode::Lit(_) => f(ScopeEvent::Exit(n)),
                    ExprNode::Lam(x, b) => {
                        // Executed in reverse push order:
                        // Bind, body, Unbind, Exit.
                        stack.push(Task::Exit(n));
                        stack.push(Task::Unbind(n, x));
                        stack.push(Task::Enter(b));
                        stack.push(Task::Bind(n, x));
                    }
                    ExprNode::App(l, r) => {
                        stack.push(Task::Exit(n));
                        stack.push(Task::Enter(r));
                        stack.push(Task::Enter(l));
                    }
                    ExprNode::Let(x, rhs, body) => {
                        // rhs, Bind, body, Unbind, Exit.
                        stack.push(Task::Exit(n));
                        stack.push(Task::Unbind(n, x));
                        stack.push(Task::Enter(body));
                        stack.push(Task::Bind(n, x));
                        stack.push(Task::Enter(rhs));
                    }
                }
            }
            Task::Bind(node, sym) => f(ScopeEvent::Bind { node, sym }),
            Task::Unbind(node, sym) => f(ScopeEvent::Unbind { node, sym }),
            Task::Exit(n) => f(ScopeEvent::Exit(n)),
        }
    }
}

/// Nodes of the subtree at `root` in post-order (children before parents,
/// left before right, `Let` rhs before body). Iterative.
pub fn postorder(arena: &ExprArena, root: NodeId) -> Vec<NodeId> {
    let mut order = Vec::new();
    let mut stack = Vec::new();
    postorder_with(arena, root, &mut stack, |n| order.push(n));
    order
}

/// Streaming post-order: calls `f` on each node of the subtree at `root`
/// in post-order, without materialising the order. `stack` is the
/// traversal's scratch space — callers that visit many subtrees (the
/// hashed summariser, batch ingest) pass the same buffer every time so
/// steady-state traversal performs no allocation at all. The buffer is
/// cleared on entry; its contents afterwards are unspecified.
pub fn postorder_with(
    arena: &ExprArena,
    root: NodeId,
    stack: &mut Vec<(NodeId, bool)>,
    mut f: impl FnMut(NodeId),
) {
    // Two-phase stack: (node, expanded?).
    stack.clear();
    stack.push((root, false));
    while let Some((n, expanded)) = stack.pop() {
        if expanded {
            f(n);
            continue;
        }
        stack.push((n, true));
        match arena.node(n).children() {
            Children::None => {}
            Children::One(c) => stack.push((c, false)),
            Children::Two(a, b) => {
                stack.push((b, false));
                stack.push((a, false));
            }
        }
    }
}

/// Nodes of the subtree at `root` in pre-order. Iterative.
pub fn preorder(arena: &ExprArena, root: NodeId) -> Vec<NodeId> {
    let mut order = Vec::new();
    let mut stack = vec![root];
    while let Some(n) = stack.pop() {
        order.push(n);
        match arena.node(n).children() {
            Children::None => {}
            Children::One(c) => stack.push(c),
            Children::Two(a, b) => {
                stack.push(b);
                stack.push(a);
            }
        }
    }
    order
}

/// A parent map for the subtree at `root`: `parent[child] = parent_node`.
/// The root is absent from the map. Used by the incremental engine (§6.3)
/// to find the path from an edited node to the root.
pub fn parent_map(arena: &ExprArena, root: NodeId) -> std::collections::HashMap<NodeId, NodeId> {
    let mut parents = std::collections::HashMap::new();
    let mut stack = vec![root];
    while let Some(n) = stack.pop() {
        for c in arena.node(n).children() {
            parents.insert(c, n);
            stack.push(c);
        }
    }
    parents
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arena::ExprArena;

    /// Builds `let y = 1 in (\x. x y)` and returns interesting ids.
    fn sample() -> (ExprArena, NodeId, NodeId, NodeId) {
        let mut a = ExprArena::new();
        let one = a.int(1);
        let x = a.intern("x");
        let y = a.intern("y");
        let vx = a.var(x);
        let vy = a.var(y);
        let app = a.app(vx, vy);
        let lam = a.lam(x, app);
        let root = a.let_(y, one, lam);
        (a, root, one, lam)
    }

    #[test]
    fn postorder_children_first() {
        let (a, root, one, lam) = sample();
        let order = postorder(&a, root);
        assert_eq!(order.len(), 6);
        assert_eq!(*order.last().unwrap(), root);
        let pos = |n: NodeId| order.iter().position(|&m| m == n).expect("node in order");
        assert!(pos(one) < pos(root));
        assert!(pos(lam) < pos(root));
        assert!(pos(one) < pos(lam), "let rhs before body");
    }

    #[test]
    fn postorder_with_streams_in_the_same_order() {
        let (a, root, _, _) = sample();
        let mut stack = Vec::new();
        let mut out = Vec::new();
        postorder_with(&a, root, &mut stack, |n| out.push(n));
        assert_eq!(out, postorder(&a, root));
        // The scratch buffer is reusable across traversals.
        let mut again = Vec::new();
        postorder_with(&a, root, &mut stack, |n| again.push(n));
        assert_eq!(again, out);
    }

    #[test]
    fn preorder_parent_first() {
        let (a, root, one, _) = sample();
        let order = preorder(&a, root);
        assert_eq!(order[0], root);
        assert_eq!(order[1], one, "let rhs is visited before body");
    }

    #[test]
    fn scoped_events_bracket_binders() {
        let (a, root, one, _) = sample();
        let mut log = Vec::new();
        walk_scoped(&a, root, |ev| log.push(ev));

        // `y` must be bound after the rhs (`1`) exits and unbound before the
        // root exits.
        let rhs_exit = log
            .iter()
            .position(|e| matches!(e, ScopeEvent::Exit(n) if *n == one))
            .unwrap();
        let y_bind = log
            .iter()
            .position(|e| matches!(e, ScopeEvent::Bind { node, .. } if *node == root))
            .unwrap();
        let y_unbind = log
            .iter()
            .position(|e| matches!(e, ScopeEvent::Unbind { node, .. } if *node == root))
            .unwrap();
        let root_exit = log
            .iter()
            .position(|e| matches!(e, ScopeEvent::Exit(n) if *n == root))
            .unwrap();
        assert!(rhs_exit < y_bind && y_bind < y_unbind && y_unbind < root_exit);
    }

    #[test]
    fn scoped_walk_matches_postorder_exits() {
        let (a, root, _, _) = sample();
        let mut exits = Vec::new();
        walk_scoped(&a, root, |ev| {
            if let ScopeEvent::Exit(n) = ev {
                exits.push(n);
            }
        });
        assert_eq!(exits, postorder(&a, root));
    }

    #[test]
    fn scoped_walk_scratch_is_reusable() {
        let (a, root, _, _) = sample();
        let mut scratch = ScopeStack::new();
        let mut first = Vec::new();
        walk_scoped_with(&a, root, &mut scratch, |ev| first.push(ev));
        let mut second = Vec::new();
        walk_scoped_with(&a, root, &mut scratch, |ev| second.push(ev));
        assert_eq!(first, second);
        let mut reference = Vec::new();
        walk_scoped(&a, root, |ev| reference.push(ev));
        assert_eq!(first, reference);
    }

    #[test]
    fn parent_map_finds_paths() {
        let (a, root, one, lam) = sample();
        let parents = parent_map(&a, root);
        assert_eq!(parents[&one], root);
        assert_eq!(parents[&lam], root);
        assert!(!parents.contains_key(&root));
    }

    #[test]
    fn traversals_are_stack_safe_on_deep_trees() {
        let mut a = ExprArena::new();
        let x = a.intern("x");
        let mut e = a.var(x);
        for _ in 0..300_000 {
            e = a.lam(x, e);
        }
        assert_eq!(postorder(&a, e).len(), 300_001);
        assert_eq!(preorder(&a, e).len(), 300_001);
        let mut events = 0usize;
        walk_scoped(&a, e, |_| events += 1);
        // Enter+Exit per node, Bind+Unbind per lambda.
        assert_eq!(events, 2 * 300_001 + 2 * 300_000);
    }
}
