//! Pretty-printer producing text in the syntax of [`mod@crate::parse`].
//!
//! Curried applications of the arithmetic primitives (`add`, `sub`, `mul`,
//! `div`) are rendered infix, so paper examples round-trip readably:
//! parsing `"(a + (v+7)) * (v+7)"` and printing it yields the same text.
//! The printer is iterative and therefore safe on arbitrarily deep trees.

use crate::arena::{ExprArena, ExprNode, NodeId};
use crate::symbol::Symbol;

/// Precedence levels, loosest to tightest.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
enum Prec {
    /// Lambda / let bodies.
    Top = 0,
    /// `+` and `-`.
    Add = 1,
    /// `*` and `/`.
    Mul = 2,
    /// Juxtaposition (application).
    App = 3,
    /// Atoms.
    Atom = 4,
}

enum Out {
    Text(&'static str),
    Name(Symbol),
    Node(NodeId, Prec),
}

/// Recognised infix spine: `((op a) b)` where `op` is an arithmetic
/// primitive variable.
fn infix_spine(arena: &ExprArena, id: NodeId) -> Option<(&'static str, Prec, NodeId, NodeId)> {
    let ExprNode::App(fa, b) = arena.node(id) else {
        return None;
    };
    let ExprNode::App(f, a) = arena.node(fa) else {
        return None;
    };
    let ExprNode::Var(op) = arena.node(f) else {
        return None;
    };
    match arena.name(op) {
        "add" => Some(("+", Prec::Add, a, b)),
        "sub" => Some(("-", Prec::Add, a, b)),
        "mul" => Some(("*", Prec::Mul, a, b)),
        "div" => Some(("/", Prec::Mul, a, b)),
        _ => None,
    }
}

/// Renders the subtree at `root` as text.
///
/// # Examples
///
/// ```
/// use lambda_lang::arena::ExprArena;
/// use lambda_lang::parse::parse;
/// use lambda_lang::print::print;
///
/// let mut a = ExprArena::new();
/// let root = parse(&mut a, r"\x. (a + (v + 7)) * (v + 7)")?;
/// assert_eq!(print(&a, root), r"\x. (a + (v + 7)) * (v + 7)");
/// # Ok::<(), lambda_lang::parse::ParseError>(())
/// ```
pub fn print(arena: &ExprArena, root: NodeId) -> String {
    let mut out = String::new();
    let mut stack = vec![Out::Node(root, Prec::Top)];
    while let Some(item) = stack.pop() {
        match item {
            Out::Text(s) => out.push_str(s),
            Out::Name(sym) => out.push_str(arena.name(sym)),
            Out::Node(id, min_prec) => print_node(arena, id, min_prec, &mut stack, &mut out),
        }
    }
    out
}

fn print_node(
    arena: &ExprArena,
    id: NodeId,
    min_prec: Prec,
    stack: &mut Vec<Out>,
    out: &mut String,
) {
    // Push in reverse order of appearance: the stack is LIFO.
    let parenthesize = |own: Prec| own < min_prec;
    match arena.node(id) {
        ExprNode::Var(s) => out.push_str(arena.name(s)),
        ExprNode::Lit(l) => {
            // Negative literals start with '-', which in application
            // position would re-parse as subtraction: parenthesise.
            let negative = matches!(l, crate::literal::Literal::I64(v) if v < 0)
                || l.as_f64().is_some_and(|v| v.is_sign_negative());
            if negative && min_prec >= Prec::App {
                out.push('(');
                out.push_str(&l.to_string());
                out.push(')');
            } else {
                out.push_str(&l.to_string());
            }
        }
        ExprNode::Lam(x, body) => {
            let parens = parenthesize(Prec::Top);
            if parens {
                stack.push(Out::Text(")"));
            }
            stack.push(Out::Node(body, Prec::Top));
            stack.push(Out::Text(". "));
            stack.push(Out::Name(x));
            stack.push(Out::Text("\\"));
            if parens {
                stack.push(Out::Text("("));
            }
        }
        ExprNode::Let(x, rhs, body) => {
            let parens = parenthesize(Prec::Top);
            if parens {
                stack.push(Out::Text(")"));
            }
            stack.push(Out::Node(body, Prec::Top));
            stack.push(Out::Text(" in "));
            stack.push(Out::Node(rhs, Prec::Top));
            stack.push(Out::Text(" = "));
            stack.push(Out::Name(x));
            stack.push(Out::Text("let "));
            if parens {
                stack.push(Out::Text("("));
            }
        }
        ExprNode::App(f, a) => {
            if let Some((op_text, op_prec, lhs, rhs)) = infix_spine(arena, id) {
                let parens = parenthesize(op_prec);
                if parens {
                    stack.push(Out::Text(")"));
                }
                // Left-associative: left child at the operator's own level,
                // right child one tighter.
                let rhs_prec = match op_prec {
                    Prec::Add => Prec::Mul,
                    _ => Prec::App,
                };
                stack.push(Out::Node(rhs, rhs_prec));
                stack.push(Out::Text(match op_text {
                    "+" => " + ",
                    "-" => " - ",
                    "*" => " * ",
                    _ => " / ",
                }));
                stack.push(Out::Node(lhs, op_prec));
                if parens {
                    stack.push(Out::Text("("));
                }
            } else {
                let parens = parenthesize(Prec::App);
                if parens {
                    stack.push(Out::Text(")"));
                }
                stack.push(Out::Node(a, Prec::Atom));
                stack.push(Out::Text(" "));
                stack.push(Out::Node(f, Prec::App));
                if parens {
                    stack.push(Out::Text("("));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse;

    fn round_trip(src: &str) -> String {
        let mut a = ExprArena::new();
        let root = parse(&mut a, src).unwrap_or_else(|e| panic!("{e}"));
        print(&a, root)
    }

    /// Print, re-parse, re-print: the two prints must agree (printer output
    /// is valid, canonical syntax).
    fn stable(src: &str) {
        let once = round_trip(src);
        let twice = round_trip(&once);
        assert_eq!(once, twice, "printer not stable for {src}");
    }

    #[test]
    fn prints_paper_intro_example() {
        assert_eq!(round_trip("(a + (v+7)) * (v+7)"), "(a + (v + 7)) * (v + 7)");
    }

    #[test]
    fn prints_lambda_and_let() {
        assert_eq!(
            round_trip(r"let w = v+7 in (a + w) * w"),
            "let w = v + 7 in (a + w) * w"
        );
        assert_eq!(round_trip(r"\x. x + 7"), r"\x. x + 7");
    }

    #[test]
    fn application_spacing_and_parens() {
        assert_eq!(round_trip("f (g x) y"), "f (g x) y");
        assert_eq!(
            round_trip(r"foo (\x. x+7) (\y. y+7)"),
            r"foo (\x. x + 7) (\y. y + 7)"
        );
    }

    #[test]
    fn respects_precedence_in_output() {
        assert_eq!(round_trip("(a + b) * c"), "(a + b) * c");
        assert_eq!(round_trip("a + b * c"), "a + b * c");
        assert_eq!(round_trip("a * (b + c)"), "a * (b + c)");
    }

    #[test]
    fn nested_binding_forms_parenthesised_in_tight_positions() {
        assert_eq!(round_trip(r"f (\x. x)"), r"f (\x. x)");
        assert_eq!(round_trip(r"(let x = 1 in x) + 2"), "(let x = 1 in x) + 2");
    }

    #[test]
    fn printer_is_stable_on_varied_inputs() {
        for src in [
            "x",
            "1",
            "2.5",
            "true",
            r"\x. x",
            r"\x y. x y",
            "let a = 1 in let b = 2 in a + b",
            "f x + g y * h z",
            "a - b - c",
            "a / b / c",
            r"(\x. x) (\y. y)",
        ] {
            stable(src);
        }
    }

    #[test]
    fn left_associativity_round_trips() {
        // a - b - c must stay ((a-b)-c), not a-(b-c).
        let mut a = ExprArena::new();
        let r1 = parse(&mut a, "a - b - c").unwrap();
        let text = print(&a, r1);
        let mut b = ExprArena::new();
        let r2 = parse(&mut b, &text).unwrap();
        assert!(
            crate::alpha::alpha_eq(&a, r1, &b, r2),
            "reprinted term differs: {text}"
        );
    }

    #[test]
    fn deep_print_is_stack_safe() {
        let mut a = ExprArena::new();
        let x = a.intern("x");
        let mut e = a.var(x);
        for _ in 0..200_000 {
            e = a.lam(x, e);
        }
        let text = print(&a, e);
        assert!(text.starts_with(r"\x. \x. "));
    }
}
