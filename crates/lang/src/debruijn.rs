//! De Bruijn representation (paper §2.4).
//!
//! Bound-variable occurrences are replaced by indices counting intervening
//! binders; free variables keep their names. The paper uses this form both
//! as a (flawed) baseline for subexpression hashing and as the standard
//! nameless representation; we additionally use term-level de Bruijn
//! equality as a second ground truth for alpha-equivalence in tests.

use crate::arena::{ExprArena, ExprNode, NodeId};
use crate::literal::Literal;
use crate::symbol::{Interner, Symbol};
use std::collections::HashMap;
use std::fmt;

/// Index of a node within a [`DbArena`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct DbId(u32);

impl DbId {
    /// Raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Reconstructs an id from a raw position previously obtained via
    /// [`DbId::index`] (or from a serialized node run). The caller is
    /// responsible for only using positions valid in the arena at hand;
    /// this is checked (as a bounds check) on [`DbArena::node`].
    pub fn from_index(index: usize) -> Self {
        DbId(u32::try_from(index).expect("db id fits u32"))
    }
}

impl fmt::Debug for DbId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "d{}", self.0)
    }
}

/// One node of a de Bruijn term. Binders are anonymous; `BVar(i)` refers to
/// the `i`-th enclosing binder (0 = innermost), counting both lambda and
/// let binders.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum DbNode {
    /// Bound variable, by de Bruijn index.
    BVar(u32),
    /// Free variable, by name.
    FVar(Symbol),
    /// Anonymous lambda.
    Lam(DbId),
    /// Application.
    App(DbId, DbId),
    /// Anonymous non-recursive let: rhs, body (body is under one binder).
    Let(DbId, DbId),
    /// Literal constant.
    Lit(Literal),
}

/// Arena of de Bruijn nodes with its own interner for free-variable names.
#[derive(Clone, Debug, Default)]
pub struct DbArena {
    nodes: Vec<DbNode>,
    interner: Interner,
}

impl DbArena {
    /// Creates an empty arena.
    pub fn new() -> Self {
        Self::default()
    }

    /// The node data for `id`.
    pub fn node(&self, id: DbId) -> DbNode {
        self.nodes[id.index()]
    }

    /// Name of a free variable symbol.
    pub fn name(&self, sym: Symbol) -> &str {
        self.interner.resolve(sym)
    }

    /// The node at a raw position (`0..len()`). Positions are construction
    /// order, so every child's position precedes its parent's — the
    /// property serializers rely on to emit nodes as a flat run.
    pub fn node_at(&self, index: usize) -> DbNode {
        self.nodes[index]
    }

    /// Number of nodes allocated.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Number of distinct free-variable names interned. Symbols issued by
    /// [`DbArena::intern`] index `0..names_len()` densely, in first-intern
    /// order.
    pub fn names_len(&self) -> usize {
        self.interner.len()
    }

    /// Whether the arena is empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Interns a free-variable name in this arena's interner, for use in
    /// [`DbNode::FVar`] nodes pushed via [`DbArena::push`].
    pub fn intern(&mut self, name: &str) -> Symbol {
        self.interner.intern(name)
    }

    /// Appends one node, returning its id. The builder's contract is the
    /// usual arena one: child ids must already exist in this arena. Used
    /// by external single-pass converters (the store's fused hash+canon
    /// traversal) that build de Bruijn terms bottom-up.
    pub fn push(&mut self, node: DbNode) -> DbId {
        let id = DbId(u32::try_from(self.nodes.len()).expect("db arena overflow"));
        self.nodes.push(node);
        id
    }

    /// All nodes in arena (construction) order — a **topological** walk:
    /// every child is yielded before any parent that references it. This
    /// is the interning-friendly order: a hash-consing consumer can fold
    /// over it bottom-up, mapping each node's child ids through the refs
    /// already issued for earlier positions, with no explicit traversal.
    pub fn nodes(&self) -> impl Iterator<Item = DbNode> + '_ {
        self.nodes.iter().copied()
    }

    /// All interned free-variable names, in symbol order (symbol `i` is
    /// the `i`-th yielded name). The companion to [`DbArena::nodes`] for
    /// consumers re-interning this arena into a shared table.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        (0..self.interner.len()).map(|i| self.interner.resolve(Symbol::from_index(i as u32)))
    }
}

enum Task {
    Visit(NodeId),
    BuildLam { undo: (Symbol, Option<u32>) },
    BuildApp,
    LetBody { binder: Symbol, body: NodeId },
    BuildLet { undo: (Symbol, Option<u32>) },
}

/// Converts the named subtree at `root` to de Bruijn form. Iterative.
///
/// Handles shadowing, so no unique-binder precondition is required.
///
/// # Examples
///
/// The paper's §2.4 example: `\x.\y. x + y*7` becomes `\.\. %1 + %0*7`.
///
/// ```
/// use lambda_lang::arena::ExprArena;
/// use lambda_lang::parse::parse;
/// use lambda_lang::debruijn::{to_debruijn, db_print};
///
/// let mut a = ExprArena::new();
/// let e = parse(&mut a, r"\x. \y. x + y*7")?;
/// let (db, root) = to_debruijn(&a, e);
/// assert_eq!(db_print(&db, root), r"\. \. add %1 (mul %0 7)");
/// # Ok::<(), lambda_lang::parse::ParseError>(())
/// ```
pub fn to_debruijn(src: &ExprArena, root: NodeId) -> (DbArena, DbId) {
    let mut dst = DbArena::new();
    let mut env: HashMap<Symbol, u32> = HashMap::new();
    let mut depth: u32 = 0;
    let mut results: Vec<DbId> = Vec::new();
    let mut stack = vec![Task::Visit(root)];

    while let Some(task) = stack.pop() {
        match task {
            Task::Visit(n) => match src.node(n) {
                ExprNode::Var(s) => {
                    let node = match env.get(&s) {
                        // `level` counts binders from the root; the index
                        // counts from the occurrence inward.
                        Some(&level) => DbNode::BVar(depth - level - 1),
                        None => {
                            let sym = dst.interner.intern(src.name(s));
                            DbNode::FVar(sym)
                        }
                    };
                    let id = dst.push(node);
                    results.push(id);
                }
                ExprNode::Lit(l) => {
                    let id = dst.push(DbNode::Lit(l));
                    results.push(id);
                }
                ExprNode::Lam(x, b) => {
                    let old = env.insert(x, depth);
                    depth += 1;
                    stack.push(Task::BuildLam { undo: (x, old) });
                    stack.push(Task::Visit(b));
                }
                ExprNode::App(f, a) => {
                    stack.push(Task::BuildApp);
                    stack.push(Task::Visit(a));
                    stack.push(Task::Visit(f));
                }
                ExprNode::Let(x, rhs, body) => {
                    stack.push(Task::LetBody { binder: x, body });
                    stack.push(Task::Visit(rhs));
                }
            },
            Task::BuildLam { undo } => {
                let body = results.pop().expect("lam body");
                let id = dst.push(DbNode::Lam(body));
                results.push(id);
                restore(&mut env, undo);
                depth -= 1;
            }
            Task::BuildApp => {
                let arg = results.pop().expect("app arg");
                let func = results.pop().expect("app func");
                let id = dst.push(DbNode::App(func, arg));
                results.push(id);
            }
            Task::LetBody { binder, body } => {
                let old = env.insert(binder, depth);
                depth += 1;
                stack.push(Task::BuildLet {
                    undo: (binder, old),
                });
                stack.push(Task::Visit(body));
            }
            Task::BuildLet { undo } => {
                let body = results.pop().expect("let body");
                let rhs = results.pop().expect("let rhs");
                let id = dst.push(DbNode::Let(rhs, body));
                results.push(id);
                restore(&mut env, undo);
                depth -= 1;
            }
        }
    }

    let root = results.pop().expect("to_debruijn produced a root");
    debug_assert!(results.is_empty());
    (dst, root)
}

fn restore(env: &mut HashMap<Symbol, u32>, (sym, old): (Symbol, Option<u32>)) {
    match old {
        Some(v) => {
            env.insert(sym, v);
        }
        None => {
            env.remove(&sym);
        }
    }
}

/// Structural equality of two de Bruijn terms (free variables compared by
/// name). By the standard theorem, `db_eq(to_debruijn(e1), to_debruijn(e2))`
/// iff `e1 ≡α e2`; tests cross-check this against [`crate::alpha::alpha_eq`].
pub fn db_eq(a1: &DbArena, r1: DbId, a2: &DbArena, r2: DbId) -> bool {
    let mut stack = vec![(r1, r2)];
    while let Some((n1, n2)) = stack.pop() {
        match (a1.node(n1), a2.node(n2)) {
            (DbNode::BVar(i), DbNode::BVar(j)) => {
                if i != j {
                    return false;
                }
            }
            (DbNode::FVar(s1), DbNode::FVar(s2)) => {
                if a1.name(s1) != a2.name(s2) {
                    return false;
                }
            }
            (DbNode::Lit(l1), DbNode::Lit(l2)) => {
                if l1 != l2 {
                    return false;
                }
            }
            (DbNode::Lam(b1), DbNode::Lam(b2)) => stack.push((b1, b2)),
            (DbNode::App(f1, g1), DbNode::App(f2, g2)) => {
                stack.push((g1, g2));
                stack.push((f1, f2));
            }
            (DbNode::Let(x1, y1), DbNode::Let(x2, y2)) => {
                stack.push((y1, y2));
                stack.push((x1, x2));
            }
            _ => return false,
        }
    }
    true
}

/// Renders a de Bruijn term in the paper's notation: `%i` for indices,
/// `\.` for anonymous lambdas (applications are printed prefix). Iterative.
pub fn db_print(arena: &DbArena, root: DbId) -> String {
    enum Out {
        Text(&'static str),
        Owned(String),
        Node(DbId, bool), // bool: needs parens if compound
    }
    let mut out = String::new();
    let mut stack = vec![Out::Node(root, false)];
    while let Some(item) = stack.pop() {
        match item {
            Out::Text(s) => out.push_str(s),
            Out::Owned(s) => out.push_str(&s),
            Out::Node(id, tight) => match arena.node(id) {
                DbNode::BVar(i) => out.push_str(&format!("%{i}")),
                DbNode::FVar(s) => out.push_str(arena.name(s)),
                DbNode::Lit(l) => out.push_str(&l.to_string()),
                DbNode::Lam(b) => {
                    if tight {
                        stack.push(Out::Text(")"));
                    }
                    stack.push(Out::Node(b, false));
                    stack.push(Out::Text(r"\. "));
                    if tight {
                        stack.push(Out::Text("("));
                    }
                }
                DbNode::App(f, a) => {
                    if tight {
                        stack.push(Out::Text(")"));
                    }
                    stack.push(Out::Node(a, true));
                    stack.push(Out::Text(" "));
                    stack.push(Out::Node(
                        f,
                        matches!(arena.node(f), DbNode::Lam(_) | DbNode::Let(_, _)),
                    ));
                    if tight {
                        stack.push(Out::Text("("));
                    }
                }
                DbNode::Let(rhs, body) => {
                    if tight {
                        stack.push(Out::Text(")"));
                    }
                    stack.push(Out::Node(body, false));
                    stack.push(Out::Text(" in "));
                    stack.push(Out::Node(rhs, false));
                    stack.push(Out::Owned("let . = ".to_owned()));
                    if tight {
                        stack.push(Out::Text("("));
                    }
                }
            },
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse;

    fn db_of(src: &str) -> (DbArena, DbId) {
        let mut a = ExprArena::new();
        let root = parse(&mut a, src).unwrap();
        to_debruijn(&a, root)
    }

    fn db_equal(s1: &str, s2: &str) -> bool {
        let (a1, r1) = db_of(s1);
        let (a2, r2) = db_of(s2);
        db_eq(&a1, r1, &a2, r2)
    }

    #[test]
    fn paper_indexing_example() {
        // §2.4: (\x.\y.x+y*7) is (\.\.%1+%0*7).
        let (db, root) = db_of(r"\x. \y. x + y*7");
        assert_eq!(db_print(&db, root), r"\. \. add %1 (mul %0 7)");
    }

    #[test]
    fn free_variables_stay_named() {
        let (db, root) = db_of(r"f x (\y. x + y)");
        let text = db_print(&db, root);
        assert!(text.contains('f') && text.contains('x'), "{text}");
        assert!(text.contains("%0"), "{text}");
    }

    #[test]
    fn db_eq_iff_alpha_eq_on_samples() {
        let samples = [
            (r"\x. x + y", r"\p. p + y", true),
            (r"\x. x + y", r"\q. q + z", false),
            (r"\x. \x. x", r"\a. \b. b", true),
            (r"\x. \x. x", r"\a. \b. a", false),
            ("let bar = x+1 in bar*y", "let p = x+1 in p*y", true),
            ("let x = x in x", "let y = x in y", true),
            ("let x = x in x", "let y = y in y", false),
        ];
        for (s1, s2, expected) in samples {
            assert_eq!(db_equal(s1, s2), expected, "{s1} vs {s2}");
            // Cross-check against the reference predicate.
            let mut a1 = ExprArena::new();
            let r1 = parse(&mut a1, s1).unwrap();
            let mut a2 = ExprArena::new();
            let r2 = parse(&mut a2, s2).unwrap();
            assert_eq!(crate::alpha::alpha_eq(&a1, r1, &a2, r2), expected);
        }
    }

    #[test]
    fn paper_false_negative_shows_in_indices() {
        // §2.4: under \t, the subterms (\x.x+t) and (\y.\x.x+t)'s inner
        // lambda get different indices for t: %1 vs %2.
        let (db1, r1) = db_of(r"\t. \x. x + t");
        let (db2, r2) = db_of(r"\t. \y. \x. x + t");
        let t1 = db_print(&db1, r1);
        let t2 = db_print(&db2, r2);
        assert!(t1.contains("%1"), "{t1}");
        assert!(t2.contains("%2"), "{t2}");
    }

    #[test]
    fn let_counts_as_binder() {
        let (db, root) = db_of("let w = 1 in w + z");
        assert_eq!(db_print(&db, root), "let . = 1 in add %0 z");
    }

    #[test]
    fn deep_conversion_is_stack_safe() {
        let mut a = ExprArena::new();
        let x = a.intern("x");
        let mut e = a.var(x);
        for _ in 0..150_000 {
            e = a.lam(x, e);
        }
        let (db, root) = to_debruijn(&a, e);
        assert_eq!(db.len(), 150_001);
        match db.node(root) {
            DbNode::Lam(_) => {}
            other => panic!("expected lam, got {other:?}"),
        }
    }

    #[test]
    fn nodes_iterate_topologically_and_names_in_symbol_order() {
        let (db, root) = db_of(r"\x. foo (x + bar)");
        let nodes: Vec<DbNode> = db.nodes().collect();
        assert_eq!(nodes.len(), db.len());
        assert_eq!(nodes[root.index()], db.node(root));
        // Topological: every child position precedes its parent's.
        for (pos, node) in nodes.iter().enumerate() {
            let check = |child: DbId| assert!(child.index() < pos, "child after parent");
            match *node {
                DbNode::Lam(b) => check(b),
                DbNode::App(f, a) => {
                    check(f);
                    check(a);
                }
                DbNode::Let(r, b) => {
                    check(r);
                    check(b);
                }
                _ => {}
            }
        }
        let names: Vec<&str> = db.names().collect();
        // Symbol order is first-intern order: the walk meets foo before bar.
        assert_eq!(names, vec!["foo", "add", "bar"]);
    }

    #[test]
    fn db_eq_detects_structure_difference() {
        assert!(!db_equal(r"\x. x x", r"\x. x"));
        assert!(!db_equal("let a = 1 in a", r"(\a. a) 1"));
    }
}
