//! Canonical-form node representation for hash-consed (structure-shared)
//! storage.
//!
//! A [`DbNode`](crate::debruijn::DbNode) lives inside one
//! [`DbArena`](crate::debruijn::DbArena): its children are arena-local ids
//! and its free-variable names are arena-local symbols, so two structurally
//! identical terms in different arenas share nothing. [`CanonNode`] is the
//! same shape made *globally addressable*: children are [`CanonRef`]s into
//! a shared node table and free variables are [`NameId`]s into a shared
//! name table. Because de Bruijn structure is context-free — a `BVar(i)` or
//! an `FVar(name)` node means the same thing wherever it appears — two
//! equal `CanonNode`s always denote identical subterms, which is exactly
//! the property hash-consing needs: *intern each node once, and reference
//! equality becomes term equality*.
//!
//! This module defines only the representation; the concurrent, sharded
//! interning table lives in the store crate (`alpha_store::dag`), which is
//! also where the paper's structure-sharing DAG framing (§3, "sharing via
//! a DAG of equivalence classes") becomes a resident-memory win.

use crate::literal::Literal;
use std::fmt;

/// A reference to an interned canonical node in a shared node table.
///
/// The wrapped `u32` is an opaque dense handle; how a table packs shard
/// and index into it is the table's business ([`CanonRef::to_bits`] /
/// [`CanonRef::from_bits`] round-trip it for serialization and map keys).
/// The one guarantee the representation gives is the hash-consing
/// invariant the owning table maintains: **two refs are equal iff the
/// de Bruijn terms they root are structurally identical.**
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CanonRef(u32);

impl CanonRef {
    /// The raw handle, for serialization and map keys.
    #[inline]
    pub const fn to_bits(self) -> u32 {
        self.0
    }

    /// Inverse of [`CanonRef::to_bits`]. Only meaningful for bits obtained
    /// from the same table.
    #[inline]
    pub const fn from_bits(bits: u32) -> Self {
        CanonRef(bits)
    }
}

impl fmt::Debug for CanonRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// An interned free-variable name in a shared name table (the global
/// analogue of [`Symbol`](crate::symbol::Symbol), which is arena-local).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NameId(u32);

impl NameId {
    /// The raw dense index.
    #[inline]
    pub const fn index(self) -> u32 {
        self.0
    }

    /// Reconstructs a name id from a raw index previously obtained via
    /// [`NameId::index`]; only meaningful against the same name table.
    #[inline]
    pub const fn from_index(index: u32) -> Self {
        NameId(index)
    }
}

impl fmt::Debug for NameId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// One canonical de Bruijn node with globally addressable children — the
/// unit of hash-consed storage. Mirrors
/// [`DbNode`](crate::debruijn::DbNode) constructor for constructor.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum CanonNode {
    /// Bound variable, by de Bruijn index (0 = innermost binder).
    BVar(u32),
    /// Free variable, by globally interned name.
    FVar(NameId),
    /// Anonymous lambda.
    Lam(CanonRef),
    /// Application.
    App(CanonRef, CanonRef),
    /// Anonymous non-recursive let: rhs, body (body under one binder).
    Let(CanonRef, CanonRef),
    /// Literal constant.
    Lit(Literal),
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn refs_round_trip_through_bits() {
        let r = CanonRef::from_bits(0xDEAD_BEEF);
        assert_eq!(CanonRef::from_bits(r.to_bits()), r);
        assert_eq!(format!("{r:?}"), format!("r{}", 0xDEAD_BEEFu32));
    }

    #[test]
    fn name_ids_round_trip() {
        let n = NameId::from_index(7);
        assert_eq!(NameId::from_index(n.index()), n);
        assert_eq!(format!("{n:?}"), "n7");
    }

    #[test]
    fn nodes_compare_structurally() {
        let a = CanonNode::App(CanonRef::from_bits(1), CanonRef::from_bits(2));
        let b = CanonNode::App(CanonRef::from_bits(1), CanonRef::from_bits(2));
        let c = CanonNode::App(CanonRef::from_bits(2), CanonRef::from_bits(1));
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_ne!(CanonNode::BVar(0), CanonNode::BVar(1));
    }
}
