//! # lambda-lang
//!
//! The expression-language substrate for the `hash-modulo-alpha` workspace,
//! a Rust reproduction of *Hashing Modulo Alpha-Equivalence* (Maziarz,
//! Ellis, Lawrence, Fitzgibbon, Peyton Jones — PLDI 2021).
//!
//! The paper's minimal language (§4.1) is `Var`/`Lam`/`App`; following its
//! remark that the scheme "can readily be extended to handle richer binding
//! constructs (let, case, etc.), as well as constants", this crate carries
//! non-recursive `Let` and literal constants too, which the §7.2 machine
//! learning workloads (MNIST-CNN, GMM, BERT) need.
//!
//! ## Contents
//!
//! * [`symbol`] — interned names with O(1) comparison (§4.1 footnote).
//! * [`arena`] — id-based AST storage; all algorithms are stack-safe
//!   iterative because the paper's unbalanced benchmarks reach depth Θ(n).
//! * [`visit`] — pre/post-order and scope-bracketed traversal drivers.
//! * [`mod@parse`] / [`mod@print`] — concrete syntax matching the paper's examples
//!   (`(a + (v+7)) * (v+7)` parses as written).
//! * [`mod@uniquify`] — the §2.2 preprocessing making all binding sites
//!   distinct, a precondition of every hashing algorithm here.
//! * [`alpha`] — ground-truth alpha-equivalence (§2.1).
//! * [`debruijn`] — de Bruijn representation (§2.4) and a second
//!   ground-truth equality.
//! * [`canon`] — the globally addressable canonical-node representation
//!   ([`CanonNode`](canon::CanonNode)) that hash-consed stores intern.
//! * [`eval`] — a small CBV evaluator used to check that the CSE client is
//!   semantics-preserving.
//! * [`stats`] — free variables and shape metrics.
//!
//! ## Quick example
//!
//! ```
//! use lambda_lang::arena::ExprArena;
//! use lambda_lang::parse::parse;
//! use lambda_lang::alpha::alpha_eq;
//!
//! let mut a = ExprArena::new();
//! let e1 = parse(&mut a, r"\x. x + 7")?;
//! let e2 = parse(&mut a, r"\y. y + 7")?;
//! assert!(alpha_eq(&a, e1, &a, e2));
//! # Ok::<(), lambda_lang::parse::ParseError>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod alpha;
pub mod arena;
pub mod canon;
pub mod debruijn;
pub mod eval;
pub mod literal;
pub mod parse;
pub mod print;
pub mod stats;
pub mod symbol;
pub mod uniquify;
pub mod visit;

pub use alpha::alpha_eq;
pub use arena::{Children, ExprArena, ExprNode, NodeId};
pub use literal::Literal;
pub use parse::{parse, ParseError};
pub use print::print;
pub use symbol::{Interner, Symbol};
pub use uniquify::{check_unique_binders, uniquify, uniquify_into};
