//! A small concrete syntax for lambda/let expressions.
//!
//! The grammar covers everything the paper writes in examples, so its
//! programs can be transcribed literally into tests:
//!
//! ```text
//! expr   ::= '\' ident+ '.' expr            -- lambda (multi-binder sugar)
//!          | 'let' ident '=' expr 'in' expr
//!          | additive
//! additive       ::= multiplicative (('+' | '-') multiplicative)*
//! multiplicative ::= application (('*' | '/') application)*
//! application    ::= atom+
//! atom   ::= ident | integer | float | 'true' | 'false' | '(' expr ')'
//! ```
//!
//! Infix arithmetic desugars to curried applications of the free variables
//! `add`, `sub`, `mul`, `div` — e.g. `x + 7` becomes `((add x) 7)` — which is
//! also the convention used by the evaluator and the workload generators.
//! Line comments start with `--`.

use crate::arena::{ExprArena, NodeId};
use std::fmt;

/// Position of an error within the source text.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Pos {
    /// 1-based line number.
    pub line: u32,
    /// 1-based column number.
    pub col: u32,
}

/// Error produced when parsing fails.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ParseError {
    /// Where the error occurred.
    pub pos: Pos,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "parse error at {}:{}: {}",
            self.pos.line, self.pos.col, self.message
        )
    }
}

impl std::error::Error for ParseError {}

#[derive(Clone, PartialEq, Debug)]
enum Tok {
    Lambda,
    Let,
    In,
    Ident(String),
    Int(i64),
    Float(f64),
    Bool(bool),
    LParen,
    RParen,
    Dot,
    Equals,
    Plus,
    Minus,
    Star,
    Slash,
    Eof,
}

struct Lexer<'a> {
    src: &'a [u8],
    at: usize,
    line: u32,
    col: u32,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Lexer {
            src: src.as_bytes(),
            at: 0,
            line: 1,
            col: 1,
        }
    }

    fn pos(&self) -> Pos {
        Pos {
            line: self.line,
            col: self.col,
        }
    }

    fn bump(&mut self) -> Option<u8> {
        let c = self.src.get(self.at).copied()?;
        self.at += 1;
        if c == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.at).copied()
    }

    fn peek2(&self) -> Option<u8> {
        self.src.get(self.at + 1).copied()
    }

    fn skip_trivia(&mut self) {
        loop {
            match self.peek() {
                Some(c) if c.is_ascii_whitespace() => {
                    self.bump();
                }
                Some(b'-') if self.peek2() == Some(b'-') => {
                    while let Some(c) = self.peek() {
                        if c == b'\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                _ => break,
            }
        }
    }

    fn next_token(&mut self) -> Result<(Pos, Tok), ParseError> {
        self.skip_trivia();
        let pos = self.pos();
        let Some(c) = self.peek() else {
            return Ok((pos, Tok::Eof));
        };
        let tok = match c {
            b'(' => {
                self.bump();
                Tok::LParen
            }
            b')' => {
                self.bump();
                Tok::RParen
            }
            b'.' => {
                self.bump();
                Tok::Dot
            }
            b'=' => {
                self.bump();
                Tok::Equals
            }
            b'+' => {
                self.bump();
                Tok::Plus
            }
            b'-' => {
                self.bump();
                Tok::Minus
            }
            b'*' => {
                self.bump();
                Tok::Star
            }
            b'/' => {
                self.bump();
                Tok::Slash
            }
            b'\\' => {
                self.bump();
                Tok::Lambda
            }
            c if c.is_ascii_digit() => self.lex_number(pos)?,
            c if c.is_ascii_alphabetic() || c == b'_' => {
                let mut name = String::new();
                while let Some(c) = self.peek() {
                    if c.is_ascii_alphanumeric() || c == b'_' || c == b'\'' || c == b'%' {
                        name.push(c as char);
                        self.bump();
                    } else {
                        break;
                    }
                }
                match name.as_str() {
                    "let" => Tok::Let,
                    "in" => Tok::In,
                    "lam" => Tok::Lambda,
                    "true" => Tok::Bool(true),
                    "false" => Tok::Bool(false),
                    _ => Tok::Ident(name),
                }
            }
            other => {
                return Err(ParseError {
                    pos,
                    message: format!("unexpected character {:?}", other as char),
                })
            }
        };
        Ok((pos, tok))
    }

    fn lex_number(&mut self, pos: Pos) -> Result<Tok, ParseError> {
        let mut text = String::new();
        let mut is_float = false;
        while let Some(c) = self.peek() {
            if c.is_ascii_digit() {
                text.push(c as char);
                self.bump();
            } else if c == b'.' && !is_float && self.peek2().is_some_and(|d| d.is_ascii_digit()) {
                is_float = true;
                text.push('.');
                self.bump();
            } else {
                break;
            }
        }
        if is_float {
            text.parse::<f64>().map(Tok::Float).map_err(|e| ParseError {
                pos,
                message: format!("bad float: {e}"),
            })
        } else {
            text.parse::<i64>().map(Tok::Int).map_err(|e| ParseError {
                pos,
                message: format!("bad integer: {e}"),
            })
        }
    }
}

struct Parser<'a> {
    lexer: Lexer<'a>,
    lookahead: (Pos, Tok),
    arena: &'a mut ExprArena,
    depth: u32,
}

/// Maximum nesting depth accepted by the recursive-descent parser. Each
/// level costs several Rust stack frames (one per precedence tier), so the
/// limit is conservative. Parsed sources are hand-written tests and
/// examples; machine-scale expressions are built directly in the arena
/// (see `expr-gen`).
const MAX_DEPTH: u32 = 1_000;

impl<'a> Parser<'a> {
    fn new(src: &'a str, arena: &'a mut ExprArena) -> Result<Self, ParseError> {
        let mut lexer = Lexer::new(src);
        let lookahead = lexer.next_token()?;
        Ok(Parser {
            lexer,
            lookahead,
            arena,
            depth: 0,
        })
    }

    fn peek(&self) -> &Tok {
        &self.lookahead.1
    }

    fn advance(&mut self) -> Result<Tok, ParseError> {
        let next = self.lexer.next_token()?;
        Ok(std::mem::replace(&mut self.lookahead, next).1)
    }

    fn expect(&mut self, want: &Tok, what: &str) -> Result<(), ParseError> {
        if self.peek() == want {
            self.advance()?;
            Ok(())
        } else {
            Err(self.error(format!("expected {what}, found {:?}", self.peek())))
        }
    }

    fn error(&self, message: String) -> ParseError {
        ParseError {
            pos: self.lookahead.0,
            message,
        }
    }

    fn enter(&mut self) -> Result<(), ParseError> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            return Err(self.error("expression too deeply nested".into()));
        }
        Ok(())
    }

    fn leave(&mut self) {
        self.depth -= 1;
    }

    fn expr(&mut self) -> Result<NodeId, ParseError> {
        self.enter()?;
        let result = match self.peek() {
            Tok::Lambda => self.lambda(),
            Tok::Let => self.let_expr(),
            _ => self.additive(),
        };
        self.leave();
        result
    }

    fn ident(&mut self) -> Result<String, ParseError> {
        match self.advance()? {
            Tok::Ident(name) => Ok(name),
            other => Err(self.error(format!("expected identifier, found {other:?}"))),
        }
    }

    fn lambda(&mut self) -> Result<NodeId, ParseError> {
        self.advance()?; // consume lambda token
        let mut binders = vec![self.ident()?];
        while matches!(self.peek(), Tok::Ident(_)) {
            binders.push(self.ident()?);
        }
        self.expect(&Tok::Dot, "'.'")?;
        let mut body = self.expr()?;
        for name in binders.into_iter().rev() {
            body = self.arena.lam_named(&name, body);
        }
        Ok(body)
    }

    fn let_expr(&mut self) -> Result<NodeId, ParseError> {
        self.advance()?; // consume 'let'
        let name = self.ident()?;
        self.expect(&Tok::Equals, "'='")?;
        let rhs = self.expr()?;
        self.expect(&Tok::In, "'in'")?;
        let body = self.expr()?;
        Ok(self.arena.let_named(&name, rhs, body))
    }

    fn additive(&mut self) -> Result<NodeId, ParseError> {
        let mut lhs = self.multiplicative()?;
        loop {
            let op = match self.peek() {
                Tok::Plus => "add",
                Tok::Minus => "sub",
                _ => break,
            };
            self.advance()?;
            let rhs = self.multiplicative()?;
            lhs = self.arena.prim2(op, lhs, rhs);
        }
        Ok(lhs)
    }

    fn multiplicative(&mut self) -> Result<NodeId, ParseError> {
        let mut lhs = self.application()?;
        loop {
            let op = match self.peek() {
                Tok::Star => "mul",
                Tok::Slash => "div",
                _ => break,
            };
            self.advance()?;
            let rhs = self.application()?;
            lhs = self.arena.prim2(op, lhs, rhs);
        }
        Ok(lhs)
    }

    fn starts_atom(tok: &Tok) -> bool {
        matches!(
            tok,
            Tok::Ident(_) | Tok::Int(_) | Tok::Float(_) | Tok::Bool(_) | Tok::LParen
        )
    }

    fn application(&mut self) -> Result<NodeId, ParseError> {
        let mut lhs = self.atom()?;
        while Self::starts_atom(self.peek()) {
            let rhs = self.atom()?;
            lhs = self.arena.app(lhs, rhs);
        }
        Ok(lhs)
    }

    fn atom(&mut self) -> Result<NodeId, ParseError> {
        self.enter()?;
        let result = match self.advance()? {
            Tok::Ident(name) => Ok(self.arena.var_named(&name)),
            Tok::Int(v) => Ok(self.arena.int(v)),
            Tok::Float(v) => Ok(self.arena.float(v)),
            // Negative literal: a minus in atom position binds to a
            // following number (`a - -4`, `f (-4)`).
            Tok::Minus => match self.advance()? {
                Tok::Int(v) => Ok(self.arena.int(-v)),
                Tok::Float(v) => Ok(self.arena.float(-v)),
                other => Err(self.error(format!(
                    "expected a number after unary '-', found {other:?}"
                ))),
            },
            Tok::Bool(b) => Ok(self.arena.lit(crate::literal::Literal::Bool(b))),
            Tok::LParen => {
                let inner = self.expr()?;
                self.expect(&Tok::RParen, "')'")?;
                Ok(inner)
            }
            other => Err(self.error(format!("expected an expression, found {other:?}"))),
        };
        self.leave();
        result
    }
}

/// Parses `src` into `arena`, returning the root node.
///
/// # Errors
///
/// Returns a [`ParseError`] (with line/column position) on malformed input
/// or nesting deeper than an internal limit.
///
/// # Examples
///
/// ```
/// use lambda_lang::arena::ExprArena;
/// use lambda_lang::parse::parse;
///
/// let mut a = ExprArena::new();
/// let root = parse(&mut a, r"\x. x + 7")?;
/// assert_eq!(a.subtree_size(root), 6); // \x. ((add x) 7)
/// # Ok::<(), lambda_lang::parse::ParseError>(())
/// ```
pub fn parse(arena: &mut ExprArena, src: &str) -> Result<NodeId, ParseError> {
    let mut parser = Parser::new(src, arena)?;
    let root = parser.expr()?;
    if parser.peek() != &Tok::Eof {
        return Err(parser.error(format!("trailing input: {:?}", parser.peek())));
    }
    Ok(root)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arena::ExprNode;

    fn parse_new(src: &str) -> (ExprArena, NodeId) {
        let mut a = ExprArena::new();
        let root = parse(&mut a, src).unwrap_or_else(|e| panic!("{e}"));
        (a, root)
    }

    #[test]
    fn parses_identity() {
        let (a, root) = parse_new(r"\x. x");
        match a.node(root) {
            ExprNode::Lam(x, b) => {
                assert_eq!(a.name(x), "x");
                assert!(matches!(a.node(b), ExprNode::Var(s) if s == x));
            }
            other => panic!("expected lam, got {other:?}"),
        }
    }

    #[test]
    fn multi_binder_lambda_desugars() {
        let (a, root) = parse_new(r"\x y. x");
        match a.node(root) {
            ExprNode::Lam(x, inner) => {
                assert_eq!(a.name(x), "x");
                assert!(matches!(a.node(inner), ExprNode::Lam(_, _)));
            }
            other => panic!("expected lam, got {other:?}"),
        }
    }

    #[test]
    fn application_is_left_associative() {
        let (a, root) = parse_new("f x y");
        // ((f x) y)
        match a.node(root) {
            ExprNode::App(fx, y) => {
                assert!(matches!(a.node(fx), ExprNode::App(_, _)));
                assert!(matches!(a.node(y), ExprNode::Var(_)));
            }
            other => panic!("expected app, got {other:?}"),
        }
    }

    #[test]
    fn precedence_mul_binds_tighter_than_add() {
        // a + b * c  ==  add a (mul b c)
        let (a, root) = parse_new("a + b * c");
        match a.node(root) {
            ExprNode::App(add_a, mul_bc) => {
                match a.node(add_a) {
                    ExprNode::App(add, _) => match a.node(add) {
                        ExprNode::Var(s) => assert_eq!(a.name(s), "add"),
                        other => panic!("expected add var, got {other:?}"),
                    },
                    other => panic!("expected inner app, got {other:?}"),
                }
                // rhs is (mul b) c
                assert!(matches!(a.node(mul_bc), ExprNode::App(_, _)));
            }
            other => panic!("expected app, got {other:?}"),
        }
    }

    #[test]
    fn paper_intro_example_parses() {
        // "(a + (v+7)) * (v+7)" from §1. Each infix op is a curried
        // application: mul(3) + add-left(4 + inner add(5)) + add-right(5).
        let (a, root) = parse_new("(a + (v+7)) * (v+7)");
        assert_eq!(a.subtree_size(root), 17);
    }

    #[test]
    fn let_in_parses() {
        let (a, root) = parse_new("let w = v + 7 in (a + w) * w");
        match a.node(root) {
            ExprNode::Let(w, _, _) => assert_eq!(a.name(w), "w"),
            other => panic!("expected let, got {other:?}"),
        }
    }

    #[test]
    fn literals_parse() {
        let (a, root) = parse_new("f 1 2.5 true false");
        assert_eq!(a.subtree_size(root), 9);
        let _ = root;
    }

    #[test]
    fn comments_are_skipped() {
        let (_, root) = {
            let mut a = ExprArena::new();
            let r = parse(&mut a, "-- a comment\nx -- trailing\n").unwrap();
            (a, r)
        };
        let _ = root;
    }

    #[test]
    fn subtraction_and_division() {
        let (a, root) = parse_new("a - b / c");
        // sub a (div b c)
        match a.node(root) {
            ExprNode::App(lhs, _) => match a.node(lhs) {
                ExprNode::App(op, _) => match a.node(op) {
                    ExprNode::Var(s) => assert_eq!(a.name(s), "sub"),
                    other => panic!("unexpected {other:?}"),
                },
                other => panic!("unexpected {other:?}"),
            },
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn error_on_unbalanced_paren() {
        let mut a = ExprArena::new();
        let err = parse(&mut a, "(x").unwrap_err();
        assert!(err.message.contains("')'"), "got: {err}");
    }

    #[test]
    fn error_on_trailing_tokens() {
        let mut a = ExprArena::new();
        let err = parse(&mut a, "x )").unwrap_err();
        assert!(err.message.contains("trailing"), "got: {err}");
    }

    #[test]
    fn error_reports_position() {
        let mut a = ExprArena::new();
        let err = parse(&mut a, "x +\n  ?").unwrap_err();
        assert_eq!(err.pos.line, 2);
    }

    #[test]
    fn deep_nesting_is_rejected_not_crashing() {
        let mut src = String::new();
        for _ in 0..20_000 {
            src.push('(');
        }
        src.push('x');
        for _ in 0..20_000 {
            src.push(')');
        }
        let mut a = ExprArena::new();
        let err = parse(&mut a, &src).unwrap_err();
        assert!(err.message.contains("deeply nested"));
    }

    #[test]
    fn lam_keyword_is_alias_for_backslash() {
        let (a, root) = parse_new("lam x. x");
        assert!(matches!(a.node(root), ExprNode::Lam(_, _)));
    }

    #[test]
    fn negative_literals() {
        let (a, root) = parse_new("-4");
        assert!(matches!(a.node(root), ExprNode::Lit(l) if l == crate::literal::Literal::I64(-4)));

        // After an operator the second minus is a sign.
        let (a, root) = parse_new("a - -4");
        assert_eq!(a.subtree_size(root), 5);
        let (a, root) = parse_new("a * -2.5");
        assert_eq!(a.subtree_size(root), 5);
        let _ = (a, root);

        // In application position a bare minus stays subtraction...
        let (a, root) = parse_new("f - 4");
        match a.node(root) {
            ExprNode::App(lhs, _) => match a.node(lhs) {
                ExprNode::App(op, _) => {
                    assert!(matches!(a.node(op), ExprNode::Var(s) if a.name(s) == "sub"));
                }
                other => panic!("unexpected {other:?}"),
            },
            other => panic!("unexpected {other:?}"),
        }
        // ...and a parenthesised negative is an argument.
        let (a, root) = parse_new("f (-4)");
        match a.node(root) {
            ExprNode::App(_, arg) => {
                assert!(
                    matches!(a.node(arg), ExprNode::Lit(l) if l == crate::literal::Literal::I64(-4))
                );
            }
            other => panic!("unexpected {other:?}"),
        }
    }
}
