//! Reference decision procedure for alpha-equivalence (paper §2.1).
//!
//! This is the *ground truth* the hashing algorithms are tested against:
//! two terms are alpha-equivalent iff they are identical up to a renaming of
//! bound variables; free variables must match by name.
//!
//! The implementation is a simultaneous iterative walk over both terms,
//! numbering binders in the order they are entered (a de-Bruijn-level
//! argument): a bound occurrence matches iff both sides refer to the binder
//! with the same number. Shadowing is handled (no unique-binder precondition
//! here), so this predicate is usable on raw, un-preprocessed terms.

use crate::arena::{ExprArena, ExprNode, NodeId};
use crate::symbol::Symbol;
use std::collections::HashMap;

enum Task {
    Compare(NodeId, NodeId),
    /// Bind the two `Let` binders, then compare the bodies.
    BindLet {
        x1: Symbol,
        x2: Symbol,
        b1: NodeId,
        b2: NodeId,
    },
    Unbind {
        x1: Symbol,
        old1: Option<u32>,
        x2: Symbol,
        old2: Option<u32>,
    },
}

/// Tests whether the subtree `r1` of `a1` is alpha-equivalent to the
/// subtree `r2` of `a2`.
///
/// The two terms may live in different arenas: free variables are compared
/// by *name*, not by symbol identity.
///
/// # Examples
///
/// ```
/// use lambda_lang::arena::ExprArena;
/// use lambda_lang::parse::parse;
/// use lambda_lang::alpha::alpha_eq;
///
/// let mut a = ExprArena::new();
/// let e1 = parse(&mut a, r"\x. x + y")?;
/// let e2 = parse(&mut a, r"\p. p + y")?;
/// let e3 = parse(&mut a, r"\q. q + z")?;
/// assert!(alpha_eq(&a, e1, &a, e2)); // bound var renamed: equivalent
/// assert!(!alpha_eq(&a, e1, &a, e3)); // free variables differ
/// # Ok::<(), lambda_lang::parse::ParseError>(())
/// ```
pub fn alpha_eq(a1: &ExprArena, r1: NodeId, a2: &ExprArena, r2: NodeId) -> bool {
    let mut env1: HashMap<Symbol, u32> = HashMap::new();
    let mut env2: HashMap<Symbol, u32> = HashMap::new();
    let mut level: u32 = 0;
    let mut stack = vec![Task::Compare(r1, r2)];

    while let Some(task) = stack.pop() {
        match task {
            Task::Unbind { x1, old1, x2, old2 } => {
                restore(&mut env1, x1, old1);
                restore(&mut env2, x2, old2);
                level -= 1;
            }
            Task::BindLet { x1, x2, b1, b2 } => {
                let old1 = env1.insert(x1, level);
                let old2 = env2.insert(x2, level);
                level += 1;
                stack.push(Task::Unbind { x1, old1, x2, old2 });
                stack.push(Task::Compare(b1, b2));
            }
            Task::Compare(n1, n2) => match (a1.node(n1), a2.node(n2)) {
                (ExprNode::Var(s1), ExprNode::Var(s2)) => {
                    let matches = match (env1.get(&s1), env2.get(&s2)) {
                        (Some(l1), Some(l2)) => l1 == l2,
                        (None, None) => a1.name(s1) == a2.name(s2),
                        _ => false,
                    };
                    if !matches {
                        return false;
                    }
                }
                (ExprNode::Lit(l1), ExprNode::Lit(l2)) => {
                    if l1 != l2 {
                        return false;
                    }
                }
                (ExprNode::Lam(x1, b1), ExprNode::Lam(x2, b2)) => {
                    let old1 = env1.insert(x1, level);
                    let old2 = env2.insert(x2, level);
                    level += 1;
                    stack.push(Task::Unbind { x1, old1, x2, old2 });
                    stack.push(Task::Compare(b1, b2));
                }
                (ExprNode::App(f1, g1), ExprNode::App(f2, g2)) => {
                    stack.push(Task::Compare(g1, g2));
                    stack.push(Task::Compare(f1, f2));
                }
                (ExprNode::Let(x1, rhs1, b1), ExprNode::Let(x2, rhs2, b2)) => {
                    // Binders scope over the bodies only; compare the
                    // right-hand sides in the current environment first.
                    stack.push(Task::BindLet { x1, x2, b1, b2 });
                    stack.push(Task::Compare(rhs1, rhs2));
                }
                _ => return false,
            },
        }
    }
    true
}

fn restore(env: &mut HashMap<Symbol, u32>, sym: Symbol, old: Option<u32>) {
    match old {
        Some(v) => {
            env.insert(sym, v);
        }
        None => {
            env.remove(&sym);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse;

    fn eq(s1: &str, s2: &str) -> bool {
        let mut a1 = ExprArena::new();
        let r1 = parse(&mut a1, s1).unwrap();
        let mut a2 = ExprArena::new();
        let r2 = parse(&mut a2, s2).unwrap();
        alpha_eq(&a1, r1, &a2, r2)
    }

    #[test]
    fn paper_section_2_1_examples() {
        // "(\x.x+y) is equivalent to (\p.p+y) ... but not to (\q.q+z)".
        assert!(eq(r"\x. x + y", r"\p. p + y"));
        assert!(!eq(r"\x. x + y", r"\q. q + z"));
    }

    #[test]
    fn syntactically_equal_terms() {
        assert!(eq("f x (g y)", "f x (g y)"));
        assert!(!eq("f x", "f y"));
    }

    #[test]
    fn lambda_binder_renaming() {
        assert!(eq(r"\x. x", r"\y. y"));
        assert!(eq(r"map (\y. y+1) vs", r"map (\x. x+1) vs"));
        assert!(!eq(r"\x. x", r"\x. y"));
    }

    #[test]
    fn let_binder_renaming_paper_example() {
        // §2.2: "let bar = x+1 in bar*y" ≡α "let pub = x+1 in pub*y".
        assert!(eq("let bar = x+1 in bar*y", "let pubx = x+1 in pubx*y"));
    }

    #[test]
    fn let_rhs_not_in_binder_scope() {
        // Non-recursive let: the x in the rhs is the *outer* (free) x.
        assert!(eq("let x = x in x", "let y = x in y"));
        assert!(!eq("let x = x in x", "let y = y in y"));
    }

    #[test]
    fn name_overloading_is_not_equivalence() {
        // §2.2 false-positive example: the two `x+2`s under different
        // binders are NOT equivalent once we look at their binding context —
        // but as standalone terms with free x they ARE equal. The
        // distinction shows up when comparing the let-wrapped terms:
        assert!(eq("x + 2", "x + 2"));
        assert!(!eq("let x = bar in x+2", "let x = pubx in x+2"));
    }

    #[test]
    fn shadowing_is_handled() {
        assert!(eq(r"\x. \x. x", r"\a. \b. b"));
        assert!(!eq(r"\x. \x. x", r"\a. \b. a"));
    }

    #[test]
    fn de_bruijn_false_negative_pair_is_truly_equivalent() {
        // §2.4: the two (\x. x+t) bodies inside \t.foo … are alpha-equiv
        // as subexpressions.
        assert!(eq(r"\x. x + t", r"\x. x + t"));
        assert!(eq(r"\x. x + t", r"\y. y + t"));
    }

    #[test]
    fn de_bruijn_false_positive_pair_is_truly_inequivalent() {
        // §2.4: (\x. t*(x+1)) vs (\x. y*(x+1)) — free vars differ.
        assert!(!eq(r"\x. t * (x+1)", r"\x. y * (x+1)"));
    }

    #[test]
    fn literals_compare_by_value_and_kind() {
        assert!(eq("1", "1"));
        assert!(!eq("1", "2"));
        assert!(!eq("1", "1.0"));
        assert!(eq("1.5", "1.5"));
        assert!(eq("true", "true"));
        assert!(!eq("true", "false"));
    }

    #[test]
    fn structural_mismatch() {
        assert!(!eq(r"\x. x", "f x"));
        assert!(!eq("let a = 1 in a", r"(\a. a) 1"));
    }

    #[test]
    fn free_var_cannot_match_bound_var() {
        assert!(!eq(r"\x. x", r"\x. y"));
        assert!(!eq(r"\y. x", r"\x. x"));
    }

    #[test]
    fn deep_terms_are_stack_safe() {
        let mut a1 = ExprArena::new();
        let x = a1.intern("x");
        let mut e1 = a1.var(x);
        for _ in 0..200_000 {
            e1 = a1.lam(x, e1);
        }
        let mut a2 = ExprArena::new();
        let y = a2.intern("y");
        let mut e2 = a2.var(y);
        for _ in 0..200_000 {
            e2 = a2.lam(y, e2);
        }
        assert!(alpha_eq(&a1, e1, &a2, e2));
    }

    #[test]
    fn same_arena_sharing_compares_fine() {
        let mut a = ExprArena::new();
        let e = parse(&mut a, r"\x. x").unwrap();
        assert!(alpha_eq(&a, e, &a, e));
    }
}
