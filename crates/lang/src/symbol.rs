//! Interned variable names.
//!
//! The paper (§4.1) uses `String` names but notes that "a practical
//! implementation should replace the `String` names with unique identifiers
//! that support constant-time comparison". [`Symbol`] is that identifier: a
//! `u32` index into an [`Interner`], so comparison, ordering and hashing are
//! all O(1) regardless of name length.

use std::collections::HashMap;
use std::fmt;

/// An interned variable name supporting O(1) comparison.
///
/// Symbols are only meaningful relative to the [`Interner`] (usually owned by
/// an [`ExprArena`](crate::arena::ExprArena)) that produced them.
///
/// # Examples
///
/// ```
/// use lambda_lang::symbol::Interner;
///
/// let mut interner = Interner::new();
/// let x = interner.intern("x");
/// assert_eq!(interner.resolve(x), "x");
/// assert_eq!(x, interner.intern("x"));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Symbol(u32);

impl Symbol {
    /// Returns the raw index of this symbol in its interner.
    #[inline]
    pub const fn index(self) -> u32 {
        self.0
    }

    /// Reconstructs a symbol from a raw index previously obtained via
    /// [`Symbol::index`].
    ///
    /// The caller is responsible for only using indices that came from the
    /// same interner; this is checked (as a bounds check) on `resolve`.
    #[inline]
    pub const fn from_index(index: u32) -> Self {
        Symbol(index)
    }
}

impl fmt::Debug for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Symbol({})", self.0)
    }
}

/// A string interner mapping names to [`Symbol`]s and back.
///
/// Also provides *gensym* support ([`Interner::fresh`]) used by the
/// binder-uniquification pass (paper §2.2) and by `rebuild` (paper §4.7),
/// both of which must invent variable names that collide with nothing else
/// in the program.
#[derive(Clone, Debug, Default)]
pub struct Interner {
    names: Vec<String>,
    by_name: HashMap<String, Symbol>,
    fresh_counter: u64,
}

impl Interner {
    /// Creates an empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `name`, returning the same symbol for equal strings.
    pub fn intern(&mut self, name: &str) -> Symbol {
        if let Some(&sym) = self.by_name.get(name) {
            return sym;
        }
        let sym = Symbol(u32::try_from(self.names.len()).expect("interner overflow"));
        self.names.push(name.to_owned());
        self.by_name.insert(name.to_owned(), sym);
        sym
    }

    /// Returns the string for `sym`.
    ///
    /// # Panics
    ///
    /// Panics if `sym` did not come from this interner.
    pub fn resolve(&self, sym: Symbol) -> &str {
        &self.names[sym.0 as usize]
    }

    /// Returns a symbol whose name is distinct from every name interned so
    /// far. Names look like `base%0`, `base%1`, … (`%` cannot appear in
    /// parsed identifiers, so fresh names never collide with source names).
    pub fn fresh(&mut self, base: &str) -> Symbol {
        loop {
            let candidate = format!("{base}%{}", self.fresh_counter);
            self.fresh_counter += 1;
            if !self.by_name.contains_key(&candidate) {
                return self.intern(&candidate);
            }
        }
    }

    /// Number of distinct names interned.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether no names have been interned.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut i = Interner::new();
        let a = i.intern("foo");
        let b = i.intern("foo");
        assert_eq!(a, b);
        assert_eq!(i.len(), 1);
    }

    #[test]
    fn distinct_names_distinct_symbols() {
        let mut i = Interner::new();
        let a = i.intern("foo");
        let b = i.intern("bar");
        assert_ne!(a, b);
        assert_eq!(i.resolve(a), "foo");
        assert_eq!(i.resolve(b), "bar");
    }

    #[test]
    fn fresh_never_collides() {
        let mut i = Interner::new();
        i.intern("x%0");
        let f0 = i.fresh("x");
        let f1 = i.fresh("x");
        assert_ne!(f0, f1);
        assert_ne!(i.resolve(f0), "x%0");
        assert!(i.resolve(f0).starts_with("x%"));
    }

    #[test]
    fn fresh_of_different_bases() {
        let mut i = Interner::new();
        let a = i.fresh("t");
        let b = i.fresh("u");
        assert_ne!(a, b);
        assert!(i.resolve(a).starts_with("t%"));
        assert!(i.resolve(b).starts_with("u%"));
    }

    #[test]
    fn index_round_trip() {
        let mut i = Interner::new();
        let a = i.intern("roundtrip");
        assert_eq!(Symbol::from_index(a.index()), a);
    }

    #[test]
    fn empty_interner() {
        let i = Interner::new();
        assert!(i.is_empty());
        assert_eq!(i.len(), 0);
    }
}
