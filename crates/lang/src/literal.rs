//! Literal constants.
//!
//! The paper's minimal language (§4.1) has only `Var`/`Lam`/`App`, but notes
//! it "can readily be extended to handle richer binding constructs (let,
//! case, etc.), as well as constants". The real-life workloads of §7.2
//! (MNIST-CNN, GMM, BERT) are arithmetic-heavy, so we carry numeric and
//! boolean literals.

use std::fmt;

/// A literal constant leaf.
///
/// `F64` stores the raw bit pattern so that literals are `Eq + Ord + Hash`
/// (required for use as hash-table keys and inside e-summaries). Two float
/// literals are equal iff their bits are equal; `NaN == NaN` under this
/// definition, which is the right notion for *syntactic* processing.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Literal {
    /// Signed 64-bit integer.
    I64(i64),
    /// 64-bit float, stored as its IEEE-754 bit pattern.
    F64Bits(u64),
    /// Boolean.
    Bool(bool),
}

impl Literal {
    /// Builds a float literal from an `f64` value.
    pub fn f64(value: f64) -> Self {
        Literal::F64Bits(value.to_bits())
    }

    /// Returns the float value if this is a float literal.
    pub fn as_f64(self) -> Option<f64> {
        match self {
            Literal::F64Bits(bits) => Some(f64::from_bits(bits)),
            _ => None,
        }
    }

    /// A stable 64-bit payload identifying this literal for hashing: the
    /// discriminant is mixed in by the caller's combiner, this is just the
    /// raw contents.
    pub fn payload(self) -> u64 {
        match self {
            Literal::I64(v) => v as u64,
            Literal::F64Bits(bits) => bits,
            Literal::Bool(b) => b as u64,
        }
    }

    /// A small integer discriminant distinguishing literal kinds for hashing.
    pub fn kind_tag(self) -> u64 {
        match self {
            Literal::I64(_) => 1,
            Literal::F64Bits(_) => 2,
            Literal::Bool(_) => 3,
        }
    }
}

impl fmt::Display for Literal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Literal::I64(v) => write!(f, "{v}"),
            Literal::F64Bits(bits) => {
                let v = f64::from_bits(*bits);
                // Always include a decimal point so the printer/parser
                // round-trips float-ness.
                if v == v.trunc() && v.is_finite() {
                    write!(f, "{v:.1}")
                } else {
                    write!(f, "{v}")
                }
            }
            Literal::Bool(b) => write!(f, "{b}"),
        }
    }
}

impl From<i64> for Literal {
    fn from(v: i64) -> Self {
        Literal::I64(v)
    }
}

impl From<f64> for Literal {
    fn from(v: f64) -> Self {
        Literal::f64(v)
    }
}

impl From<bool> for Literal {
    fn from(v: bool) -> Self {
        Literal::Bool(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn float_bits_equality() {
        assert_eq!(Literal::f64(1.5), Literal::f64(1.5));
        assert_ne!(Literal::f64(1.5), Literal::f64(2.5));
        // NaN equals itself under the bit-pattern definition.
        assert_eq!(Literal::f64(f64::NAN), Literal::f64(f64::NAN));
    }

    #[test]
    fn int_and_float_never_equal() {
        assert_ne!(Literal::I64(1), Literal::f64(1.0));
        assert_ne!(Literal::I64(1).kind_tag(), Literal::f64(1.0).kind_tag());
    }

    #[test]
    fn display_round_trip_shapes() {
        assert_eq!(Literal::I64(42).to_string(), "42");
        assert_eq!(Literal::f64(2.0).to_string(), "2.0");
        assert_eq!(Literal::Bool(true).to_string(), "true");
    }

    #[test]
    fn payload_distinguishes_values() {
        assert_ne!(Literal::I64(1).payload(), Literal::I64(2).payload());
        assert_eq!(Literal::f64(1.0).as_f64(), Some(1.0));
        assert_eq!(Literal::I64(1).as_f64(), None);
    }
}
