//! A small call-by-value evaluator.
//!
//! The paper motivates alpha-hashing with common-subexpression elimination
//! (§1). To *test* that our CSE client (in the `alpha-hash` crate) is
//! semantics-preserving, we need an interpreter: this module evaluates
//! closed programs and the property tests check `eval(e) == eval(cse(e))`.
//!
//! Primitives are ordinary free variables (`add`, `mul`, …) interpreted as
//! curried builtins, matching the parser's desugaring of infix syntax.
//! `if c t e` is the one special form: the branches are evaluated lazily.
//!
//! Recursion is bounded by a fuel *and* a depth limit; this evaluator is
//! meant for test-sized programs, not for the 10⁷-node benchmark terms.

use crate::arena::{ExprArena, ExprNode, NodeId};
use crate::literal::Literal;
use crate::symbol::Symbol;
use std::fmt;
use std::rc::Rc;

/// Result values.
#[derive(Clone, Debug)]
pub enum Value {
    /// Integer.
    I64(i64),
    /// Float.
    F64(f64),
    /// Boolean.
    Bool(bool),
    /// A lambda closure.
    Closure(Rc<Closure>),
    /// A partially applied builtin.
    Prim(Prim, Rc<Vec<Value>>),
}

/// A closure: parameter, body, captured environment.
#[derive(Debug)]
pub struct Closure {
    param: Symbol,
    body: NodeId,
    env: Env,
}

/// Builtin operations, all named by free variables.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Prim {
    /// `add a b`
    Add,
    /// `sub a b`
    Sub,
    /// `mul a b`
    Mul,
    /// `div a b`
    Div,
    /// `neg a`
    Neg,
    /// `eq a b`
    Eq,
    /// `lt a b`
    Lt,
    /// `le a b`
    Le,
    /// `max a b`
    Max,
    /// `min a b`
    Min,
    /// `exp a`
    Exp,
    /// `log a`
    Log,
    /// `sqrt a`
    Sqrt,
    /// `tanh a`
    Tanh,
}

impl Prim {
    fn arity(self) -> usize {
        match self {
            Prim::Neg | Prim::Exp | Prim::Log | Prim::Sqrt | Prim::Tanh => 1,
            _ => 2,
        }
    }

    fn by_name(name: &str) -> Option<Prim> {
        Some(match name {
            "add" => Prim::Add,
            "sub" => Prim::Sub,
            "mul" => Prim::Mul,
            "div" => Prim::Div,
            "neg" => Prim::Neg,
            "eq" => Prim::Eq,
            "lt" => Prim::Lt,
            "le" => Prim::Le,
            "max" => Prim::Max,
            "min" => Prim::Min,
            "exp" => Prim::Exp,
            "log" => Prim::Log,
            "sqrt" => Prim::Sqrt,
            "tanh" => Prim::Tanh,
            _ => return None,
        })
    }
}

/// Evaluation environment: a persistent association list (cheap to capture
/// in closures).
#[derive(Clone, Debug, Default)]
pub struct Env(Option<Rc<EnvNode>>);

#[derive(Debug)]
struct EnvNode {
    sym: Symbol,
    value: Value,
    rest: Env,
}

impl Env {
    /// The empty environment.
    pub fn new() -> Self {
        Env(None)
    }

    /// Extends with one binding (persistent).
    pub fn bind(&self, sym: Symbol, value: Value) -> Env {
        Env(Some(Rc::new(EnvNode {
            sym,
            value,
            rest: self.clone(),
        })))
    }

    fn lookup(&self, sym: Symbol) -> Option<&Value> {
        let mut cur = self;
        while let Some(node) = &cur.0 {
            if node.sym == sym {
                return Some(&node.value);
            }
            cur = &node.rest;
        }
        None
    }
}

/// Errors produced by evaluation.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum EvalError {
    /// A free variable with no builtin interpretation.
    Unbound(String),
    /// Application of a non-function value.
    NotAFunction,
    /// An operand had the wrong type.
    TypeMismatch(&'static str),
    /// Integer division by zero.
    DivByZero,
    /// Step budget exhausted.
    OutOfFuel,
    /// Nesting too deep for the recursive evaluator.
    TooDeep,
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::Unbound(name) => write!(f, "unbound variable `{name}`"),
            EvalError::NotAFunction => write!(f, "applied a non-function value"),
            EvalError::TypeMismatch(what) => write!(f, "type mismatch in {what}"),
            EvalError::DivByZero => write!(f, "integer division by zero"),
            EvalError::OutOfFuel => write!(f, "evaluation fuel exhausted"),
            EvalError::TooDeep => write!(f, "expression nests too deeply to evaluate"),
        }
    }
}

impl std::error::Error for EvalError {}

/// Default fuel for [`eval`].
pub const DEFAULT_FUEL: u64 = 1_000_000;
/// Maximum recursion depth of the evaluator. Conservative because each
/// level costs two Rust stack frames and test threads get small stacks;
/// `let` chains are evaluated iteratively and do not count against it.
const MAX_DEPTH: u32 = 400;

struct Machine<'a> {
    arena: &'a ExprArena,
    fuel: u64,
}

impl<'a> Machine<'a> {
    fn spend(&mut self) -> Result<(), EvalError> {
        if self.fuel == 0 {
            return Err(EvalError::OutOfFuel);
        }
        self.fuel -= 1;
        Ok(())
    }

    fn eval(&mut self, id: NodeId, env: &Env, depth: u32) -> Result<Value, EvalError> {
        self.spend()?;
        if depth > MAX_DEPTH {
            return Err(EvalError::TooDeep);
        }
        match self.arena.node(id) {
            ExprNode::Lit(Literal::I64(v)) => Ok(Value::I64(v)),
            ExprNode::Lit(Literal::F64Bits(bits)) => Ok(Value::F64(f64::from_bits(bits))),
            ExprNode::Lit(Literal::Bool(b)) => Ok(Value::Bool(b)),
            ExprNode::Var(s) => match env.lookup(s) {
                Some(v) => Ok(v.clone()),
                None => match Prim::by_name(self.arena.name(s)) {
                    Some(p) => Ok(Value::Prim(p, Rc::new(Vec::new()))),
                    None => Err(EvalError::Unbound(self.arena.name(s).to_owned())),
                },
            },
            ExprNode::Lam(param, body) => Ok(Value::Closure(Rc::new(Closure {
                param,
                body,
                env: env.clone(),
            }))),
            ExprNode::Let(..) => {
                // Let chains (ubiquitous in the §7.2 ML workloads) are
                // evaluated iteratively so their depth is not limited by
                // the Rust stack.
                let mut env = env.clone();
                let mut cur = id;
                while let ExprNode::Let(x, rhs, body) = self.arena.node(cur) {
                    self.spend()?;
                    let v = self.eval(rhs, &env, depth + 1)?;
                    env = env.bind(x, v);
                    cur = body;
                }
                self.eval(cur, &env, depth + 1)
            }
            ExprNode::App(f, a) => {
                // Lazy special form: if c t e.
                if let Some((c, t, e)) = self.if_spine(id, env) {
                    let cond = self.eval(c, env, depth + 1)?;
                    return match cond {
                        Value::Bool(true) => self.eval(t, env, depth + 1),
                        Value::Bool(false) => self.eval(e, env, depth + 1),
                        _ => Err(EvalError::TypeMismatch("if condition")),
                    };
                }
                let func = self.eval(f, env, depth + 1)?;
                let arg = self.eval(a, env, depth + 1)?;
                self.apply(func, arg, depth)
            }
        }
    }

    /// Recognises `((if c) t) e` with `if` a *free* variable.
    fn if_spine(&self, id: NodeId, env: &Env) -> Option<(NodeId, NodeId, NodeId)> {
        let ExprNode::App(fte, e) = self.arena.node(id) else {
            return None;
        };
        let ExprNode::App(ft, t) = self.arena.node(fte) else {
            return None;
        };
        let ExprNode::App(f, c) = self.arena.node(ft) else {
            return None;
        };
        let ExprNode::Var(s) = self.arena.node(f) else {
            return None;
        };
        if self.arena.name(s) == "if" && env.lookup(s).is_none() {
            Some((c, t, e))
        } else {
            None
        }
    }

    fn apply(&mut self, func: Value, arg: Value, depth: u32) -> Result<Value, EvalError> {
        self.spend()?;
        match func {
            Value::Closure(clo) => {
                let inner = clo.env.bind(clo.param, arg);
                self.eval(clo.body, &inner, depth + 1)
            }
            Value::Prim(p, args) => {
                let mut args_vec = (*args).clone();
                args_vec.push(arg);
                if args_vec.len() == p.arity() {
                    apply_prim(p, &args_vec)
                } else {
                    Ok(Value::Prim(p, Rc::new(args_vec)))
                }
            }
            _ => Err(EvalError::NotAFunction),
        }
    }
}

/// Either both operands as integers, or both promoted to floats.
type NumericPair = Result<(i64, i64), (f64, f64)>;

fn as_numeric_pair(a: &Value, b: &Value) -> Result<NumericPair, EvalError> {
    match (a, b) {
        (Value::I64(x), Value::I64(y)) => Ok(Ok((*x, *y))),
        (Value::F64(x), Value::F64(y)) => Ok(Err((*x, *y))),
        (Value::I64(x), Value::F64(y)) => Ok(Err((*x as f64, *y))),
        (Value::F64(x), Value::I64(y)) => Ok(Err((*x, *y as f64))),
        _ => Err(EvalError::TypeMismatch("numeric operator")),
    }
}

fn as_f64(v: &Value) -> Result<f64, EvalError> {
    match v {
        Value::I64(x) => Ok(*x as f64),
        Value::F64(x) => Ok(*x),
        _ => Err(EvalError::TypeMismatch("float operator")),
    }
}

fn apply_prim(p: Prim, args: &[Value]) -> Result<Value, EvalError> {
    match p {
        Prim::Add | Prim::Sub | Prim::Mul | Prim::Div | Prim::Max | Prim::Min => {
            match as_numeric_pair(&args[0], &args[1])? {
                Ok((x, y)) => Ok(Value::I64(match p {
                    Prim::Add => x.wrapping_add(y),
                    Prim::Sub => x.wrapping_sub(y),
                    Prim::Mul => x.wrapping_mul(y),
                    Prim::Div => {
                        if y == 0 {
                            return Err(EvalError::DivByZero);
                        }
                        x.wrapping_div(y)
                    }
                    Prim::Max => x.max(y),
                    Prim::Min => x.min(y),
                    _ => unreachable!(),
                })),
                Err((x, y)) => Ok(Value::F64(match p {
                    Prim::Add => x + y,
                    Prim::Sub => x - y,
                    Prim::Mul => x * y,
                    Prim::Div => x / y,
                    Prim::Max => x.max(y),
                    Prim::Min => x.min(y),
                    _ => unreachable!(),
                })),
            }
        }
        Prim::Eq | Prim::Lt | Prim::Le => match as_numeric_pair(&args[0], &args[1])? {
            Ok((x, y)) => Ok(Value::Bool(match p {
                Prim::Eq => x == y,
                Prim::Lt => x < y,
                _ => x <= y,
            })),
            Err((x, y)) => Ok(Value::Bool(match p {
                Prim::Eq => x == y,
                Prim::Lt => x < y,
                _ => x <= y,
            })),
        },
        Prim::Neg => match &args[0] {
            Value::I64(x) => Ok(Value::I64(x.wrapping_neg())),
            Value::F64(x) => Ok(Value::F64(-x)),
            _ => Err(EvalError::TypeMismatch("neg")),
        },
        Prim::Exp => Ok(Value::F64(as_f64(&args[0])?.exp())),
        Prim::Log => Ok(Value::F64(as_f64(&args[0])?.ln())),
        Prim::Sqrt => Ok(Value::F64(as_f64(&args[0])?.sqrt())),
        Prim::Tanh => Ok(Value::F64(as_f64(&args[0])?.tanh())),
    }
}

/// Evaluates the subtree at `root` in the empty environment with
/// [`DEFAULT_FUEL`].
///
/// # Errors
///
/// See [`EvalError`]; in particular unbound non-builtin variables and fuel
/// or depth exhaustion.
///
/// # Examples
///
/// ```
/// use lambda_lang::arena::ExprArena;
/// use lambda_lang::parse::parse;
/// use lambda_lang::eval::{eval, Value};
///
/// let mut a = ExprArena::new();
/// let e = parse(&mut a, r"let v = 3 in let a = 10 in (a + (v+7)) * (v+7)")?;
/// match eval(&a, e)? {
///     Value::I64(v) => assert_eq!(v, 200),
///     other => panic!("unexpected {other:?}"),
/// }
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn eval(arena: &ExprArena, root: NodeId) -> Result<Value, EvalError> {
    eval_with_fuel(arena, root, DEFAULT_FUEL)
}

/// Like [`eval`] but with an explicit step budget.
pub fn eval_with_fuel(arena: &ExprArena, root: NodeId, fuel: u64) -> Result<Value, EvalError> {
    let mut machine = Machine { arena, fuel };
    machine.eval(root, &Env::new(), 0)
}

impl Value {
    /// Numeric comparison used by tests: equality of results, with exact
    /// equality on integers/bools and bitwise equality on floats.
    pub fn observably_eq(&self, other: &Value) -> bool {
        match (self, other) {
            (Value::I64(a), Value::I64(b)) => a == b,
            (Value::Bool(a), Value::Bool(b)) => a == b,
            (Value::F64(a), Value::F64(b)) => a.to_bits() == b.to_bits(),
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse;

    fn run(src: &str) -> Result<Value, EvalError> {
        let mut a = ExprArena::new();
        let e = parse(&mut a, src).unwrap();
        eval(&a, e)
    }

    fn run_i64(src: &str) -> i64 {
        match run(src).unwrap() {
            Value::I64(v) => v,
            other => panic!("expected int, got {other:?}"),
        }
    }

    #[test]
    fn arithmetic() {
        assert_eq!(run_i64("1 + 2 * 3"), 7);
        assert_eq!(run_i64("(1 + 2) * 3"), 9);
        assert_eq!(run_i64("10 - 3 - 2"), 5);
        assert_eq!(run_i64("7 / 2"), 3);
    }

    #[test]
    fn paper_intro_example_and_its_cse_form_agree() {
        let original = "let v = 3 in let a = 10 in (a + (v+7)) * (v+7)";
        let cse_form = "let v = 3 in let a = 10 in let w = v+7 in (a + w) * w";
        let v1 = run(original).unwrap();
        let v2 = run(cse_form).unwrap();
        assert!(v1.observably_eq(&v2));
        assert_eq!(run_i64(original), 200);
    }

    #[test]
    fn lambdas_and_application() {
        assert_eq!(run_i64(r"(\x. x + 1) 41"), 42);
        assert_eq!(run_i64(r"(\f. f (f 10)) (\x. x * 2)"), 40);
    }

    #[test]
    fn let_shadowing() {
        assert_eq!(run_i64("let x = 1 in let x = x + 1 in x"), 2);
    }

    #[test]
    fn closures_capture_environment() {
        assert_eq!(run_i64(r"let y = 10 in (\x. x + y) 5"), 15);
        // The classic capture test: inner binding must not leak.
        assert_eq!(run_i64(r"let f = (\x. \y. x) in f 1 2"), 1);
    }

    #[test]
    fn if_is_lazy() {
        // The dead branch divides by zero; laziness must avoid it.
        assert_eq!(run_i64("if true 1 (1 / 0)"), 1);
        assert_eq!(run_i64("if false (1 / 0) 2"), 2);
    }

    #[test]
    fn float_math() {
        match run("2.0 * 3.5").unwrap() {
            Value::F64(v) => assert_eq!(v, 7.0),
            other => panic!("expected float, got {other:?}"),
        }
        match run("exp 0.0").unwrap() {
            Value::F64(v) => assert_eq!(v, 1.0),
            other => panic!("expected float, got {other:?}"),
        }
    }

    #[test]
    fn mixed_numeric_promotes_to_float() {
        match run("1 + 2.5").unwrap() {
            Value::F64(v) => assert_eq!(v, 3.5),
            other => panic!("expected float, got {other:?}"),
        }
    }

    #[test]
    fn comparison_prims() {
        assert!(matches!(run("lt 1 2").unwrap(), Value::Bool(true)));
        assert!(matches!(run("eq 2 2").unwrap(), Value::Bool(true)));
        assert!(matches!(run("le 3 2").unwrap(), Value::Bool(false)));
    }

    #[test]
    fn errors() {
        assert_eq!(run("1 / 0").unwrap_err(), EvalError::DivByZero);
        assert!(matches!(
            run("mystery 1").unwrap_err(),
            EvalError::Unbound(_)
        ));
        assert_eq!(run("1 2").unwrap_err(), EvalError::NotAFunction);
        assert_eq!(
            run("true + 1").unwrap_err(),
            EvalError::TypeMismatch("numeric operator")
        );
    }

    #[test]
    fn divergence_runs_out_of_fuel() {
        // Omega: (\x. x x) (\x. x x)
        let mut a = ExprArena::new();
        let e = parse(&mut a, r"(\x. x x) (\x. x x)").unwrap();
        let err = eval_with_fuel(&a, e, 10_000).unwrap_err();
        assert!(matches!(err, EvalError::OutOfFuel | EvalError::TooDeep));
    }

    #[test]
    fn shadowed_builtin_is_an_ordinary_variable() {
        assert_eq!(run_i64(r"let add = (\a. \b. a * b) in add 3 4"), 12);
        // `if` bound by the user is no longer lazy/special.
        assert_eq!(run_i64(r"let if = (\a. \b. \c. b) in if true 5 7"), 5);
    }

    #[test]
    fn partial_application_of_prims() {
        assert_eq!(run_i64("let inc = add 1 in inc 41"), 42);
    }
}
