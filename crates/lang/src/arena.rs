//! Arena-based abstract syntax trees.
//!
//! The paper's evaluation (§7.1) hashes *wildly unbalanced* expressions with
//! up to 10⁷ nodes — trees whose depth is a constant fraction of their size.
//! A `Box`-based recursive datatype would overflow the stack merely being
//! dropped at that depth, so every algorithm in this workspace operates on an
//! id-based arena: nodes live in a `Vec`, children are [`NodeId`] indices,
//! and all traversals are explicit-stack iterative (see [`crate::visit`]).
//!
//! The expression language is the paper's `Var`/`Lam`/`App` core (§4.1)
//! extended — as §4.1 says it "readily" can be — with non-recursive `let`
//! and literal constants, which the §7.2 machine-learning workloads need.

use crate::literal::Literal;
use crate::symbol::{Interner, Symbol};
use std::fmt;

/// Index of a node within an [`ExprArena`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(u32);

impl NodeId {
    /// Raw index into the arena's node vector.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Reconstructs a `NodeId` from a raw index.
    #[inline]
    pub fn from_index(index: usize) -> Self {
        NodeId(u32::try_from(index).expect("arena overflow"))
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// One expression node.
///
/// `Let(x, rhs, body)` binds `x` in `body` only (non-recursive let).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum ExprNode {
    /// A variable occurrence.
    Var(Symbol),
    /// A lambda abstraction: binder and body.
    Lam(Symbol, NodeId),
    /// An application: function and argument.
    App(NodeId, NodeId),
    /// A non-recursive let: binder, bound expression, body.
    Let(Symbol, NodeId, NodeId),
    /// A literal constant.
    Lit(Literal),
}

impl ExprNode {
    /// The binder introduced by this node, if any.
    #[inline]
    pub fn binder(&self) -> Option<Symbol> {
        match *self {
            ExprNode::Lam(x, _) | ExprNode::Let(x, _, _) => Some(x),
            _ => None,
        }
    }

    /// Children in evaluation order (rhs before body for `Let`).
    #[inline]
    pub fn children(&self) -> Children {
        match *self {
            ExprNode::Var(_) | ExprNode::Lit(_) => Children::None,
            ExprNode::Lam(_, b) => Children::One(b),
            ExprNode::App(f, a) => Children::Two(f, a),
            ExprNode::Let(_, r, b) => Children::Two(r, b),
        }
    }
}

/// The children of a node, as a small by-value view.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Children {
    /// Leaf node.
    None,
    /// Unary node (lambda).
    One(NodeId),
    /// Binary node (application or let).
    Two(NodeId, NodeId),
}

impl Children {
    /// Number of children.
    pub fn len(&self) -> usize {
        match self {
            Children::None => 0,
            Children::One(_) => 1,
            Children::Two(_, _) => 2,
        }
    }

    /// Whether there are no children.
    pub fn is_empty(&self) -> bool {
        matches!(self, Children::None)
    }
}

impl IntoIterator for Children {
    type Item = NodeId;
    type IntoIter = ChildrenIter;

    fn into_iter(self) -> ChildrenIter {
        ChildrenIter {
            children: self,
            next: 0,
        }
    }
}

/// Iterator over [`Children`].
#[derive(Clone, Debug)]
pub struct ChildrenIter {
    children: Children,
    next: u8,
}

impl Iterator for ChildrenIter {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        let item = match (self.children, self.next) {
            (Children::One(c), 0) => Some(c),
            (Children::Two(c, _), 0) => Some(c),
            (Children::Two(_, c), 1) => Some(c),
            _ => None,
        };
        if item.is_some() {
            self.next += 1;
        }
        item
    }
}

/// An expression arena: node storage plus the name interner.
///
/// # Examples
///
/// Build `\x. x x`:
///
/// ```
/// use lambda_lang::arena::ExprArena;
///
/// let mut a = ExprArena::new();
/// let x = a.intern("x");
/// let vx1 = a.var(x);
/// let vx2 = a.var(x);
/// let app = a.app(vx1, vx2);
/// let lam = a.lam(x, app);
/// assert_eq!(a.subtree_size(lam), 4);
/// ```
#[derive(Clone, Debug, Default)]
pub struct ExprArena {
    nodes: Vec<ExprNode>,
    interner: Interner,
}

impl ExprArena {
    /// Creates an empty arena.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an arena with capacity for `n` nodes.
    pub fn with_capacity(n: usize) -> Self {
        ExprArena {
            nodes: Vec::with_capacity(n),
            interner: Interner::new(),
        }
    }

    /// Interns a name in this arena's interner.
    pub fn intern(&mut self, name: &str) -> Symbol {
        self.interner.intern(name)
    }

    /// Returns a fresh symbol distinct from all interned names.
    pub fn fresh(&mut self, base: &str) -> Symbol {
        self.interner.fresh(base)
    }

    /// Resolves a symbol to its name.
    pub fn name(&self, sym: Symbol) -> &str {
        self.interner.resolve(sym)
    }

    /// Shared access to the interner.
    pub fn interner(&self) -> &Interner {
        &self.interner
    }

    /// Mutable access to the interner.
    pub fn interner_mut(&mut self) -> &mut Interner {
        &mut self.interner
    }

    /// The node data for `id`.
    #[inline]
    pub fn node(&self, id: NodeId) -> ExprNode {
        self.nodes[id.index()]
    }

    /// Total number of nodes ever allocated (including nodes detached by
    /// edits; use [`ExprArena::subtree_size`] for the size of a live tree).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the arena holds no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    fn push(&mut self, node: ExprNode) -> NodeId {
        let id = NodeId::from_index(self.nodes.len());
        self.nodes.push(node);
        id
    }

    /// Allocates a variable occurrence.
    pub fn var(&mut self, sym: Symbol) -> NodeId {
        self.push(ExprNode::Var(sym))
    }

    /// Allocates a variable occurrence, interning `name`.
    pub fn var_named(&mut self, name: &str) -> NodeId {
        let sym = self.intern(name);
        self.var(sym)
    }

    /// Allocates a lambda.
    pub fn lam(&mut self, binder: Symbol, body: NodeId) -> NodeId {
        self.push(ExprNode::Lam(binder, body))
    }

    /// Allocates a lambda, interning the binder name.
    pub fn lam_named(&mut self, binder: &str, body: NodeId) -> NodeId {
        let sym = self.intern(binder);
        self.lam(sym, body)
    }

    /// Allocates an application.
    pub fn app(&mut self, func: NodeId, arg: NodeId) -> NodeId {
        self.push(ExprNode::App(func, arg))
    }

    /// Allocates a left-nested application spine `f a₁ a₂ …`.
    pub fn app_many(&mut self, func: NodeId, args: &[NodeId]) -> NodeId {
        let mut acc = func;
        for &arg in args {
            acc = self.app(acc, arg);
        }
        acc
    }

    /// Allocates a non-recursive let.
    pub fn let_(&mut self, binder: Symbol, rhs: NodeId, body: NodeId) -> NodeId {
        self.push(ExprNode::Let(binder, rhs, body))
    }

    /// Allocates a let, interning the binder name.
    pub fn let_named(&mut self, binder: &str, rhs: NodeId, body: NodeId) -> NodeId {
        let sym = self.intern(binder);
        self.let_(sym, rhs, body)
    }

    /// Allocates a literal.
    pub fn lit(&mut self, lit: Literal) -> NodeId {
        self.push(ExprNode::Lit(lit))
    }

    /// Allocates an integer literal.
    pub fn int(&mut self, v: i64) -> NodeId {
        self.lit(Literal::I64(v))
    }

    /// Allocates a float literal.
    pub fn float(&mut self, v: f64) -> NodeId {
        self.lit(Literal::f64(v))
    }

    /// Allocates a binary primitive application `op a b`, where `op` is a
    /// free variable such as `add` or `mul` (the convention used by the
    /// printer, the evaluator, and the workload generators).
    pub fn prim2(&mut self, op: &str, a: NodeId, b: NodeId) -> NodeId {
        let f = self.var_named(op);
        let fa = self.app(f, a);
        self.app(fa, b)
    }

    /// Allocates a unary primitive application `op a`.
    pub fn prim1(&mut self, op: &str, a: NodeId) -> NodeId {
        let f = self.var_named(op);
        self.app(f, a)
    }

    /// Replaces the node data at `id` in place. Used by the incremental
    /// engine to splice subtrees; the old children become garbage.
    pub fn replace_node(&mut self, id: NodeId, node: ExprNode) {
        self.nodes[id.index()] = node;
    }

    /// Number of nodes in the subtree rooted at `root` (iterative).
    pub fn subtree_size(&self, root: NodeId) -> usize {
        let mut count = 0usize;
        let mut stack = vec![root];
        while let Some(n) = stack.pop() {
            count += 1;
            for c in self.node(n).children() {
                stack.push(c);
            }
        }
        count
    }

    /// Depth (number of nodes on the longest root-to-leaf path) of the
    /// subtree rooted at `root` (iterative).
    pub fn subtree_depth(&self, root: NodeId) -> usize {
        let mut max_depth = 0usize;
        let mut stack = vec![(root, 1usize)];
        while let Some((n, d)) = stack.pop() {
            max_depth = max_depth.max(d);
            for c in self.node(n).children() {
                stack.push((c, d + 1));
            }
        }
        max_depth
    }

    /// Copies the subtree rooted at `root` in `src` into this arena,
    /// re-interning names. Returns the new root. Iterative; safe on trees of
    /// any depth.
    pub fn import_subtree(&mut self, src: &ExprArena, root: NodeId) -> NodeId {
        // Post-order over `src`, rebuilding bottom-up with a result stack.
        let order = crate::visit::postorder(src, root);
        // Map from src node index to new id, stored sparsely.
        let mut remap: std::collections::HashMap<NodeId, NodeId> =
            std::collections::HashMap::with_capacity(order.len());
        for n in order {
            let new_id = match src.node(n) {
                ExprNode::Var(s) => {
                    let s2 = self.intern(src.name(s));
                    self.var(s2)
                }
                ExprNode::Lit(l) => self.lit(l),
                ExprNode::Lam(x, b) => {
                    let x2 = self.intern(src.name(x));
                    let b2 = remap[&b];
                    self.lam(x2, b2)
                }
                ExprNode::App(f, a) => {
                    let f2 = remap[&f];
                    let a2 = remap[&a];
                    self.app(f2, a2)
                }
                ExprNode::Let(x, r, b) => {
                    let x2 = self.intern(src.name(x));
                    let r2 = remap[&r];
                    let b2 = remap[&b];
                    self.let_(x2, r2, b2)
                }
            };
            remap.insert(n, new_id);
        }
        remap[&root]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn identity(a: &mut ExprArena) -> NodeId {
        let x = a.intern("x");
        let v = a.var(x);
        a.lam(x, v)
    }

    #[test]
    fn build_and_inspect() {
        let mut a = ExprArena::new();
        let id = identity(&mut a);
        match a.node(id) {
            ExprNode::Lam(x, b) => {
                assert_eq!(a.name(x), "x");
                assert!(matches!(a.node(b), ExprNode::Var(_)));
            }
            other => panic!("expected lambda, got {other:?}"),
        }
    }

    #[test]
    fn subtree_size_and_depth() {
        let mut a = ExprArena::new();
        let l = identity(&mut a); // 2 nodes, depth 2
        let r = identity(&mut a);
        let app = a.app(l, r); // 5 nodes, depth 3
        assert_eq!(a.subtree_size(app), 5);
        assert_eq!(a.subtree_depth(app), 3);
    }

    #[test]
    fn children_iteration() {
        let mut a = ExprArena::new();
        let one = a.int(1);
        let two = a.int(2);
        let app = a.app(one, two);
        let kids: Vec<_> = a.node(app).children().into_iter().collect();
        assert_eq!(kids, vec![one, two]);
        assert_eq!(a.node(one).children().len(), 0);
        assert!(a.node(one).children().is_empty());
    }

    #[test]
    fn let_children_order_is_rhs_then_body() {
        let mut a = ExprArena::new();
        let rhs = a.int(1);
        let x = a.intern("x");
        let body = a.var(x);
        let l = a.let_(x, rhs, body);
        let kids: Vec<_> = a.node(l).children().into_iter().collect();
        assert_eq!(kids, vec![rhs, body]);
        assert_eq!(a.node(l).binder(), Some(x));
    }

    #[test]
    fn prim2_builds_curried_application() {
        let mut a = ExprArena::new();
        let one = a.int(1);
        let two = a.int(2);
        let e = a.prim2("add", one, two);
        // ((add 1) 2)
        match a.node(e) {
            ExprNode::App(f, arg2) => {
                assert_eq!(arg2, two);
                match a.node(f) {
                    ExprNode::App(op, arg1) => {
                        assert_eq!(arg1, one);
                        assert!(matches!(a.node(op), ExprNode::Var(_)));
                    }
                    other => panic!("expected inner app, got {other:?}"),
                }
            }
            other => panic!("expected app, got {other:?}"),
        }
    }

    #[test]
    fn deep_tree_is_stack_safe() {
        // A pathological left spine 200k deep: size/depth/import must not
        // recurse.
        let mut a = ExprArena::new();
        let mut e = a.int(0);
        for _ in 0..200_000 {
            let one = a.int(1);
            e = a.app(e, one);
        }
        assert_eq!(a.subtree_size(e), 400_001);
        assert_eq!(a.subtree_depth(e), 200_001);
        let mut b = ExprArena::new();
        let r = b.import_subtree(&a, e);
        assert_eq!(b.subtree_size(r), 400_001);
    }

    #[test]
    fn import_subtree_preserves_names() {
        let mut a = ExprArena::new();
        let id = identity(&mut a);
        let free = a.var_named("free");
        let app = a.app(id, free);

        let mut b = ExprArena::new();
        // Pre-intern something so indices differ between arenas.
        b.intern("unrelated");
        let r = b.import_subtree(&a, app);
        match b.node(r) {
            ExprNode::App(_, fr) => match b.node(fr) {
                ExprNode::Var(s) => assert_eq!(b.name(s), "free"),
                other => panic!("expected var, got {other:?}"),
            },
            other => panic!("expected app, got {other:?}"),
        }
    }

    #[test]
    fn app_many_left_nests() {
        let mut a = ExprArena::new();
        let f = a.var_named("f");
        let x = a.int(1);
        let y = a.int(2);
        let e = a.app_many(f, &[x, y]);
        // ((f 1) 2)
        match a.node(e) {
            ExprNode::App(fx, arg) => {
                assert_eq!(arg, y);
                assert!(matches!(a.node(fx), ExprNode::App(_, _)));
            }
            other => panic!("expected app, got {other:?}"),
        }
    }
}
