//! Incremental re-hashing after local rewrites (paper §6.3).
//!
//! Compositionality means a node's e-summary depends only on its
//! children's e-summaries, so after replacing the subtree under a node
//! `v`, only `v`'s new subtree and the nodes on the path from `v` to the
//! root need recomputation — `O(min(h² + h·f, n log² n))` where `h` is the
//! depth of `v` and `f` the number of never-bound variables, per the
//! paper's analysis.
//!
//! The catch for a strict language: re-merging at an ancestor needs the
//! *sibling's* variable map, so every node must retain its map. Haskell
//! gets that for free from persistent `Data.Map`; here each node's map is
//! a [`persistent_map::PMap`] version, so retained versions share
//! structure and total memory stays O(n log n).
//!
//! The engine tracks [`RecomputeStats`] so benchmarks (and the paper's
//! §6.3 claims) can be checked quantitatively: rewriting a leaf of a
//! balanced tree recomputes O(log n) nodes, not O(n).

use crate::combine::{HashScheme, HashWord};
use crate::hashed::PosH;
use lambda_lang::arena::{ExprArena, ExprNode, NodeId};
use lambda_lang::symbol::Symbol;
use lambda_lang::visit::postorder;
use persistent_map::PMap;
use std::collections::HashMap;
use std::fmt;

/// Per-node cached state: everything needed to recompute a parent.
#[derive(Clone)]
struct NodeState<H: HashWord> {
    st_hash: H,
    st_size: u64,
    vm: PMap<Symbol, PosH<H>>,
    vm_xor: H,
    summary_hash: H,
}

/// Counters describing the work done by the last edit.
#[derive(Clone, Copy, Default, Debug, PartialEq, Eq)]
pub struct RecomputeStats {
    /// Nodes whose e-summary was recomputed (new subtree + path to root).
    pub nodes_recomputed: usize,
    /// Persistent-map operations performed.
    pub map_ops: u64,
    /// Length of the recomputed path from the edit site to the root.
    pub path_length: usize,
}

/// Result of one [`IncrementalHasher::replace_subtree`] edit.
#[derive(Clone, Copy, Debug)]
pub struct ReplaceOutcome {
    /// Work counters for this edit.
    pub stats: RecomputeStats,
    /// Root of the freshly spliced-in subtree (a live node usable as the
    /// target of a later edit).
    pub new_root: NodeId,
}

/// Errors from [`IncrementalHasher`] operations.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum IncrementalError {
    /// The node is not part of the currently live tree.
    NotInTree(NodeId),
}

impl fmt::Display for IncrementalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IncrementalError::NotInTree(n) => {
                write!(f, "node {n:?} is not part of the live tree")
            }
        }
    }
}

impl std::error::Error for IncrementalError {}

/// An expression under incremental alpha-hash maintenance.
///
/// # Examples
///
/// ```
/// use lambda_lang::{ExprArena, parse, uniquify};
/// use alpha_hash::combine::HashScheme;
/// use alpha_hash::incremental::IncrementalHasher;
///
/// let mut a = ExprArena::new();
/// let parsed = parse(&mut a, r"\v. (a + (v+7)) * (v+7)")?;
/// let (b, root) = uniquify(&a, parsed);
/// let scheme: HashScheme<u64> = HashScheme::default();
/// let mut inc = IncrementalHasher::new(b, root, scheme);
///
/// // Rewrite the left `v+7` into `v+8`: only the path to the root is
/// // recomputed, and the root hash changes.
/// let before = inc.root_hash();
/// let target = inc.find(|arena, n| {
///     arena.subtree_size(n) == 5 // an `add v 7` subtree
/// }).unwrap();
/// let mut patch = ExprArena::new();
/// let new_subtree = parse(&mut patch, "v + 8")?;
/// inc.replace_subtree(target, &patch, new_subtree).unwrap();
/// assert_ne!(inc.root_hash(), before);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub struct IncrementalHasher<H: HashWord> {
    arena: ExprArena,
    root: NodeId,
    scheme: HashScheme<H>,
    name_hashes: Vec<u64>,
    parent: HashMap<NodeId, NodeId>,
    state: HashMap<NodeId, NodeState<H>>,
    /// Work counters for the most recent edit.
    pub last_stats: RecomputeStats,
}

impl<H: HashWord> IncrementalHasher<H> {
    /// Builds the initial state in one O(n log² n) pass. Takes ownership
    /// of the arena: the engine owns the evolving program.
    ///
    /// # Panics
    ///
    /// Debug builds assert the unique-binder invariant (§2.2).
    pub fn new(arena: ExprArena, root: NodeId, scheme: HashScheme<H>) -> Self {
        debug_assert!(
            lambda_lang::uniquify::check_unique_binders(&arena, root).is_ok(),
            "incremental hashing requires distinct binders"
        );
        let mut engine = IncrementalHasher {
            arena,
            root,
            scheme,
            name_hashes: Vec::new(),
            parent: HashMap::new(),
            state: HashMap::new(),
            last_stats: RecomputeStats::default(),
        };
        engine.refresh_name_hashes();
        let mut stats = RecomputeStats::default();
        engine.compute_subtree(root, &mut stats);
        engine.parent = lambda_lang::visit::parent_map(&engine.arena, root);
        engine.last_stats = stats;
        engine
    }

    fn refresh_name_hashes(&mut self) {
        let total = self.arena.interner().len();
        for i in self.name_hashes.len()..total {
            let name = self.arena.interner().resolve(Symbol::from_index(i as u32));
            self.name_hashes.push(self.scheme.var_name(name));
        }
    }

    #[inline]
    fn name_hash(&self, sym: Symbol) -> u64 {
        self.name_hashes[sym.index() as usize]
    }

    /// The current root node.
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// The arena holding the evolving program.
    pub fn arena(&self) -> &ExprArena {
        &self.arena
    }

    /// The alpha-hash of the whole program.
    pub fn root_hash(&self) -> H {
        self.state[&self.root].summary_hash
    }

    /// The alpha-hash of a live node.
    pub fn node_hash(&self, node: NodeId) -> Option<H> {
        self.state.get(&node).map(|s| s.summary_hash)
    }

    /// Number of live (tracked) nodes.
    pub fn live_nodes(&self) -> usize {
        self.state.len()
    }

    /// Finds the first live node (in post-order) satisfying a predicate —
    /// a convenience for tests and examples locating rewrite targets.
    pub fn find(&self, mut pred: impl FnMut(&ExprArena, NodeId) -> bool) -> Option<NodeId> {
        postorder(&self.arena, self.root)
            .into_iter()
            .find(|&n| pred(&self.arena, n))
    }

    /// Recomputes the e-summary state of one node from its children's
    /// cached state. Children must already be in `self.state`.
    fn compute_node(&mut self, n: NodeId, stats: &mut RecomputeStats) {
        let scheme = self.scheme;
        let state = match self.arena.node(n) {
            ExprNode::Var(s) => {
                let pos = PosH {
                    hash: scheme.pt_here(),
                    size: 1,
                };
                let nh = self.name_hash(s);
                let (vm, _) = PMap::new().insert(s, pos);
                stats.map_ops += 1;
                NodeState {
                    st_hash: scheme.s_var(),
                    st_size: 1,
                    vm,
                    vm_xor: scheme.entry(nh, pos.hash),
                    summary_hash: H::ZERO, // filled below
                }
            }
            ExprNode::Lit(l) => NodeState {
                st_hash: scheme.s_lit(l.kind_tag(), l.payload()),
                st_size: 1,
                vm: PMap::new(),
                vm_xor: H::ZERO,
                summary_hash: H::ZERO,
            },
            ExprNode::Lam(x, b) => {
                let body = self.state[&b].clone();
                let nh = self.name_hash(x);
                let (vm, x_pos) = body.vm.remove(&x);
                stats.map_ops += 1;
                let vm_xor = match x_pos {
                    Some(p) => body.vm_xor.xor(scheme.entry(nh, p.hash)),
                    None => body.vm_xor,
                };
                let size = 1 + body.st_size;
                NodeState {
                    st_hash: scheme.s_lam(size, x_pos.map(|p| p.hash), body.st_hash),
                    st_size: size,
                    vm,
                    vm_xor,
                    summary_hash: H::ZERO,
                }
            }
            ExprNode::App(f, a) => {
                let left = self.state[&f].clone();
                let right = self.state[&a].clone();
                let size = 1 + left.st_size + right.st_size;
                let (vm, vm_xor, left_bigger) = self.merge(size, &left, &right, stats);
                NodeState {
                    st_hash: scheme.s_app(size, left_bigger, left.st_hash, right.st_hash),
                    st_size: size,
                    vm,
                    vm_xor,
                    summary_hash: H::ZERO,
                }
            }
            ExprNode::Let(x, r, b) => {
                let rhs = self.state[&r].clone();
                let mut body = self.state[&b].clone();
                let nh = self.name_hash(x);
                let (body_vm, x_pos) = body.vm.remove(&x);
                stats.map_ops += 1;
                body.vm = body_vm;
                if let Some(p) = x_pos {
                    body.vm_xor = body.vm_xor.xor(scheme.entry(nh, p.hash));
                }
                let size = 1 + rhs.st_size + body.st_size;
                let (vm, vm_xor, rhs_bigger) = self.merge(size, &rhs, &body, stats);
                NodeState {
                    st_hash: scheme.s_let(
                        size,
                        rhs_bigger,
                        x_pos.map(|p| p.hash),
                        rhs.st_hash,
                        body.st_hash,
                    ),
                    st_size: size,
                    vm,
                    vm_xor,
                    summary_hash: H::ZERO,
                }
            }
        };
        let mut state = state;
        state.summary_hash = scheme.esummary(state.st_hash, state.vm_xor);
        stats.nodes_recomputed += 1;
        self.state.insert(n, state);
    }

    /// The §4.8 merge over persistent maps: clone the bigger version
    /// (O(1)) and fold in the smaller one's entries.
    fn merge(
        &self,
        tag: u64,
        left: &NodeState<H>,
        right: &NodeState<H>,
        stats: &mut RecomputeStats,
    ) -> (PMap<Symbol, PosH<H>>, H, bool) {
        let left_bigger = left.vm.len() >= right.vm.len();
        let (bigger, smaller) = if left_bigger {
            (left, right)
        } else {
            (right, left)
        };
        let mut vm = bigger.vm.clone();
        let mut xor = bigger.vm_xor;
        for (&sym, &small_pos) in smaller.vm.iter() {
            stats.map_ops += 1;
            let nh = self.name_hash(sym);
            let old = vm.get(&sym).copied();
            let new_size = 1 + old.map_or(0, |p| p.size) + small_pos.size;
            let new_pos = PosH {
                hash: self
                    .scheme
                    .pt_join(new_size, tag, old.map(|p| p.hash), small_pos.hash),
                size: new_size,
            };
            if let Some(old_pos) = old {
                xor = xor.xor(self.scheme.entry(nh, old_pos.hash));
            }
            xor = xor.xor(self.scheme.entry(nh, new_pos.hash));
            vm = vm.insert(sym, new_pos).0;
        }
        (vm, xor, left_bigger)
    }

    fn compute_subtree(&mut self, subtree_root: NodeId, stats: &mut RecomputeStats) {
        for n in postorder(&self.arena, subtree_root) {
            self.compute_node(n, stats);
        }
    }

    /// Replaces the subtree rooted at `target` with a copy of
    /// `src_root` from `src`, then re-hashes the new subtree and the path
    /// to the root. Returns the stats for this edit.
    ///
    /// The imported subtree's binders are freshened
    /// ([`lambda_lang::uniquify()`]-style) so the unique-binder invariant is
    /// preserved without caller effort; free variables keep their names
    /// and so capture whatever is in scope at `target` — the usual
    /// contract of a compiler rewrite.
    ///
    /// # Errors
    ///
    /// [`IncrementalError::NotInTree`] if `target` is not live.
    pub fn replace_subtree(
        &mut self,
        target: NodeId,
        src: &ExprArena,
        src_root: NodeId,
    ) -> Result<ReplaceOutcome, IncrementalError> {
        if !self.state.contains_key(&target) {
            return Err(IncrementalError::NotInTree(target));
        }
        let mut stats = RecomputeStats::default();

        // Read the splice point before dropping the old subtree's parent
        // entries (target's own entry is among them).
        let parent = self.parent.get(&target).copied();

        // Drop state of the outgoing subtree (it is about to become
        // unreachable garbage in the arena).
        for n in postorder(&self.arena, target) {
            self.state.remove(&n);
            self.parent.remove(&n);
        }

        // Import with freshened binders, then hash the new subtree.
        let new_root = lambda_lang::uniquify::uniquify_into(src, src_root, &mut self.arena);
        self.refresh_name_hashes();
        self.compute_subtree(new_root, &mut stats);
        for n in postorder(&self.arena, new_root) {
            for c in self.arena.node(n).children() {
                self.parent.insert(c, n);
            }
        }

        // Splice into the parent (or replace the root).
        match parent {
            None => {
                self.root = new_root;
            }
            Some(p) => {
                let patched = match self.arena.node(p) {
                    ExprNode::Lam(x, b) if b == target => ExprNode::Lam(x, new_root),
                    ExprNode::App(f, a) if f == target => ExprNode::App(new_root, a),
                    ExprNode::App(f, a) if a == target => ExprNode::App(f, new_root),
                    ExprNode::Let(x, r, b) if r == target => ExprNode::Let(x, new_root, b),
                    ExprNode::Let(x, r, b) if b == target => ExprNode::Let(x, r, new_root),
                    other => unreachable!("parent {p:?} does not point at target: {other:?}"),
                };
                self.arena.replace_node(p, patched);
                self.parent.insert(new_root, p);

                // Recompute the path to the root.
                let mut cursor = Some(p);
                while let Some(n) = cursor {
                    self.compute_node(n, &mut stats);
                    stats.path_length += 1;
                    cursor = self.parent.get(&n).copied();
                }
            }
        }

        self.last_stats = stats;
        Ok(ReplaceOutcome { stats, new_root })
    }

    /// Test/diagnostic helper: recomputes everything from scratch and
    /// asserts every live node's hash matches the incremental state.
    pub fn verify_against_scratch(&self) -> bool {
        let mut summariser = crate::hashed::HashedSummariser::new(&self.arena, &self.scheme);
        let fresh = summariser.summarise_all(&self.arena, self.root);
        let live = postorder(&self.arena, self.root);
        if live.len() != self.state.len() {
            return false;
        }
        live.into_iter().all(|n| fresh.get(n) == self.node_hash(n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lambda_lang::parse::parse;
    use lambda_lang::uniquify::uniquify;

    fn engine(src: &str) -> IncrementalHasher<u64> {
        let mut a = ExprArena::new();
        let parsed = parse(&mut a, src).unwrap();
        let (b, root) = uniquify(&a, parsed);
        IncrementalHasher::new(b, root, HashScheme::new(21))
    }

    fn patch(src: &str) -> (ExprArena, NodeId) {
        let mut a = ExprArena::new();
        let root = parse(&mut a, src).unwrap();
        (a, root)
    }

    #[test]
    fn initial_state_matches_scratch() {
        let inc = engine(r"\v. (a + (v+7)) * (v+7)");
        assert!(inc.verify_against_scratch());
    }

    #[test]
    fn edit_changes_root_hash_and_stays_consistent() {
        let mut inc = engine(r"\v. (a + (v+7)) * (v+7)");
        let before = inc.root_hash();
        let target = inc.find(|arena, n| arena.subtree_size(n) == 5).unwrap();
        let (p, proot) = patch("v + 8");
        inc.replace_subtree(target, &p, proot).unwrap();
        assert_ne!(inc.root_hash(), before);
        assert!(inc.verify_against_scratch());
    }

    #[test]
    fn alpha_equivalent_replacement_keeps_root_hash() {
        // Replacing v+7 with v+7 under a different bound variable name
        // cannot change any hash... here simpler: replace a lambda with an
        // alpha-equivalent one.
        let mut inc = engine(r"foo (\x. x+7) (\y. y+7)");
        let before = inc.root_hash();
        let target = inc
            .find(|arena, n| matches!(arena.node(n), ExprNode::Lam(_, _)))
            .unwrap();
        let (p, proot) = patch(r"\fresh_name. fresh_name + 7");
        inc.replace_subtree(target, &p, proot).unwrap();
        assert_eq!(inc.root_hash(), before);
        assert!(inc.verify_against_scratch());
    }

    #[test]
    fn leaf_edit_in_balanced_tree_recomputes_logarithmically() {
        // Balanced closed tree: ~2^10 leaves.
        let mut a = ExprArena::new();
        let x = a.intern("x0");
        let leaf = a.var(x);
        let mut layer = vec![leaf; 1];
        // Build a complete binary tree of Apps, 12 levels, on distinct vars.
        let leaves: Vec<NodeId> = (0..1024).map(|i| a.var_named(&format!("v{i}"))).collect();
        layer = leaves;
        while layer.len() > 1 {
            layer = layer
                .chunks(2)
                .map(|pair| a.app(pair[0], pair[1]))
                .collect();
        }
        let root = layer[0];
        let mut inc: IncrementalHasher<u64> = IncrementalHasher::new(a, root, HashScheme::new(3));
        let n = inc.live_nodes();
        assert_eq!(n, 2047);

        // Replace one leaf.
        let target = inc
            .find(|arena, n| matches!(arena.node(n), ExprNode::Var(_)))
            .unwrap();
        let (p, proot) = patch("replacement_leaf");
        let outcome = inc.replace_subtree(target, &p, proot).unwrap();
        assert!(inc.verify_against_scratch());
        // Path to root is 10-11 nodes; recomputed must be way below n.
        assert!(
            outcome.stats.nodes_recomputed <= 16,
            "recomputed {} of {n} nodes",
            outcome.stats.nodes_recomputed
        );
        assert_eq!(outcome.stats.path_length, 10);
        assert!(inc.node_hash(outcome.new_root).is_some());
    }

    #[test]
    fn replacing_root_works() {
        let mut inc = engine("a + b");
        let root = inc.root();
        let (p, proot) = patch(r"\x. x");
        inc.replace_subtree(root, &p, proot).unwrap();
        assert!(inc.verify_against_scratch());
        assert_eq!(inc.live_nodes(), 2);
    }

    #[test]
    fn binder_freshening_preserves_uniqueness() {
        // The patch reuses binder name x that already exists in the tree.
        let mut inc = engine(r"(\x. x + 1) 5");
        let target = inc
            .find(|arena, n| matches!(arena.node(n), ExprNode::Lit(l) if l == lambda_lang::Literal::I64(5)))
            .unwrap();
        let (p, proot) = patch(r"(\x. x) 9");
        inc.replace_subtree(target, &p, proot).unwrap();
        assert!(lambda_lang::uniquify::check_unique_binders(inc.arena(), inc.root()).is_ok());
        assert!(inc.verify_against_scratch());
    }

    #[test]
    fn stale_node_is_rejected() {
        let mut inc = engine("a + (b + c)");
        let target = inc.find(|arena, n| arena.subtree_size(n) == 5).unwrap();
        let (p, proot) = patch("d");
        inc.replace_subtree(target, &p, proot).unwrap();
        // The old subtree's nodes are no longer live.
        let err = inc.replace_subtree(target, &p, proot).unwrap_err();
        assert_eq!(err, IncrementalError::NotInTree(target));
    }

    #[test]
    fn sequence_of_edits_stays_consistent() {
        let mut inc = engine(r"\f. f ((a + b) * (a + b)) (f 1 2)");
        for (i, patch_src) in ["x + y", "1 + 2 * 3", r"\q. q", "let t = 4 in t + t"]
            .iter()
            .enumerate()
        {
            let target = inc
                .find(|arena, n| arena.subtree_size(n) >= 3 + (i % 2))
                .unwrap();
            let (p, proot) = patch(patch_src);
            inc.replace_subtree(target, &p, proot).unwrap();
            assert!(inc.verify_against_scratch(), "inconsistent after edit {i}");
        }
    }

    #[test]
    fn free_variable_capture_is_by_name() {
        // Patch mentions `v`, which is bound in the host at the target
        // position: the new occurrence is captured (standard rewrite
        // semantics), reflected in the hash. Built directly (not through
        // `engine`, whose uniquify pass would rename the binder away from
        // the literal name `v`).
        let mut host = ExprArena::new();
        let v = host.intern("v");
        let occurrence = host.var(v);
        let one = host.int(1);
        let body = host.prim2("add", occurrence, one);
        let lam = host.lam(v, body);
        let mut inc: IncrementalHasher<u64> =
            IncrementalHasher::new(host, lam, HashScheme::new(21));
        let one = inc
            .find(|arena, n| matches!(arena.node(n), ExprNode::Lit(_)))
            .unwrap();
        let (p, proot) = patch("v");
        inc.replace_subtree(one, &p, proot).unwrap();
        assert!(inc.verify_against_scratch());
        // \v. v + v  ≡α  \w. w + w
        let mut other = ExprArena::new();
        let alt = parse(&mut other, r"\w. w + w").unwrap();
        let expected = crate::hashed::hash_expr(&other, alt, &HashScheme::<u64>::new(21));
        assert_eq!(inc.root_hash(), expected);
    }
}
