//! The Appendix C variant: lazy invertible **linear maps** instead of
//! `StructureTag`s.
//!
//! The §4.6 algorithm conceptually transforms the position trees of *both*
//! children at a binary node (`PTLeftOnly` ≈ `f_L`, `PTRightOnly` ≈ `f_R`,
//! `PTBoth` ≈ `f_both`). Appendix C asks: can we keep doing that, but pay
//! O(1) per node by applying the transformation *lazily* to the bigger
//! map? The requirements are a family of functions `H → H` that compose,
//! evaluate and invert in O(1) — and the appendix's "natural choice" is
//! **linear functions** `f(x) = a·x + b (mod 2^w)` with `a` odd
//! (invertible), represented as the pair `(a, b)`.
//!
//! Concretely, each variable map carries a pending transform `f` (and its
//! inverse). At a binary node the bigger map's pending transform is
//! composed with `f_L`/`f_R` in O(1); the smaller map's entries are pushed
//! through their side's transform eagerly and inserted through `f⁻¹` so
//! that a later read-out through `f` recovers the right value. Variables
//! present on both sides go through a 2-ary combiner, at most
//! |smaller map| times — the appendix's note.
//!
//! The map *hash* is derived from `(a, b, xor-of-stored-entry-hashes)`.
//! This triple is determined by the merge history, which is itself
//! determined by the expression's structure — identical for
//! alpha-equivalent terms — so equal terms still hash equal. As the paper
//! says, collisions are harder to reason about than for the tagged
//! variant ("using a StructureTag-based variant is preferable. However, we
//! have also implemented the variant described in this section, and found
//! that in practice it also produces strong hashes"); property tests
//! check that it induces the same equivalence classes as the tagged
//! algorithm on randomised inputs.

use crate::combine::{mix64, HashScheme, HashWord};
use lambda_lang::arena::{ExprArena, ExprNode, NodeId};
use lambda_lang::symbol::Symbol;
use lambda_lang::visit::postorder;
use std::collections::BTreeMap;

/// An invertible linear function `x ↦ a·x + b` over `Z/2⁶⁴` with `a` odd.
///
/// Composition, evaluation and inversion are all O(1) — the Appendix C
/// requirements.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Lin {
    /// Multiplier (kept odd, hence invertible mod 2⁶⁴).
    pub a: u64,
    /// Offset.
    pub b: u64,
}

impl Lin {
    /// The identity function.
    pub fn identity() -> Self {
        Lin { a: 1, b: 0 }
    }

    /// Builds a linear function, forcing `a` odd.
    pub fn new(a: u64, b: u64) -> Self {
        Lin { a: a | 1, b }
    }

    /// Evaluates `self` at `x`.
    #[inline]
    pub fn apply(self, x: u64) -> u64 {
        self.a.wrapping_mul(x).wrapping_add(self.b)
    }

    /// `self ∘ g`: first apply `g`, then `self`.
    /// `(a₁, b₁) ∘ (a₂, b₂) = (a₁·a₂, a₁·b₂ + b₁)` — the appendix formula.
    #[inline]
    pub fn compose(self, g: Lin) -> Lin {
        Lin {
            a: self.a.wrapping_mul(g.a),
            b: self.a.wrapping_mul(g.b).wrapping_add(self.b),
        }
    }

    /// The inverse function (exists because `a` is odd). O(1) via Newton
    /// iteration for the modular inverse of `a`.
    pub fn inverse(self) -> Lin {
        let a_inv = inverse_odd(self.a);
        Lin {
            a: a_inv,
            b: a_inv.wrapping_mul(self.b).wrapping_neg(),
        }
    }
}

/// Modular inverse of an odd 64-bit integer by Newton–Hensel lifting:
/// each step doubles the number of correct low bits.
fn inverse_odd(a: u64) -> u64 {
    debug_assert!(a & 1 == 1);
    let mut x: u64 = a; // correct to 3 bits for odd a
    for _ in 0..5 {
        x = x.wrapping_mul(2u64.wrapping_sub(a.wrapping_mul(x)));
    }
    debug_assert_eq!(a.wrapping_mul(x), 1);
    x
}

/// A variable map with a lazy pending linear transform (Appendix C).
#[derive(Clone, Debug)]
struct VarMapL {
    /// Stored (pre-transform) position hashes.
    map: BTreeMap<Symbol, u64>,
    /// Pending transform: actual value = `f(stored)`.
    f: Lin,
    /// Cached inverse of `f`.
    f_inv: Lin,
    /// XOR over `entry(name, stored)` of the *stored* values.
    xor: u64,
}

impl VarMapL {
    fn new() -> Self {
        VarMapL {
            map: BTreeMap::new(),
            f: Lin::identity(),
            f_inv: Lin::identity(),
            xor: 0,
        }
    }

    fn len(&self) -> usize {
        self.map.len()
    }
}

/// The Appendix C summariser. Produces alpha-respecting hashes with the
/// same asymptotics as the tagged algorithm, using lazy linear transforms
/// in place of `PTJoin` tags.
#[derive(Debug)]
pub struct LinearSummariser<'s, H: HashWord> {
    scheme: &'s HashScheme<H>,
    name_hashes: Vec<u64>,
    f_left: Lin,
    f_right: Lin,
    here: u64,
    /// Map operations performed at binary nodes (same accounting as the
    /// tagged algorithm's `merge_ops`).
    pub merge_ops: u64,
}

impl<'s, H: HashWord> LinearSummariser<'s, H> {
    /// Creates a summariser for `arena`; `f_L`, `f_R` and the leaf value
    /// are derived from the scheme seed.
    pub fn new(arena: &ExprArena, scheme: &'s HashScheme<H>) -> Self {
        let seed = scheme.seed();
        LinearSummariser {
            scheme,
            name_hashes: crate::hashed::name_hashes(arena, scheme),
            f_left: Lin::new(mix64(seed ^ 0xF_1EF7), mix64(seed ^ 0xB_1EF7)),
            f_right: Lin::new(mix64(seed ^ 0xF_81687), mix64(seed ^ 0xB_81687)),
            here: mix64(seed ^ 0x4E7E),
            merge_ops: 0,
        }
    }

    #[inline]
    fn name_hash(&self, sym: Symbol) -> u64 {
        self.name_hashes[sym.index() as usize]
    }

    #[inline]
    fn entry(&self, name_hash: u64, stored: u64) -> u64 {
        mix64(mix64(name_hash ^ 0xE17B_u64) ^ stored)
    }

    #[inline]
    fn f_both(&self, left_actual: u64, right_actual: u64) -> u64 {
        mix64(mix64(left_actual ^ 0xB07B_u64) ^ right_actual.rotate_left(31))
    }

    /// The map hash: determined by `(f, xor)` — see the module docs for
    /// why this respects alpha-equivalence.
    fn vm_hash(&self, vm: &VarMapL) -> H {
        crate::combine::Mixer::new(self.scheme.seed(), 0x7117)
            .absorb(vm.f.a)
            .absorb(vm.f.b)
            .absorb(vm.xor)
            .finish()
    }

    /// Converts an actual (post-transform) position value into an `H` for
    /// feeding to the structure combiners.
    fn pos_to_word(&self, actual: u64) -> H {
        H::from_lanes(mix64(actual ^ 0x90_5E), mix64(actual ^ 0x90_5F))
    }

    /// Removes `sym` (a binder) from the map, returning the *actual*
    /// position value.
    fn remove(&mut self, vm: &mut VarMapL, sym: Symbol) -> Option<u64> {
        let stored = vm.map.remove(&sym)?;
        vm.xor ^= self.entry(self.name_hash(sym), stored);
        Some(vm.f.apply(stored))
    }

    /// The lazy merge: compose the bigger side's pending transform with
    /// its role transform; fold the smaller side's entries in eagerly.
    fn merge(&mut self, left: VarMapL, right: VarMapL) -> VarMapL {
        let left_bigger = left.len() >= right.len();
        let (mut bigger, smaller, f_big_role, f_small_role) = if left_bigger {
            (left, right, self.f_left, self.f_right)
        } else {
            (right, left, self.f_right, self.f_left)
        };
        // O(1): the bigger map's pending transform absorbs its role.
        bigger.f = f_big_role.compose(bigger.f);
        bigger.f_inv = bigger.f.inverse();

        for (sym, small_stored) in smaller.map {
            self.merge_ops += 1;
            let nh = self.name_hash(sym);
            let small_actual = smaller.f.apply(small_stored);
            let conceptual = match bigger.map.get(&sym) {
                Some(&big_stored) => {
                    // Both sides: combine the two *actual* values. The
                    // bigger side's actual is read through the NEW pending
                    // transform minus its role — i.e. its pre-merge value.
                    let big_actual_pre = f_big_role.inverse().apply(bigger.f.apply(big_stored));
                    let (l_act, r_act) = if left_bigger {
                        (big_actual_pre, small_actual)
                    } else {
                        (small_actual, big_actual_pre)
                    };
                    self.f_both(l_act, r_act)
                }
                None => f_small_role.apply(small_actual),
            };
            let new_stored = bigger.f_inv.apply(conceptual);
            if let Some(&old_stored) = bigger.map.get(&sym) {
                bigger.xor ^= self.entry(nh, old_stored);
            }
            bigger.xor ^= self.entry(nh, new_stored);
            bigger.map.insert(sym, new_stored);
        }
        bigger
    }

    /// Hashes every subexpression (the Appendix C analogue of
    /// [`crate::hashed::HashedSummariser::summarise_all`]).
    pub fn summarise_all(
        &mut self,
        arena: &ExprArena,
        root: NodeId,
    ) -> crate::hashed::SubtreeHashes<H> {
        let mut out = vec![None; arena.len()];
        let scheme = self.scheme;
        // (structure hash, structure size, varmap)
        let mut stack: Vec<(H, u64, VarMapL)> = Vec::new();

        for n in postorder(arena, root) {
            let (st, size, vm) = match arena.node(n) {
                ExprNode::Var(s) => {
                    let mut vm = VarMapL::new();
                    vm.xor ^= self.entry(self.name_hash(s), self.here);
                    vm.map.insert(s, self.here);
                    (scheme.s_var(), 1, vm)
                }
                ExprNode::Lit(l) => (scheme.s_lit(l.kind_tag(), l.payload()), 1, VarMapL::new()),
                ExprNode::Lam(x, _) => {
                    let (st_b, size_b, mut vm) = stack.pop().expect("lam body");
                    let pos = self.remove(&mut vm, x).map(|a| self.pos_to_word(a));
                    let size = 1 + size_b;
                    (scheme.s_lam(size, pos, st_b), size, vm)
                }
                ExprNode::App(_, _) => {
                    let (st_r, size_r, vm_r) = stack.pop().expect("app arg");
                    let (st_l, size_l, vm_l) = stack.pop().expect("app fun");
                    let size = 1 + size_l + size_r;
                    let left_bigger = vm_l.len() >= vm_r.len();
                    let vm = self.merge(vm_l, vm_r);
                    (scheme.s_app(size, left_bigger, st_l, st_r), size, vm)
                }
                ExprNode::Let(x, _, _) => {
                    let (st_b, size_b, mut vm_b) = stack.pop().expect("let body");
                    let (st_r, size_r, vm_r) = stack.pop().expect("let rhs");
                    let pos = self.remove(&mut vm_b, x).map(|a| self.pos_to_word(a));
                    let size = 1 + size_r + size_b;
                    let rhs_bigger = vm_r.len() >= vm_b.len();
                    let vm = self.merge(vm_r, vm_b);
                    (scheme.s_let(size, rhs_bigger, pos, st_r, st_b), size, vm)
                }
            };
            out[n.index()] = Some(scheme.esummary(st, self.vm_hash(&vm)));
            stack.push((st, size, vm));
        }
        crate::hashed::SubtreeHashes::from_vec(out)
    }
}

/// One-shot: the linear-variant hash of a whole expression.
pub fn hash_expr_linear<H: HashWord>(arena: &ExprArena, root: NodeId, scheme: &HashScheme<H>) -> H {
    let mut s = LinearSummariser::new(arena, scheme);
    let all = s.summarise_all(arena, root);
    all.get(root).expect("root hashed")
}

#[cfg(test)]
mod tests {
    use super::*;
    use lambda_lang::parse::parse;
    use lambda_lang::uniquify::uniquify;

    #[test]
    fn lin_algebra() {
        let f = Lin::new(0x1234_5679, 42);
        let g = Lin::new(0xDEAD_BEEF, 7);
        // Composition law.
        for x in [0u64, 1, 99, u64::MAX, 0x8000_0000_0000_0000] {
            assert_eq!(f.compose(g).apply(x), f.apply(g.apply(x)));
        }
        // Inverse law.
        let f_inv = f.inverse();
        for x in [0u64, 5, 1 << 40, u64::MAX - 3] {
            assert_eq!(f_inv.apply(f.apply(x)), x);
            assert_eq!(f.apply(f_inv.apply(x)), x);
        }
        // Identity.
        assert_eq!(Lin::identity().apply(123), 123);
        assert_eq!(f.compose(Lin::identity()), f);
    }

    #[test]
    fn inverse_of_inverse_is_identity_function() {
        let f = Lin::new(mix64(1), mix64(2));
        let back = f.inverse().inverse();
        for x in [0u64, 17, 1 << 50] {
            assert_eq!(back.apply(x), f.apply(x));
        }
    }

    #[test]
    fn new_forces_odd_multiplier() {
        let f = Lin::new(4, 0); // even input
        assert_eq!(f.a & 1, 1);
    }

    fn hash_of(src: &str) -> u64 {
        let mut a = ExprArena::new();
        let parsed = parse(&mut a, src).unwrap();
        let (b, root) = uniquify(&a, parsed);
        let scheme: HashScheme<u64> = HashScheme::new(77);
        hash_expr_linear(&b, root, &scheme)
    }

    #[test]
    fn respects_alpha_equivalence_on_paper_examples() {
        assert_eq!(hash_of(r"\x. x + y"), hash_of(r"\p. p + y"));
        assert_eq!(hash_of(r"\x. x"), hash_of(r"\y. y"));
        assert_eq!(
            hash_of("let bar = x+1 in bar*y"),
            hash_of("let p = x+1 in p*y")
        );
        assert_ne!(hash_of(r"\x. x + y"), hash_of(r"\q. q + z"));
        assert_ne!(hash_of("add x y"), hash_of("add x x"));
        assert_ne!(hash_of(r"\x. \y. x"), hash_of(r"\x. \y. y"));
        assert_ne!(hash_of("x + 2"), hash_of("y + 2"));
    }

    #[test]
    fn classes_match_tagged_algorithm() {
        use crate::equiv::{ground_truth_classes, group_by_hash, same_partition};
        for src in [
            r"foo (\x. x+7) (\y. y+7)",
            "(a + (v+7)) * (v+7)",
            r"\t. foo (\x. x + t) (\y. \x. x + t)",
            "foo (let x = bar in x+2) (let x = pubx in x+2)",
        ] {
            let mut a = ExprArena::new();
            let parsed = parse(&mut a, src).unwrap();
            let (b, root) = uniquify(&a, parsed);
            let scheme: HashScheme<u64> = HashScheme::new(77);
            let mut linear = LinearSummariser::new(&b, &scheme);
            let lin_classes = group_by_hash(&linear.summarise_all(&b, root));
            let truth = ground_truth_classes(&b, root);
            assert!(same_partition(&lin_classes, &truth), "mismatch for {src}");
        }
    }

    #[test]
    fn merge_ops_match_tagged_accounting() {
        // The lazy variant must do smaller-side work only, like §4.8.
        let mut a = ExprArena::new();
        let mut e = a.var_named("f");
        for i in 0..500 {
            let v = a.var_named(&format!("x{i}"));
            e = a.app(e, v);
        }
        let scheme: HashScheme<u64> = HashScheme::new(77);
        let mut linear = LinearSummariser::new(&a, &scheme);
        let _ = linear.summarise_all(&a, e);
        assert!(linear.merge_ops <= 1000, "merge_ops = {}", linear.merge_ops);
    }
}
