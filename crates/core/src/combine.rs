//! Hash words and seeded hash combiners (paper §5, §6.2).
//!
//! The collision analysis (Definition 6.4, Lemma 6.6, Theorem 6.7) assumes
//! *random functions*: combiners whose outputs are chosen uniformly and
//! independently. As the paper notes, "in practice, it may not be possible
//! to obtain true randomness, or one may prefer to fix the seed and make
//! the hashing algorithm deterministic"; we follow that practical route and
//! instantiate every combiner as a strong seeded mixing chain (splitmix64
//! finalisers over two 64-bit lanes), truncated to the requested width.
//!
//! Widths are generic via [`HashWord`]: the Appendix B collision study runs
//! the identical algorithm at b = 16, Theorem 6.8's recommended production
//! width is b = 128, and the performance benchmarks use b = 64.
//!
//! Each combiner is salted with a distinct per-constructor constant and —
//! exactly as the Lemma 6.6 proof requires — with the *size* of the object
//! being built (the number of constructor calls). The structure size also
//! serves as the `StructureTag` of §4.8, because a structure's size
//! strictly exceeds that of any of its sub-structures.

use std::fmt::Debug;
use std::hash::Hash;

/// A fixed-width hash code. Implemented for `u16`, `u32`, `u64`, `u128`.
///
/// The two "lanes" are independent 64-bit digests; narrow widths truncate
/// the low lane, `u128` concatenates both.
pub trait HashWord: Copy + Eq + Ord + Hash + Debug + Send + Sync + 'static {
    /// Number of bits `b` in the hash space (2^b values).
    const BITS: u32;
    /// The all-zeroes word: the XOR-identity, used as the hash of an empty
    /// variable map.
    const ZERO: Self;

    /// Builds a word from two independently mixed 64-bit lanes.
    fn from_lanes(lo: u64, hi: u64) -> Self;

    /// Expands the word back to two lanes for feeding into further
    /// combiners. For widths ≤ 64 the high lane is zero, which is fine:
    /// the word is absorbed, not used as a key.
    fn to_lanes(self) -> (u64, u64);

    /// XOR — the commutative, associative, invertible aggregation the
    /// paper uses for variable-map hashes (§5.2).
    fn xor(self, other: Self) -> Self;
}

impl HashWord for u16 {
    const BITS: u32 = 16;
    const ZERO: Self = 0;

    #[inline]
    fn from_lanes(lo: u64, _hi: u64) -> Self {
        lo as u16
    }

    #[inline]
    fn to_lanes(self) -> (u64, u64) {
        (self as u64, 0)
    }

    #[inline]
    fn xor(self, other: Self) -> Self {
        self ^ other
    }
}

impl HashWord for u32 {
    const BITS: u32 = 32;
    const ZERO: Self = 0;

    #[inline]
    fn from_lanes(lo: u64, _hi: u64) -> Self {
        lo as u32
    }

    #[inline]
    fn to_lanes(self) -> (u64, u64) {
        (self as u64, 0)
    }

    #[inline]
    fn xor(self, other: Self) -> Self {
        self ^ other
    }
}

impl HashWord for u64 {
    const BITS: u32 = 64;
    const ZERO: Self = 0;

    #[inline]
    fn from_lanes(lo: u64, _hi: u64) -> Self {
        lo
    }

    #[inline]
    fn to_lanes(self) -> (u64, u64) {
        (self, 0)
    }

    #[inline]
    fn xor(self, other: Self) -> Self {
        self ^ other
    }
}

impl HashWord for u128 {
    const BITS: u32 = 128;
    const ZERO: Self = 0;

    #[inline]
    fn from_lanes(lo: u64, hi: u64) -> Self {
        (lo as u128) | ((hi as u128) << 64)
    }

    #[inline]
    fn to_lanes(self) -> (u64, u64) {
        (self as u64, (self >> 64) as u64)
    }

    #[inline]
    fn xor(self, other: Self) -> Self {
        self ^ other
    }
}

/// splitmix64 finaliser: a high-quality 64-bit mixing permutation.
#[inline]
pub fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Hashes a byte string to 64 bits (FNV-1a core + splitmix finaliser).
/// Used for variable *names*, so hashes are stable across arenas and
/// interners.
pub fn hash_str(seed: u64, s: &str) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325 ^ seed;
    for &b in s.as_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    mix64(h)
}

/// A two-lane absorbing mixer. Each [`Mixer::absorb`]ed word perturbs both
/// lanes through independent splitmix chains; [`Mixer::finish`] truncates
/// to the requested [`HashWord`].
#[derive(Clone, Copy, Debug)]
pub struct Mixer {
    lo: u64,
    hi: u64,
}

impl Mixer {
    /// Starts a mixing chain from the scheme seed and a per-combiner salt.
    #[inline]
    pub fn new(seed: u64, salt: u64) -> Self {
        let lo = mix64(seed ^ salt);
        let hi = mix64(lo ^ 0xA5A5_A5A5_5A5A_5A5A);
        Mixer { lo, hi }
    }

    /// Absorbs one 64-bit word.
    #[inline]
    pub fn absorb(&mut self, w: u64) -> &mut Self {
        self.lo = mix64(self.lo ^ w);
        self.hi = mix64(self.hi.wrapping_add(w).rotate_left(17) ^ 0x94D0_49BB_1331_11EB);
        self.hi = mix64(self.hi ^ w.rotate_left(32));
        self
    }

    /// Absorbs a hash word (both lanes).
    #[inline]
    pub fn absorb_word<H: HashWord>(&mut self, w: H) -> &mut Self {
        let (lo, hi) = w.to_lanes();
        self.absorb(lo);
        if H::BITS > 64 {
            self.absorb(hi);
        }
        self
    }

    /// Finishes the chain.
    #[inline]
    pub fn finish<H: HashWord>(&self) -> H {
        H::from_lanes(self.lo, self.hi)
    }
}

/// Per-constructor salts. Arbitrary distinct constants; the scheme seed
/// randomises everything downstream of them.
mod salt {
    pub const VAR_NAME: u64 = 0x01;
    pub const PT_HERE: u64 = 0x02;
    pub const PT_LEFT: u64 = 0x03;
    pub const PT_RIGHT: u64 = 0x04;
    pub const PT_BOTH: u64 = 0x05;
    pub const PT_JOIN: u64 = 0x06;
    pub const S_VAR: u64 = 0x10;
    pub const S_LAM: u64 = 0x11;
    pub const S_APP: u64 = 0x12;
    pub const S_LET: u64 = 0x13;
    pub const S_LIT: u64 = 0x14;
    pub const ENTRY: u64 = 0x20;
    pub const ESUMMARY: u64 = 0x21;
    pub const NONE_MARKER: u64 = 0x30;
    pub const SOME_MARKER: u64 = 0x31;
}

/// A seeded family of hash combiners — the practical stand-in for the
/// randomly chosen functions of Definition 6.4. Two schemes with different
/// seeds behave as independently drawn combiner families, which is exactly
/// what the Appendix B adversarial experiment varies.
#[derive(Clone, Copy, Debug)]
pub struct HashScheme<H: HashWord> {
    seed: u64,
    _marker: std::marker::PhantomData<H>,
}

/// Seed used by [`HashScheme::default`]: an arbitrary fixed value so that
/// unseeded use is deterministic across runs.
pub const DEFAULT_SEED: u64 = 0xD1B5_4A32_D192_ED03;

impl<H: HashWord> Default for HashScheme<H> {
    fn default() -> Self {
        Self::new(DEFAULT_SEED)
    }
}

impl<H: HashWord> HashScheme<H> {
    /// Creates a combiner family from a seed. Equal seeds give identical
    /// (deterministic) hash functions; different seeds give independent
    /// families.
    pub fn new(seed: u64) -> Self {
        HashScheme {
            seed: mix64(seed),
            _marker: std::marker::PhantomData,
        }
    }

    /// The scheme's raw internal seed (post-mixing). Together with the
    /// [`HashWord`] width this **completely determines** every hash the
    /// scheme produces, so it is the scheme's stable wire encoding:
    /// persisting this value and later rebuilding the scheme with
    /// [`HashScheme::from_raw_seed`] reproduces identical hashes. The
    /// combiner chains themselves are versioned by the store formats that
    /// persist them (see `alpha-store`'s `persist::format`): any change to
    /// the mixing functions in this module is a wire-format break.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Rebuilds a scheme from a raw internal seed previously obtained via
    /// [`HashScheme::seed`]. Unlike [`HashScheme::new`], the value is used
    /// as-is (no re-mixing), so `from_raw_seed(s.seed())` is exactly `s` —
    /// the round-trip used by persistent stores to reopen a corpus under
    /// the hash function that addressed it.
    ///
    /// ```
    /// use alpha_hash::combine::HashScheme;
    /// let original: HashScheme<u64> = HashScheme::new(0x5EED);
    /// let reopened: HashScheme<u64> = HashScheme::from_raw_seed(original.seed());
    /// assert_eq!(original.s_var(), reopened.s_var());
    /// assert_eq!(original.var_name("x"), reopened.var_name("x"));
    /// ```
    pub fn from_raw_seed(raw: u64) -> Self {
        HashScheme {
            seed: raw,
            _marker: std::marker::PhantomData,
        }
    }

    fn mixer(&self, salt: u64) -> Mixer {
        Mixer::new(self.seed, salt)
    }

    /// Hash of a variable *name* (stable across arenas).
    #[inline]
    pub fn var_name(&self, name: &str) -> u64 {
        hash_str(self.seed ^ salt::VAR_NAME, name)
    }

    // ---- position-tree combiners -------------------------------------

    /// `PTHere` (§4.5): a single occurrence at the current node.
    #[inline]
    pub fn pt_here(&self) -> H {
        self.mixer(salt::PT_HERE).finish()
    }

    /// `PTLeftOnly` (§4.5; used by the quadratic merge of §4.6).
    #[inline]
    pub fn pt_left(&self, size: u64, p: H) -> H {
        self.mixer(salt::PT_LEFT)
            .absorb(size)
            .absorb_word(p)
            .finish()
    }

    /// `PTRightOnly` (§4.5).
    #[inline]
    pub fn pt_right(&self, size: u64, p: H) -> H {
        self.mixer(salt::PT_RIGHT)
            .absorb(size)
            .absorb_word(p)
            .finish()
    }

    /// `PTBoth` (§4.5).
    #[inline]
    pub fn pt_both(&self, size: u64, l: H, r: H) -> H {
        self.mixer(salt::PT_BOTH)
            .absorb(size)
            .absorb_word(l)
            .absorb_word(r)
            .finish()
    }

    /// `PTJoin` (§4.8): tagged join of the bigger-map entry (if any) with
    /// the smaller-map entry.
    #[inline]
    pub fn pt_join(&self, size: u64, tag: u64, bigger: Option<H>, smaller: H) -> H {
        let mut m = self.mixer(salt::PT_JOIN);
        m.absorb(size).absorb(tag);
        self.absorb_opt(&mut m, bigger);
        m.absorb_word(smaller).finish()
    }

    #[inline]
    fn absorb_opt(&self, m: &mut Mixer, value: Option<H>) {
        match value {
            None => {
                m.absorb(salt::NONE_MARKER);
            }
            Some(h) => {
                m.absorb(salt::SOME_MARKER).absorb_word(h);
            }
        }
    }

    // ---- structure combiners ------------------------------------------

    /// `SVar`: the anonymous variable structure.
    #[inline]
    pub fn s_var(&self) -> H {
        self.mixer(salt::S_VAR).finish()
    }

    /// `SLit`: a literal leaf, identified by kind and payload.
    #[inline]
    pub fn s_lit(&self, kind: u64, payload: u64) -> H {
        self.mixer(salt::S_LIT)
            .absorb(kind)
            .absorb(payload)
            .finish()
    }

    /// `SLam`: binder position tree (if the variable occurs) + body
    /// structure. `size` is the structure's node count — the Lemma 6.6
    /// salt.
    #[inline]
    pub fn s_lam(&self, size: u64, pos: Option<H>, body: H) -> H {
        let mut m = self.mixer(salt::S_LAM);
        m.absorb(size);
        self.absorb_opt(&mut m, pos);
        m.absorb_word(body).finish()
    }

    /// `SApp` with the §4.8 `left_bigger` flag.
    #[inline]
    pub fn s_app(&self, size: u64, left_bigger: bool, fun: H, arg: H) -> H {
        self.mixer(salt::S_APP)
            .absorb(size)
            .absorb(left_bigger as u64)
            .absorb_word(fun)
            .absorb_word(arg)
            .finish()
    }

    /// `SLet`: binder positions in the body + rhs/body structures, with a
    /// `rhs_bigger` merge flag (the `Let` analogue of `left_bigger`).
    #[inline]
    pub fn s_let(&self, size: u64, rhs_bigger: bool, pos: Option<H>, rhs: H, body: H) -> H {
        let mut m = self.mixer(salt::S_LET);
        m.absorb(size).absorb(rhs_bigger as u64);
        self.absorb_opt(&mut m, pos);
        m.absorb_word(rhs).absorb_word(body).finish()
    }

    // ---- map and summary combiners --------------------------------------

    /// Hash of one variable-map entry `(v, p)` (§5.2 `entryHash`). The
    /// map hash is the XOR of these.
    #[inline]
    pub fn entry(&self, name_hash: u64, pos: H) -> H {
        self.mixer(salt::ENTRY)
            .absorb(name_hash)
            .absorb_word(pos)
            .finish()
    }

    /// Top-level combination of structure hash and variable-map hash
    /// (§5 `hashESummary`).
    #[inline]
    pub fn esummary(&self, structure: H, varmap: H) -> H {
        self.mixer(salt::ESUMMARY)
            .absorb_word(structure)
            .absorb_word(varmap)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn widths_truncate_consistently() {
        let s64: HashScheme<u64> = HashScheme::new(1);
        let s32: HashScheme<u32> = HashScheme::new(1);
        let s16: HashScheme<u16> = HashScheme::new(1);
        // Identical chains, truncated: low bits must agree.
        assert_eq!(s64.pt_here() as u16, s16.pt_here());
        assert_eq!(s64.s_var() as u16, s16.s_var());
        assert_eq!(s64.pt_here() as u32, s32.pt_here());
        assert_eq!(s64.s_var() as u32, s32.s_var());
        // And u128's low lane is the u64 value.
        let s128: HashScheme<u128> = HashScheme::new(1);
        assert_eq!(s128.s_var().to_lanes().0, s64.s_var());
    }

    #[test]
    fn u128_lanes_are_independent() {
        let s: HashScheme<u128> = HashScheme::new(7);
        let h = s.s_var();
        let (lo, hi) = h.to_lanes();
        assert_ne!(lo, hi);
        assert_eq!(u128::from_lanes(lo, hi), h);
    }

    #[test]
    fn different_seeds_give_different_functions() {
        let a: HashScheme<u64> = HashScheme::new(1);
        let b: HashScheme<u64> = HashScheme::new(2);
        assert_ne!(a.pt_here(), b.pt_here());
        assert_ne!(a.s_var(), b.s_var());
        assert_ne!(a.var_name("x"), b.var_name("x"));
    }

    #[test]
    fn same_seed_is_deterministic() {
        let a: HashScheme<u64> = HashScheme::new(42);
        let b: HashScheme<u64> = HashScheme::new(42);
        assert_eq!(a.s_app(3, true, 1, 2), b.s_app(3, true, 1, 2));
        assert_eq!(a.entry(9, 8), b.entry(9, 8));
    }

    #[test]
    fn constructors_are_mutually_distinct() {
        let s: HashScheme<u64> = HashScheme::new(3);
        let values = [
            s.pt_here(),
            s.pt_left(2, 1),
            s.pt_right(2, 1),
            s.pt_both(3, 1, 1),
            s.pt_join(3, 5, None, 1),
            s.s_var(),
            s.s_lit(1, 42),
            s.s_lam(2, None, 1),
            s.s_app(3, true, 1, 1),
            s.s_let(3, false, None, 1, 1),
            s.entry(1, 1),
            s.esummary(1, 1),
        ];
        for (i, a) in values.iter().enumerate() {
            for (j, b) in values.iter().enumerate() {
                if i != j {
                    assert_ne!(a, b, "combiners {i} and {j} collided");
                }
            }
        }
    }

    #[test]
    fn arguments_matter() {
        let s: HashScheme<u64> = HashScheme::new(11);
        assert_ne!(s.s_app(3, true, 1, 2), s.s_app(3, false, 1, 2));
        assert_ne!(s.s_app(3, true, 1, 2), s.s_app(3, true, 2, 1));
        assert_ne!(s.s_app(3, true, 1, 2), s.s_app(5, true, 1, 2));
        assert_ne!(s.pt_join(4, 7, None, 1), s.pt_join(4, 7, Some(0), 1));
        assert_ne!(s.pt_join(4, 7, Some(1), 2), s.pt_join(4, 7, Some(2), 1));
        assert_ne!(s.s_lam(2, None, 1), s.s_lam(2, Some(0), 1));
    }

    #[test]
    fn none_marker_differs_from_some_zero() {
        let s: HashScheme<u64> = HashScheme::new(13);
        // A lambda whose variable does not occur must differ from one whose
        // position tree happens to hash to 0.
        assert_ne!(s.s_lam(2, None, 9), s.s_lam(2, Some(0), 9));
    }

    #[test]
    fn name_hash_is_stable_and_spread() {
        let s: HashScheme<u64> = HashScheme::new(17);
        assert_eq!(s.var_name("foo"), s.var_name("foo"));
        assert_ne!(s.var_name("foo"), s.var_name("fop"));
        assert_ne!(s.var_name("x"), s.var_name("x%0"));
        // Empty name is fine.
        let _ = s.var_name("");
    }

    #[test]
    fn xor_is_invertible_aggregation() {
        // (a ⊕ b) ⊕ a == b — the property §5.2 relies on for removeFromVM.
        let a = 0xDEAD_BEEF_u64;
        let b = 0x1234_5678_u64;
        assert_eq!(a.xor(b).xor(a), b);
        assert_eq!(u64::ZERO.xor(a), a);
    }

    #[test]
    fn mix64_is_a_permutation_sample() {
        // Distinct inputs give distinct outputs on a sample (sanity; true
        // by construction since splitmix64 is bijective).
        let mut seen = std::collections::HashSet::new();
        for i in 0..10_000u64 {
            assert!(seen.insert(mix64(i)));
        }
    }

    #[test]
    fn raw_seed_round_trips_the_whole_scheme() {
        let a: HashScheme<u128> = HashScheme::new(0xFACE);
        let b: HashScheme<u128> = HashScheme::from_raw_seed(a.seed());
        assert_eq!(a.seed(), b.seed());
        assert_eq!(a.s_app(3, true, 1, 2), b.s_app(3, true, 1, 2));
        assert_eq!(a.pt_join(4, 7, Some(9), 1), b.pt_join(4, 7, Some(9), 1));
        assert_eq!(a.var_name("free"), b.var_name("free"));
        // And from_raw_seed really skips the mixing step.
        assert_ne!(
            HashScheme::<u64>::new(1).seed(),
            HashScheme::<u64>::from_raw_seed(1).seed()
        );
    }

    #[test]
    fn default_scheme_is_fixed() {
        let a: HashScheme<u64> = HashScheme::default();
        let b: HashScheme<u64> = HashScheme::default();
        assert_eq!(a.s_var(), b.s_var());
    }
}
