//! Step 1 of the paper's two-step development (§3.2): invertible
//! e-summaries.
//!
//! * [`mod@reference`] — the basic algorithm with the quadratic `mergeVM`
//!   (§4.6) and its `rebuild` inverse (§4.7).
//! * [`fast`] — the smaller-subtree merge with `StructureTag`s (§4.8),
//!   also invertible.
//!
//! Neither of these is the production algorithm (that is
//! [`crate::hashed`]); they exist because the paper's correctness argument
//! does: Step 1 loses no information (witnessed by `rebuild`), so the only
//! possible failures of the hashed form are ordinary hash collisions,
//! bounded in §6.2.

pub mod fast;
pub mod reference;
