//! Step 1, optimised version: the smaller-subtree merge with
//! `StructureTag`s (paper §4.8) — still fully invertible.
//!
//! The §4.6 algorithm transforms *every* entry of both children's maps at
//! each binary node. Here, only the **smaller** map's entries are touched:
//! each is joined into the bigger map wrapped in a [`PosNodeF::Join`]
//! carrying the parent structure's *tag*. Entries already in the bigger
//! map are left untouched. The tag lets [`FastSummariser::rebuild`] undo
//! the merge unambiguously: an entry belongs to this node's join iff its
//! top `Join` carries this structure's tag.
//!
//! We use the structure's **size** (constructor-call count) as the tag —
//! it satisfies §4.8's requirement that "a structure must have a different
//! tag to the tag of any of its sub-structures" because sizes strictly
//! increase upward, and it is exactly the Lemma 6.6 size salt the hashed
//! version needs anyway.
//!
//! Total map operations: O(n log n) (Lemma 6.1 — each node can be on the
//! smaller side only O(log n) times).

use crate::intern::NodeInterner;
use lambda_lang::arena::{ExprArena, ExprNode, NodeId};
use lambda_lang::literal::Literal;
use lambda_lang::symbol::{Interner, Symbol};
use lambda_lang::visit::postorder;
use std::collections::{BTreeMap, HashMap};

/// Interned id of a [`PosNodeF`].
pub type PosId = u32;
/// Interned id of a [`StructNodeF`].
pub type StructId = u32;
/// A structure tag (§4.8): here, the structure's size.
pub type StructureTag = u64;

/// Position trees for the optimised algorithm (§4.8).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum PosNodeF {
    /// The variable occurs exactly here.
    Here,
    /// A tagged join performed at the binary node whose structure has tag
    /// `tag`: `bigger` is what the bigger map previously held for this
    /// variable (if anything), `smaller` the entry folded in from the
    /// smaller map.
    Join {
        /// Tag of the structure at which the join happened.
        tag: StructureTag,
        /// Position tree from the bigger map, if the variable was present.
        bigger: Option<PosId>,
        /// Position tree from the smaller map.
        smaller: PosId,
    },
}

/// Structures for the optimised algorithm: like
/// [`crate::summary::reference::StructNode`] plus the `left_bigger` /
/// `rhs_bigger` flags recording which child's map was bigger (§4.8).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum StructNodeF {
    /// Anonymous variable.
    Var,
    /// Literal leaf.
    Lit(Literal),
    /// Lambda: binder occurrences (if any) + body.
    Lam(Option<PosId>, StructId),
    /// Application with merge-direction flag.
    App {
        /// True if the function child's variable map was the bigger one.
        left_bigger: bool,
        /// Function structure.
        fun: StructId,
        /// Argument structure.
        arg: StructId,
    },
    /// Let with merge-direction flag.
    Let {
        /// True if the rhs child's variable map was the bigger one.
        rhs_bigger: bool,
        /// Binder occurrences within the body (if any).
        pos: Option<PosId>,
        /// Rhs structure.
        rhs: StructId,
        /// Body structure.
        body: StructId,
    },
}

/// Free-variable map, keyed by the summariser's **own** name symbols:
/// dense `u32` ids interned from the variable's string name by the
/// [`FastSummariser`]'s local name table, so maps built from different
/// arenas stay comparable (equal names get equal local symbols) without
/// cloning `Rc<str>` keys around the hot loop.
pub type VarMapF = BTreeMap<Symbol, PosId>;

/// An invertible e-summary produced by the optimised algorithm.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ESummaryFast {
    /// The interned structure.
    pub structure: StructId,
    /// The free-variable map.
    pub varmap: VarMapF,
}

/// Summariser state for the §4.8 algorithm: interners plus per-structure
/// sizes (the tags).
#[derive(Clone, Debug, Default)]
pub struct FastSummariser {
    structs: NodeInterner<StructNodeF>,
    sizes: Vec<u64>,
    pos: NodeInterner<PosNodeF>,
    /// The summariser's own variable-name interner: [`VarMapF`] keys are
    /// symbols of *this* interner, not of any arena's, so summaries of
    /// terms from different arenas compare correctly.
    names: Interner,
    /// Total `alterVM`-style map operations performed at binary nodes; the
    /// quantity bounded by Lemma 6.1, exposed for the complexity tests.
    pub merge_ops: u64,
}

impl FastSummariser {
    /// Creates an empty summariser.
    pub fn new() -> Self {
        Self::default()
    }

    fn intern_struct(&mut self, node: StructNodeF, size: u64) -> StructId {
        let id = self.structs.intern(node);
        if id as usize == self.sizes.len() {
            self.sizes.push(size);
        }
        debug_assert_eq!(self.sizes[id as usize], size);
        id
    }

    /// `structureTag` (§4.8): the structure's size.
    pub fn structure_tag(&self, id: StructId) -> StructureTag {
        self.sizes[id as usize]
    }

    /// The summariser-local symbol for an arena symbol's name. `cache`
    /// memoises the translation per arena symbol so each distinct name is
    /// string-hashed once per `summarise` call.
    fn local_name(
        &mut self,
        arena: &ExprArena,
        cache: &mut HashMap<Symbol, Symbol>,
        sym: Symbol,
    ) -> Symbol {
        *cache
            .entry(sym)
            .or_insert_with(|| self.names.intern(arena.name(sym)))
    }

    /// Folds the smaller map into the bigger one (§4.8's `add_kv` loop):
    /// every smaller entry is wrapped in a `Join` with this node's tag;
    /// bigger-only entries are untouched.
    fn merge_smaller_into_bigger(
        &mut self,
        tag: StructureTag,
        mut bigger: VarMapF,
        smaller: VarMapF,
    ) -> VarMapF {
        for (name, small_pos) in smaller {
            self.merge_ops += 1;
            let old = bigger.get(&name).copied();
            let joined = self.pos.intern(PosNodeF::Join {
                tag,
                bigger: old,
                smaller: small_pos,
            });
            bigger.insert(name, joined);
        }
        bigger
    }

    /// Merges the two child maps of a binary node, returning the combined
    /// map and whether the left map was the bigger one. Ties pick left, so
    /// the choice is deterministic — and it depends only on map *sizes*,
    /// which are alpha-invariant, so alpha-equivalent terms always merge
    /// the same way.
    fn merge_binary(
        &mut self,
        tag: StructureTag,
        left: VarMapF,
        right: VarMapF,
    ) -> (VarMapF, bool) {
        let left_bigger = left.len() >= right.len();
        let merged = if left_bigger {
            self.merge_smaller_into_bigger(tag, left, right)
        } else {
            self.merge_smaller_into_bigger(tag, right, left)
        };
        (merged, left_bigger)
    }

    /// Summarises the subtree at `root` with the §4.8 algorithm.
    /// Iterative post-order; stack-safe at any depth.
    ///
    /// # Panics
    ///
    /// Debug builds assert the unique-binder precondition (§2.2).
    pub fn summarise(&mut self, arena: &ExprArena, root: NodeId) -> ESummaryFast {
        self.summarise_impl(arena, root, &mut |_, _| {})
    }

    /// Per-subexpression summaries (see the caveats on
    /// [`crate::summary::reference::RefSummariser::summarise_all`]).
    pub fn summarise_all(
        &mut self,
        arena: &ExprArena,
        root: NodeId,
    ) -> HashMap<NodeId, ESummaryFast> {
        let mut out = HashMap::new();
        self.summarise_impl(arena, root, &mut |node, summary| {
            out.insert(node, summary.clone());
        });
        out
    }

    fn summarise_impl(
        &mut self,
        arena: &ExprArena,
        root: NodeId,
        record: &mut dyn FnMut(NodeId, &ESummaryFast),
    ) -> ESummaryFast {
        debug_assert!(
            lambda_lang::uniquify::check_unique_binders(arena, root).is_ok(),
            "summarise requires distinct binders (run uniquify first)"
        );
        let mut names: HashMap<Symbol, Symbol> = HashMap::new();
        let mut stack: Vec<ESummaryFast> = Vec::new();

        for n in postorder(arena, root) {
            let summary = match arena.node(n) {
                ExprNode::Var(s) => {
                    let here = self.pos.intern(PosNodeF::Here);
                    let mut vm = VarMapF::new();
                    let local = self.local_name(arena, &mut names, s);
                    vm.insert(local, here);
                    ESummaryFast {
                        structure: self.intern_struct(StructNodeF::Var, 1),
                        varmap: vm,
                    }
                }
                ExprNode::Lit(l) => ESummaryFast {
                    structure: self.intern_struct(StructNodeF::Lit(l), 1),
                    varmap: VarMapF::new(),
                },
                ExprNode::Lam(x, _) => {
                    let mut body = stack.pop().expect("lam body summary");
                    let name = self.local_name(arena, &mut names, x);
                    let x_pos = body.varmap.remove(&name);
                    let size = 1 + self.structure_tag(body.structure);
                    ESummaryFast {
                        structure: self
                            .intern_struct(StructNodeF::Lam(x_pos, body.structure), size),
                        varmap: body.varmap,
                    }
                }
                ExprNode::App(_, _) => {
                    let right = stack.pop().expect("app arg summary");
                    let left = stack.pop().expect("app fun summary");
                    let size = 1
                        + self.structure_tag(left.structure)
                        + self.structure_tag(right.structure);
                    // The tag is the size of the structure being built;
                    // it is known before interning.
                    let (varmap, left_bigger) = self.merge_binary(size, left.varmap, right.varmap);
                    let structure = self.intern_struct(
                        StructNodeF::App {
                            left_bigger,
                            fun: left.structure,
                            arg: right.structure,
                        },
                        size,
                    );
                    ESummaryFast { structure, varmap }
                }
                ExprNode::Let(x, _, _) => {
                    let mut body = stack.pop().expect("let body summary");
                    let rhs = stack.pop().expect("let rhs summary");
                    let name = self.local_name(arena, &mut names, x);
                    let x_pos = body.varmap.remove(&name);
                    let size =
                        1 + self.structure_tag(rhs.structure) + self.structure_tag(body.structure);
                    let (varmap, rhs_bigger) = self.merge_binary(size, rhs.varmap, body.varmap);
                    let structure = self.intern_struct(
                        StructNodeF::Let {
                            rhs_bigger,
                            pos: x_pos,
                            rhs: rhs.structure,
                            body: body.structure,
                        },
                        size,
                    );
                    ESummaryFast { structure, varmap }
                }
            };
            record(n, &summary);
            stack.push(summary);
        }

        let result = stack.pop().expect("summarise produced a result");
        debug_assert!(stack.is_empty());
        result
    }

    /// Inverts the tagged merge (§4.8's `upd_small`): an entry came from
    /// the smaller map iff its top node is a `Join` with this tag.
    fn upd_small(&self, tag: StructureTag, pos: PosId) -> Option<PosId> {
        match *self.pos.get(pos) {
            PosNodeF::Join {
                tag: ptag, smaller, ..
            } if ptag == tag => Some(smaller),
            _ => None,
        }
    }

    /// §4.8's `upd_big`: entries joined at this tag revert to what the
    /// bigger map held (possibly nothing); untouched entries belonged to
    /// the bigger map as-is.
    fn upd_big(&self, tag: StructureTag, pos: PosId) -> Option<PosId> {
        match *self.pos.get(pos) {
            PosNodeF::Join {
                tag: ptag, bigger, ..
            } if ptag == tag => bigger,
            _ => Some(pos),
        }
    }

    fn split_vm(&self, tag: StructureTag, vm: &VarMapF) -> (VarMapF, VarMapF) {
        let mut big = VarMapF::new();
        let mut small = VarMapF::new();
        for (&name, &pos) in vm {
            if let Some(p) = self.upd_big(tag, pos) {
                big.insert(name, p);
            }
            if let Some(p) = self.upd_small(tag, pos) {
                small.insert(name, p);
            }
        }
        (big, small)
    }

    /// Rebuilds an expression alpha-equivalent to the summarised one —
    /// the §4.8 version of `rebuild`, proving the tagged merge loses no
    /// information. (`&mut self` because fresh binder names are interned
    /// into the summariser's local name table.)
    pub fn rebuild(&mut self, summary: &ESummaryFast, dst: &mut ExprArena) -> NodeId {
        self.rebuild_rec(summary.structure, &summary.varmap, dst)
    }

    fn rebuild_rec(&mut self, structure: StructId, vm: &VarMapF, dst: &mut ExprArena) -> NodeId {
        let tag = self.structure_tag(structure);
        match *self.structs.get(structure) {
            StructNodeF::Var => {
                assert_eq!(
                    vm.len(),
                    1,
                    "malformed e-summary: Var with non-singleton map"
                );
                let (&name, &pos) = vm.iter().next().expect("singleton");
                assert_eq!(*self.pos.get(pos), PosNodeF::Here, "malformed e-summary");
                dst.var_named(self.names.resolve(name))
            }
            StructNodeF::Lit(l) => {
                assert!(vm.is_empty(), "malformed e-summary: literal with free vars");
                dst.lit(l)
            }
            StructNodeF::Lam(x_pos, body) => {
                let fresh = dst.fresh("x");
                let mut inner = vm.clone();
                if let Some(p) = x_pos {
                    let local = self.names.intern(dst.name(fresh));
                    inner.insert(local, p);
                }
                let body_id = self.rebuild_rec(body, &inner, dst);
                dst.lam(fresh, body_id)
            }
            StructNodeF::App {
                left_bigger,
                fun,
                arg,
            } => {
                let (big, small) = self.split_vm(tag, vm);
                let (m1, m2) = if left_bigger {
                    (big, small)
                } else {
                    (small, big)
                };
                let f = self.rebuild_rec(fun, &m1, dst);
                let a = self.rebuild_rec(arg, &m2, dst);
                dst.app(f, a)
            }
            StructNodeF::Let {
                rhs_bigger,
                pos,
                rhs,
                body,
            } => {
                let (big, small) = self.split_vm(tag, vm);
                let (m_rhs, mut m_body) = if rhs_bigger {
                    (big, small)
                } else {
                    (small, big)
                };
                let fresh = dst.fresh("x");
                if let Some(p) = pos {
                    let local = self.names.intern(dst.name(fresh));
                    m_body.insert(local, p);
                }
                let r = self.rebuild_rec(rhs, &m_rhs, dst);
                let b = self.rebuild_rec(body, &m_body, dst);
                dst.let_(fresh, r, b)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lambda_lang::alpha::alpha_eq;
    use lambda_lang::parse::parse;

    fn summarise_str(
        summariser: &mut FastSummariser,
        src: &str,
    ) -> (ExprArena, NodeId, ESummaryFast) {
        let mut a = ExprArena::new();
        let parsed = parse(&mut a, src).unwrap();
        let (b, root) = lambda_lang::uniquify::uniquify(&a, parsed);
        let summary = summariser.summarise(&b, root);
        (b, root, summary)
    }

    fn equal_summaries(s1: &str, s2: &str) -> bool {
        let mut summariser = FastSummariser::new();
        let (_, _, a) = summarise_str(&mut summariser, s1);
        let (_, _, b) = summarise_str(&mut summariser, s2);
        a == b
    }

    #[test]
    fn agrees_with_alpha_equivalence_on_paper_examples() {
        assert!(equal_summaries(r"\x. x + y", r"\p. p + y"));
        assert!(!equal_summaries(r"\x. x + y", r"\q. q + z"));
        assert!(equal_summaries(r"map (\y. y+1) vs", r"map (\x. x+1) vs"));
        assert!(equal_summaries(
            "let bar = x+1 in bar*y",
            "let p = x+1 in p*y"
        ));
        assert!(!equal_summaries(
            "let x = bar in x+2",
            "let x = pubx in x+2"
        ));
        assert!(!equal_summaries("add x y", "add x x"));
        assert!(!equal_summaries(r"\x. \y. x", r"\x. \y. y"));
    }

    #[test]
    fn tags_strictly_increase_upward() {
        let mut s = FastSummariser::new();
        let (_, _, summary) = summarise_str(&mut s, r"\x. (x + y) * (y + z)");
        // The root tag equals the expression size and exceeds all others.
        let root_tag = s.structure_tag(summary.structure);
        assert_eq!(root_tag, 14);
        for id in 0..s.structs.len() as u32 {
            if id != summary.structure {
                assert!(s.structure_tag(id) <= root_tag);
            }
        }
    }

    #[test]
    fn rebuild_round_trips_up_to_alpha() {
        for src in [
            "x",
            "42",
            r"\x. x",
            r"\x. x + y",
            r"\x. \y. x y (x + 1)",
            "let w = v + 7 in (a + w) * w",
            "foo (let bar = x+1 in bar*y) (let p = x+1 in p*y)",
            r"\t. foo (\x. x + t) (\y. \x. x + t)",
            r"\f. f (\x. f x)",
            "f x x",
            "f (g a b c) (h a) a",
            r"\a. \b. \c. a (b c) (c a b)",
        ] {
            let mut s = FastSummariser::new();
            let (arena, root, summary) = summarise_str(&mut s, src);
            let mut dst = ExprArena::new();
            let rebuilt = s.rebuild(&summary, &mut dst);
            assert!(
                alpha_eq(&arena, root, &dst, rebuilt),
                "rebuild not alpha-equivalent for {src}: got {}",
                lambda_lang::print::print(&dst, rebuilt)
            );
        }
    }

    #[test]
    fn matches_reference_summariser_classes() {
        use crate::summary::reference::RefSummariser;
        let sources = [
            r"\x. x + y",
            r"\p. p + y",
            r"\q. q + z",
            "x + 2",
            "y + 2",
            r"\x. x",
            r"\y. y",
            "let a = 1 in a + a",
            "let b = 1 in b + b",
            "f x x",
            "f x y",
        ];
        let mut fast = FastSummariser::new();
        let mut reference = RefSummariser::new();
        let mut fast_sums = Vec::new();
        let mut ref_sums = Vec::new();
        for src in sources {
            let mut a = ExprArena::new();
            let parsed = parse(&mut a, src).unwrap();
            let (b, root) = lambda_lang::uniquify::uniquify(&a, parsed);
            fast_sums.push(fast.summarise(&b, root));
            ref_sums.push(reference.summarise(&b, root));
        }
        for i in 0..sources.len() {
            for j in 0..sources.len() {
                assert_eq!(
                    fast_sums[i] == fast_sums[j],
                    ref_sums[i] == ref_sums[j],
                    "fast and reference disagree on {} vs {}",
                    sources[i],
                    sources[j]
                );
            }
        }
    }

    #[test]
    fn merge_ops_are_log_linear_on_balanced_input() {
        // A balanced expression over many distinct free variables: the
        // merge-op count must stay well under the quadratic count.
        let mut a = ExprArena::new();
        let leaves: Vec<NodeId> = (0..256).map(|i| a.var_named(&format!("v{i}"))).collect();
        let mut layer = leaves;
        while layer.len() > 1 {
            layer = layer
                .chunks(2)
                .map(|pair| {
                    if pair.len() == 2 {
                        a.app(pair[0], pair[1])
                    } else {
                        pair[0]
                    }
                })
                .collect();
        }
        let root = layer[0];
        let mut s = FastSummariser::new();
        let _ = s.summarise(&a, root);
        // n = 256 leaves: merges total 256·log2(256)/2 = 1024 ≤ ops bound,
        // vs ~255·128 ≈ 32k for the quadratic scheme.
        assert!(s.merge_ops <= 256 * 8, "merge_ops = {}", s.merge_ops);
        assert!(
            s.merge_ops >= 128,
            "merge_ops suspiciously low: {}",
            s.merge_ops
        );
    }

    #[test]
    fn unbalanced_spine_does_linear_merge_work() {
        // Left spine applying one shared variable: smaller side is always
        // the single-entry map, so total ops are O(n).
        let mut a = ExprArena::new();
        let mut e = a.var_named("f");
        for _ in 0..1000 {
            let v = a.var_named("x");
            e = a.app(e, v);
        }
        let mut s = FastSummariser::new();
        let _ = s.summarise(&a, e);
        assert!(s.merge_ops <= 2 * 1000, "merge_ops = {}", s.merge_ops);
    }

    #[test]
    fn deep_input_is_stack_safe() {
        let mut a = ExprArena::new();
        let mut e = a.var_named("z");
        for i in 0..100_000 {
            let x = a.intern(&format!("x{i}"));
            e = a.lam(x, e);
        }
        let mut s = FastSummariser::new();
        let summary = s.summarise(&a, e);
        assert_eq!(s.structure_tag(summary.structure), 100_001);
    }
}
