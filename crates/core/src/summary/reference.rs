//! Step 1, basic version: the invertible e-summary with the quadratic
//! `mergeVM` (paper §4.2–§4.7).
//!
//! An e-summary is a pair of:
//!
//! * a [`StructNode`] structure: the shape of the expression with variables
//!   anonymised; each binder carries a *position tree* of its occurrences
//!   (§4.3);
//! * a *variable map* from each free variable to the position tree of its
//!   occurrences (§4.4).
//!
//! Both components are hash-consed ([`crate::intern`]), so two e-summaries
//! produced by the same [`RefSummariser`] are equal iff their expressions
//! are alpha-equivalent — compared in O(free variables), not O(tree size).
//!
//! The whole point of this module (the paper's correctness argument,
//! §3.2): [`RefSummariser::rebuild`] inverts [`RefSummariser::summarise`]
//! up to alpha, proving the summary loses no information and therefore
//! admits no false positives. The efficient algorithms
//! ([`crate::summary::fast`], [`crate::hashed`]) refine this one; property
//! tests pin them to it.
//!
//! At an `App` node the basic `mergeVM` transforms **every** entry of both
//! children's maps (wrapping position trees in `LeftOnly`/`RightOnly`/
//! `Both`), which is what makes this version Θ(n²) in the worst case —
//! exactly the §4.6 behaviour, kept as the semantic baseline and as the
//! ablation point for the §4.8 optimisation.

use crate::intern::NodeInterner;
use lambda_lang::arena::{ExprArena, ExprNode, NodeId};
use lambda_lang::literal::Literal;
use lambda_lang::symbol::Symbol;
use lambda_lang::visit::postorder;
use std::collections::{BTreeMap, HashMap};
use std::rc::Rc;

/// Interned id of a [`PosNode`].
pub type PosId = u32;
/// Interned id of a [`StructNode`].
pub type StructId = u32;

/// Position trees (§4.5): a skeleton reaching exactly the occurrences of
/// one variable.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum PosNode {
    /// The variable occurs exactly here.
    Here,
    /// All occurrences are in the left child.
    LeftOnly(PosId),
    /// All occurrences are in the right child.
    RightOnly(PosId),
    /// Occurrences in both children.
    Both(PosId, PosId),
}

/// Structures (§4.3): the shape of an expression, variables anonymised.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum StructNode {
    /// An anonymous variable occurrence.
    Var,
    /// A literal (kept verbatim: literals have no binding behaviour).
    Lit(Literal),
    /// A lambda: positions of its bound variable (`None` = unused) and the
    /// body structure.
    Lam(Option<PosId>, StructId),
    /// An application.
    App(StructId, StructId),
    /// A let: positions of the bound variable *within the body*, rhs
    /// structure, body structure.
    Let(Option<PosId>, StructId, StructId),
}

/// Free-variable map: variable name → positions. Keyed by name (`Rc<str>`)
/// so that summaries from different arenas compare correctly.
pub type VarMap = BTreeMap<Rc<str>, PosId>;

/// An invertible e-summary (§4.2). Two summaries from the same
/// [`RefSummariser`] are equal iff the source expressions are
/// alpha-equivalent.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ESummaryRef {
    /// The interned structure.
    pub structure: StructId,
    /// The free-variable map.
    pub varmap: VarMap,
}

/// Summariser state: the hash-consing interners shared by every summary it
/// produces (summaries are only comparable within one summariser).
#[derive(Clone, Debug, Default)]
pub struct RefSummariser {
    structs: NodeInterner<StructNode>,
    pos: NodeInterner<PosNode>,
}

impl RefSummariser {
    /// Creates an empty summariser.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of distinct structures interned so far.
    pub fn distinct_structures(&self) -> usize {
        self.structs.len()
    }

    fn name_of(
        &self,
        arena: &ExprArena,
        cache: &mut HashMap<Symbol, Rc<str>>,
        sym: Symbol,
    ) -> Rc<str> {
        cache
            .entry(sym)
            .or_insert_with(|| Rc::from(arena.name(sym)))
            .clone()
    }

    /// The quadratic `mergeVM` of §4.6: every position tree from the left
    /// map is wrapped `LeftOnly`, every one from the right `RightOnly`,
    /// and variables occurring in both get `Both`.
    fn merge_vm(&mut self, left: VarMap, mut right: VarMap) -> VarMap {
        let mut out = VarMap::new();
        for (name, lp) in left {
            let node = match right.remove(&name) {
                Some(rp) => PosNode::Both(lp, rp),
                None => PosNode::LeftOnly(lp),
            };
            let id = self.pos.intern(node);
            out.insert(name, id);
        }
        for (name, rp) in right {
            let id = self.pos.intern(PosNode::RightOnly(rp));
            out.insert(name, id);
        }
        out
    }

    /// Summarises the subtree at `root` (§4.6). Iterative post-order;
    /// stack-safe at any depth.
    ///
    /// # Panics
    ///
    /// Debug builds assert the unique-binder precondition (§2.2).
    pub fn summarise(&mut self, arena: &ExprArena, root: NodeId) -> ESummaryRef {
        self.summarise_impl(arena, root, &mut |_, _| {})
    }

    /// Summarises every subexpression, returning the per-node summaries in
    /// a map. Memory is O(n²) in the worst case (each node's variable map
    /// is retained); intended for tests and small inputs — the efficient
    /// per-node *hashes* come from [`crate::hashed`].
    pub fn summarise_all(
        &mut self,
        arena: &ExprArena,
        root: NodeId,
    ) -> HashMap<NodeId, ESummaryRef> {
        let mut out = HashMap::new();
        self.summarise_impl(arena, root, &mut |node, summary| {
            out.insert(node, summary.clone());
        });
        out
    }

    fn summarise_impl(
        &mut self,
        arena: &ExprArena,
        root: NodeId,
        record: &mut dyn FnMut(NodeId, &ESummaryRef),
    ) -> ESummaryRef {
        debug_assert!(
            lambda_lang::uniquify::check_unique_binders(arena, root).is_ok(),
            "summarise requires distinct binders (run uniquify first)"
        );
        let mut names: HashMap<Symbol, Rc<str>> = HashMap::new();
        let mut stack: Vec<ESummaryRef> = Vec::new();

        for n in postorder(arena, root) {
            let summary = match arena.node(n) {
                ExprNode::Var(s) => {
                    let here = self.pos.intern(PosNode::Here);
                    let mut vm = VarMap::new();
                    vm.insert(self.name_of(arena, &mut names, s), here);
                    ESummaryRef {
                        structure: self.structs.intern(StructNode::Var),
                        varmap: vm,
                    }
                }
                ExprNode::Lit(l) => ESummaryRef {
                    structure: self.structs.intern(StructNode::Lit(l)),
                    varmap: VarMap::new(),
                },
                ExprNode::Lam(x, _) => {
                    let mut body = stack.pop().expect("lam body summary");
                    let name = self.name_of(arena, &mut names, x);
                    let x_pos = body.varmap.remove(&name);
                    ESummaryRef {
                        structure: self.structs.intern(StructNode::Lam(x_pos, body.structure)),
                        varmap: body.varmap,
                    }
                }
                ExprNode::App(_, _) => {
                    let right = stack.pop().expect("app arg summary");
                    let left = stack.pop().expect("app fun summary");
                    let structure = self
                        .structs
                        .intern(StructNode::App(left.structure, right.structure));
                    let varmap = self.merge_vm(left.varmap, right.varmap);
                    ESummaryRef { structure, varmap }
                }
                ExprNode::Let(x, _, _) => {
                    let mut body = stack.pop().expect("let body summary");
                    let rhs = stack.pop().expect("let rhs summary");
                    // Remove the binder from the body map *first* (it is
                    // not in scope in the rhs), then merge rhs (left) with
                    // body (right).
                    let name = self.name_of(arena, &mut names, x);
                    let x_pos = body.varmap.remove(&name);
                    let structure =
                        self.structs
                            .intern(StructNode::Let(x_pos, rhs.structure, body.structure));
                    let varmap = self.merge_vm(rhs.varmap, body.varmap);
                    ESummaryRef { structure, varmap }
                }
            };
            record(n, &summary);
            stack.push(summary);
        }

        let result = stack.pop().expect("summarise produced a result");
        debug_assert!(stack.is_empty());
        result
    }

    /// Rebuilds an expression alpha-equivalent to the one the summary came
    /// from (§4.7) — the witness that e-summaries lose no information.
    ///
    /// Bound variables get fresh names (the original names were never
    /// recorded), so the result is alpha-equivalent, not identical.
    pub fn rebuild(&self, summary: &ESummaryRef, dst: &mut ExprArena) -> NodeId {
        self.rebuild_rec(summary.structure, &summary.varmap, dst)
    }

    fn pick_left(&self, pos: PosId) -> Option<PosId> {
        match *self.pos.get(pos) {
            PosNode::LeftOnly(p) => Some(p),
            PosNode::Both(l, _) => Some(l),
            _ => None,
        }
    }

    fn pick_right(&self, pos: PosId) -> Option<PosId> {
        match *self.pos.get(pos) {
            PosNode::RightOnly(p) => Some(p),
            PosNode::Both(_, r) => Some(r),
            _ => None,
        }
    }

    fn split_vm(&self, vm: &VarMap) -> (VarMap, VarMap) {
        let mut left = VarMap::new();
        let mut right = VarMap::new();
        for (name, &pos) in vm {
            if let Some(p) = self.pick_left(pos) {
                left.insert(name.clone(), p);
            }
            if let Some(p) = self.pick_right(pos) {
                right.insert(name.clone(), p);
            }
        }
        (left, right)
    }

    fn rebuild_rec(&self, structure: StructId, vm: &VarMap, dst: &mut ExprArena) -> NodeId {
        match *self.structs.get(structure) {
            StructNode::Var => {
                // findSingletonVM: the map must be {name ↦ Here}.
                assert_eq!(
                    vm.len(),
                    1,
                    "malformed e-summary: Var with non-singleton map"
                );
                let (name, &pos) = vm.iter().next().expect("singleton");
                assert_eq!(*self.pos.get(pos), PosNode::Here, "malformed e-summary");
                dst.var_named(name)
            }
            StructNode::Lit(l) => {
                assert!(vm.is_empty(), "malformed e-summary: literal with free vars");
                dst.lit(l)
            }
            StructNode::Lam(x_pos, body) => {
                let fresh = dst.fresh("x");
                let mut inner = vm.clone();
                if let Some(p) = x_pos {
                    inner.insert(Rc::from(dst.name(fresh)), p);
                }
                let body_id = self.rebuild_rec(body, &inner, dst);
                dst.lam(fresh, body_id)
            }
            StructNode::App(s1, s2) => {
                let (m1, m2) = self.split_vm(vm);
                let f = self.rebuild_rec(s1, &m1, dst);
                let a = self.rebuild_rec(s2, &m2, dst);
                dst.app(f, a)
            }
            StructNode::Let(x_pos, s_rhs, s_body) => {
                let (m_rhs, mut m_body) = self.split_vm(vm);
                let fresh = dst.fresh("x");
                if let Some(p) = x_pos {
                    m_body.insert(Rc::from(dst.name(fresh)), p);
                }
                let rhs = self.rebuild_rec(s_rhs, &m_rhs, dst);
                let body = self.rebuild_rec(s_body, &m_body, dst);
                dst.let_(fresh, rhs, body)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lambda_lang::alpha::alpha_eq;
    use lambda_lang::parse::parse;

    fn summarise_str(
        summariser: &mut RefSummariser,
        src: &str,
    ) -> (ExprArena, NodeId, ESummaryRef) {
        let mut a = ExprArena::new();
        let parsed = parse(&mut a, src).unwrap();
        let (b, root) = lambda_lang::uniquify::uniquify(&a, parsed);
        let summary = summariser.summarise(&b, root);
        (b, root, summary)
    }

    fn equal_summaries(s1: &str, s2: &str) -> bool {
        let mut summariser = RefSummariser::new();
        let (_, _, a) = summarise_str(&mut summariser, s1);
        let (_, _, b) = summarise_str(&mut summariser, s2);
        a == b
    }

    #[test]
    fn alpha_equivalent_terms_get_equal_summaries() {
        assert!(equal_summaries(r"\x. x + y", r"\p. p + y"));
        assert!(equal_summaries(r"\x. x", r"\y. y"));
        assert!(equal_summaries(
            "let bar = x+1 in bar*y",
            "let p = x+1 in p*y"
        ));
    }

    #[test]
    fn inequivalent_terms_get_distinct_summaries() {
        assert!(!equal_summaries(r"\x. x + y", r"\q. q + z"));
        assert!(!equal_summaries(r"\x. x", r"\x. y"));
        assert!(!equal_summaries("x + 2", "y + 2"));
        assert!(!equal_summaries(r"\x. \y. x", r"\x. \y. y"));
        assert!(!equal_summaries("1", "2"));
        assert!(!equal_summaries("let a = 1 in a", r"(\a. a) 1"));
    }

    #[test]
    fn free_variable_identity_is_preserved() {
        // (add x y) vs (add x x): same structure, different maps (§4.2).
        assert!(!equal_summaries("add x y", "add x x"));
        assert!(equal_summaries("add x y", "add x y"));
    }

    #[test]
    fn structure_ignores_free_variable_names() {
        let mut s = RefSummariser::new();
        let (_, _, sum1) = summarise_str(&mut s, "add x y");
        let (_, _, sum2) = summarise_str(&mut s, "add x x");
        // Maps differ but structures agree.
        assert_eq!(sum1.structure, sum2.structure);
        assert_ne!(sum1.varmap, sum2.varmap);
    }

    #[test]
    fn position_tree_example_from_section_4_5() {
        // Occurrences of "x" in App (App f x) x:
        // PTBoth (PTRightOnly PTHere) PTHere.
        let mut s = RefSummariser::new();
        let (_, _, summary) = summarise_str(&mut s, "f x x");
        let x_pos = summary.varmap.get("x").copied().expect("x in map");
        match *s.pos.get(x_pos) {
            PosNode::Both(l, r) => {
                assert!(
                    matches!(*s.pos.get(l), PosNode::RightOnly(p) if *s.pos.get(p) == PosNode::Here)
                );
                assert_eq!(*s.pos.get(r), PosNode::Here);
            }
            other => panic!("expected Both, got {other:?}"),
        }
    }

    #[test]
    fn lambda_with_unused_binder() {
        let mut s = RefSummariser::new();
        let (_, _, summary) = summarise_str(&mut s, r"\x. y");
        match *s.structs.get(summary.structure) {
            StructNode::Lam(pos, _) => assert!(pos.is_none(), "unused binder must record None"),
            other => panic!("expected Lam, got {other:?}"),
        }
        assert!(equal_summaries(r"\x. y", r"\unused. y"));
        assert!(!equal_summaries(r"\x. y", r"\y2. y2"));
    }

    #[test]
    fn rebuild_round_trips_up_to_alpha() {
        for src in [
            "x",
            "42",
            r"\x. x",
            r"\x. x + y",
            r"\x. \y. x y (x + 1)",
            "let w = v + 7 in (a + w) * w",
            "foo (let bar = x+1 in bar*y) (let p = x+1 in p*y)",
            r"\t. foo (\x. x + t) (\y. \x. x + t)",
            r"\f. f (\x. f x)",
            "f x x",
        ] {
            let mut s = RefSummariser::new();
            let (arena, root, summary) = summarise_str(&mut s, src);
            let mut dst = ExprArena::new();
            let rebuilt = s.rebuild(&summary, &mut dst);
            assert!(
                alpha_eq(&arena, root, &dst, rebuilt),
                "rebuild not alpha-equivalent for {src}: got {}",
                lambda_lang::print::print(&dst, rebuilt)
            );
        }
    }

    #[test]
    fn rebuild_then_summarise_gives_same_summary() {
        let mut s = RefSummariser::new();
        let (_, _, summary) = summarise_str(&mut s, r"\x. let y = x + z in y * y");
        let mut dst = ExprArena::new();
        let rebuilt = s.rebuild(&summary, &mut dst);
        let summary2 = s.summarise(&dst, rebuilt);
        assert_eq!(summary, summary2);
    }

    #[test]
    fn summarise_all_groups_alpha_equivalent_subterms() {
        // foo (\x.x+7) (\y.y+7): the two lambdas are alpha-equivalent and
        // must get equal summaries (§1).
        let mut a = ExprArena::new();
        let parsed = parse(&mut a, r"foo (\x. x+7) (\y. y+7)").unwrap();
        let (b, root) = lambda_lang::uniquify::uniquify(&a, parsed);
        let mut s = RefSummariser::new();
        let all = s.summarise_all(&b, root);
        // Find the two Lam nodes.
        let lams: Vec<NodeId> = lambda_lang::visit::preorder(&b, root)
            .into_iter()
            .filter(|&n| matches!(b.node(n), ExprNode::Lam(_, _)))
            .collect();
        assert_eq!(lams.len(), 2);
        assert_eq!(all[&lams[0]], all[&lams[1]]);
    }

    #[test]
    fn hash_consing_shares_structures() {
        let mut s = RefSummariser::new();
        let before = s.distinct_structures();
        let (_, _, _one) = summarise_str(&mut s, r"\x. x");
        let mid = s.distinct_structures();
        let (_, _, _two) = summarise_str(&mut s, r"\y. y");
        // The second, alpha-equivalent term must not intern anything new.
        assert_eq!(mid, s.distinct_structures());
        assert!(mid > before);
    }

    #[test]
    fn name_overloading_stays_separate_in_context() {
        // §2.2 false positive: the two `x+2` have equal summaries as bare
        // terms (same free var name) — which is correct, because as
        // standalone terms they ARE alpha-equivalent. Their inequivalence
        // only exists under the binders:
        assert!(equal_summaries("x + 2", "x + 2"));
        assert!(!equal_summaries(
            "let x = bar in x+2",
            "let x = pubx in x+2"
        ));
    }
}
