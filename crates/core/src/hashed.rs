//! Step 2: the paper's final algorithm (§5) — e-summaries in hashed form.
//!
//! Two representation changes turn the invertible Step-1 summary
//! ([`crate::summary::fast`]) into an O(n (log n)²) hashing pass:
//!
//! 1. **Structures and position trees are represented by their hash codes**
//!    (§5.1): the smart constructors become O(1) hash combiners and
//!    `hashStructure` becomes the identity. We carry the size alongside
//!    each hash (`StructH`, `PosH`) because the size is the `StructureTag`
//!    of §4.8 and the salt of Lemma 6.6.
//! 2. **The variable-map hash is the XOR of its entry hashes** (§5.2).
//!    XOR is commutative, associative and invertible, so adding, removing
//!    or replacing one entry updates the map hash in O(1) — the key to
//!    compositionality. §6.2 proves this weak combiner does not weaken the
//!    hash.
//!
//! The summariser records each node's e-summary hash *before* the node's
//! variable map is consumed (and mutated) by its parent, so Rust ownership
//! replaces the persistence Haskell's `Data.Map` provided.

use crate::combine::{HashScheme, HashWord};
use crate::flatmap::{FlatVarMap, MapPool};
use lambda_lang::arena::{ExprArena, ExprNode, NodeId};
use lambda_lang::symbol::Symbol;
use lambda_lang::visit::postorder_with;

/// A position tree in hashed form: its hash code plus its size
/// (constructor-call count, the Lemma 6.6 salt).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct PosH<H> {
    /// Hash code standing for the whole position tree.
    pub hash: H,
    /// Number of constructor calls that built the tree.
    pub size: u64,
}

/// A structure in hashed form: hash code plus size. The size doubles as
/// the §4.8 `StructureTag` (strictly increasing upward).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct StructH<H> {
    /// Hash code standing for the whole structure.
    pub hash: H,
    /// Structure size = node count of the summarised expression.
    pub size: u64,
}

/// A variable map in hashed form (§5.2): flat sorted storage plus the
/// XOR-maintained hash of its entries.
///
/// Since the fast-path overhaul this is the [`FlatVarMap`] of
/// [`crate::flatmap`] — inline storage for small maps, one sorted `Vec`
/// beyond that — rather than a `BTreeMap`. The API (and the §4.8 merge
/// semantics built on it) is unchanged.
pub type VarMapH<H> = FlatVarMap<H>;

/// An e-summary in hashed form.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ESummaryH<H: HashWord> {
    /// The structure component.
    pub structure: StructH<H>,
    /// The free-variable map component.
    pub varmap: VarMapH<H>,
}

impl<H: HashWord> ESummaryH<H> {
    /// `hashESummary`: the node's final hash code.
    pub fn hash(&self, scheme: &HashScheme<H>) -> H {
        scheme.esummary(self.structure.hash, self.varmap.hash())
    }
}

/// Per-symbol hashes of variable *names* (stable across arenas), indexed
/// by `Symbol::index`. Precomputed once per arena so the hot path never
/// touches strings.
pub fn name_hashes<H: HashWord>(arena: &ExprArena, scheme: &HashScheme<H>) -> Vec<u64> {
    let n = arena.interner().len();
    (0..n as u32)
        .map(|i| scheme.var_name(arena.interner().resolve(Symbol::from_index(i))))
        .collect()
}

/// Hashes of every subexpression of one tree, indexed by [`NodeId`].
#[derive(Clone, Debug)]
pub struct SubtreeHashes<H> {
    hashes: Vec<Option<H>>,
}

impl<H: HashWord> SubtreeHashes<H> {
    fn new(capacity: usize) -> Self {
        SubtreeHashes {
            hashes: vec![None; capacity],
        }
    }

    /// Wraps a dense per-node-index vector of hashes. Used by the
    /// Appendix C variant and the baseline hashers, which share this
    /// result type so that grouping and benchmarking code is uniform.
    pub fn from_vec(hashes: Vec<Option<H>>) -> Self {
        SubtreeHashes { hashes }
    }

    fn set(&mut self, node: NodeId, hash: H) {
        self.hashes[node.index()] = Some(hash);
    }

    /// The hash of the subexpression rooted at `node`, if it was part of
    /// the summarised tree.
    pub fn get(&self, node: NodeId) -> Option<H> {
        self.hashes.get(node.index()).copied().flatten()
    }

    /// Iterates over `(node, hash)` for every summarised node.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, H)> + '_ {
        self.hashes
            .iter()
            .enumerate()
            .filter_map(|(i, h)| h.map(|h| (NodeId::from_index(i), h)))
    }

    /// Number of hashed nodes.
    pub fn len(&self) -> usize {
        self.hashes.iter().filter(|h| h.is_some()).count()
    }

    /// Whether no node was hashed.
    pub fn is_empty(&self) -> bool {
        self.hashes.iter().all(|h| h.is_none())
    }
}

/// Which merge strategy the summariser uses at binary nodes — the §4.8
/// smaller-subtree merge (the paper's final choice) or the §4.6 merge that
/// transforms every entry of both maps. The latter exists for the ablation
/// benchmark: same equivalence classes, quadratic cost.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum MergeStrategy {
    /// §4.8: touch only the smaller map, tagging moved entries.
    SmallerIntoBigger,
    /// §4.6: rebuild both maps with Left/Right/Both wrappers.
    TransformBoth,
}

/// The hashed summariser (the paper's final algorithm when `strategy` is
/// [`MergeStrategy::SmallerIntoBigger`]).
///
/// A summariser is tied to the arena it was created for (variable-name
/// hashes are cached per [`Symbol`]) and is designed to be **reused across
/// many terms of that arena**: the name-hash cache, the traversal stack,
/// the e-summary value stack and the spilled-map pool all persist between
/// calls, so batch hashing performs no per-node heap allocation and never
/// re-hashes a variable name it has already seen. This is what makes
/// store ingest O(total nodes) instead of O(terms × interner size).
#[derive(Debug)]
pub struct HashedSummariser<'s, H: HashWord> {
    scheme: &'s HashScheme<H>,
    /// Lazily filled per-symbol name hashes, indexed by `Symbol::index`.
    name_hashes: Vec<Option<u64>>,
    strategy: MergeStrategy,
    /// Map operations performed at binary nodes (the Lemma 6.1 quantity).
    pub merge_ops: u64,
    /// Nodes fed through [`push_node`](Self::push_node) since construction
    /// — the instrumentation seam's "work done" denominator (store ingest
    /// reads and resets it between batches).
    pub nodes_pushed: u64,
    /// Name-hash cache misses: symbols whose name hash had to be computed
    /// rather than served from the per-arena cache. A high miss share on a
    /// reused summariser means the cache is not amortising.
    pub name_cache_misses: u64,
    /// E-summary value stack for the streaming post-order fold.
    stack: Vec<ESummaryH<H>>,
    /// Reusable traversal scratch for [`postorder_with`].
    walk: Vec<(NodeId, bool)>,
    /// Recycled spill buffers for maps wider than the inline cap.
    pool: MapPool<H>,
}

impl<'s, H: HashWord> HashedSummariser<'s, H> {
    /// Creates a summariser for `arena` using the §4.8 merge.
    pub fn new(arena: &ExprArena, scheme: &'s HashScheme<H>) -> Self {
        Self::with_strategy(arena, scheme, MergeStrategy::SmallerIntoBigger)
    }

    /// Creates a summariser with an explicit merge strategy (for the
    /// ablation benchmark).
    pub fn with_strategy(
        arena: &ExprArena,
        scheme: &'s HashScheme<H>,
        strategy: MergeStrategy,
    ) -> Self {
        HashedSummariser {
            scheme,
            // Name hashes are computed on first use of each symbol, not
            // eagerly: a summariser that hashes one small term out of a
            // large arena must not pay for the whole interner.
            name_hashes: Vec::with_capacity(arena.interner().len().min(1024)),
            strategy,
            merge_ops: 0,
            nodes_pushed: 0,
            name_cache_misses: 0,
            stack: Vec::new(),
            walk: Vec::new(),
            pool: MapPool::default(),
        }
    }

    #[inline]
    fn name_hash(&mut self, arena: &ExprArena, sym: Symbol) -> u64 {
        lookup_name_hash(
            &mut self.name_hashes,
            &mut self.name_cache_misses,
            arena,
            self.scheme,
            sym,
        )
    }

    /// Retunes (or disables, with `usize::MAX`) the tree tier of this
    /// summariser's variable maps — the sorted-Vec ablation knob the
    /// wide-map bench uses to measure the tiers against each other.
    pub fn set_tree_threshold(&mut self, threshold: usize) {
        self.pool.set_tree_threshold(threshold);
    }

    /// §4.8 merge: fold the smaller map into the bigger one, tagging each
    /// moved entry with the parent structure's tag. Returns the merged map
    /// and whether the left map was the bigger one.
    ///
    /// Only smaller-side entries count as merge operations (Lemma 6.1) —
    /// counted here, in one tier-independent increment — while the
    /// representation work happens in [`VarMapH::merge_from_smaller`]:
    /// in place when the result fits inline, one linear merge-join of the
    /// two sorted runs in the flat-spill tier, and an
    /// O(m log(n/m + 1)) persistent-tree union in the tree tier.
    fn merge_smaller(
        &mut self,
        arena: &ExprArena,
        tag: u64,
        left: VarMapH<H>,
        right: VarMapH<H>,
    ) -> (VarMapH<H>, bool) {
        let left_bigger = left.len() >= right.len();
        let (bigger, smaller) = if left_bigger {
            (left, right)
        } else {
            (right, left)
        };
        if smaller.is_empty() {
            smaller.recycle(&mut self.pool);
            return (bigger, left_bigger);
        }
        self.merge_ops += smaller.len() as u64;
        let scheme = self.scheme;
        let name_hashes = &mut self.name_hashes;
        let misses = &mut self.name_cache_misses;
        let mut nh = |sym: Symbol| lookup_name_hash(name_hashes, misses, arena, scheme, sym);
        let mut join = |old: Option<PosH<H>>, small_pos: PosH<H>| {
            let size = 1 + old.map_or(0, |p| p.size) + small_pos.size;
            PosH {
                hash: scheme.pt_join(size, tag, old.map(|p| p.hash), small_pos.hash),
                size,
            }
        };
        let merged = VarMapH::merge_from_smaller(
            bigger,
            smaller,
            scheme,
            &mut self.pool,
            &mut nh,
            &mut join,
        );
        (merged, left_bigger)
    }

    /// §4.6 merge: wrap every left entry `LeftOnly`, every right entry
    /// `RightOnly`, and both-sides entries `Both`. Touches every entry —
    /// the quadratic baseline for the ablation. Implemented as one
    /// merge-join over the two sorted iterations (tier-agnostic).
    fn merge_both(
        &mut self,
        arena: &ExprArena,
        left: VarMapH<H>,
        right: VarMapH<H>,
    ) -> (VarMapH<H>, bool) {
        let scheme = self.scheme;
        let mut out = self.pool.take_buffer(left.len() + right.len());
        let mut xor = H::ZERO;
        {
            let mut li = left.iter().peekable();
            let mut ri = right.iter().peekable();
            loop {
                let (sym, pos) = match (li.peek().copied(), ri.peek().copied()) {
                    (None, None) => break,
                    (Some((ls, lp)), Some((rs, rp))) if ls == rs => {
                        li.next();
                        ri.next();
                        let size = 1 + lp.size + rp.size;
                        (
                            ls,
                            PosH {
                                hash: scheme.pt_both(size, lp.hash, rp.hash),
                                size,
                            },
                        )
                    }
                    (Some((ls, lp)), r) if r.is_none_or(|(rs, _)| ls < rs) => {
                        li.next();
                        (
                            ls,
                            PosH {
                                hash: scheme.pt_left(1 + lp.size, lp.hash),
                                size: 1 + lp.size,
                            },
                        )
                    }
                    (_, Some((rs, rp))) => {
                        ri.next();
                        (
                            rs,
                            PosH {
                                hash: scheme.pt_right(1 + rp.size, rp.hash),
                                size: 1 + rp.size,
                            },
                        )
                    }
                    (Some(_), None) => unreachable!("covered by the left-only arm"),
                };
                self.merge_ops += 1;
                let nh = self.name_hash(arena, sym);
                xor = xor.xor(scheme.entry(nh, pos.hash));
                out.push((sym, pos));
            }
        }
        left.recycle(&mut self.pool);
        right.recycle(&mut self.pool);
        (VarMapH::from_sorted(out, xor, &mut self.pool), true)
    }

    fn merge(
        &mut self,
        arena: &ExprArena,
        tag: u64,
        left: VarMapH<H>,
        right: VarMapH<H>,
    ) -> (VarMapH<H>, bool) {
        match self.strategy {
            MergeStrategy::SmallerIntoBigger => self.merge_smaller(arena, tag, left, right),
            MergeStrategy::TransformBoth => self.merge_both(arena, left, right),
        }
    }

    /// Starts a streaming summary. The value stack must be empty — i.e.
    /// every previously begun term was [`finish`](Self::finish)ed.
    pub fn begin(&mut self) {
        assert!(
            self.stack.is_empty(),
            "begin() while a summary is in flight"
        );
    }

    /// Feeds one node of a post-order traversal and returns its
    /// subexpression hash. The caller drives the traversal — this is what
    /// lets the store fuse hashing with de Bruijn conversion in a single
    /// pass. Nodes **must** arrive in post-order (children before parents,
    /// `Let` rhs before body), and terms must satisfy the unique-binder
    /// precondition (§2.2).
    pub fn push_node(&mut self, arena: &ExprArena, n: NodeId) -> H {
        self.nodes_pushed += 1;
        let scheme = self.scheme;
        let summary = match arena.node(n) {
            ExprNode::Var(s) => {
                let pos = PosH {
                    hash: scheme.pt_here(),
                    size: 1,
                };
                let nh = self.name_hash(arena, s);
                ESummaryH {
                    structure: StructH {
                        hash: scheme.s_var(),
                        size: 1,
                    },
                    varmap: VarMapH::singleton(scheme, s, nh, pos),
                }
            }
            ExprNode::Lit(l) => ESummaryH {
                structure: StructH {
                    hash: scheme.s_lit(l.kind_tag(), l.payload()),
                    size: 1,
                },
                varmap: VarMapH::new(),
            },
            ExprNode::Lam(x, _) => {
                let mut body = self.stack.pop().expect("lam body summary");
                let nh = self.name_hash(arena, x);
                let x_pos = body.varmap.remove(scheme, x, nh);
                let size = 1 + body.structure.size;
                ESummaryH {
                    structure: StructH {
                        hash: scheme.s_lam(size, x_pos.map(|p| p.hash), body.structure.hash),
                        size,
                    },
                    varmap: body.varmap,
                }
            }
            ExprNode::App(_, _) => {
                let right = self.stack.pop().expect("app arg summary");
                let left = self.stack.pop().expect("app fun summary");
                let size = 1 + left.structure.size + right.structure.size;
                let (varmap, left_bigger) = self.merge(arena, size, left.varmap, right.varmap);
                ESummaryH {
                    structure: StructH {
                        hash: scheme.s_app(
                            size,
                            left_bigger,
                            left.structure.hash,
                            right.structure.hash,
                        ),
                        size,
                    },
                    varmap,
                }
            }
            ExprNode::Let(x, _, _) => {
                let mut body = self.stack.pop().expect("let body summary");
                let rhs = self.stack.pop().expect("let rhs summary");
                let nh = self.name_hash(arena, x);
                // Binder removed from the body map first: it does not
                // scope over the rhs.
                let x_pos = body.varmap.remove(scheme, x, nh);
                let size = 1 + rhs.structure.size + body.structure.size;
                let (varmap, rhs_bigger) = self.merge(arena, size, rhs.varmap, body.varmap);
                ESummaryH {
                    structure: StructH {
                        hash: scheme.s_let(
                            size,
                            rhs_bigger,
                            x_pos.map(|p| p.hash),
                            rhs.structure.hash,
                            body.structure.hash,
                        ),
                        size,
                    },
                    varmap,
                }
            }
        };
        let hash = summary.hash(scheme);
        self.stack.push(summary);
        hash
    }

    /// Like [`push_node`](Self::push_node), but also returns the node's
    /// subtree size (its structure size, the §4.8 `StructureTag`). This is
    /// the per-subexpression record the store's `Subexpressions` mode
    /// indexes: the batched pass yields `(hash, node_count)` for **every**
    /// node of the term at no extra cost, so granularity filters like
    /// `min_nodes` need no second traversal.
    pub fn push_node_sized(&mut self, arena: &ExprArena, n: NodeId) -> (H, u64) {
        let hash = self.push_node(arena, n);
        let size = self
            .stack
            .last()
            .expect("push_node pushed a summary")
            .structure
            .size;
        (hash, size)
    }

    /// Completes a streaming summary begun with [`begin`](Self::begin),
    /// returning the root e-summary.
    ///
    /// # Panics
    ///
    /// Panics if the nodes fed so far do not form exactly one complete
    /// post-order term.
    pub fn finish(&mut self) -> ESummaryH<H> {
        let result = self.stack.pop().expect("summarise produced a result");
        assert!(
            self.stack.is_empty(),
            "finish() with an incomplete post-order feed"
        );
        result
    }

    /// Like [`finish`](Self::finish) but discards the root e-summary,
    /// returning its spilled map buffer (if any) to the internal pool —
    /// the right call when only the per-node hashes were wanted, so that
    /// batch loops over wide-map terms stay allocation-free.
    pub fn finish_discard(&mut self) {
        let result = self.finish();
        result.varmap.recycle(&mut self.pool);
    }

    /// Summarises the subtree at `root`, recording per-node hashes through
    /// `record`. Iterative post-order; stack-safe at any depth.
    fn summarise_impl(
        &mut self,
        arena: &ExprArena,
        root: NodeId,
        record: &mut dyn FnMut(NodeId, H),
    ) -> ESummaryH<H> {
        debug_assert!(
            lambda_lang::uniquify::check_unique_binders(arena, root).is_ok(),
            "summarise requires distinct binders (run uniquify first)"
        );
        self.begin();
        let mut walk = std::mem::take(&mut self.walk);
        postorder_with(arena, root, &mut walk, |n| {
            let hash = self.push_node(arena, n);
            record(n, hash);
        });
        self.walk = walk;
        self.finish()
    }

    /// Summarises the subtree at `root`, returning its e-summary.
    pub fn summarise(&mut self, arena: &ExprArena, root: NodeId) -> ESummaryH<H> {
        self.summarise_impl(arena, root, &mut |_, _| {})
    }

    /// Hashes every subexpression of the subtree at `root` — the paper's
    /// headline operation. O(n (log n)²) with the §4.8 strategy.
    pub fn summarise_all(&mut self, arena: &ExprArena, root: NodeId) -> SubtreeHashes<H> {
        let mut out = SubtreeHashes::new(arena.len());
        self.summarise_impl(arena, root, &mut |node, hash| out.set(node, hash));
        out
    }
}

/// The summariser's lazily-filled per-symbol name-hash cache, as a free
/// function over its split-out fields so merge callbacks can resolve
/// names while other summariser fields stay independently borrowed.
#[inline]
fn lookup_name_hash<H: HashWord>(
    cache: &mut Vec<Option<u64>>,
    misses: &mut u64,
    arena: &ExprArena,
    scheme: &HashScheme<H>,
    sym: Symbol,
) -> u64 {
    let i = sym.index() as usize;
    if i >= cache.len() {
        cache.resize(i + 1, None);
    }
    match cache[i] {
        Some(h) => {
            // Guard the one-arena contract: a summariser reused across
            // arenas would serve stale hashes for re-used symbol
            // indices. Debug builds recompute and compare.
            debug_assert_eq!(
                h,
                scheme.var_name(arena.interner().resolve(sym)),
                "HashedSummariser reused across arenas: {sym:?} now names a different string"
            );
            h
        }
        None => {
            *misses += 1;
            let h = scheme.var_name(arena.interner().resolve(sym));
            cache[i] = Some(h);
            h
        }
    }
}

/// One-shot convenience: the alpha-equivalence-respecting hash of a single
/// expression.
///
/// # Examples
///
/// ```
/// use lambda_lang::arena::ExprArena;
/// use lambda_lang::parse::parse;
/// use alpha_hash::combine::HashScheme;
/// use alpha_hash::hashed::hash_expr;
///
/// let scheme: HashScheme<u64> = HashScheme::default();
/// let mut a = ExprArena::new();
/// let e1 = parse(&mut a, r"\x. x + 7")?;
/// let e2 = parse(&mut a, r"\y. y + 7")?;
/// let e3 = parse(&mut a, r"\y. y + 8")?;
/// assert_eq!(hash_expr(&a, e1, &scheme), hash_expr(&a, e2, &scheme));
/// assert_ne!(hash_expr(&a, e1, &scheme), hash_expr(&a, e3, &scheme));
/// # Ok::<(), lambda_lang::parse::ParseError>(())
/// ```
pub fn hash_expr<H: HashWord>(arena: &ExprArena, root: NodeId, scheme: &HashScheme<H>) -> H {
    let mut summariser = HashedSummariser::new(arena, scheme);
    let summary = summariser.summarise(arena, root);
    summary.hash(scheme)
}

/// One-shot convenience: hashes of all subexpressions.
pub fn hash_all_subexpressions<H: HashWord>(
    arena: &ExprArena,
    root: NodeId,
    scheme: &HashScheme<H>,
) -> SubtreeHashes<H> {
    let mut summariser = HashedSummariser::new(arena, scheme);
    summariser.summarise_all(arena, root)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lambda_lang::parse::parse;

    fn scheme() -> HashScheme<u64> {
        HashScheme::new(0xABCD)
    }

    fn hash_of(src: &str) -> u64 {
        let mut a = ExprArena::new();
        let parsed = parse(&mut a, src).unwrap();
        let (b, root) = lambda_lang::uniquify::uniquify(&a, parsed);
        hash_expr(&b, root, &scheme())
    }

    #[test]
    fn paper_examples_hash_correctly() {
        // Equivalent pairs.
        assert_eq!(hash_of(r"\x. x + y"), hash_of(r"\p. p + y"));
        assert_eq!(hash_of(r"\x. x"), hash_of(r"\y. y"));
        assert_eq!(
            hash_of("let bar = x+1 in bar*y"),
            hash_of("let p = x+1 in p*y")
        );
        assert_eq!(hash_of(r"map (\y. y+1) vs"), hash_of(r"map (\x. x+1) vs"));
        // Inequivalent pairs.
        assert_ne!(hash_of(r"\x. x + y"), hash_of(r"\q. q + z"));
        assert_ne!(hash_of("x + 2"), hash_of("y + 2"));
        assert_ne!(hash_of("add x y"), hash_of("add x x"));
        assert_ne!(hash_of(r"\x. \y. x"), hash_of(r"\x. \y. y"));
        assert_ne!(hash_of("1"), hash_of("2"));
        assert_ne!(hash_of("1"), hash_of("1.0"));
        assert_ne!(hash_of("let a = 1 in a"), hash_of(r"(\a. a) 1"));
    }

    #[test]
    fn de_bruijn_failure_modes_are_fixed() {
        // §2.4 false negative: both (\x.x+t) subterms must hash equal even
        // under different lambda nesting. We hash the subterms directly.
        assert_eq!(hash_of(r"\x. x + t"), hash_of(r"\y. y + t"));
        // §2.4 false positive: (\x.t*(x+1)) vs (\x.y*(x+1)) differ in free
        // vars and must hash differently.
        assert_ne!(hash_of(r"\x. t * (x+1)"), hash_of(r"\x. y * (x+1)"));
    }

    #[test]
    fn subexpression_hashes_find_equivalent_lambdas() {
        // §1: foo (\x.x+7) (\y.y+7) — the two lambdas hash equal.
        let mut a = ExprArena::new();
        let parsed = parse(&mut a, r"foo (\x. x+7) (\y. y+7)").unwrap();
        let (b, root) = lambda_lang::uniquify::uniquify(&a, parsed);
        let s = scheme();
        let hashes = hash_all_subexpressions(&b, root, &s);
        let lams: Vec<NodeId> = lambda_lang::visit::preorder(&b, root)
            .into_iter()
            .filter(|&n| matches!(b.node(n), ExprNode::Lam(_, _)))
            .collect();
        assert_eq!(lams.len(), 2);
        assert_eq!(hashes.get(lams[0]), hashes.get(lams[1]));
        // And they differ from everything else.
        let distinct: std::collections::HashSet<u64> = hashes.iter().map(|(_, h)| h).collect();
        assert!(distinct.len() >= 8);
    }

    #[test]
    fn name_overloading_hashes_differently_in_context() {
        // §2.2: the x+2 subexpressions are equal standalone (both free x)
        // but the surrounding lets must not be equal.
        assert_eq!(hash_of("x + 2"), hash_of("x + 2"));
        assert_ne!(
            hash_of("let x = bar in x+2"),
            hash_of("let x = pubx in x+2")
        );
    }

    #[test]
    fn merge_strategies_agree_on_classes() {
        let sources = [
            r"\x. x + y",
            r"\p. p + y",
            r"\q. q + z",
            "f x x",
            "f x y",
            "let a = u in a * (a + u)",
            "let b = u in b * (b + u)",
        ];
        let s = scheme();
        let mut hashes_fast = Vec::new();
        let mut hashes_quad = Vec::new();
        for src in sources {
            let mut a = ExprArena::new();
            let parsed = parse(&mut a, src).unwrap();
            let (b, root) = lambda_lang::uniquify::uniquify(&a, parsed);
            let mut fast = HashedSummariser::new(&b, &s);
            hashes_fast.push(fast.summarise(&b, root).hash(&s));
            let mut quad = HashedSummariser::with_strategy(&b, &s, MergeStrategy::TransformBoth);
            hashes_quad.push(quad.summarise(&b, root).hash(&s));
        }
        for i in 0..sources.len() {
            for j in 0..sources.len() {
                assert_eq!(
                    hashes_fast[i] == hashes_fast[j],
                    hashes_quad[i] == hashes_quad[j],
                    "strategies disagree on {} vs {}",
                    sources[i],
                    sources[j]
                );
            }
        }
    }

    #[test]
    fn varmap_xor_maintenance_matches_recomputation() {
        // Build a map through singleton/upsert/remove and check the XOR
        // hash equals a from-scratch fold at every step.
        let s = scheme();
        let mut arena = ExprArena::new();
        let syms: Vec<Symbol> = (0..8).map(|i| arena.intern(&format!("v{i}"))).collect();
        let nh: Vec<u64> = syms.iter().map(|&x| s.var_name(arena.name(x))).collect();

        let recompute = |vm: &VarMapH<u64>| -> u64 {
            vm.iter().fold(0u64, |acc, (sym, pos)| {
                let i = syms.iter().position(|&x| x == sym).unwrap();
                acc ^ s.entry(nh[i], pos.hash)
            })
        };

        let here = PosH {
            hash: s.pt_here(),
            size: 1,
        };
        let mut vm = VarMapH::singleton(&s, syms[0], nh[0], here);
        assert_eq!(vm.hash(), recompute(&vm));

        for i in 1..8 {
            vm.upsert(
                &s,
                syms[i],
                nh[i],
                PosH {
                    hash: s.pt_left(2, here.hash),
                    size: 2,
                },
            );
            assert_eq!(vm.hash(), recompute(&vm));
        }
        // Replace an existing entry.
        vm.upsert(
            &s,
            syms[3],
            nh[3],
            PosH {
                hash: s.pt_right(2, here.hash),
                size: 2,
            },
        );
        assert_eq!(vm.hash(), recompute(&vm));
        // Remove entries one by one.
        for i in 0..8 {
            vm.remove(&s, syms[i], nh[i]);
            assert_eq!(vm.hash(), recompute(&vm));
        }
        assert_eq!(vm.hash(), u64::ZERO);
    }

    #[test]
    fn remove_of_absent_symbol_is_noop() {
        let s = scheme();
        let mut arena = ExprArena::new();
        let x = arena.intern("x");
        let y = arena.intern("y");
        let here = PosH {
            hash: s.pt_here(),
            size: 1,
        };
        let mut vm = VarMapH::singleton(&s, x, s.var_name("x"), here);
        let before = vm.hash();
        assert!(vm.remove(&s, y, s.var_name("y")).is_none());
        assert_eq!(vm.hash(), before);
    }

    #[test]
    fn different_widths_work() {
        let mut a = ExprArena::new();
        let parsed = parse(&mut a, r"\x. x + y").unwrap();
        let (b, root) = lambda_lang::uniquify::uniquify(&a, parsed);
        let h16 = hash_expr::<u16>(&b, root, &HashScheme::new(1));
        let h128 = hash_expr::<u128>(&b, root, &HashScheme::new(1));
        // Sanity: both computed; widths differ.
        assert!(u128::from(h16) <= u128::from(u16::MAX));
        assert!(h128 > u128::from(u64::MAX) || h128 <= u128::from(u64::MAX)); // always true, just touch it
        let _ = (h16, h128);
    }

    #[test]
    fn hashes_are_scheme_dependent() {
        let mut a = ExprArena::new();
        let parsed = parse(&mut a, r"\x. x + y").unwrap();
        let (b, root) = lambda_lang::uniquify::uniquify(&a, parsed);
        let h1 = hash_expr(&b, root, &HashScheme::<u64>::new(1));
        let h2 = hash_expr(&b, root, &HashScheme::<u64>::new(2));
        assert_ne!(h1, h2);
    }

    #[test]
    fn cross_arena_hashes_are_comparable() {
        // Same term built in two different arenas with different interner
        // states must hash identically (names are hashed by string).
        let s = scheme();
        let mut a = ExprArena::new();
        a.intern("pollute_interner");
        let e1 = parse(&mut a, r"\x. x + free").unwrap();
        let mut b = ExprArena::new();
        let e2 = parse(&mut b, r"\z. z + free").unwrap();
        assert_eq!(hash_expr(&a, e1, &s), hash_expr(&b, e2, &s));
    }

    #[test]
    fn merge_ops_counting_is_log_linear_for_balanced() {
        let mut a = ExprArena::new();
        let leaves: Vec<NodeId> = (0..512).map(|i| a.var_named(&format!("v{i}"))).collect();
        let mut layer = leaves;
        while layer.len() > 1 {
            layer = layer
                .chunks(2)
                .map(|p| {
                    if p.len() == 2 {
                        a.app(p[0], p[1])
                    } else {
                        p[0]
                    }
                })
                .collect();
        }
        let s = scheme();
        let mut fast = HashedSummariser::new(&a, &s);
        let _ = fast.summarise(&a, layer[0]);
        let fast_ops = fast.merge_ops;
        let mut quad = HashedSummariser::with_strategy(&a, &s, MergeStrategy::TransformBoth);
        let _ = quad.summarise(&a, layer[0]);
        let quad_ops = quad.merge_ops;
        // 512 leaves: fast ≈ n/2·log n = 2304; quadratic ≈ n·log n... for
        // balanced both are n log n-ish, but quad counts every entry at
        // every level: 512·9 = 4608 vs fast 512·9/2 = 2304.
        assert!(fast_ops < quad_ops, "fast {fast_ops} !< quad {quad_ops}");
    }

    #[test]
    fn unbalanced_spine_fast_is_linear_quad_is_quadratic() {
        // Spine applying distinct variables: at each App the bigger map
        // keeps growing; fast touches only the 1-entry smaller side.
        let mut a = ExprArena::new();
        let mut e = a.var_named("f");
        for i in 0..500 {
            let v = a.var_named(&format!("x{i}"));
            e = a.app(e, v);
        }
        let s = scheme();
        let mut fast = HashedSummariser::new(&a, &s);
        let _ = fast.summarise(&a, e);
        let mut quad = HashedSummariser::with_strategy(&a, &s, MergeStrategy::TransformBoth);
        let _ = quad.summarise(&a, e);
        assert!(fast.merge_ops <= 500, "fast ops {}", fast.merge_ops);
        assert!(quad.merge_ops > 100_000, "quad ops {}", quad.merge_ops);
    }

    #[test]
    fn subtree_hashes_accessors() {
        let mut a = ExprArena::new();
        let parsed = parse(&mut a, "f x").unwrap();
        let hashes = hash_all_subexpressions(&a, parsed, &scheme());
        assert_eq!(hashes.len(), 3);
        assert!(!hashes.is_empty());
        assert!(hashes.get(parsed).is_some());
    }
}
