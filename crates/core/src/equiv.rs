//! Equivalence-class extraction — the paper's stated goal (§3): "identify
//! all equivalence classes of subexpressions of `e`, where two
//! subexpressions are equivalent iff they are alpha-equivalent".
//!
//! [`hash_classes`] groups subexpressions by their alpha-hash (the cost of
//! a sort, as §1 promises once per-node hashes exist).
//! [`ground_truth_classes`] computes the same partition with the O(n²)
//! pairwise [`lambda_lang::alpha::alpha_eq`] predicate; tests assert the
//! two partitions coincide.

use crate::combine::{HashScheme, HashWord};
use crate::hashed::{hash_all_subexpressions, SubtreeHashes};
use lambda_lang::arena::{ExprArena, NodeId};
use std::collections::HashMap;

/// Groups the hashed subexpressions into equivalence classes. Classes are
/// returned with members in node order; singleton classes are included.
pub fn group_by_hash<H: HashWord>(hashes: &SubtreeHashes<H>) -> Vec<Vec<NodeId>> {
    let mut by_hash: HashMap<H, Vec<NodeId>> = HashMap::new();
    for (node, hash) in hashes.iter() {
        by_hash.entry(hash).or_default().push(node);
    }
    let mut classes: Vec<Vec<NodeId>> = by_hash.into_values().collect();
    for class in &mut classes {
        class.sort();
    }
    classes.sort_by_key(|c| c[0]);
    classes
}

/// One-shot: alpha-equivalence classes of all subexpressions of `root`.
///
/// # Examples
///
/// ```
/// use lambda_lang::arena::ExprArena;
/// use lambda_lang::parse::parse;
/// use lambda_lang::uniquify::uniquify;
/// use alpha_hash::combine::HashScheme;
/// use alpha_hash::equiv::hash_classes;
///
/// let mut a = ExprArena::new();
/// let parsed = parse(&mut a, r"foo (\x. x+7) (\y. y+7)")?;
/// let (b, root) = uniquify(&a, parsed);
/// let scheme: HashScheme<u64> = HashScheme::default();
/// let classes = hash_classes(&b, root, &scheme);
/// // One class holds the two alpha-equivalent lambdas.
/// assert!(classes.iter().any(|c| c.len() == 2));
/// # Ok::<(), lambda_lang::parse::ParseError>(())
/// ```
pub fn hash_classes<H: HashWord>(
    arena: &ExprArena,
    root: NodeId,
    scheme: &HashScheme<H>,
) -> Vec<Vec<NodeId>> {
    group_by_hash(&hash_all_subexpressions(arena, root, scheme))
}

/// The ground-truth partition, via pairwise alpha-equivalence against one
/// representative per class. O(n² · n) worst case — for tests and small
/// inputs only.
pub fn ground_truth_classes(arena: &ExprArena, root: NodeId) -> Vec<Vec<NodeId>> {
    // Bucket by subtree size first: alpha-equivalent terms have equal
    // sizes, so representatives only need checking within a bucket.
    let mut classes: Vec<(usize, NodeId, Vec<NodeId>)> = Vec::new();
    for n in lambda_lang::visit::postorder(arena, root) {
        let n_size = arena.subtree_size(n);
        let found = classes.iter_mut().find(|(size, rep, _)| {
            *size == n_size && lambda_lang::alpha::alpha_eq(arena, *rep, arena, n)
        });
        match found {
            Some((_, _, members)) => members.push(n),
            None => classes.push((n_size, n, vec![n])),
        }
    }
    let mut out: Vec<Vec<NodeId>> = classes
        .into_iter()
        .map(|(_, _, mut members)| {
            members.sort();
            members
        })
        .collect();
    out.sort_by_key(|c| c[0]);
    out
}

/// Size of the expression when stored as a DAG with **one node per
/// equivalence class**: children point at class representatives, so a
/// class whose members only occur inside duplicate copies costs nothing.
/// This is the §2 "structure sharing to save memory" metric — with
/// alpha-hashes it shares loop-unrolled blocks that syntactic
/// hash-consing cannot (see the `dedup_sharing` example).
///
/// Returns the number of classes reachable from the root's class.
pub fn shared_dag_size<H: HashWord>(
    arena: &ExprArena,
    root: NodeId,
    hashes: &SubtreeHashes<H>,
) -> usize {
    // One representative node per class.
    let mut representative: HashMap<H, NodeId> = HashMap::new();
    for (node, hash) in hashes.iter() {
        representative.entry(hash).or_insert(node);
    }
    let mut seen: std::collections::HashSet<H> = std::collections::HashSet::new();
    let mut queue = vec![hashes.get(root).expect("root must be hashed")];
    while let Some(h) = queue.pop() {
        if !seen.insert(h) {
            continue;
        }
        let node = representative[&h];
        for child in arena.node(node).children() {
            queue.push(
                hashes
                    .get(child)
                    .expect("children of hashed nodes are hashed"),
            );
        }
    }
    seen.len()
}

/// Whether two partitions (as produced above) are identical.
pub fn same_partition(a: &[Vec<NodeId>], b: &[Vec<NodeId>]) -> bool {
    let normalise = |p: &[Vec<NodeId>]| {
        let mut sets: Vec<Vec<NodeId>> = p
            .iter()
            .map(|c| {
                let mut c = c.clone();
                c.sort();
                c
            })
            .collect();
        sets.sort();
        sets
    };
    normalise(a) == normalise(b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lambda_lang::parse::parse;
    use lambda_lang::uniquify::uniquify;

    fn classes_of(src: &str) -> (ExprArena, NodeId, Vec<Vec<NodeId>>, Vec<Vec<NodeId>>) {
        let mut a = ExprArena::new();
        let parsed = parse(&mut a, src).unwrap();
        let (b, root) = uniquify(&a, parsed);
        let scheme: HashScheme<u64> = HashScheme::new(99);
        let hashed = hash_classes(&b, root, &scheme);
        let truth = ground_truth_classes(&b, root);
        (b, root, hashed, truth)
    }

    #[test]
    fn hash_classes_match_ground_truth_on_paper_examples() {
        for src in [
            r"foo (\x. x+7) (\y. y+7)",
            "(a + (v+7)) * (v+7)",
            "foo (let bar = x+1 in bar*y) (let p = x+1 in p*y)",
            r"\t. foo (\x. x + t) (\y. \x. x + t)",
            "foo (let x = bar in x+2) (let x = pubx in x+2)",
            r"map (\y. y+1) (map (\x. x+1) vs)",
        ] {
            let (_, _, hashed, truth) = classes_of(src);
            assert!(
                same_partition(&hashed, &truth),
                "partition mismatch for {src}"
            );
        }
    }

    #[test]
    fn intro_cse_example_finds_the_shared_subterm() {
        // (a + (v+7)) * (v+7): the two v+7 occurrences form one class.
        let (arena, root, hashed, _) = classes_of("(a + (v+7)) * (v+7)");
        let _ = root;
        let shared: Vec<&Vec<NodeId>> = hashed.iter().filter(|c| c.len() >= 2).collect();
        // Classes of size ≥ 2: `v+7` (the full application), `add v`
        // (the partial application), plus the leaf variables v and add.
        assert!(shared.iter().any(|c| {
            c.len() == 2 && arena.subtree_size(c[0]) == 5 // add v 7
        }));
    }

    #[test]
    fn all_nodes_are_covered_exactly_once() {
        let (arena, root, hashed, _) = classes_of(r"\x. x (x + 1)");
        let total: usize = hashed.iter().map(|c| c.len()).sum();
        assert_eq!(total, arena.subtree_size(root));
        let mut seen = std::collections::HashSet::new();
        for class in &hashed {
            for &n in class {
                assert!(seen.insert(n), "node {n:?} appears twice");
            }
        }
    }

    #[test]
    fn shared_dag_size_collapses_alpha_copies() {
        // Two alpha-equivalent lambdas: the DAG stores one copy.
        let mut a = ExprArena::new();
        let parsed = parse(&mut a, r"foo (\x. x+7) (\y. y+7)").unwrap();
        let (b, root) = uniquify(&a, parsed);
        let scheme: HashScheme<u64> = HashScheme::new(99);
        let hashes = crate::hashed::hash_all_subexpressions(&b, root, &scheme);
        let dag = super::shared_dag_size(&b, root, &hashes);
        // Tree is 15 nodes; the second lambda's 6 nodes collapse, and the
        // repeated leaves (add, 7) collapse too.
        assert!(dag < 12, "dag size {dag}");
        assert!(dag >= 8, "dag size {dag} suspiciously small");
    }

    #[test]
    fn shared_dag_size_without_sharing_equals_class_count() {
        let mut a = ExprArena::new();
        let parsed = parse(&mut a, "f x y z").unwrap();
        let (b, root) = uniquify(&a, parsed);
        let scheme: HashScheme<u64> = HashScheme::new(99);
        let hashes = crate::hashed::hash_all_subexpressions(&b, root, &scheme);
        // All 7 subtrees are distinct: DAG = tree.
        assert_eq!(super::shared_dag_size(&b, root, &hashes), 7);
    }

    #[test]
    fn partition_comparison_is_order_insensitive() {
        let a = vec![
            vec![NodeId::from_index(0)],
            vec![NodeId::from_index(1), NodeId::from_index(2)],
        ];
        let b = vec![
            vec![NodeId::from_index(2), NodeId::from_index(1)],
            vec![NodeId::from_index(0)],
        ];
        assert!(same_partition(&a, &b));
        let c = vec![
            vec![NodeId::from_index(0), NodeId::from_index(1)],
            vec![NodeId::from_index(2)],
        ];
        assert!(!same_partition(&a, &c));
    }
}
