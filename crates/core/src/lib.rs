//! # alpha-hash
//!
//! A Rust implementation of *Hashing Modulo Alpha-Equivalence* (Maziarz,
//! Ellis, Lawrence, Fitzgibbon, Peyton Jones — PLDI 2021): compute, for
//! every subexpression of a program, a fixed-size hash such that two
//! subexpressions hash equal iff they are alpha-equivalent — in
//! O(n (log n)²) total time, compositionally, and therefore incrementally.
//!
//! ## Layout (mirroring the paper)
//!
//! | Module | Paper | Contents |
//! |--------|-------|----------|
//! | [`combine`] | §5, §6.2 | hash widths (u16…u128), seeded combiner families |
//! | [`summary::reference`] | §4.2–4.7 | invertible e-summary, quadratic merge, `rebuild` |
//! | [`summary::fast`] | §4.8 | smaller-subtree merge with `StructureTag`s, `rebuild` |
//! | [`hashed`] | §5 | **the final algorithm**: structures/positions as hash codes, XOR map hash |
//! | [`flatmap`] | §5.2 | flat variable maps: inline small-map storage, sorted-run merges, buffer pool |
//! | [`equiv`] | §3 | equivalence classes of all subexpressions |
//! | [`linear`] | App. C | lazy linear-map variant replacing tags |
//! | [`incremental`] | §6.3 | persistent-map engine re-hashing after local rewrites |
//! | [`cse`] | §1 | common-subexpression elimination built on the hash |
//! | [`folding`] | §1, §6.3 | constant-folding campaign driven through the incremental engine |
//!
//! ## Quick start
//!
//! ```
//! use lambda_lang::{ExprArena, parse, uniquify};
//! use alpha_hash::combine::HashScheme;
//! use alpha_hash::hashed::hash_all_subexpressions;
//! use alpha_hash::equiv::group_by_hash;
//!
//! // The paper's §1 example: two alpha-equivalent lambdas.
//! let mut arena = ExprArena::new();
//! let parsed = parse(&mut arena, r"foo (\x. x+7) (\y. y+7)")?;
//! let (arena, root) = uniquify(&arena, parsed); // distinct binders (§2.2)
//!
//! let scheme: HashScheme<u64> = HashScheme::default();
//! let hashes = hash_all_subexpressions(&arena, root, &scheme);
//! let classes = group_by_hash(&hashes);
//! assert!(classes.iter().any(|class| class.len() == 2)); // the lambdas
//! # Ok::<(), lambda_lang::ParseError>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod combine;
pub mod cse;
pub mod equiv;
pub mod flatmap;
pub mod folding;
pub mod hashed;
pub mod incremental;
pub mod intern;
pub mod linear;
pub mod summary;

pub use combine::{HashScheme, HashWord};
pub use cse::{cse_forest, eliminate_common_subexpressions, CseConfig, CseResult, ForestCse};
pub use equiv::{ground_truth_classes, hash_classes, shared_dag_size};
pub use flatmap::{FlatVarMap, MapPool};
pub use hashed::{hash_all_subexpressions, hash_expr, HashedSummariser, SubtreeHashes};
