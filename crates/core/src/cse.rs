//! Common-subexpression elimination modulo alpha — the application that
//! motivates the paper (§1).
//!
//! Given per-node alpha-hashes, CSE is: group subexpressions into
//! equivalence classes, pick a class with ≥ 2 disjoint occurrences, bind a
//! fresh `let` at the occurrences' least common ancestor, and replace each
//! occurrence with the new variable. This module reproduces the §1
//! examples:
//!
//! ```text
//! (a + (v+7)) * (v+7)        ⇒  let w = v+7 in (a + w) * w
//! foo (\x.x+7) (\y.y+7)      ⇒  let h = \x.x+7 in foo h h
//! ```
//!
//! including the case plain syntactic CSE misses, where the shared terms
//! are only *alpha*-equivalent (different binder names).
//!
//! ## Safety argument
//!
//! With distinct binders (§2.2), every free variable of an occurrence is
//! bound at a binder that encloses *all* occurrences (same name ⇒ same
//! binding site), hence encloses their LCA, so hoisting to the LCA never
//! moves a variable out of scope. Occurrences nested inside other
//! occurrences of the same class are dropped (the outer rewrite subsumes
//! them), so replaced subtrees are pairwise disjoint and the LCA is a
//! strict ancestor of each. A class is only rewritten when the rewrite
//! strictly shrinks the program, which also guarantees the pass-loop
//! terminates.

use crate::combine::{HashScheme, HashWord};
use crate::equiv::group_by_hash;
use crate::hashed::hash_all_subexpressions;
use lambda_lang::arena::{ExprArena, ExprNode, NodeId};
use lambda_lang::visit::parent_map;
use std::collections::{HashMap, HashSet};

/// Tuning knobs for [`eliminate_common_subexpressions`].
#[derive(Clone, Copy, Debug)]
pub struct CseConfig {
    /// Smallest subexpression (node count) worth abstracting.
    pub min_size: usize,
    /// Maximum number of rewrite passes (each pass abstracts one class).
    pub max_passes: usize,
}

impl Default for CseConfig {
    fn default() -> Self {
        // min_size 4 also guarantees shrinkage for 2 occurrences, but the
        // explicit shrink check below is what enforces termination.
        CseConfig {
            min_size: 4,
            max_passes: 64,
        }
    }
}

/// One applied rewrite.
#[derive(Clone, Debug)]
pub struct CseRewrite {
    /// The let-bound variable introduced.
    pub binder: String,
    /// How many occurrences were replaced.
    pub occurrences: usize,
    /// Node count of the abstracted subexpression.
    pub subexpr_size: usize,
    /// Rendered text of the abstracted subexpression.
    pub subexpr: String,
}

/// Result of CSE: the rewritten program plus a log of rewrites.
#[derive(Debug)]
pub struct CseResult {
    /// Arena holding the rewritten program.
    pub arena: ExprArena,
    /// Root of the rewritten program.
    pub root: NodeId,
    /// Rewrites applied, in application order.
    pub rewrites: Vec<CseRewrite>,
}

/// Runs CSE-modulo-alpha to a fixpoint (bounded by
/// [`CseConfig::max_passes`]).
///
/// The input must satisfy the unique-binder invariant
/// ([`lambda_lang::uniquify()`]); the output satisfies it too.
///
/// # Examples
///
/// ```
/// use lambda_lang::{ExprArena, parse, uniquify, print};
/// use alpha_hash::combine::HashScheme;
/// use alpha_hash::cse::{eliminate_common_subexpressions, CseConfig};
///
/// let mut a = ExprArena::new();
/// let parsed = parse(&mut a, "(a + (v+7)) * (v+7)")?;
/// let (b, root) = uniquify(&a, parsed);
/// let scheme: HashScheme<u64> = HashScheme::default();
/// let result = eliminate_common_subexpressions(&b, root, &scheme, CseConfig::default());
/// assert_eq!(result.rewrites.len(), 1);
/// assert!(print::print(&result.arena, result.root).starts_with("let "));
/// # Ok::<(), lambda_lang::ParseError>(())
/// ```
pub fn eliminate_common_subexpressions<H: HashWord>(
    arena: &ExprArena,
    root: NodeId,
    scheme: &HashScheme<H>,
    config: CseConfig,
) -> CseResult {
    let mut current = ExprArena::new();
    let mut cur_root = current.import_subtree(arena, root);
    let mut rewrites = Vec::new();

    for _ in 0..config.max_passes {
        match rewrite_one_class(&current, cur_root, scheme, &config) {
            Some((next, next_root, rewrite)) => {
                rewrites.push(rewrite);
                current = next;
                cur_root = next_root;
            }
            None => break,
        }
    }

    CseResult {
        arena: current,
        root: cur_root,
        rewrites,
    }
}

/// Result of [`cse_forest`]: one program holding every input term with
/// shared subexpressions hoisted into a common `let*` preamble.
///
/// The rewritten program has the shape
/// `let s₁ = … in … let sₖ = … in (head t₁′ … tₙ′)` where `head` is a
/// fresh free variable and `tᵢ′` is the rewritten form of input term `i`.
/// Each `tᵢ′` may reference the shared binders, so it is only meaningful
/// *inside* the preamble; use [`ForestCse::instantiate_into`] to extract a
/// self-contained copy of one term.
#[derive(Debug)]
pub struct ForestCse {
    /// Arena holding the combined rewritten program.
    pub arena: ExprArena,
    /// Root of the combined program (`let*` preamble plus spine).
    pub root: NodeId,
    /// The shared definitions, outermost first: `(binder, rhs)`.
    pub shared: Vec<(lambda_lang::Symbol, NodeId)>,
    /// Rewritten per-term roots, in input order (valid under `shared`).
    pub roots: Vec<NodeId>,
    /// Rewrites applied, in application order.
    pub rewrites: Vec<CseRewrite>,
    /// Total node count of the input terms.
    pub nodes_before: usize,
    /// Node count of the rewritten corpus (preamble + rewritten terms,
    /// excluding the synthetic spine).
    pub nodes_after: usize,
}

impl ForestCse {
    /// Copies term `index` into `dst`, wrapped in the shared binders it
    /// (transitively) uses, yielding a self-contained program
    /// semantically equivalent to the original input term.
    ///
    /// Only the *needed* subset of the preamble is wrapped: an unused
    /// shared definition may mention free variables the term does not
    /// have (or fail to evaluate at all), and the evaluator is strict in
    /// let right-hand sides, so wrapping it unconditionally would change
    /// the term's meaning.
    pub fn instantiate_into(&self, index: usize, dst: &mut ExprArena) -> NodeId {
        let binders: HashSet<lambda_lang::Symbol> =
            self.shared.iter().map(|&(sym, _)| sym).collect();
        let uses_of = |node: NodeId, needed: &mut HashSet<lambda_lang::Symbol>| {
            for n in lambda_lang::visit::postorder(&self.arena, node) {
                if let ExprNode::Var(s) = self.arena.node(n) {
                    if binders.contains(&s) {
                        needed.insert(s);
                    }
                }
            }
        };
        let mut needed = HashSet::new();
        uses_of(self.roots[index], &mut needed);
        // A shared rhs may itself use *earlier* (outer) shared binders;
        // scoping forbids the converse, so one inner-to-outer pass closes
        // the set transitively.
        for &(sym, rhs) in self.shared.iter().rev() {
            if needed.contains(&sym) {
                uses_of(rhs, &mut needed);
            }
        }

        let mut body = dst.import_subtree(&self.arena, self.roots[index]);
        for &(sym, rhs) in self.shared.iter().rev() {
            if !needed.contains(&sym) {
                continue;
            }
            let rhs2 = dst.import_subtree(&self.arena, rhs);
            let sym2 = dst.intern(self.arena.name(sym));
            body = dst.let_(sym2, rhs2, body);
        }
        body
    }
}

/// Combines a corpus into one synthetic program — a left-nested
/// application spine `head t₁ … tₙ` under a **fresh** free head variable —
/// so single-program algorithms ([`cse_forest`],
/// `alpha_store::corpus_shared_dag_size`) apply to a whole corpus at once.
///
/// The combined program satisfies the unique-binder invariant (§2.2) even
/// when the inputs do not: each term is copied with
/// [`lambda_lang::uniquify::uniquify_into`], whose `fresh` binder names
/// are drawn from the one shared destination interner, making binders
/// distinct *across* terms too. Copying and uniquifying in the same pass
/// keeps corpus combination at one copy of the input, which matters on
/// the store's hot paths.
///
/// Returns the combined arena, its root, and the synthetic-node overhead
/// (`roots.len()` applications plus the head variable). Because the head
/// name is created *after* every term is copied, it cannot collide with
/// any name in the corpus, so no spine node can be alpha-equivalent to a
/// node inside a term — the invariant both callers' exactness arguments
/// rest on.
pub fn combine_corpus(arena: &ExprArena, roots: &[NodeId]) -> (ExprArena, NodeId, usize) {
    let mut combined = ExprArena::new();
    let imported: Vec<NodeId> = roots
        .iter()
        .map(|&r| lambda_lang::uniquify::uniquify_into(arena, r, &mut combined))
        .collect();
    let head = combined.fresh("corpus");
    let mut spine = combined.var(head);
    for &r in &imported {
        spine = combined.app(spine, r);
    }
    (combined, spine, roots.len() + 1)
}

/// Cross-term CSE: eliminates subexpressions shared *between* the terms of
/// a corpus (as well as within each term), hoisting each shared
/// subexpression into a single `let` visible to every term.
///
/// This is the forest-level hook the `alpha-store` subsystem builds its
/// store-backed corpus deduplication on: the input terms are combined into
/// one synthetic program ([`combine_corpus`]), uniquified, run through
/// [`eliminate_common_subexpressions`], and split back apart.
///
/// Unlike [`eliminate_common_subexpressions`], the inputs need **not**
/// satisfy the unique-binder invariant (the combined program is uniquified
/// internally), so terms parsed independently can be passed directly.
///
/// # Examples
///
/// ```
/// use lambda_lang::{ExprArena, parse};
/// use alpha_hash::combine::HashScheme;
/// use alpha_hash::cse::{cse_forest, CseConfig};
///
/// let mut a = ExprArena::new();
/// let t1 = parse(&mut a, r"(v+7) * (v+7)")?;
/// let t2 = parse(&mut a, r"foo (v+7)")?;
/// let scheme: HashScheme<u64> = HashScheme::default();
/// let forest = cse_forest(&a, &[t1, t2], &scheme, CseConfig::default());
/// // v+7 occurs three times across the corpus; it is shared once.
/// assert_eq!(forest.shared.len(), 1);
/// assert!(forest.nodes_after < forest.nodes_before);
/// # Ok::<(), lambda_lang::ParseError>(())
/// ```
pub fn cse_forest<H: HashWord>(
    arena: &ExprArena,
    roots: &[NodeId],
    scheme: &HashScheme<H>,
    config: CseConfig,
) -> ForestCse {
    let nodes_before: usize = roots.iter().map(|&r| arena.subtree_size(r)).sum();

    // combine_corpus uniquifies as it copies, so the combined program is
    // ready for CSE directly.
    let (combined, spine, _) = combine_corpus(arena, roots);
    let result = eliminate_common_subexpressions(&combined, spine, scheme, config);

    // Split the rewritten program back apart. CSE only ever wraps nodes in
    // `let`s and replaces occurrences *inside* terms, so walking down
    // through interleaved lets and the application spine recovers the
    // preamble and the per-term roots.
    let mut shared = Vec::new();
    let mut args_rev = Vec::new();
    let mut cursor = result.root;
    loop {
        match result.arena.node(cursor) {
            ExprNode::Let(x, rhs, body) => {
                shared.push((x, rhs));
                cursor = body;
            }
            ExprNode::App(f, a) => {
                args_rev.push(a);
                cursor = f;
            }
            _ => break,
        }
    }
    args_rev.reverse();
    debug_assert_eq!(args_rev.len(), roots.len(), "spine shape preserved by CSE");

    let spine_overhead = roots.len() + 1; // n application nodes + head var
    let nodes_after = result
        .arena
        .subtree_size(result.root)
        .saturating_sub(spine_overhead);

    ForestCse {
        arena: result.arena,
        root: result.root,
        shared,
        roots: args_rev,
        rewrites: result.rewrites,
        nodes_before,
        nodes_after,
    }
}

/// Finds the most profitable class and abstracts it, or returns `None` if
/// no shrinking rewrite exists.
fn rewrite_one_class<H: HashWord>(
    arena: &ExprArena,
    root: NodeId,
    scheme: &HashScheme<H>,
    config: &CseConfig,
) -> Option<(ExprArena, NodeId, CseRewrite)> {
    let hashes = hash_all_subexpressions(arena, root, scheme);
    let classes = group_by_hash(&hashes);
    let parents = parent_map(arena, root);
    let depths = depth_map(arena, root);

    // Candidate classes, most profitable (largest subexpression) first.
    let mut candidates: Vec<(usize, Vec<NodeId>)> = classes
        .into_iter()
        .filter(|c| c.len() >= 2)
        .map(|c| (arena.subtree_size(c[0]), c))
        .filter(|&(size, _)| size >= config.min_size)
        .collect();
    candidates.sort_by_key(|&(size, _)| std::cmp::Reverse(size));

    for (size, members) in candidates {
        let disjoint = drop_nested(arena, &members);
        let k = disjoint.len();
        if k < 2 {
            continue;
        }
        // Strict shrink: replacing k subtrees of `size` nodes with k vars
        // plus (let + binder copy): Δ = k + 1 + size − k·size < 0.
        if k + 1 + size >= k * size {
            continue;
        }
        let lca = lca_of(&parents, &depths, &disjoint);
        let (next, next_root, binder) = apply_rewrite(arena, root, &disjoint, disjoint[0], lca);
        let rewrite = CseRewrite {
            binder,
            occurrences: k,
            subexpr_size: size,
            subexpr: lambda_lang::print::print(arena, disjoint[0]),
        };
        return Some((next, next_root, rewrite));
    }
    None
}

/// Keeps only occurrences not nested inside another occurrence.
fn drop_nested(arena: &ExprArena, members: &[NodeId]) -> Vec<NodeId> {
    let member_set: HashSet<NodeId> = members.iter().copied().collect();
    let mut nested: HashSet<NodeId> = HashSet::new();
    for &m in members {
        // Any member strictly inside m is nested.
        let mut stack: Vec<NodeId> = arena.node(m).children().into_iter().collect();
        while let Some(n) = stack.pop() {
            if member_set.contains(&n) {
                nested.insert(n);
            }
            for c in arena.node(n).children() {
                stack.push(c);
            }
        }
    }
    members
        .iter()
        .copied()
        .filter(|m| !nested.contains(m))
        .collect()
}

fn depth_map(arena: &ExprArena, root: NodeId) -> HashMap<NodeId, usize> {
    let mut depths = HashMap::new();
    let mut stack = vec![(root, 0usize)];
    while let Some((n, d)) = stack.pop() {
        depths.insert(n, d);
        for c in arena.node(n).children() {
            stack.push((c, d + 1));
        }
    }
    depths
}

fn lca_of(
    parents: &HashMap<NodeId, NodeId>,
    depths: &HashMap<NodeId, usize>,
    nodes: &[NodeId],
) -> NodeId {
    let mut acc = nodes[0];
    for &n in &nodes[1..] {
        acc = lca2(parents, depths, acc, n);
    }
    acc
}

fn lca2(
    parents: &HashMap<NodeId, NodeId>,
    depths: &HashMap<NodeId, usize>,
    mut a: NodeId,
    mut b: NodeId,
) -> NodeId {
    while depths[&a] > depths[&b] {
        a = parents[&a];
    }
    while depths[&b] > depths[&a] {
        b = parents[&b];
    }
    while a != b {
        a = parents[&a];
        b = parents[&b];
    }
    a
}

/// Rebuilds the program with `occurrences` replaced by a fresh variable
/// bound at `lca` to a copy of `representative`.
fn apply_rewrite(
    arena: &ExprArena,
    root: NodeId,
    occurrences: &[NodeId],
    representative: NodeId,
    lca: NodeId,
) -> (ExprArena, NodeId, String) {
    let mut dst = ExprArena::new();
    // Pre-intern every existing name so `fresh` cannot collide with a
    // binder introduced by an earlier pass (fresh names only avoid what
    // the *destination* interner has seen).
    for i in 0..arena.interner().len() {
        let name = arena
            .interner()
            .resolve(lambda_lang::symbol::Symbol::from_index(i as u32))
            .to_owned();
        dst.intern(&name);
    }
    let fresh = dst.fresh("cse");
    let binder_name = dst.name(fresh).to_owned();
    let occurrence_set: HashSet<NodeId> = occurrences.iter().copied().collect();

    // Post-order rebuild with replacement. Occurrence subtrees are never
    // entered: their postorder nodes still appear (we walk the original
    // tree), so we must skip descendants of occurrences. Easiest correct
    // approach: walk with an explicit filter — build the copy recursively
    // over a pruned postorder.
    let mut remap: HashMap<NodeId, NodeId> = HashMap::new();
    for n in pruned_postorder(arena, root, &occurrence_set) {
        let new_id = if occurrence_set.contains(&n) {
            dst.var(fresh)
        } else {
            match arena.node(n) {
                ExprNode::Var(s) => {
                    let s2 = dst.intern(arena.name(s));
                    dst.var(s2)
                }
                ExprNode::Lit(l) => dst.lit(l),
                ExprNode::Lam(x, b) => {
                    let x2 = dst.intern(arena.name(x));
                    let b2 = remap[&b];
                    dst.lam(x2, b2)
                }
                ExprNode::App(f, a) => {
                    let f2 = remap[&f];
                    let a2 = remap[&a];
                    dst.app(f2, a2)
                }
                ExprNode::Let(x, r, b) => {
                    let x2 = dst.intern(arena.name(x));
                    let r2 = remap[&r];
                    let b2 = remap[&b];
                    dst.let_(x2, r2, b2)
                }
            }
        };
        let new_id = if n == lca {
            // Wrap the LCA in the binding let. The representative subtree
            // is copied verbatim (its binders disappear with the replaced
            // occurrences, so uniqueness is preserved).
            let rhs = dst.import_subtree(arena, representative);
            dst.let_(fresh, rhs, new_id)
        } else {
            new_id
        };
        remap.insert(n, new_id);
    }

    (dst, remap[&root], binder_name)
}

/// Post-order over the tree, not descending into occurrence subtrees
/// (the occurrence node itself is yielded).
fn pruned_postorder(arena: &ExprArena, root: NodeId, pruned: &HashSet<NodeId>) -> Vec<NodeId> {
    let mut order = Vec::new();
    let mut stack: Vec<(NodeId, bool)> = vec![(root, false)];
    while let Some((n, expanded)) = stack.pop() {
        if expanded || pruned.contains(&n) {
            order.push(n);
            continue;
        }
        stack.push((n, true));
        for c in arena.node(n).children() {
            stack.push((c, false));
        }
    }
    // Siblings appear right-before-left; irrelevant here, the rebuild only
    // needs children before parents.
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use lambda_lang::eval::{eval, Value};
    use lambda_lang::parse::parse;
    use lambda_lang::print::print;
    use lambda_lang::uniquify::{check_unique_binders, uniquify};

    fn run_cse(src: &str) -> CseResult {
        let mut a = ExprArena::new();
        let parsed = parse(&mut a, src).unwrap();
        let (b, root) = uniquify(&a, parsed);
        let scheme: HashScheme<u64> = HashScheme::new(5);
        eliminate_common_subexpressions(&b, root, &scheme, CseConfig::default())
    }

    #[test]
    fn intro_example_v_plus_7() {
        let result = run_cse("(a + (v+7)) * (v+7)");
        assert_eq!(result.rewrites.len(), 1);
        let text = print(&result.arena, result.root);
        // let w = v + 7 in (a + w) * w
        assert!(text.contains("= v + 7 in"), "{text}");
        assert_eq!(result.rewrites[0].occurrences, 2);
        assert!(check_unique_binders(&result.arena, result.root).is_ok());
    }

    #[test]
    fn intro_example_alpha_equivalent_lets() {
        // §1: the two let-bound terms are alpha-equivalent, not
        // syntactically identical.
        let result = run_cse("(a + (let x = exp z in x+7)) * (let y = exp z in y+7)");
        assert!(!result.rewrites.is_empty());
        let first = &result.rewrites[0];
        assert_eq!(first.occurrences, 2);
        assert!(first.subexpr.contains("exp z"), "{}", first.subexpr);
    }

    #[test]
    fn intro_example_lambdas() {
        // foo (\x.x+7) (\y.y+7) ⇒ let h = \x.x+7 in foo h h.
        let result = run_cse(r"foo (\x. x+7) (\y. y+7)");
        assert_eq!(result.rewrites.len(), 1);
        let text = print(&result.arena, result.root);
        assert!(text.contains(r"= \x"), "{text}");
        // Body must be foo h h with both args the same variable.
        match result.arena.node(result.root) {
            ExprNode::Let(w, _, body) => match result.arena.node(body) {
                ExprNode::App(foo_h, h2) => {
                    assert!(matches!(result.arena.node(h2), ExprNode::Var(s) if s == w));
                    match result.arena.node(foo_h) {
                        ExprNode::App(_, h1) => {
                            assert!(matches!(result.arena.node(h1), ExprNode::Var(s) if s == w));
                        }
                        other => panic!("unexpected {other:?}"),
                    }
                }
                other => panic!("unexpected {other:?}"),
            },
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn name_overloading_is_not_cse_d() {
        // §2.2: the two x+2 under different binders must NOT be shared.
        let result = run_cse("foo (let x = bar in x+2) (let x = pubx in x+2)");
        for rewrite in &result.rewrites {
            assert!(
                !rewrite.subexpr.contains("x + 2"),
                "unsound rewrite of {}",
                rewrite.subexpr
            );
        }
    }

    #[test]
    fn nested_occurrences_use_outermost() {
        // ((u+1)+(u+1)) + ((u+1)+(u+1)): the big subterm (u+1)+(u+1)
        // appears twice; inner u+1 occurrences inside them are subsumed.
        let result = run_cse("((u+1)+(u+1)) + ((u+1)+(u+1))");
        assert!(!result.rewrites.is_empty());
        // The first rewrite abstracts the big (u+1)+(u+1) term (13 nodes),
        // not the nested u+1 (5 nodes).
        assert_eq!(result.rewrites[0].subexpr_size, 13);
        assert_eq!(result.rewrites[0].occurrences, 2);
    }

    #[test]
    fn cse_preserves_evaluation() {
        let programs = [
            "let v = 3 in let a = 10 in (a + (v+7)) * (v+7)",
            "let u = 2 in ((u+1)+(u+1)) + ((u+1)+(u+1))",
            r"let v = 4 in (\f. f 1 + f 2) (\x. x * v + v)",
            "let z = 5 in (let x = z*z in x+7) + (let y = z*z in y+7)",
        ];
        for src in programs {
            let mut a = ExprArena::new();
            let parsed = parse(&mut a, src).unwrap();
            let (b, root) = uniquify(&a, parsed);
            let before = eval(&b, root).unwrap_or_else(|e| panic!("{src}: {e}"));
            let scheme: HashScheme<u64> = HashScheme::new(5);
            let result = eliminate_common_subexpressions(&b, root, &scheme, CseConfig::default());
            let after =
                eval(&result.arena, result.root).unwrap_or_else(|e| panic!("cse({src}): {e}"));
            assert!(
                Value::observably_eq(&before, &after),
                "{src}: {before:?} vs {after:?} (rewritten: {})",
                print(&result.arena, result.root)
            );
        }
    }

    #[test]
    fn no_rewrite_when_nothing_shared() {
        let result = run_cse(r"\x. x + y");
        assert!(result.rewrites.is_empty());
        let text = print(&result.arena, result.root);
        assert!(text.contains("+ y"));
    }

    #[test]
    fn small_shared_terms_below_threshold_are_left_alone() {
        // x+x: the shared `x` is a single node, below min_size.
        let result = run_cse("x + x");
        assert!(result.rewrites.is_empty());
    }

    #[test]
    fn result_satisfies_unique_binders() {
        let result = run_cse("(p (q+r) (q+r)) (p (q+r) (q+r))");
        assert!(check_unique_binders(&result.arena, result.root).is_ok());
        assert!(!result.rewrites.is_empty());
    }

    #[test]
    fn forest_cse_shares_across_terms() {
        let mut a = ExprArena::new();
        let t1 = parse(&mut a, "(u + (v+7)) * (v+7)").unwrap();
        let t2 = parse(&mut a, "bar (v+7) (v+7)").unwrap();
        let scheme: HashScheme<u64> = HashScheme::new(5);
        let forest = cse_forest(&a, &[t1, t2], &scheme, CseConfig::default());
        assert_eq!(forest.roots.len(), 2);
        // v+7 occurs four times across both terms; exactly one shared let.
        assert_eq!(forest.shared.len(), 1);
        assert!(forest.nodes_after < forest.nodes_before);
        // Both rewritten terms reference the shared binder.
        let (binder, _) = forest.shared[0];
        for &r in &forest.roots {
            let uses = lambda_lang::visit::postorder(&forest.arena, r)
                .iter()
                .filter(|&&n| matches!(forest.arena.node(n), ExprNode::Var(s) if s == binder))
                .count();
            assert_eq!(uses, 2, "{}", print(&forest.arena, r));
        }
    }

    #[test]
    fn forest_cse_handles_duplicate_binder_names_across_terms() {
        // Both terms bind `x`; cse_forest must uniquify before hashing.
        let mut a = ExprArena::new();
        let t1 = parse(&mut a, "let x = p+1 in x*2").unwrap();
        let t2 = parse(&mut a, "let x = p+1 in x*3").unwrap();
        let scheme: HashScheme<u64> = HashScheme::new(5);
        let forest = cse_forest(&a, &[t1, t2], &scheme, CseConfig::default());
        assert_eq!(forest.roots.len(), 2);
        assert!(check_unique_binders(&forest.arena, forest.root).is_ok());
        // The shared p+1 is hoisted once.
        assert!(forest.rewrites.iter().any(|r| r.subexpr.contains("p + 1")));
    }

    #[test]
    fn forest_cse_degenerate_corpora() {
        let a = ExprArena::new();
        let scheme: HashScheme<u64> = HashScheme::new(5);
        let empty = cse_forest(&a, &[], &scheme, CseConfig::default());
        assert!(empty.roots.is_empty());
        assert_eq!(empty.nodes_before, 0);
        assert_eq!(empty.nodes_after, 0);

        let mut b = ExprArena::new();
        let single = parse(&mut b, "(a + (v+7)) * (v+7)").unwrap();
        let forest = cse_forest(&b, &[single], &scheme, CseConfig::default());
        assert_eq!(forest.roots.len(), 1);
        // Degenerates to ordinary per-term CSE: the let's LCA lies inside
        // the term, so the shared preamble stays empty.
        assert_eq!(forest.rewrites.len(), 1);
        assert!(forest.shared.is_empty());
        assert!(forest.nodes_after < forest.nodes_before);
    }

    #[test]
    fn forest_cse_instantiate_skips_unused_shared_binders() {
        // Terms 1 and 2 share z+7 (z free); term 0 is closed and uses no
        // shared definition. Instantiating term 0 must not wrap the z+7
        // let: the evaluator is strict in let rhs, so the unused binding
        // would turn a closed term into one that fails with unbound z.
        let mut a = ExprArena::new();
        let t0 = parse(&mut a, "1 + 1").unwrap();
        let t1 = parse(&mut a, "(z+7) * ((z+7) + 1)").unwrap();
        let t2 = parse(&mut a, "foo (z+7) (z+7)").unwrap();
        let scheme: HashScheme<u64> = HashScheme::new(5);
        let forest = cse_forest(&a, &[t0, t1, t2], &scheme, CseConfig::default());
        assert!(!forest.shared.is_empty(), "z+7 must be hoisted");

        let mut dst = ExprArena::new();
        let inst = forest.instantiate_into(0, &mut dst);
        let value = eval(&dst, inst).expect("closed term stays evaluable");
        assert!(Value::observably_eq(&value, &eval(&a, t0).unwrap()));

        // A term that does use the shared binder still gets it.
        let mut dst1 = ExprArena::new();
        let inst1 = forest.instantiate_into(1, &mut dst1);
        let text = print(&dst1, inst1);
        assert!(text.starts_with("let "), "{text}");
    }

    #[test]
    fn forest_cse_instantiate_roundtrips_semantics() {
        let mut a = ExprArena::new();
        let sources = ["let v = 3 in (v + (v+7)) * (v+7)", "let w = 3 in (w+7) * 2"];
        let roots: Vec<_> = sources.iter().map(|s| parse(&mut a, s).unwrap()).collect();
        let scheme: HashScheme<u64> = HashScheme::new(5);
        let forest = cse_forest(&a, &roots, &scheme, CseConfig::default());
        for (i, &r) in roots.iter().enumerate() {
            let before = eval(&a, r).unwrap();
            let mut dst = ExprArena::new();
            let inst = forest.instantiate_into(i, &mut dst);
            let after = eval(&dst, inst).unwrap();
            assert!(Value::observably_eq(&before, &after), "{}", sources[i]);
        }
    }

    #[test]
    fn fixpoint_terminates_and_shrinks() {
        let result = run_cse("((m+n) * (m+n)) + ((m+n) * (m+n))");
        // First pass abstracts (m+n)*(m+n); second may abstract m+n inside
        // the binder copy — termination is the point.
        let final_size = result.arena.subtree_size(result.root);
        assert!(final_size < 23, "no shrink: {final_size}");
    }
}
