//! Common-subexpression elimination modulo alpha — the application that
//! motivates the paper (§1).
//!
//! Given per-node alpha-hashes, CSE is: group subexpressions into
//! equivalence classes, pick a class with ≥ 2 disjoint occurrences, bind a
//! fresh `let` at the occurrences' least common ancestor, and replace each
//! occurrence with the new variable. This module reproduces the §1
//! examples:
//!
//! ```text
//! (a + (v+7)) * (v+7)        ⇒  let w = v+7 in (a + w) * w
//! foo (\x.x+7) (\y.y+7)      ⇒  let h = \x.x+7 in foo h h
//! ```
//!
//! including the case plain syntactic CSE misses, where the shared terms
//! are only *alpha*-equivalent (different binder names).
//!
//! ## Safety argument
//!
//! With distinct binders (§2.2), every free variable of an occurrence is
//! bound at a binder that encloses *all* occurrences (same name ⇒ same
//! binding site), hence encloses their LCA, so hoisting to the LCA never
//! moves a variable out of scope. Occurrences nested inside other
//! occurrences of the same class are dropped (the outer rewrite subsumes
//! them), so replaced subtrees are pairwise disjoint and the LCA is a
//! strict ancestor of each. A class is only rewritten when the rewrite
//! strictly shrinks the program, which also guarantees the pass-loop
//! terminates.

use crate::combine::{HashScheme, HashWord};
use crate::equiv::group_by_hash;
use crate::hashed::hash_all_subexpressions;
use lambda_lang::arena::{ExprArena, ExprNode, NodeId};
use lambda_lang::visit::parent_map;
use std::collections::{HashMap, HashSet};

/// Tuning knobs for [`eliminate_common_subexpressions`].
#[derive(Clone, Copy, Debug)]
pub struct CseConfig {
    /// Smallest subexpression (node count) worth abstracting.
    pub min_size: usize,
    /// Maximum number of rewrite passes (each pass abstracts one class).
    pub max_passes: usize,
}

impl Default for CseConfig {
    fn default() -> Self {
        // min_size 4 also guarantees shrinkage for 2 occurrences, but the
        // explicit shrink check below is what enforces termination.
        CseConfig { min_size: 4, max_passes: 64 }
    }
}

/// One applied rewrite.
#[derive(Clone, Debug)]
pub struct CseRewrite {
    /// The let-bound variable introduced.
    pub binder: String,
    /// How many occurrences were replaced.
    pub occurrences: usize,
    /// Node count of the abstracted subexpression.
    pub subexpr_size: usize,
    /// Rendered text of the abstracted subexpression.
    pub subexpr: String,
}

/// Result of CSE: the rewritten program plus a log of rewrites.
#[derive(Debug)]
pub struct CseResult {
    /// Arena holding the rewritten program.
    pub arena: ExprArena,
    /// Root of the rewritten program.
    pub root: NodeId,
    /// Rewrites applied, in application order.
    pub rewrites: Vec<CseRewrite>,
}

/// Runs CSE-modulo-alpha to a fixpoint (bounded by
/// [`CseConfig::max_passes`]).
///
/// The input must satisfy the unique-binder invariant
/// ([`lambda_lang::uniquify()`]); the output satisfies it too.
///
/// # Examples
///
/// ```
/// use lambda_lang::{ExprArena, parse, uniquify, print};
/// use alpha_hash::combine::HashScheme;
/// use alpha_hash::cse::{eliminate_common_subexpressions, CseConfig};
///
/// let mut a = ExprArena::new();
/// let parsed = parse(&mut a, "(a + (v+7)) * (v+7)")?;
/// let (b, root) = uniquify(&a, parsed);
/// let scheme: HashScheme<u64> = HashScheme::default();
/// let result = eliminate_common_subexpressions(&b, root, &scheme, CseConfig::default());
/// assert_eq!(result.rewrites.len(), 1);
/// assert!(print::print(&result.arena, result.root).starts_with("let "));
/// # Ok::<(), lambda_lang::ParseError>(())
/// ```
pub fn eliminate_common_subexpressions<H: HashWord>(
    arena: &ExprArena,
    root: NodeId,
    scheme: &HashScheme<H>,
    config: CseConfig,
) -> CseResult {
    let mut current = ExprArena::new();
    let mut cur_root = current.import_subtree(arena, root);
    let mut rewrites = Vec::new();

    for _ in 0..config.max_passes {
        match rewrite_one_class(&current, cur_root, scheme, &config) {
            Some((next, next_root, rewrite)) => {
                rewrites.push(rewrite);
                current = next;
                cur_root = next_root;
            }
            None => break,
        }
    }

    CseResult { arena: current, root: cur_root, rewrites }
}

/// Finds the most profitable class and abstracts it, or returns `None` if
/// no shrinking rewrite exists.
fn rewrite_one_class<H: HashWord>(
    arena: &ExprArena,
    root: NodeId,
    scheme: &HashScheme<H>,
    config: &CseConfig,
) -> Option<(ExprArena, NodeId, CseRewrite)> {
    let hashes = hash_all_subexpressions(arena, root, scheme);
    let classes = group_by_hash(&hashes);
    let parents = parent_map(arena, root);
    let depths = depth_map(arena, root);

    // Candidate classes, most profitable (largest subexpression) first.
    let mut candidates: Vec<(usize, Vec<NodeId>)> = classes
        .into_iter()
        .filter(|c| c.len() >= 2)
        .map(|c| (arena.subtree_size(c[0]), c))
        .filter(|&(size, _)| size >= config.min_size)
        .collect();
    candidates.sort_by_key(|&(size, _)| std::cmp::Reverse(size));

    for (size, members) in candidates {
        let disjoint = drop_nested(arena, &members);
        let k = disjoint.len();
        if k < 2 {
            continue;
        }
        // Strict shrink: replacing k subtrees of `size` nodes with k vars
        // plus (let + binder copy): Δ = k + 1 + size − k·size < 0.
        if k + 1 + size >= k * size {
            continue;
        }
        let lca = lca_of(&parents, &depths, &disjoint);
        let (next, next_root, binder) =
            apply_rewrite(arena, root, &disjoint, disjoint[0], lca);
        let rewrite = CseRewrite {
            binder,
            occurrences: k,
            subexpr_size: size,
            subexpr: lambda_lang::print::print(arena, disjoint[0]),
        };
        return Some((next, next_root, rewrite));
    }
    None
}

/// Keeps only occurrences not nested inside another occurrence.
fn drop_nested(arena: &ExprArena, members: &[NodeId]) -> Vec<NodeId> {
    let member_set: HashSet<NodeId> = members.iter().copied().collect();
    let mut nested: HashSet<NodeId> = HashSet::new();
    for &m in members {
        // Any member strictly inside m is nested.
        let mut stack: Vec<NodeId> = arena.node(m).children().into_iter().collect();
        while let Some(n) = stack.pop() {
            if member_set.contains(&n) {
                nested.insert(n);
            }
            for c in arena.node(n).children() {
                stack.push(c);
            }
        }
    }
    members.iter().copied().filter(|m| !nested.contains(m)).collect()
}

fn depth_map(arena: &ExprArena, root: NodeId) -> HashMap<NodeId, usize> {
    let mut depths = HashMap::new();
    let mut stack = vec![(root, 0usize)];
    while let Some((n, d)) = stack.pop() {
        depths.insert(n, d);
        for c in arena.node(n).children() {
            stack.push((c, d + 1));
        }
    }
    depths
}

fn lca_of(
    parents: &HashMap<NodeId, NodeId>,
    depths: &HashMap<NodeId, usize>,
    nodes: &[NodeId],
) -> NodeId {
    let mut acc = nodes[0];
    for &n in &nodes[1..] {
        acc = lca2(parents, depths, acc, n);
    }
    acc
}

fn lca2(
    parents: &HashMap<NodeId, NodeId>,
    depths: &HashMap<NodeId, usize>,
    mut a: NodeId,
    mut b: NodeId,
) -> NodeId {
    while depths[&a] > depths[&b] {
        a = parents[&a];
    }
    while depths[&b] > depths[&a] {
        b = parents[&b];
    }
    while a != b {
        a = parents[&a];
        b = parents[&b];
    }
    a
}

/// Rebuilds the program with `occurrences` replaced by a fresh variable
/// bound at `lca` to a copy of `representative`.
fn apply_rewrite(
    arena: &ExprArena,
    root: NodeId,
    occurrences: &[NodeId],
    representative: NodeId,
    lca: NodeId,
) -> (ExprArena, NodeId, String) {
    let mut dst = ExprArena::new();
    // Pre-intern every existing name so `fresh` cannot collide with a
    // binder introduced by an earlier pass (fresh names only avoid what
    // the *destination* interner has seen).
    for i in 0..arena.interner().len() {
        let name = arena
            .interner()
            .resolve(lambda_lang::symbol::Symbol::from_index(i as u32))
            .to_owned();
        dst.intern(&name);
    }
    let fresh = dst.fresh("cse");
    let binder_name = dst.name(fresh).to_owned();
    let occurrence_set: HashSet<NodeId> = occurrences.iter().copied().collect();

    // Post-order rebuild with replacement. Occurrence subtrees are never
    // entered: their postorder nodes still appear (we walk the original
    // tree), so we must skip descendants of occurrences. Easiest correct
    // approach: walk with an explicit filter — build the copy recursively
    // over a pruned postorder.
    let mut remap: HashMap<NodeId, NodeId> = HashMap::new();
    for n in pruned_postorder(arena, root, &occurrence_set) {
        let new_id = if occurrence_set.contains(&n) {
            dst.var(fresh)
        } else {
            match arena.node(n) {
                ExprNode::Var(s) => {
                    let s2 = dst.intern(arena.name(s));
                    dst.var(s2)
                }
                ExprNode::Lit(l) => dst.lit(l),
                ExprNode::Lam(x, b) => {
                    let x2 = dst.intern(arena.name(x));
                    let b2 = remap[&b];
                    dst.lam(x2, b2)
                }
                ExprNode::App(f, a) => {
                    let f2 = remap[&f];
                    let a2 = remap[&a];
                    dst.app(f2, a2)
                }
                ExprNode::Let(x, r, b) => {
                    let x2 = dst.intern(arena.name(x));
                    let r2 = remap[&r];
                    let b2 = remap[&b];
                    dst.let_(x2, r2, b2)
                }
            }
        };
        let new_id = if n == lca {
            // Wrap the LCA in the binding let. The representative subtree
            // is copied verbatim (its binders disappear with the replaced
            // occurrences, so uniqueness is preserved).
            let rhs = dst.import_subtree(arena, representative);
            dst.let_(fresh, rhs, new_id)
        } else {
            new_id
        };
        remap.insert(n, new_id);
    }

    (dst, remap[&root], binder_name)
}

/// Post-order over the tree, not descending into occurrence subtrees
/// (the occurrence node itself is yielded).
fn pruned_postorder(
    arena: &ExprArena,
    root: NodeId,
    pruned: &HashSet<NodeId>,
) -> Vec<NodeId> {
    let mut order = Vec::new();
    let mut stack: Vec<(NodeId, bool)> = vec![(root, false)];
    while let Some((n, expanded)) = stack.pop() {
        if expanded || pruned.contains(&n) {
            order.push(n);
            continue;
        }
        stack.push((n, true));
        for c in arena.node(n).children() {
            stack.push((c, false));
        }
    }
    // Siblings appear right-before-left; irrelevant here, the rebuild only
    // needs children before parents.
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use lambda_lang::eval::{eval, Value};
    use lambda_lang::parse::parse;
    use lambda_lang::print::print;
    use lambda_lang::uniquify::{check_unique_binders, uniquify};

    fn run_cse(src: &str) -> CseResult {
        let mut a = ExprArena::new();
        let parsed = parse(&mut a, src).unwrap();
        let (b, root) = uniquify(&a, parsed);
        let scheme: HashScheme<u64> = HashScheme::new(5);
        eliminate_common_subexpressions(&b, root, &scheme, CseConfig::default())
    }

    #[test]
    fn intro_example_v_plus_7() {
        let result = run_cse("(a + (v+7)) * (v+7)");
        assert_eq!(result.rewrites.len(), 1);
        let text = print(&result.arena, result.root);
        // let w = v + 7 in (a + w) * w
        assert!(text.contains("= v + 7 in"), "{text}");
        assert_eq!(result.rewrites[0].occurrences, 2);
        assert!(check_unique_binders(&result.arena, result.root).is_ok());
    }

    #[test]
    fn intro_example_alpha_equivalent_lets() {
        // §1: the two let-bound terms are alpha-equivalent, not
        // syntactically identical.
        let result =
            run_cse("(a + (let x = exp z in x+7)) * (let y = exp z in y+7)");
        assert!(!result.rewrites.is_empty());
        let first = &result.rewrites[0];
        assert_eq!(first.occurrences, 2);
        assert!(first.subexpr.contains("exp z"), "{}", first.subexpr);
    }

    #[test]
    fn intro_example_lambdas() {
        // foo (\x.x+7) (\y.y+7) ⇒ let h = \x.x+7 in foo h h.
        let result = run_cse(r"foo (\x. x+7) (\y. y+7)");
        assert_eq!(result.rewrites.len(), 1);
        let text = print(&result.arena, result.root);
        assert!(text.contains(r"= \x"), "{text}");
        // Body must be foo h h with both args the same variable.
        match result.arena.node(result.root) {
            ExprNode::Let(w, _, body) => match result.arena.node(body) {
                ExprNode::App(foo_h, h2) => {
                    assert!(matches!(result.arena.node(h2), ExprNode::Var(s) if s == w));
                    match result.arena.node(foo_h) {
                        ExprNode::App(_, h1) => {
                            assert!(matches!(result.arena.node(h1), ExprNode::Var(s) if s == w));
                        }
                        other => panic!("unexpected {other:?}"),
                    }
                }
                other => panic!("unexpected {other:?}"),
            },
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn name_overloading_is_not_cse_d() {
        // §2.2: the two x+2 under different binders must NOT be shared.
        let result = run_cse("foo (let x = bar in x+2) (let x = pubx in x+2)");
        for rewrite in &result.rewrites {
            assert!(
                !rewrite.subexpr.contains("x + 2"),
                "unsound rewrite of {}",
                rewrite.subexpr
            );
        }
    }

    #[test]
    fn nested_occurrences_use_outermost() {
        // ((u+1)+(u+1)) + ((u+1)+(u+1)): the big subterm (u+1)+(u+1)
        // appears twice; inner u+1 occurrences inside them are subsumed.
        let result = run_cse("((u+1)+(u+1)) + ((u+1)+(u+1))");
        assert!(!result.rewrites.is_empty());
        // The first rewrite abstracts the big (u+1)+(u+1) term (13 nodes),
        // not the nested u+1 (5 nodes).
        assert_eq!(result.rewrites[0].subexpr_size, 13);
        assert_eq!(result.rewrites[0].occurrences, 2);
    }

    #[test]
    fn cse_preserves_evaluation() {
        let programs = [
            "let v = 3 in let a = 10 in (a + (v+7)) * (v+7)",
            "let u = 2 in ((u+1)+(u+1)) + ((u+1)+(u+1))",
            r"let v = 4 in (\f. f 1 + f 2) (\x. x * v + v)",
            "let z = 5 in (let x = z*z in x+7) + (let y = z*z in y+7)",
        ];
        for src in programs {
            let mut a = ExprArena::new();
            let parsed = parse(&mut a, src).unwrap();
            let (b, root) = uniquify(&a, parsed);
            let before = eval(&b, root).unwrap_or_else(|e| panic!("{src}: {e}"));
            let scheme: HashScheme<u64> = HashScheme::new(5);
            let result =
                eliminate_common_subexpressions(&b, root, &scheme, CseConfig::default());
            let after = eval(&result.arena, result.root)
                .unwrap_or_else(|e| panic!("cse({src}): {e}"));
            assert!(
                Value::observably_eq(&before, &after),
                "{src}: {before:?} vs {after:?} (rewritten: {})",
                print(&result.arena, result.root)
            );
        }
    }

    #[test]
    fn no_rewrite_when_nothing_shared() {
        let result = run_cse(r"\x. x + y");
        assert!(result.rewrites.is_empty());
        let text = print(&result.arena, result.root);
        assert!(text.contains("+ y"));
    }

    #[test]
    fn small_shared_terms_below_threshold_are_left_alone() {
        // x+x: the shared `x` is a single node, below min_size.
        let result = run_cse("x + x");
        assert!(result.rewrites.is_empty());
    }

    #[test]
    fn result_satisfies_unique_binders() {
        let result = run_cse("(p (q+r) (q+r)) (p (q+r) (q+r))");
        assert!(check_unique_binders(&result.arena, result.root).is_ok());
        assert!(!result.rewrites.is_empty());
    }

    #[test]
    fn fixpoint_terminates_and_shrinks() {
        let result = run_cse("((m+n) * (m+n)) + ((m+n) * (m+n))");
        // First pass abstracts (m+n)*(m+n); second may abstract m+n inside
        // the binder copy — termination is the point.
        let final_size = result.arena.subtree_size(result.root);
        assert!(final_size < 23, "no shrink: {final_size}");
    }
}
