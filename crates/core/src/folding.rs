//! Constant folding through the incremental hasher — a realistic rewrite
//! campaign.
//!
//! The paper's incrementality motivation (§1, §6.3): "in typical compilers
//! the program is subjected to thousands of rewrites, each of which
//! transforms the program locally. Ideally, we would like an incremental
//! hashing algorithm, so that we can continuously monitor sharing". This
//! module is that client: a constant-folding pass that applies local
//! rewrites *through* [`crate::incremental::IncrementalHasher`], keeping
//! every subexpression hash valid after every step — so a CSE or
//! sharing-monitoring pass could interleave at any point.
//!
//! Folding rules (on exact integer/float literals):
//!
//! * `lit ⊕ lit → lit` for `add`/`sub`/`mul` (and `div` when exact),
//! * `x + 0`, `0 + x`, `x - 0`, `x * 1`, `1 * x` → `x`,
//! * `x * 0`, `0 * x` → `0` **only** when `x` is a literal (dropping an
//!   arbitrary `x` could discard a diverging or effectful term).

use crate::combine::HashWord;
use crate::incremental::IncrementalHasher;
use lambda_lang::arena::{ExprArena, ExprNode, NodeId};
use lambda_lang::literal::Literal;

/// What one folding step found.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Fold {
    /// Replace the spine with a literal.
    Constant(Literal),
    /// Replace the spine with its (unchanged) operand subtree.
    Keep(NodeId),
}

/// Recognises `((op a) b)` with `op` one of the foldable primitives.
fn binary_spine(arena: &ExprArena, id: NodeId) -> Option<(&'static str, NodeId, NodeId)> {
    let ExprNode::App(fa, b) = arena.node(id) else {
        return None;
    };
    let ExprNode::App(f, a) = arena.node(fa) else {
        return None;
    };
    let ExprNode::Var(op) = arena.node(f) else {
        return None;
    };
    let name = match arena.name(op) {
        "add" => "add",
        "sub" => "sub",
        "mul" => "mul",
        "div" => "div",
        _ => return None,
    };
    Some((name, a, b))
}

fn literal_of(arena: &ExprArena, id: NodeId) -> Option<Literal> {
    match arena.node(id) {
        ExprNode::Lit(l) => Some(l),
        _ => None,
    }
}

fn fold_ints(op: &str, x: i64, y: i64) -> Option<Literal> {
    Some(Literal::I64(match op {
        "add" => x.checked_add(y)?,
        "sub" => x.checked_sub(y)?,
        "mul" => x.checked_mul(y)?,
        "div" => {
            if y == 0 || x % y != 0 {
                return None; // only exact division folds
            }
            x / y
        }
        _ => return None,
    }))
}

fn fold_floats(op: &str, x: f64, y: f64) -> Option<Literal> {
    Some(Literal::f64(match op {
        "add" => x + y,
        "sub" => x - y,
        "mul" => x * y,
        "div" => x / y,
        _ => return None,
    }))
}

/// Decides whether the subtree at `id` folds, without mutating anything.
fn try_fold(arena: &ExprArena, id: NodeId) -> Option<Fold> {
    let (op, a, b) = binary_spine(arena, id)?;
    let la = literal_of(arena, a);
    let lb = literal_of(arena, b);
    match (la, lb) {
        (Some(Literal::I64(x)), Some(Literal::I64(y))) => fold_ints(op, x, y).map(Fold::Constant),
        (Some(Literal::F64Bits(x)), Some(Literal::F64Bits(y))) => {
            fold_floats(op, f64::from_bits(x), f64::from_bits(y)).map(Fold::Constant)
        }
        // Identity elements (operand kept, not copied through a literal).
        (Some(Literal::I64(0)), None) if op == "add" => Some(Fold::Keep(b)),
        (None, Some(Literal::I64(0))) if matches!(op, "add" | "sub") => Some(Fold::Keep(a)),
        (Some(Literal::I64(1)), None) if op == "mul" => Some(Fold::Keep(b)),
        (None, Some(Literal::I64(1))) if matches!(op, "mul" | "div") => Some(Fold::Keep(a)),
        _ => None,
    }
}

/// Outcome of [`fold_constants`].
#[derive(Clone, Copy, Debug, Default)]
pub struct FoldReport {
    /// Rewrites applied.
    pub rewrites: usize,
    /// Nodes re-hashed by the incremental engine across the campaign.
    pub nodes_rehashed: usize,
}

/// Runs constant folding to a fixpoint over the program owned by
/// `engine`, applying every rewrite through the incremental hasher so all
/// subexpression hashes stay valid throughout. Returns the campaign
/// statistics.
pub fn fold_constants<H: HashWord>(engine: &mut IncrementalHasher<H>) -> FoldReport {
    let mut report = FoldReport::default();
    loop {
        // Find the next foldable spine. (Post-order, so inner redexes
        // fold before the spines containing them and a single sweep per
        // iteration makes progress toward the fixpoint.)
        let target = engine.find(|arena, n| try_fold(arena, n).is_some());
        let Some(target) = target else { break };
        let decision = try_fold(engine.arena(), target).expect("just matched");

        let mut patch = ExprArena::new();
        let patch_root = match decision {
            Fold::Constant(lit) => patch.lit(lit),
            Fold::Keep(operand) => patch.import_subtree(engine.arena(), operand),
        };
        let outcome = engine
            .replace_subtree(target, &patch, patch_root)
            .expect("fold target is live");
        report.rewrites += 1;
        report.nodes_rehashed += outcome.stats.nodes_recomputed;
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::combine::HashScheme;
    use lambda_lang::eval::{eval, Value};
    use lambda_lang::parse::parse;
    use lambda_lang::print::print;
    use lambda_lang::uniquify::uniquify;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn engine_for(src: &str) -> IncrementalHasher<u64> {
        let mut a = ExprArena::new();
        let parsed = parse(&mut a, src).unwrap();
        let (b, root) = uniquify(&a, parsed);
        IncrementalHasher::new(b, root, HashScheme::new(0xF01D))
    }

    #[test]
    fn folds_constant_arithmetic() {
        let mut engine = engine_for("1 + 2 * 3");
        let report = fold_constants(&mut engine);
        assert!(report.rewrites >= 2);
        assert_eq!(print(engine.arena(), engine.root()), "7");
        assert!(engine.verify_against_scratch());
    }

    #[test]
    fn folds_identities_without_copying() {
        let mut engine = engine_for("(x + 0) * 1");
        let report = fold_constants(&mut engine);
        assert_eq!(report.rewrites, 2);
        assert_eq!(print(engine.arena(), engine.root()), "x");
        assert!(engine.verify_against_scratch());
    }

    #[test]
    fn does_not_fold_through_variables() {
        let mut engine = engine_for("x * 0 + y / 0");
        let before = print(engine.arena(), engine.root());
        let report = fold_constants(&mut engine);
        assert_eq!(report.rewrites, 0);
        assert_eq!(print(engine.arena(), engine.root()), before);
    }

    #[test]
    fn inexact_division_is_left_alone() {
        let mut engine = engine_for("7 / 2");
        let report = fold_constants(&mut engine);
        assert_eq!(report.rewrites, 0, "only exact integer divisions fold");
        // Exact division does fold.
        let mut engine = engine_for("8 / 2");
        fold_constants(&mut engine);
        assert_eq!(print(engine.arena(), engine.root()), "4");
    }

    #[test]
    fn folding_under_binders_keeps_hashes_consistent() {
        let mut engine = engine_for(r"\k. let t = 2 * 3 + k in t * (4 - 4 + 1)");
        let report = fold_constants(&mut engine);
        assert!(report.rewrites >= 2);
        assert!(engine.verify_against_scratch());
        // 4-4+1 → 1, t*1 → t; 2*3 → 6.
        let text = print(engine.arena(), engine.root());
        assert!(text.contains("6 + k"), "{text}");
        assert!(!text.contains("* 1"), "{text}");
    }

    #[test]
    fn folding_preserves_evaluation_on_random_programs() {
        let mut rng = StdRng::seed_from_u64(0xF01D);
        for size in [30usize, 80, 150] {
            let mut arena = ExprArena::new();
            let root = expr_gen::arithmetic(&mut arena, size, &mut rng);
            let before = eval(&arena, root).expect("generated programs evaluate");
            let mut engine = IncrementalHasher::new(arena, root, HashScheme::<u64>::new(1));
            let report = fold_constants(&mut engine);
            let after = eval(engine.arena(), engine.root()).expect("folded programs evaluate");
            assert!(
                Value::observably_eq(&before, &after),
                "folding changed value (size {size}, {} rewrites)",
                report.rewrites
            );
            assert!(engine.verify_against_scratch());
        }
    }

    #[test]
    fn float_folding() {
        let mut engine = engine_for("1.5 + 2.5");
        fold_constants(&mut engine);
        assert_eq!(print(engine.arena(), engine.root()), "4.0");
    }

    #[test]
    fn campaign_is_cheap_relative_to_program() {
        // Fold a few constants inside a large program: the incremental
        // engine re-hashes orders of magnitude fewer nodes than n per
        // rewrite.
        let mut rng = StdRng::seed_from_u64(7);
        let mut arena = ExprArena::new();
        let big = expr_gen::balanced(&mut arena, 20_000, &mut rng);
        let c1 = parse(&mut arena, "(2 + 3) * (4 + 5)").unwrap();
        let root = arena.app(big, c1);
        let mut engine = IncrementalHasher::new(arena, root, HashScheme::<u64>::new(2));
        let report = fold_constants(&mut engine);
        assert!(report.rewrites >= 3);
        let per_rewrite = report.nodes_rehashed / report.rewrites;
        assert!(
            per_rewrite < 100,
            "re-hashed {per_rewrite} nodes per rewrite"
        );
        assert!(engine.verify_against_scratch());
    }
}
