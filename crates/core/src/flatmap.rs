//! Flat variable maps: the hot-path replacement for `BTreeMap` in the
//! hashed summariser (§5.2).
//!
//! Profiling the store ingest path showed that the per-node cost of the
//! paper's algorithm is dominated not by hash mixing but by allocator
//! traffic: every `Var` leaf allocated a `BTreeMap` node, and every merge
//! rewrote tree nodes one heap cell at a time. The overwhelming majority
//! of variable maps are tiny — a subexpression rarely has more than a
//! handful of distinct free variables — so a [`FlatVarMap`] keeps up to
//! [`INLINE_CAP`] entries in an inline array (no heap at all)
//! and spills to a single sorted `Vec` beyond that. This is the same
//! flat-map/arena move hash-consing systems (Filliâtre & Conchon) and
//! e-graph engines such as egg make to win the constant-factor battle.
//!
//! Complexity: entries are kept sorted by [`Symbol`], so lookup is a
//! binary search and the §4.8 smaller-into-bigger merge is either an
//! in-place insertion (inline case) or one linear merge-join over the two
//! sorted runs (spilled case). The Lemma 6.1 bound counts *merge
//! operations* — entries of the smaller map transformed at a binary node —
//! and that count is unchanged: only smaller-side entries are joined and
//! tagged, exactly as with the tree map. The regression test in
//! `tests/merge_complexity.rs` holds the counter to c·n·log n on
//! adversarial inputs.
//!
//! **Wall-time trade-off, stated honestly:** once a map spills, each
//! operation on it costs O(map width) (a contiguous memmove or a run
//! copy) where the old `BTreeMap` paid O(log width) in pointer chases. A
//! term that *sustains* w live free variables therefore pays O(w) per
//! spilled op — worst case Θ(n²) total on an open-term spine with
//! w = Θ(n), vs the seed's O(n log²n). For closed or program-like terms
//! (live maps a handful wide — every workload in this repo's generators
//! and benches) the flat map is far faster despite the weaker worst
//! case; if wide-open-term workloads appear, the ROADMAP's tree tier
//! above the spill restores the per-op logarithm.
//!
//! [`MapPool`] recycles spilled buffers across terms of a batch so steady
//! state ingest performs no per-node heap traffic at all.

use crate::combine::{HashScheme, HashWord};
use crate::hashed::PosH;
use lambda_lang::symbol::Symbol;
use std::fmt;

/// One `(variable, position-tree)` entry.
pub type Entry<H> = (Symbol, PosH<H>);

/// Number of entries a [`FlatVarMap`] stores inline before spilling to a
/// heap-allocated sorted `Vec`.
pub const INLINE_CAP: usize = 8;

/// A free pool of spilled entry buffers, reused across terms in a batch.
///
/// All [`FlatVarMap`] operations that may allocate or release a spill
/// buffer take a pool; passing a fresh `MapPool::default()` is free (an
/// empty pool never allocates) and simply disables recycling.
#[derive(Debug)]
pub struct MapPool<H: HashWord> {
    free: Vec<Vec<Entry<H>>>,
}

impl<H: HashWord> Default for MapPool<H> {
    fn default() -> Self {
        MapPool { free: Vec::new() }
    }
}

/// Cap on pooled buffers: enough for the live maps of any realistic merge
/// frontier, small enough that a pathological term cannot hoard memory.
const POOL_CAP: usize = 64;

impl<H: HashWord> MapPool<H> {
    /// An empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Hands out a cleared buffer with room for `want` entries, recycling
    /// a previously released one when available.
    pub(crate) fn take_buffer(&mut self, want: usize) -> Vec<Entry<H>> {
        match self.free.pop() {
            Some(mut v) => {
                v.clear();
                v.reserve(want);
                v
            }
            None => Vec::with_capacity(want.max(2 * INLINE_CAP)),
        }
    }

    fn give(&mut self, v: Vec<Entry<H>>) {
        if v.capacity() > 0 && self.free.len() < POOL_CAP {
            self.free.push(v);
        }
    }
}

/// Entry storage: inline for small maps, one sorted `Vec` beyond that.
#[derive(Clone)]
enum Slots<H: HashWord> {
    Inline {
        len: u8,
        buf: [Entry<H>; INLINE_CAP],
    },
    Spilled(Vec<Entry<H>>),
}

/// A variable map in hashed form (§5.2): sorted flat storage plus the
/// XOR-maintained hash of its entries.
///
/// Drop-in replacement for the `BTreeMap`-backed map the summariser used
/// before: same operations (`singleton`, `remove`, `upsert`, `get`,
/// `iter`), same symbol-sorted iteration order, same O(1) XOR hash — but
/// with no heap allocation for maps of up to [`INLINE_CAP`] entries,
/// which is the overwhelming case.
#[derive(Clone)]
pub struct FlatVarMap<H: HashWord> {
    slots: Slots<H>,
    xor: H,
}

impl<H: HashWord> Default for FlatVarMap<H> {
    fn default() -> Self {
        FlatVarMap {
            slots: Slots::Inline {
                len: 0,
                buf: [Self::DUMMY; INLINE_CAP],
            },
            xor: H::ZERO,
        }
    }
}

impl<H: HashWord> FlatVarMap<H> {
    /// Filler for unused inline slots; never observable.
    const DUMMY: Entry<H> = (
        Symbol::from_index(0),
        PosH {
            hash: H::ZERO,
            size: 0,
        },
    );

    /// The empty map (`emptyVM`).
    pub fn new() -> Self {
        Self::default()
    }

    /// `singletonVM`: one entry, inline, no allocation.
    pub fn singleton(scheme: &HashScheme<H>, sym: Symbol, name_hash: u64, pos: PosH<H>) -> Self {
        let mut buf = [Self::DUMMY; INLINE_CAP];
        buf[0] = (sym, pos);
        FlatVarMap {
            slots: Slots::Inline { len: 1, buf },
            xor: scheme.entry(name_hash, pos.hash),
        }
    }

    /// Number of distinct free variables.
    #[inline]
    pub fn len(&self) -> usize {
        match &self.slots {
            Slots::Inline { len, .. } => *len as usize,
            Slots::Spilled(v) => v.len(),
        }
    }

    /// Whether there are no free variables.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The map hash: XOR of all entry hashes (`hashVM`), O(1).
    #[inline]
    pub fn hash(&self) -> H {
        self.xor
    }

    /// The entries, sorted by symbol.
    #[inline]
    pub fn entries(&self) -> &[Entry<H>] {
        match &self.slots {
            Slots::Inline { len, buf } => &buf[..*len as usize],
            Slots::Spilled(v) => v,
        }
    }

    #[inline]
    fn find(&self, sym: Symbol) -> Result<usize, usize> {
        self.entries().binary_search_by_key(&sym, |e| e.0)
    }

    /// Current position tree for `sym`, if any.
    pub fn get(&self, sym: Symbol) -> Option<PosH<H>> {
        self.find(sym).ok().map(|i| self.entries()[i].1)
    }

    /// Iterates over `(symbol, position)` entries in symbol order.
    pub fn iter(&self) -> impl Iterator<Item = (Symbol, PosH<H>)> + '_ {
        self.entries().iter().copied()
    }

    /// `removeFromVM`: removes `sym`, returning its position tree if
    /// present, and updates the XOR hash in O(1) hash work.
    pub fn remove(
        &mut self,
        scheme: &HashScheme<H>,
        sym: Symbol,
        name_hash: u64,
    ) -> Option<PosH<H>> {
        let i = self.find(sym).ok()?;
        let pos = match &mut self.slots {
            Slots::Inline { len, buf } => {
                let pos = buf[i].1;
                buf.copy_within(i + 1..*len as usize, i);
                *len -= 1;
                pos
            }
            Slots::Spilled(v) => v.remove(i).1,
        };
        self.xor = self.xor.xor(scheme.entry(name_hash, pos.hash));
        Some(pos)
    }

    /// `alterVM` specialised to the §4.8 merge: replaces (or inserts) the
    /// entry for `sym` with `new_pos`, fixing up the XOR hash. Spills from
    /// the inline representation into a pooled buffer when full.
    pub fn upsert_pooled(
        &mut self,
        scheme: &HashScheme<H>,
        sym: Symbol,
        name_hash: u64,
        new_pos: PosH<H>,
        pool: &mut MapPool<H>,
    ) -> Option<PosH<H>> {
        let old = match self.find(sym) {
            Ok(i) => {
                let slot = match &mut self.slots {
                    Slots::Inline { buf, .. } => &mut buf[i],
                    Slots::Spilled(v) => &mut v[i],
                };
                Some(std::mem::replace(&mut slot.1, new_pos))
            }
            Err(i) => {
                match &mut self.slots {
                    Slots::Inline { len, buf } if (*len as usize) < INLINE_CAP => {
                        buf.copy_within(i..*len as usize, i + 1);
                        buf[i] = (sym, new_pos);
                        *len += 1;
                    }
                    Slots::Inline { len, buf } => {
                        // Spill: move the inline run into a pooled buffer.
                        let mut v = pool.take_buffer(2 * INLINE_CAP);
                        v.extend_from_slice(&buf[..*len as usize]);
                        v.insert(i, (sym, new_pos));
                        self.slots = Slots::Spilled(v);
                    }
                    Slots::Spilled(v) => v.insert(i, (sym, new_pos)),
                }
                None
            }
        };
        if let Some(old_pos) = old {
            self.xor = self.xor.xor(scheme.entry(name_hash, old_pos.hash));
        }
        self.xor = self.xor.xor(scheme.entry(name_hash, new_pos.hash));
        old
    }

    /// [`FlatVarMap::upsert_pooled`] without buffer recycling — for call
    /// sites outside a batch loop.
    pub fn upsert(
        &mut self,
        scheme: &HashScheme<H>,
        sym: Symbol,
        name_hash: u64,
        new_pos: PosH<H>,
    ) -> Option<PosH<H>> {
        self.upsert_pooled(scheme, sym, name_hash, new_pos, &mut MapPool::default())
    }

    /// Builds a map from an already-sorted, duplicate-free entry run whose
    /// XOR hash the caller maintained. Small runs are copied inline and
    /// the buffer is returned to the pool; large runs keep the buffer.
    pub(crate) fn from_sorted(entries: Vec<Entry<H>>, xor: H, pool: &mut MapPool<H>) -> Self {
        debug_assert!(entries.windows(2).all(|w| w[0].0 < w[1].0), "unsorted run");
        if entries.len() <= INLINE_CAP {
            let mut buf = [Self::DUMMY; INLINE_CAP];
            buf[..entries.len()].copy_from_slice(&entries);
            let len = entries.len() as u8;
            pool.give(entries);
            FlatVarMap {
                slots: Slots::Inline { len, buf },
                xor,
            }
        } else {
            FlatVarMap {
                slots: Slots::Spilled(entries),
                xor,
            }
        }
    }

    /// Consumes the map, returning any spilled buffer to the pool.
    pub fn recycle(self, pool: &mut MapPool<H>) {
        if let Slots::Spilled(v) = self.slots {
            pool.give(v);
        }
    }
}

impl<H: HashWord> PartialEq for FlatVarMap<H> {
    fn eq(&self, other: &Self) -> bool {
        // Equal entry runs imply equal XOR hashes under one scheme, but the
        // hash is compared first as a cheap early-out.
        self.xor == other.xor && self.entries() == other.entries()
    }
}

impl<H: HashWord> Eq for FlatVarMap<H> {}

impl<H: HashWord> fmt::Debug for FlatVarMap<H> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_map().entries(self.iter()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scheme() -> HashScheme<u64> {
        HashScheme::new(0xF1A7)
    }

    fn pos(scheme: &HashScheme<u64>, size: u64) -> PosH<u64> {
        PosH {
            hash: scheme.pt_left(size, scheme.pt_here()),
            size,
        }
    }

    #[test]
    fn stays_inline_up_to_cap_then_spills() {
        let s = scheme();
        let mut vm = FlatVarMap::<u64>::new();
        let mut pool = MapPool::new();
        for i in 0..(INLINE_CAP + 4) as u32 {
            vm.upsert_pooled(
                &s,
                Symbol::from_index(i),
                u64::from(i),
                pos(&s, 1),
                &mut pool,
            );
            assert_eq!(vm.len(), i as usize + 1);
        }
        // Sorted iteration regardless of representation.
        let syms: Vec<u32> = vm.iter().map(|(sym, _)| sym.index()).collect();
        assert!(syms.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn insertion_order_does_not_matter() {
        let s = scheme();
        let order_a = [5u32, 1, 9, 3, 7, 0, 11, 2, 8, 4];
        let order_b = [4u32, 8, 2, 11, 0, 7, 3, 9, 1, 5];
        let build = |order: &[u32]| {
            let mut vm = FlatVarMap::<u64>::new();
            for &i in order {
                vm.upsert(
                    &s,
                    Symbol::from_index(i),
                    u64::from(i),
                    pos(&s, u64::from(i) + 1),
                );
            }
            vm
        };
        let a = build(&order_a);
        let b = build(&order_b);
        assert_eq!(a, b);
        assert_eq!(a.hash(), b.hash());
    }

    #[test]
    fn remove_shrinks_and_restores_hash() {
        let s = scheme();
        let mut vm = FlatVarMap::<u64>::new();
        for i in 0..12u32 {
            vm.upsert(&s, Symbol::from_index(i), u64::from(i), pos(&s, 1));
        }
        let full = vm.clone();
        let extra = Symbol::from_index(50);
        vm.upsert(&s, extra, 50, pos(&s, 2));
        assert_ne!(vm, full);
        vm.remove(&s, extra, 50);
        assert_eq!(vm, full);
        assert_eq!(vm.hash(), full.hash());
        assert!(vm.remove(&s, extra, 50).is_none());
    }

    #[test]
    fn from_sorted_round_trips_inline_and_spilled() {
        let s = scheme();
        let mut pool = MapPool::new();
        for n in [3usize, 20] {
            let mut reference = FlatVarMap::<u64>::new();
            let mut run = Vec::new();
            let mut xor = 0u64;
            for i in 0..n as u32 {
                let p = pos(&s, u64::from(i) + 1);
                reference.upsert(&s, Symbol::from_index(i), u64::from(i), p);
                run.push((Symbol::from_index(i), p));
                xor ^= s.entry(u64::from(i), p.hash);
            }
            let built = FlatVarMap::from_sorted(run, xor, &mut pool);
            assert_eq!(built, reference);
        }
    }
}
