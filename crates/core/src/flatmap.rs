//! Flat variable maps: the hot-path replacement for `BTreeMap` in the
//! hashed summariser (§5.2).
//!
//! Profiling the store ingest path showed that the per-node cost of the
//! paper's algorithm is dominated not by hash mixing but by allocator
//! traffic: every `Var` leaf allocated a `BTreeMap` node, and every merge
//! rewrote tree nodes one heap cell at a time. The overwhelming majority
//! of variable maps are tiny — a subexpression rarely has more than a
//! handful of distinct free variables — so a [`FlatVarMap`] keeps up to
//! [`INLINE_CAP`] entries in an inline array (no heap at all)
//! and spills to a single sorted `Vec` beyond that. This is the same
//! flat-map/arena move hash-consing systems (Filliâtre & Conchon) and
//! e-graph engines such as egg make to win the constant-factor battle.
//!
//! Complexity: entries are kept sorted by [`Symbol`], so lookup is a
//! binary search and the §4.8 smaller-into-bigger merge is either an
//! in-place insertion (inline case) or one linear merge-join over the two
//! sorted runs (spilled case). The Lemma 6.1 bound counts *merge
//! operations* — entries of the smaller map transformed at a binary node —
//! and that count is unchanged: only smaller-side entries are joined and
//! tagged, exactly as with the tree map. The regression test in
//! `tests/merge_complexity.rs` holds the counter to c·n·log n on
//! adversarial inputs.
//!
//! **The third tier.** A sorted-Vec op costs O(map width) (a contiguous
//! memmove or a run copy) where a balanced tree pays O(log width) in
//! pointer chases. A term that *sustains* w live free variables would
//! therefore pay O(w) per spilled op — Θ(n²) total on an open-term spine
//! with w = Θ(n), vs the seed's O(n log²n). So once a map's width passes
//! [`SPILL_TREE_THRESHOLD`] it is promoted to a persistent treap
//! ([`persistent_map::PMap`], `Arc`-shared, `Send`), restoring O(log n)
//! insert/remove and an O(m log(n/m + 1)) smaller-into-bigger merge via
//! [`PMap::union_join`]. Maps shrink back to the inline tier when a
//! binder removal drops them to [`INLINE_CAP`] entries — the wide
//! hysteresis band (threshold → inline cap) prevents promote/demote
//! ping-pong at a tier boundary. The Lemma 6.1 `merge_ops` accounting is
//! tier-independent: only smaller-side entries are ever joined, in every
//! representation.
//!
//! [`MapPool`] recycles spilled buffers across terms of a batch so steady
//! state ingest performs no per-node heap traffic at all; it also carries
//! the tree-promotion threshold, so a whole summariser's maps can have
//! the tree tier retuned (or disabled, for the bench ablation) in one
//! place.

use crate::combine::{HashScheme, HashWord};
use crate::hashed::PosH;
use lambda_lang::symbol::Symbol;
use persistent_map::PMap;
use std::fmt;

/// One `(variable, position-tree)` entry.
pub type Entry<H> = (Symbol, PosH<H>);

/// Number of entries a [`FlatVarMap`] stores inline before spilling to a
/// heap-allocated sorted `Vec`.
pub const INLINE_CAP: usize = 8;

/// Width beyond which a spilled map is promoted to the persistent-tree
/// tier. Tuned so program-like terms (maps a handful wide) never leave
/// the flat tiers, while sustained-wide open-term spines go logarithmic
/// well before the quadratic regime bites.
pub const SPILL_TREE_THRESHOLD: usize = 32;

/// A free pool of spilled entry buffers, reused across terms in a batch.
///
/// All [`FlatVarMap`] operations that may allocate or release a spill
/// buffer take a pool; passing a fresh `MapPool::default()` is free (an
/// empty pool never allocates) and simply disables recycling. The pool
/// also carries the tree-promotion threshold for the maps built with it.
#[derive(Debug)]
pub struct MapPool<H: HashWord> {
    free: Vec<Vec<Entry<H>>>,
    tree_threshold: usize,
}

impl<H: HashWord> Default for MapPool<H> {
    fn default() -> Self {
        MapPool {
            free: Vec::new(),
            tree_threshold: SPILL_TREE_THRESHOLD,
        }
    }
}

/// Cap on pooled buffers: enough for the live maps of any realistic merge
/// frontier, small enough that a pathological term cannot hoard memory.
const POOL_CAP: usize = 64;

impl<H: HashWord> MapPool<H> {
    /// An empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty pool whose maps promote to the tree tier past
    /// `threshold` entries instead of [`SPILL_TREE_THRESHOLD`]. Pass
    /// `usize::MAX` to disable the tree tier entirely (the sorted-Vec
    /// ablation baseline).
    pub fn with_tree_threshold(threshold: usize) -> Self {
        MapPool {
            free: Vec::new(),
            tree_threshold: threshold,
        }
    }

    /// The current tree-promotion threshold.
    pub fn tree_threshold(&self) -> usize {
        self.tree_threshold
    }

    /// Retunes the tree-promotion threshold for maps built after this
    /// call (existing maps keep their representation until they grow or
    /// shrink across a boundary).
    pub fn set_tree_threshold(&mut self, threshold: usize) {
        self.tree_threshold = threshold;
    }

    /// Hands out a cleared buffer with room for `want` entries, recycling
    /// a previously released one when available.
    pub(crate) fn take_buffer(&mut self, want: usize) -> Vec<Entry<H>> {
        match self.free.pop() {
            Some(mut v) => {
                v.clear();
                v.reserve(want);
                v
            }
            None => Vec::with_capacity(want.max(2 * INLINE_CAP)),
        }
    }

    fn give(&mut self, v: Vec<Entry<H>>) {
        if v.capacity() > 0 && self.free.len() < POOL_CAP {
            self.free.push(v);
        }
    }
}

/// Entry storage: inline for small maps, one sorted `Vec` beyond that,
/// and a persistent treap once the width passes the pool's
/// tree-promotion threshold.
#[derive(Clone)]
enum Slots<H: HashWord> {
    Inline {
        len: u8,
        buf: [Entry<H>; INLINE_CAP],
    },
    Spilled(Vec<Entry<H>>),
    Tree(PMap<Symbol, PosH<H>>),
}

/// A variable map in hashed form (§5.2): sorted flat storage plus the
/// XOR-maintained hash of its entries.
///
/// Drop-in replacement for the `BTreeMap`-backed map the summariser used
/// before: same operations (`singleton`, `remove`, `upsert`, `get`,
/// `iter`), same symbol-sorted iteration order, same O(1) XOR hash — but
/// with no heap allocation for maps of up to [`INLINE_CAP`] entries,
/// which is the overwhelming case.
#[derive(Clone)]
pub struct FlatVarMap<H: HashWord> {
    slots: Slots<H>,
    xor: H,
}

impl<H: HashWord> Default for FlatVarMap<H> {
    fn default() -> Self {
        FlatVarMap {
            slots: Slots::Inline {
                len: 0,
                buf: [Self::DUMMY; INLINE_CAP],
            },
            xor: H::ZERO,
        }
    }
}

impl<H: HashWord> FlatVarMap<H> {
    /// Filler for unused inline slots; never observable.
    const DUMMY: Entry<H> = (
        Symbol::from_index(0),
        PosH {
            hash: H::ZERO,
            size: 0,
        },
    );

    /// The empty map (`emptyVM`).
    pub fn new() -> Self {
        Self::default()
    }

    /// `singletonVM`: one entry, inline, no allocation.
    pub fn singleton(scheme: &HashScheme<H>, sym: Symbol, name_hash: u64, pos: PosH<H>) -> Self {
        let mut buf = [Self::DUMMY; INLINE_CAP];
        buf[0] = (sym, pos);
        FlatVarMap {
            slots: Slots::Inline { len: 1, buf },
            xor: scheme.entry(name_hash, pos.hash),
        }
    }

    /// Number of distinct free variables.
    #[inline]
    pub fn len(&self) -> usize {
        match &self.slots {
            Slots::Inline { len, .. } => *len as usize,
            Slots::Spilled(v) => v.len(),
            Slots::Tree(t) => t.len(),
        }
    }

    /// Whether there are no free variables.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The map hash: XOR of all entry hashes (`hashVM`), O(1).
    #[inline]
    pub fn hash(&self) -> H {
        self.xor
    }

    /// Whether this map is currently in the persistent-tree tier.
    #[inline]
    pub fn is_tree(&self) -> bool {
        matches!(self.slots, Slots::Tree(_))
    }

    /// The entries of a flat-tier map, sorted by symbol. Never called on
    /// the tree tier (callers dispatch on the representation first).
    #[inline]
    fn flat_slice(&self) -> &[Entry<H>] {
        match &self.slots {
            Slots::Inline { len, buf } => &buf[..*len as usize],
            Slots::Spilled(v) => v,
            Slots::Tree(_) => unreachable!("flat_slice on a tree-tier map"),
        }
    }

    #[inline]
    fn find_flat(&self, sym: Symbol) -> Result<usize, usize> {
        self.flat_slice().binary_search_by_key(&sym, |e| e.0)
    }

    /// Current position tree for `sym`, if any. O(log n) in every tier.
    pub fn get(&self, sym: Symbol) -> Option<PosH<H>> {
        match &self.slots {
            Slots::Tree(t) => t.get(&sym).copied(),
            _ => self.find_flat(sym).ok().map(|i| self.flat_slice()[i].1),
        }
    }

    /// Iterates over `(symbol, position)` entries in symbol order.
    pub fn iter(&self) -> VarMapIter<'_, H> {
        VarMapIter {
            inner: match &self.slots {
                Slots::Tree(t) => IterInner::Tree(t.iter()),
                _ => IterInner::Slice(self.flat_slice().iter()),
            },
        }
    }

    /// `removeFromVM`: removes `sym`, returning its position tree if
    /// present, and updates the XOR hash in O(1) hash work. A tree-tier
    /// map that shrinks to [`INLINE_CAP`] entries demotes back inline —
    /// the wide gap below the promotion threshold is deliberate
    /// hysteresis.
    pub fn remove(
        &mut self,
        scheme: &HashScheme<H>,
        sym: Symbol,
        name_hash: u64,
    ) -> Option<PosH<H>> {
        if let Slots::Tree(t) = &self.slots {
            let (next, old) = t.remove(&sym);
            let pos = old?;
            self.slots = if next.len() <= INLINE_CAP {
                let mut buf = [Self::DUMMY; INLINE_CAP];
                let mut len = 0u8;
                for (s, p) in next.iter() {
                    buf[len as usize] = (*s, *p);
                    len += 1;
                }
                Slots::Inline { len, buf }
            } else {
                Slots::Tree(next)
            };
            self.xor = self.xor.xor(scheme.entry(name_hash, pos.hash));
            return Some(pos);
        }
        let i = self.find_flat(sym).ok()?;
        let pos = match &mut self.slots {
            Slots::Inline { len, buf } => {
                let pos = buf[i].1;
                buf.copy_within(i + 1..*len as usize, i);
                *len -= 1;
                pos
            }
            Slots::Spilled(v) => v.remove(i).1,
            Slots::Tree(_) => unreachable!("handled above"),
        };
        self.xor = self.xor.xor(scheme.entry(name_hash, pos.hash));
        Some(pos)
    }

    /// `alterVM` specialised to the §4.8 merge: replaces (or inserts) the
    /// entry for `sym` with `new_pos`, fixing up the XOR hash. Spills from
    /// the inline representation into a pooled buffer when full, and
    /// promotes a spilled run past the pool's tree threshold into the
    /// persistent-tree tier.
    pub fn upsert_pooled(
        &mut self,
        scheme: &HashScheme<H>,
        sym: Symbol,
        name_hash: u64,
        new_pos: PosH<H>,
        pool: &mut MapPool<H>,
    ) -> Option<PosH<H>> {
        if let Slots::Tree(t) = &self.slots {
            let (next, old) = t.insert(sym, new_pos);
            self.slots = Slots::Tree(next);
            if let Some(old_pos) = old {
                self.xor = self.xor.xor(scheme.entry(name_hash, old_pos.hash));
            }
            self.xor = self.xor.xor(scheme.entry(name_hash, new_pos.hash));
            return old;
        }
        let old = match self.find_flat(sym) {
            Ok(i) => {
                let slot = match &mut self.slots {
                    Slots::Inline { buf, .. } => &mut buf[i],
                    Slots::Spilled(v) => &mut v[i],
                    Slots::Tree(_) => unreachable!("handled above"),
                };
                Some(std::mem::replace(&mut slot.1, new_pos))
            }
            Err(i) => {
                match &mut self.slots {
                    Slots::Inline { len, buf } if (*len as usize) < INLINE_CAP => {
                        buf.copy_within(i..*len as usize, i + 1);
                        buf[i] = (sym, new_pos);
                        *len += 1;
                    }
                    Slots::Inline { len, buf } => {
                        // Spill: move the inline run into a pooled buffer.
                        let mut v = pool.take_buffer(2 * INLINE_CAP);
                        v.extend_from_slice(&buf[..*len as usize]);
                        v.insert(i, (sym, new_pos));
                        self.slots = Slots::Spilled(v);
                    }
                    Slots::Spilled(v) => v.insert(i, (sym, new_pos)),
                    Slots::Tree(_) => unreachable!("handled above"),
                }
                self.maybe_promote(pool);
                None
            }
        };
        if let Some(old_pos) = old {
            self.xor = self.xor.xor(scheme.entry(name_hash, old_pos.hash));
        }
        self.xor = self.xor.xor(scheme.entry(name_hash, new_pos.hash));
        old
    }

    /// Promotes a spilled run that outgrew the pool's threshold into the
    /// tree tier, returning its buffer to the pool.
    fn maybe_promote(&mut self, pool: &mut MapPool<H>) {
        if let Slots::Spilled(v) = &mut self.slots {
            if v.len() > pool.tree_threshold {
                let tree: PMap<Symbol, PosH<H>> = v.iter().copied().collect();
                pool.give(std::mem::take(v));
                self.slots = Slots::Tree(tree);
            }
        }
    }

    /// [`FlatVarMap::upsert_pooled`] without buffer recycling — for call
    /// sites outside a batch loop.
    pub fn upsert(
        &mut self,
        scheme: &HashScheme<H>,
        sym: Symbol,
        name_hash: u64,
        new_pos: PosH<H>,
    ) -> Option<PosH<H>> {
        self.upsert_pooled(scheme, sym, name_hash, new_pos, &mut MapPool::default())
    }

    /// Builds a map from an already-sorted, duplicate-free entry run whose
    /// XOR hash the caller maintained. Small runs are copied inline and
    /// the buffer is returned to the pool; mid-size runs keep the buffer;
    /// runs past the pool's tree threshold build a tree and release it.
    pub(crate) fn from_sorted(entries: Vec<Entry<H>>, xor: H, pool: &mut MapPool<H>) -> Self {
        debug_assert!(entries.windows(2).all(|w| w[0].0 < w[1].0), "unsorted run");
        if entries.len() <= INLINE_CAP {
            let mut buf = [Self::DUMMY; INLINE_CAP];
            buf[..entries.len()].copy_from_slice(&entries);
            let len = entries.len() as u8;
            pool.give(entries);
            FlatVarMap {
                slots: Slots::Inline { len, buf },
                xor,
            }
        } else if entries.len() <= pool.tree_threshold {
            FlatVarMap {
                slots: Slots::Spilled(entries),
                xor,
            }
        } else {
            let tree: PMap<Symbol, PosH<H>> = entries.iter().copied().collect();
            pool.give(entries);
            FlatVarMap {
                slots: Slots::Tree(tree),
                xor,
            }
        }
    }

    /// §4.8 smaller-into-bigger merge across all tiers: folds `smaller`
    /// into `bigger`, calling `join(bigger's entry, smaller's entry)`
    /// **exactly once per smaller entry** to compute the merged position
    /// tree, and `name_hash` to resolve each joined symbol's name hash
    /// for the XOR fix-up. Callers keep the Lemma 6.1 `merge_ops`
    /// accounting (`+= smaller.len()`); this method only does the work.
    ///
    /// Representation-wise: both-flat merges are one linear merge-join
    /// (or in-place inserts when the result stays inline); a tree bigger
    /// absorbs a flat smaller with O(m log n) inserts; tree–tree merges
    /// use [`PMap::union_join`] for the O(m log(n/m + 1)) bound. `join`
    /// call order is unspecified (the XOR map hash is commutative).
    pub(crate) fn merge_from_smaller(
        bigger: Self,
        smaller: Self,
        scheme: &HashScheme<H>,
        pool: &mut MapPool<H>,
        name_hash: &mut impl FnMut(Symbol) -> u64,
        join: &mut impl FnMut(Option<PosH<H>>, PosH<H>) -> PosH<H>,
    ) -> Self {
        debug_assert!(bigger.len() >= smaller.len(), "merge direction flipped");
        if bigger.is_tree() || smaller.is_tree() {
            return Self::merge_tree(bigger, smaller, scheme, pool, name_hash, join);
        }
        if bigger.len() + smaller.len() <= INLINE_CAP {
            // Common case: everything stays inline; insert in place.
            let mut bigger = bigger;
            for &(sym, small_pos) in smaller.flat_slice() {
                let nh = name_hash(sym);
                let new_pos = join(bigger.get(sym), small_pos);
                bigger.upsert_pooled(scheme, sym, nh, new_pos, pool);
            }
            smaller.recycle(pool);
            return bigger;
        }
        // Wide flat case: one merge-join over the two sorted runs into a
        // pooled buffer — O(|bigger| + |smaller|), no per-entry shifting.
        let mut out = pool.take_buffer(bigger.len() + smaller.len());
        let mut xor = bigger.hash();
        let (big_run, small_run) = (bigger.flat_slice(), smaller.flat_slice());
        let (mut bi, mut si) = (0usize, 0usize);
        while si < small_run.len() {
            let (sym, small_pos) = small_run[si];
            // Copy bigger-only entries below the next smaller symbol.
            while bi < big_run.len() && big_run[bi].0 < sym {
                out.push(big_run[bi]);
                bi += 1;
            }
            let nh = name_hash(sym);
            let old = if bi < big_run.len() && big_run[bi].0 == sym {
                let old = big_run[bi].1;
                xor = xor.xor(scheme.entry(nh, old.hash));
                bi += 1;
                Some(old)
            } else {
                None
            };
            let new_pos = join(old, small_pos);
            xor = xor.xor(scheme.entry(nh, new_pos.hash));
            out.push((sym, new_pos));
            si += 1;
        }
        out.extend_from_slice(&big_run[bi..]);
        bigger.recycle(pool);
        smaller.recycle(pool);
        Self::from_sorted(out, xor, pool)
    }

    /// The tree-tier arm of [`FlatVarMap::merge_from_smaller`]: at least
    /// one side is a tree, so the merged map is a tree.
    fn merge_tree(
        bigger: Self,
        smaller: Self,
        scheme: &HashScheme<H>,
        pool: &mut MapPool<H>,
        name_hash: &mut impl FnMut(Symbol) -> u64,
        join: &mut impl FnMut(Option<PosH<H>>, PosH<H>) -> PosH<H>,
    ) -> Self {
        let mut xor = bigger.xor;
        // The bigger side is normally already a tree (flat maps never
        // outgrow the promotion threshold); promote it if maps built
        // under different thresholds meet.
        let big_tree = match bigger.slots {
            Slots::Tree(t) => t,
            Slots::Inline { len, buf } => buf[..len as usize].iter().copied().collect(),
            Slots::Spilled(v) => {
                let t = v.iter().copied().collect();
                pool.give(v);
                t
            }
        };
        match smaller.slots {
            Slots::Tree(small_tree) => {
                let merged = big_tree.union_join(&small_tree, |sym, old, small_pos| {
                    let nh = name_hash(*sym);
                    let new_pos = join(old.copied(), *small_pos);
                    if let Some(old_pos) = old {
                        xor = xor.xor(scheme.entry(nh, old_pos.hash));
                    }
                    xor = xor.xor(scheme.entry(nh, new_pos.hash));
                    new_pos
                });
                FlatVarMap {
                    slots: Slots::Tree(merged),
                    xor,
                }
            }
            flat_slots => {
                let flat = FlatVarMap {
                    slots: flat_slots,
                    xor: smaller.xor,
                };
                let mut tree = big_tree;
                for &(sym, small_pos) in flat.flat_slice() {
                    let nh = name_hash(sym);
                    let old = tree.get(&sym).copied();
                    let new_pos = join(old, small_pos);
                    if let Some(old_pos) = old {
                        xor = xor.xor(scheme.entry(nh, old_pos.hash));
                    }
                    xor = xor.xor(scheme.entry(nh, new_pos.hash));
                    tree = tree.insert(sym, new_pos).0;
                }
                flat.recycle(pool);
                FlatVarMap {
                    slots: Slots::Tree(tree),
                    xor,
                }
            }
        }
    }

    /// Consumes the map, returning any spilled buffer to the pool. Tree
    /// maps just drop (their nodes are `Arc`-shared).
    pub fn recycle(self, pool: &mut MapPool<H>) {
        if let Slots::Spilled(v) = self.slots {
            pool.give(v);
        }
    }
}

/// Iterator over a [`FlatVarMap`]'s entries in symbol order, across all
/// storage tiers.
pub struct VarMapIter<'a, H: HashWord> {
    inner: IterInner<'a, H>,
}

enum IterInner<'a, H: HashWord> {
    Slice(std::slice::Iter<'a, Entry<H>>),
    Tree(persistent_map::Iter<'a, Symbol, PosH<H>>),
}

impl<H: HashWord> Iterator for VarMapIter<'_, H> {
    type Item = (Symbol, PosH<H>);

    fn next(&mut self) -> Option<Self::Item> {
        match &mut self.inner {
            IterInner::Slice(it) => it.next().copied(),
            IterInner::Tree(it) => it.next().map(|(s, p)| (*s, *p)),
        }
    }
}

impl<H: HashWord> PartialEq for FlatVarMap<H> {
    fn eq(&self, other: &Self) -> bool {
        // Equal entry runs imply equal XOR hashes under one scheme, but the
        // hash is compared first as a cheap early-out. Comparison is by
        // contents, so maps in different tiers can still be equal.
        self.xor == other.xor && self.len() == other.len() && self.iter().eq(other.iter())
    }
}

impl<H: HashWord> Eq for FlatVarMap<H> {}

impl<H: HashWord> fmt::Debug for FlatVarMap<H> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_map().entries(self.iter()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scheme() -> HashScheme<u64> {
        HashScheme::new(0xF1A7)
    }

    fn pos(scheme: &HashScheme<u64>, size: u64) -> PosH<u64> {
        PosH {
            hash: scheme.pt_left(size, scheme.pt_here()),
            size,
        }
    }

    #[test]
    fn stays_inline_up_to_cap_then_spills() {
        let s = scheme();
        let mut vm = FlatVarMap::<u64>::new();
        let mut pool = MapPool::new();
        for i in 0..(INLINE_CAP + 4) as u32 {
            vm.upsert_pooled(
                &s,
                Symbol::from_index(i),
                u64::from(i),
                pos(&s, 1),
                &mut pool,
            );
            assert_eq!(vm.len(), i as usize + 1);
        }
        // Sorted iteration regardless of representation.
        let syms: Vec<u32> = vm.iter().map(|(sym, _)| sym.index()).collect();
        assert!(syms.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn insertion_order_does_not_matter() {
        let s = scheme();
        let order_a = [5u32, 1, 9, 3, 7, 0, 11, 2, 8, 4];
        let order_b = [4u32, 8, 2, 11, 0, 7, 3, 9, 1, 5];
        let build = |order: &[u32]| {
            let mut vm = FlatVarMap::<u64>::new();
            for &i in order {
                vm.upsert(
                    &s,
                    Symbol::from_index(i),
                    u64::from(i),
                    pos(&s, u64::from(i) + 1),
                );
            }
            vm
        };
        let a = build(&order_a);
        let b = build(&order_b);
        assert_eq!(a, b);
        assert_eq!(a.hash(), b.hash());
    }

    #[test]
    fn remove_shrinks_and_restores_hash() {
        let s = scheme();
        let mut vm = FlatVarMap::<u64>::new();
        for i in 0..12u32 {
            vm.upsert(&s, Symbol::from_index(i), u64::from(i), pos(&s, 1));
        }
        let full = vm.clone();
        let extra = Symbol::from_index(50);
        vm.upsert(&s, extra, 50, pos(&s, 2));
        assert_ne!(vm, full);
        vm.remove(&s, extra, 50);
        assert_eq!(vm, full);
        assert_eq!(vm.hash(), full.hash());
        assert!(vm.remove(&s, extra, 50).is_none());
    }

    #[test]
    fn from_sorted_round_trips_all_three_tiers() {
        let s = scheme();
        let mut pool = MapPool::new();
        for n in [3usize, 20, SPILL_TREE_THRESHOLD + 10] {
            let mut reference = FlatVarMap::<u64>::new();
            let mut run = Vec::new();
            let mut xor = 0u64;
            for i in 0..n as u32 {
                let p = pos(&s, u64::from(i) + 1);
                reference.upsert(&s, Symbol::from_index(i), u64::from(i), p);
                run.push((Symbol::from_index(i), p));
                xor ^= s.entry(u64::from(i), p.hash);
            }
            let built = FlatVarMap::from_sorted(run, xor, &mut pool);
            assert_eq!(built, reference);
            assert_eq!(built.is_tree(), n > SPILL_TREE_THRESHOLD);
        }
    }

    #[test]
    fn promotes_past_threshold_and_demotes_on_remove() {
        let s = scheme();
        let mut pool = MapPool::new();
        let mut vm = FlatVarMap::<u64>::new();
        let n = (SPILL_TREE_THRESHOLD + 8) as u32;
        for i in 0..n {
            vm.upsert_pooled(
                &s,
                Symbol::from_index(i),
                u64::from(i),
                pos(&s, 1),
                &mut pool,
            );
        }
        assert!(vm.is_tree(), "width {n} should be tree-tier");
        assert_eq!(vm.len(), n as usize);
        // Lookups and sorted iteration work in the tree tier.
        assert!(vm.get(Symbol::from_index(0)).is_some());
        assert!(vm.get(Symbol::from_index(n)).is_none());
        let syms: Vec<u32> = vm.iter().map(|(sym, _)| sym.index()).collect();
        assert!(syms.windows(2).all(|w| w[0] < w[1]));
        // Removing down to the inline cap demotes (hysteresis band).
        for i in (INLINE_CAP as u32..n).rev() {
            vm.remove(&s, Symbol::from_index(i), u64::from(i));
            assert_eq!(vm.is_tree(), vm.len() > INLINE_CAP);
        }
        assert_eq!(vm.len(), INLINE_CAP);
        assert!(!vm.is_tree());
        // The demoted map equals one built flat from scratch.
        let mut flat = FlatVarMap::<u64>::new();
        for i in 0..INLINE_CAP as u32 {
            flat.upsert(&s, Symbol::from_index(i), u64::from(i), pos(&s, 1));
        }
        assert_eq!(vm, flat);
    }

    #[test]
    fn max_threshold_disables_tree_tier() {
        let s = scheme();
        let mut pool = MapPool::with_tree_threshold(usize::MAX);
        let mut vm = FlatVarMap::<u64>::new();
        for i in 0..(3 * SPILL_TREE_THRESHOLD) as u32 {
            vm.upsert_pooled(
                &s,
                Symbol::from_index(i),
                u64::from(i),
                pos(&s, 1),
                &mut pool,
            );
        }
        assert!(!vm.is_tree());
        assert_eq!(vm.len(), 3 * SPILL_TREE_THRESHOLD);
    }

    #[test]
    fn equality_holds_across_tiers() {
        let s = scheme();
        let n = (SPILL_TREE_THRESHOLD + 5) as u32;
        let mut flat_pool = MapPool::with_tree_threshold(usize::MAX);
        let mut tree_pool = MapPool::new();
        let mut flat = FlatVarMap::<u64>::new();
        let mut tree = FlatVarMap::<u64>::new();
        for i in 0..n {
            let p = pos(&s, u64::from(i) + 1);
            flat.upsert_pooled(&s, Symbol::from_index(i), u64::from(i), p, &mut flat_pool);
            tree.upsert_pooled(&s, Symbol::from_index(i), u64::from(i), p, &mut tree_pool);
        }
        assert!(!flat.is_tree() && tree.is_tree());
        assert_eq!(flat, tree);
        assert_eq!(flat.hash(), tree.hash());
    }
}
