//! Hash-consing interner for the reference e-summary datatypes.
//!
//! The paper's Step 1 (§4) works with real `Structure`/`PosTree` trees and
//! compares them structurally. We intern every node, so structurally equal
//! trees get equal ids and e-summary comparison is O(map size) instead of
//! O(tree size) — the classic hash-consing idiom the paper's related-work
//! section discusses (Filliâtre & Conchon).

use std::collections::HashMap;
use std::hash::Hash;

/// An interner assigning dense `u32` ids to structurally distinct values.
#[derive(Clone, Debug)]
pub struct NodeInterner<T> {
    nodes: Vec<T>,
    ids: HashMap<T, u32>,
}

impl<T> Default for NodeInterner<T> {
    fn default() -> Self {
        NodeInterner {
            nodes: Vec::new(),
            ids: HashMap::new(),
        }
    }
}

impl<T: Eq + Hash + Clone> NodeInterner<T> {
    /// Creates an empty interner.
    pub fn new() -> Self {
        NodeInterner {
            nodes: Vec::new(),
            ids: HashMap::new(),
        }
    }

    /// Interns a value, returning a stable id; equal values get equal ids.
    pub fn intern(&mut self, value: T) -> u32 {
        if let Some(&id) = self.ids.get(&value) {
            return id;
        }
        let id = u32::try_from(self.nodes.len()).expect("interner overflow");
        self.nodes.push(value.clone());
        self.ids.insert(value, id);
        id
    }

    /// Looks up the value for an id.
    pub fn get(&self, id: u32) -> &T {
        &self.nodes[id as usize]
    }

    /// Number of distinct values interned.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_values_share_ids() {
        let mut i: NodeInterner<(u32, u32)> = NodeInterner::new();
        let a = i.intern((1, 2));
        let b = i.intern((1, 2));
        let c = i.intern((2, 1));
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(i.len(), 2);
    }

    #[test]
    fn get_round_trips() {
        let mut i: NodeInterner<String> = NodeInterner::new();
        let id = i.intern("hello".to_owned());
        assert_eq!(i.get(id), "hello");
    }

    #[test]
    fn empty() {
        let i: NodeInterner<u8> = NodeInterner::new();
        assert!(i.is_empty());
    }
}
