//! Property test: [`FlatVarMap`] against a `BTreeMap` oracle.
//!
//! The flat map replaced the tree map on the hashing hot path; this suite
//! replays random insert/remove/merge sequences against both and demands
//! bit-identical behaviour at every step — XOR hashes, entry sets (and
//! their symbol-sorted order), lookup results, and the §4.8
//! merge-direction decision — at all three benchmark-relevant hash widths
//! (the Appendix B u16, the default u64, the Theorem 6.8 u128).
//!
//! Every scenario runs at three tree thresholds — forced-low (4: the
//! persistent-tree tier engages almost immediately), the production
//! default, and disabled (`usize::MAX`: sorted-Vec spill only) — so one
//! generated op sequence exercises inline↔Vec↔tree promotions and
//! demotions, and all three configurations must agree with the oracle
//! *and therefore with each other*. The pool is shared across both maps,
//! the merge, and a post-recycle replay, so recycled buffers flow
//! between tiers the way the summariser's do.

use alpha_hash::combine::{HashScheme, HashWord};
use alpha_hash::flatmap::{FlatVarMap, MapPool};
use alpha_hash::hashed::PosH;
use lambda_lang::symbol::Symbol;
use proptest::collection::vec;
use proptest::prelude::*;
use std::collections::BTreeMap;

/// Universe of symbols the generated sequences draw from. Big enough to
/// push maps through the Vec spill *and* across the tree threshold (>32),
/// small enough that inserts and removes collide often.
const UNIVERSE: u32 = 96;

/// One scripted map operation. Symbols and position variety are encoded
/// as small integers so cases print readably on failure.
#[derive(Clone, Copy, Debug)]
enum Op {
    Insert(u32, u64),
    Remove(u32),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    // Insert-biased (3:1) so runs actually climb past the tree threshold
    // instead of hovering near empty.
    (0u32..4, 0u32..UNIVERSE, 1u64..64).prop_map(|(kind, s, v)| {
        if kind == 0 {
            Op::Remove(s)
        } else {
            Op::Insert(s, v)
        }
    })
}

/// The oracle: a plain `BTreeMap` plus the from-scratch XOR fold the flat
/// map must reproduce incrementally.
struct Oracle<H: HashWord> {
    map: BTreeMap<Symbol, PosH<H>>,
}

impl<H: HashWord> Oracle<H> {
    fn new() -> Self {
        Oracle {
            map: BTreeMap::new(),
        }
    }

    fn xor(&self, scheme: &HashScheme<H>, name_hashes: &[u64]) -> H {
        self.map.iter().fold(H::ZERO, |acc, (sym, pos)| {
            acc.xor(scheme.entry(name_hashes[sym.index() as usize], pos.hash))
        })
    }
}

/// Applies `ops` to a (flat, oracle) pair, checking equivalence after
/// every step. Returns the pair for further (merge) checking.
fn run_ops<H: HashWord>(
    scheme: &HashScheme<H>,
    name_hashes: &[u64],
    ops: &[Op],
    pool: &mut MapPool<H>,
) -> Result<(FlatVarMap<H>, Oracle<H>), TestCaseError> {
    let mut flat = FlatVarMap::<H>::new();
    let mut oracle = Oracle::<H>::new();
    for &op in ops {
        match op {
            Op::Insert(s, v) => {
                let sym = Symbol::from_index(s);
                let nh = name_hashes[s as usize];
                let pos = PosH {
                    hash: scheme.pt_left(v, scheme.pt_here()),
                    size: v,
                };
                let old_flat = flat.upsert_pooled(scheme, sym, nh, pos, pool);
                let old_oracle = oracle.map.insert(sym, pos);
                prop_assert_eq!(old_flat, old_oracle, "upsert old value");
            }
            Op::Remove(s) => {
                let sym = Symbol::from_index(s);
                let nh = name_hashes[s as usize];
                let removed_flat = flat.remove(scheme, sym, nh);
                let removed_oracle = oracle.map.remove(&sym);
                prop_assert_eq!(removed_flat, removed_oracle, "remove result");
            }
        }
        // Tier invariant: whatever representation the map is in, it must
        // only be the tree past the pool's threshold.
        if flat.is_tree() {
            prop_assert!(
                flat.len() > alpha_hash::flatmap::INLINE_CAP,
                "tree tier below inline capacity"
            );
        }
        check_equivalent(scheme, name_hashes, &flat, &oracle)?;
    }
    Ok((flat, oracle))
}

fn check_equivalent<H: HashWord>(
    scheme: &HashScheme<H>,
    name_hashes: &[u64],
    flat: &FlatVarMap<H>,
    oracle: &Oracle<H>,
) -> Result<(), TestCaseError> {
    prop_assert_eq!(flat.len(), oracle.map.len());
    prop_assert_eq!(flat.is_empty(), oracle.map.is_empty());
    // Identical XOR hashes, maintained vs recomputed from scratch.
    prop_assert_eq!(flat.hash(), oracle.xor(scheme, name_hashes));
    // Identical entry sets in identical (symbol-sorted) order.
    let flat_entries: Vec<(Symbol, PosH<H>)> = flat.iter().collect();
    let oracle_entries: Vec<(Symbol, PosH<H>)> = oracle.map.iter().map(|(&s, &p)| (s, p)).collect();
    prop_assert_eq!(flat_entries, oracle_entries);
    // Point lookups agree across the whole universe.
    for s in 0..UNIVERSE {
        let sym = Symbol::from_index(s);
        prop_assert_eq!(flat.get(sym), oracle.map.get(&sym).copied());
    }
    Ok(())
}

/// The §4.8 merge on both representations: smaller folded into bigger
/// with `pt_join`, tagging by `tag`. Checks the merge-direction decision
/// and the merged result agree. Returns the merged pair.
fn run_merge<H: HashWord>(
    scheme: &HashScheme<H>,
    name_hashes: &[u64],
    tag: u64,
    left: (FlatVarMap<H>, Oracle<H>),
    right: (FlatVarMap<H>, Oracle<H>),
    pool: &mut MapPool<H>,
) -> Result<(FlatVarMap<H>, Oracle<H>), TestCaseError> {
    // Merge-direction decision: both representations must report the same
    // sizes, hence pick the same side as "bigger" (ties choose left).
    let flat_left_bigger = left.0.len() >= right.0.len();
    let oracle_left_bigger = left.1.map.len() >= right.1.map.len();
    prop_assert_eq!(flat_left_bigger, oracle_left_bigger, "merge direction");

    let (mut big_flat, small_flat, mut big_oracle, small_oracle) = if flat_left_bigger {
        (left.0, right.0, left.1, right.1)
    } else {
        (right.0, left.0, right.1, left.1)
    };

    for (sym, small_pos) in small_flat.iter() {
        let nh = name_hashes[sym.index() as usize];

        let old_flat = big_flat.get(sym);
        let old_oracle = big_oracle.map.get(&sym).copied();
        prop_assert_eq!(old_flat, old_oracle, "pre-merge lookup");

        let size = 1 + old_flat.map_or(0, |p| p.size) + small_pos.size;
        let joined = PosH {
            hash: scheme.pt_join(size, tag, old_flat.map(|p| p.hash), small_pos.hash),
            size,
        };
        big_flat.upsert_pooled(scheme, sym, nh, joined, pool);
        big_oracle.map.insert(sym, joined);
    }
    drop(small_oracle);
    check_equivalent(scheme, name_hashes, &big_flat, &big_oracle)?;
    Ok((big_flat, big_oracle))
}

/// Drives the whole scenario at one width and one tree threshold: two op
/// runs sharing a pool, a merge, then a recycle and a replay of the first
/// run on the recycled buffers.
fn scenario_at<H: HashWord>(
    seed: u64,
    ops_a: &[Op],
    ops_b: &[Op],
    tag: u64,
    threshold: usize,
) -> Result<(), TestCaseError> {
    let scheme: HashScheme<H> = HashScheme::new(seed);
    let name_hashes: Vec<u64> = (0..UNIVERSE)
        .map(|i| scheme.var_name(&format!("v{i}")))
        .collect();
    let mut pool = MapPool::with_tree_threshold(threshold);
    let a = run_ops(&scheme, &name_hashes, ops_a, &mut pool)?;
    let b = run_ops(&scheme, &name_hashes, ops_b, &mut pool)?;
    let merged = run_merge(&scheme, &name_hashes, tag, a, b, &mut pool)?;
    // Pool recycling: give the merged map's buffers back, then replay the
    // first run — its spills must be bit-identical on recycled storage.
    merged.0.recycle(&mut pool);
    let _ = run_ops(&scheme, &name_hashes, ops_a, &mut pool)?;
    Ok(())
}

/// All three tiers' worth of thresholds for one generated case: the tree
/// tier forced low, the production default, and disabled entirely.
fn scenario<H: HashWord>(
    seed: u64,
    ops_a: &[Op],
    ops_b: &[Op],
    tag: u64,
) -> Result<(), TestCaseError> {
    for threshold in [
        4usize,
        alpha_hash::flatmap::SPILL_TREE_THRESHOLD,
        usize::MAX,
    ] {
        scenario_at::<H>(seed, ops_a, ops_b, tag, threshold)?;
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn flat_map_matches_btreemap_oracle_u16(
        seed in any::<u64>(),
        ops_a in vec(op_strategy(), 0..140),
        ops_b in vec(op_strategy(), 0..140),
        tag in 1u64..1000,
    ) {
        scenario::<u16>(seed, &ops_a, &ops_b, tag)?;
    }

    #[test]
    fn flat_map_matches_btreemap_oracle_u64(
        seed in any::<u64>(),
        ops_a in vec(op_strategy(), 0..140),
        ops_b in vec(op_strategy(), 0..140),
        tag in 1u64..1000,
    ) {
        scenario::<u64>(seed, &ops_a, &ops_b, tag)?;
    }

    #[test]
    fn flat_map_matches_btreemap_oracle_u128(
        seed in any::<u64>(),
        ops_a in vec(op_strategy(), 0..140),
        ops_b in vec(op_strategy(), 0..140),
        tag in 1u64..1000,
    ) {
        scenario::<u128>(seed, &ops_a, &ops_b, tag)?;
    }

    /// Directed promotion/demotion sweep: fill past the threshold (tree),
    /// drain back under the inline capacity (inline), refill — checking
    /// the oracle at every step. Catches hysteresis bugs the random walks
    /// may reach rarely.
    #[test]
    fn tier_promotion_demotion_round_trip(
        seed in any::<u64>(),
        high in 40u32..UNIVERSE,
        low in 0u32..6,
    ) {
        let mut ops: Vec<Op> = Vec::new();
        for s in 0..high {
            ops.push(Op::Insert(s, u64::from(s % 60) + 1));
        }
        for s in low..high {
            ops.push(Op::Remove(s));
        }
        for s in 0..high / 2 {
            ops.push(Op::Insert(s, u64::from(s % 50) + 2));
        }
        scenario::<u64>(seed, &ops, &[], 7)?;
    }
}
