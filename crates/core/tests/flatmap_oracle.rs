//! Property test: [`FlatVarMap`] against a `BTreeMap` oracle.
//!
//! The flat map replaced the tree map on the hashing hot path; this suite
//! replays random insert/remove/merge sequences against both and demands
//! bit-identical behaviour at every step — XOR hashes, entry sets (and
//! their symbol-sorted order), lookup results, and the §4.8
//! merge-direction decision — at all three benchmark-relevant hash widths
//! (the Appendix B u16, the default u64, the Theorem 6.8 u128).

use alpha_hash::combine::{HashScheme, HashWord};
use alpha_hash::flatmap::{FlatVarMap, MapPool};
use alpha_hash::hashed::PosH;
use lambda_lang::symbol::Symbol;
use proptest::collection::vec;
use proptest::prelude::*;
use std::collections::BTreeMap;

/// Universe of symbols the generated sequences draw from. Big enough to
/// exercise the spill path (> inline capacity), small enough that inserts
/// and removes collide often.
const UNIVERSE: u32 = 24;

/// One scripted map operation. Symbols and position variety are encoded
/// as small integers so cases print readably on failure.
#[derive(Clone, Copy, Debug)]
enum Op {
    Insert(u32, u64),
    Remove(u32),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u32..UNIVERSE, 1u64..64).prop_map(|(s, v)| Op::Insert(s, v)),
        (0u32..UNIVERSE).prop_map(Op::Remove),
    ]
}

/// The oracle: a plain `BTreeMap` plus the from-scratch XOR fold the flat
/// map must reproduce incrementally.
struct Oracle<H: HashWord> {
    map: BTreeMap<Symbol, PosH<H>>,
}

impl<H: HashWord> Oracle<H> {
    fn new() -> Self {
        Oracle {
            map: BTreeMap::new(),
        }
    }

    fn xor(&self, scheme: &HashScheme<H>, name_hashes: &[u64]) -> H {
        self.map.iter().fold(H::ZERO, |acc, (sym, pos)| {
            acc.xor(scheme.entry(name_hashes[sym.index() as usize], pos.hash))
        })
    }
}

/// Applies `ops` to a (flat, oracle) pair, checking equivalence after
/// every step. Returns the pair for further (merge) checking.
fn run_ops<H: HashWord>(
    scheme: &HashScheme<H>,
    name_hashes: &[u64],
    ops: &[Op],
) -> Result<(FlatVarMap<H>, Oracle<H>), TestCaseError> {
    let mut flat = FlatVarMap::<H>::new();
    let mut oracle = Oracle::<H>::new();
    let mut pool = MapPool::new();
    for &op in ops {
        match op {
            Op::Insert(s, v) => {
                let sym = Symbol::from_index(s);
                let nh = name_hashes[s as usize];
                let pos = PosH {
                    hash: scheme.pt_left(v, scheme.pt_here()),
                    size: v,
                };
                let old_flat = flat.upsert_pooled(scheme, sym, nh, pos, &mut pool);
                let old_oracle = oracle.map.insert(sym, pos);
                prop_assert_eq!(old_flat, old_oracle, "upsert old value");
            }
            Op::Remove(s) => {
                let sym = Symbol::from_index(s);
                let nh = name_hashes[s as usize];
                let removed_flat = flat.remove(scheme, sym, nh);
                let removed_oracle = oracle.map.remove(&sym);
                prop_assert_eq!(removed_flat, removed_oracle, "remove result");
            }
        }
        check_equivalent(scheme, name_hashes, &flat, &oracle)?;
    }
    Ok((flat, oracle))
}

fn check_equivalent<H: HashWord>(
    scheme: &HashScheme<H>,
    name_hashes: &[u64],
    flat: &FlatVarMap<H>,
    oracle: &Oracle<H>,
) -> Result<(), TestCaseError> {
    prop_assert_eq!(flat.len(), oracle.map.len());
    prop_assert_eq!(flat.is_empty(), oracle.map.is_empty());
    // Identical XOR hashes, maintained vs recomputed from scratch.
    prop_assert_eq!(flat.hash(), oracle.xor(scheme, name_hashes));
    // Identical entry sets in identical (symbol-sorted) order.
    let flat_entries: Vec<(Symbol, PosH<H>)> = flat.iter().collect();
    let oracle_entries: Vec<(Symbol, PosH<H>)> = oracle.map.iter().map(|(&s, &p)| (s, p)).collect();
    prop_assert_eq!(flat_entries, oracle_entries);
    // Point lookups agree across the whole universe.
    for s in 0..UNIVERSE {
        let sym = Symbol::from_index(s);
        prop_assert_eq!(flat.get(sym), oracle.map.get(&sym).copied());
    }
    Ok(())
}

/// The §4.8 merge on both representations: smaller folded into bigger
/// with `pt_join`, tagging by `tag`. Checks the merge-direction decision
/// and the merged result agree.
fn run_merge<H: HashWord>(
    scheme: &HashScheme<H>,
    name_hashes: &[u64],
    tag: u64,
    left: (FlatVarMap<H>, Oracle<H>),
    right: (FlatVarMap<H>, Oracle<H>),
) -> Result<(), TestCaseError> {
    // Merge-direction decision: both representations must report the same
    // sizes, hence pick the same side as "bigger" (ties choose left).
    let flat_left_bigger = left.0.len() >= right.0.len();
    let oracle_left_bigger = left.1.map.len() >= right.1.map.len();
    prop_assert_eq!(flat_left_bigger, oracle_left_bigger, "merge direction");

    let (mut big_flat, small_flat, mut big_oracle, small_oracle) = if flat_left_bigger {
        (left.0, right.0, left.1, right.1)
    } else {
        (right.0, left.0, right.1, left.1)
    };

    let mut pool = MapPool::new();
    for (sym, small_pos) in small_flat.iter() {
        let nh = name_hashes[sym.index() as usize];

        let old_flat = big_flat.get(sym);
        let old_oracle = big_oracle.map.get(&sym).copied();
        prop_assert_eq!(old_flat, old_oracle, "pre-merge lookup");

        let size = 1 + old_flat.map_or(0, |p| p.size) + small_pos.size;
        let joined = PosH {
            hash: scheme.pt_join(size, tag, old_flat.map(|p| p.hash), small_pos.hash),
            size,
        };
        big_flat.upsert_pooled(scheme, sym, nh, joined, &mut pool);
        big_oracle.map.insert(sym, joined);
    }
    drop(small_oracle);
    check_equivalent(scheme, name_hashes, &big_flat, &big_oracle)
}

/// Drives the whole scenario at one width.
fn scenario<H: HashWord>(
    seed: u64,
    ops_a: &[Op],
    ops_b: &[Op],
    tag: u64,
) -> Result<(), TestCaseError> {
    let scheme: HashScheme<H> = HashScheme::new(seed);
    let name_hashes: Vec<u64> = (0..UNIVERSE)
        .map(|i| scheme.var_name(&format!("v{i}")))
        .collect();
    let a = run_ops(&scheme, &name_hashes, ops_a)?;
    let b = run_ops(&scheme, &name_hashes, ops_b)?;
    run_merge(&scheme, &name_hashes, tag, a, b)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn flat_map_matches_btreemap_oracle_u16(
        seed in any::<u64>(),
        ops_a in vec(op_strategy(), 0..60),
        ops_b in vec(op_strategy(), 0..60),
        tag in 1u64..1000,
    ) {
        scenario::<u16>(seed, &ops_a, &ops_b, tag)?;
    }

    #[test]
    fn flat_map_matches_btreemap_oracle_u64(
        seed in any::<u64>(),
        ops_a in vec(op_strategy(), 0..60),
        ops_b in vec(op_strategy(), 0..60),
        tag in 1u64..1000,
    ) {
        scenario::<u64>(seed, &ops_a, &ops_b, tag)?;
    }

    #[test]
    fn flat_map_matches_btreemap_oracle_u128(
        seed in any::<u64>(),
        ops_a in vec(op_strategy(), 0..60),
        ops_b in vec(op_strategy(), 0..60),
        tag in 1u64..1000,
    ) {
        scenario::<u128>(seed, &ops_a, &ops_b, tag)?;
    }
}
