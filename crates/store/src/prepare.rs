//! Fused single-pass ingest preparation: the alpha-hash **and** the
//! canonical de Bruijn form of a term, from one traversal.
//!
//! The store used to prepare a term in two walks — `hash_expr` (post-order
//! summarisation) followed by `to_debruijn` (scoped conversion) — and each
//! walk rebuilt its scaffolding from scratch, including re-hashing every
//! variable name in the arena's interner. [`Preparer`] fuses the two: a
//! single [`walk_scoped`] traversal drives the streaming
//! [`HashedSummariser`] (post-order `Exit` events are exactly the
//! summariser's feed order) while the bracketed `Bind`/`Unbind` events
//! maintain the binder environment the de Bruijn conversion needs. One
//! `Preparer` serves a whole batch, so its environment table, node stacks,
//! summariser scratch buffers and name-hash cache are all reused from term
//! to term.
//!
//! What a batch *shares* across roots is all per-term scaffolding — above
//! all the name-hash cache, whose per-term recomputation (O(interner) per
//! insert) dominated the seed's ingest profile. Per-subexpression
//! *summaries* are deliberately not memoised across roots: the hashed
//! algorithm consumes (and mutates) each child's variable map at its
//! parent, so sharing summaries of common subtrees would need persistent
//! maps (the §6.3 incremental engine's trade) — that is the ROADMAP's
//! subexpression-granularity store mode, not this pass.

use alpha_hash::combine::{HashScheme, HashWord};
use alpha_hash::hashed::HashedSummariser;
use lambda_lang::arena::{ExprArena, ExprNode, NodeId};
use lambda_lang::debruijn::{DbArena, DbId, DbNode};
use lambda_lang::symbol::Symbol;
use lambda_lang::visit::{walk_scoped, ScopeEvent};
use std::collections::HashMap;

/// Reusable state for preparing many terms of one arena: the streaming
/// summariser plus the de Bruijn conversion's environment and stacks.
pub struct Preparer<'s, H: HashWord> {
    summariser: HashedSummariser<'s, H>,
    /// Binder symbol → binding level (distance from the root), for the
    /// innermost binding. Save/restore via `saved` handles shadowing.
    env: HashMap<Symbol, u32>,
    saved: Vec<Option<u32>>,
    db_stack: Vec<DbId>,
}

impl<'s, H: HashWord> Preparer<'s, H> {
    /// A preparer for terms of `arena`, hashing with `scheme`.
    pub fn new(arena: &ExprArena, scheme: &'s HashScheme<H>) -> Self {
        Preparer {
            summariser: HashedSummariser::new(arena, scheme),
            env: HashMap::new(),
            saved: Vec::new(),
            db_stack: Vec::new(),
        }
    }

    /// Computes the term's alpha-hash and its canonical de Bruijn form in
    /// one post-order pass.
    ///
    /// The de Bruijn output is structurally identical to
    /// [`lambda_lang::debruijn::to_debruijn`]'s (the property tests
    /// cross-check this), and the hash equals
    /// [`alpha_hash::hashed::hash_expr`]. Terms must satisfy the
    /// unique-binder precondition (§2.2), as for `hash_expr`.
    pub fn hash_and_canon(&mut self, arena: &ExprArena, root: NodeId) -> (H, DbArena, DbId) {
        debug_assert!(
            lambda_lang::uniquify::check_unique_binders(arena, root).is_ok(),
            "store ingest requires distinct binders (run uniquify first)"
        );
        let mut dst = DbArena::new();
        let mut depth: u32 = 0;
        let mut root_hash = None;
        self.summariser.begin();
        self.db_stack.clear();

        // Split-borrow the fields once so the closure can use them all.
        let summariser = &mut self.summariser;
        let env = &mut self.env;
        let saved = &mut self.saved;
        let db_stack = &mut self.db_stack;

        walk_scoped(arena, root, |ev| match ev {
            ScopeEvent::Enter(_) => {}
            ScopeEvent::Bind { sym, .. } => {
                saved.push(env.insert(sym, depth));
                depth += 1;
            }
            ScopeEvent::Unbind { sym, .. } => {
                depth -= 1;
                match saved.pop().expect("balanced bind/unbind") {
                    Some(level) => {
                        env.insert(sym, level);
                    }
                    None => {
                        env.remove(&sym);
                    }
                }
            }
            ScopeEvent::Exit(n) => {
                root_hash = Some(summariser.push_node(arena, n));
                let id = match arena.node(n) {
                    ExprNode::Var(s) => match env.get(&s) {
                        // `level` counts binders from the root; the index
                        // counts from the occurrence inward.
                        Some(&level) => dst.push(DbNode::BVar(depth - level - 1)),
                        None => {
                            let name = dst.intern(arena.name(s));
                            dst.push(DbNode::FVar(name))
                        }
                    },
                    ExprNode::Lit(l) => dst.push(DbNode::Lit(l)),
                    ExprNode::Lam(_, _) => {
                        let body = db_stack.pop().expect("lam body");
                        dst.push(DbNode::Lam(body))
                    }
                    ExprNode::App(_, _) => {
                        let arg = db_stack.pop().expect("app arg");
                        let fun = db_stack.pop().expect("app fun");
                        dst.push(DbNode::App(fun, arg))
                    }
                    ExprNode::Let(_, _, _) => {
                        let body = db_stack.pop().expect("let body");
                        let rhs = db_stack.pop().expect("let rhs");
                        dst.push(DbNode::Let(rhs, body))
                    }
                };
                db_stack.push(id);
            }
        });

        self.summariser.finish_discard();
        let db_root = self.db_stack.pop().expect("prepare produced a root");
        debug_assert!(self.db_stack.is_empty());
        debug_assert!(self.saved.is_empty());
        debug_assert!(self.env.is_empty());
        debug_assert_eq!(depth, 0);
        (root_hash.expect("non-empty term"), dst, db_root)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lambda_lang::debruijn::{db_eq, db_print, to_debruijn};
    use lambda_lang::parse::parse;

    #[test]
    fn fused_pass_matches_the_two_walk_version() {
        let scheme: HashScheme<u64> = HashScheme::new(0xFEED);
        let mut arena = ExprArena::new();
        let sources = [
            r"\x. x + 7",
            r"\x. \y. x + y*7",
            r"foo (\x. x+7) (\y. y+7)",
            "let bar = x+1 in bar*y",
            r"\t. foo (\q. q + t) (\y. \w. w + t)",
            "(a + (v+7)) * (v+7)",
            "42",
            "free",
        ];
        let mut preparer = Preparer::new(&arena, &scheme);
        for src in sources {
            let parsed = parse(&mut arena, src).unwrap();
            let (hash, canon, canon_root) = preparer.hash_and_canon(&arena, parsed);
            assert_eq!(
                hash,
                alpha_hash::hashed::hash_expr(&arena, parsed, &scheme),
                "hash mismatch for {src}"
            );
            let (expected, expected_root) = to_debruijn(&arena, parsed);
            assert!(
                db_eq(&canon, canon_root, &expected, expected_root),
                "canon mismatch for {src}: {} vs {}",
                db_print(&canon, canon_root),
                db_print(&expected, expected_root)
            );
        }
    }

    #[test]
    fn preparer_state_is_clean_between_terms() {
        // A term with deep binders followed by a term with free variables
        // of the same names: stale environment state would misclassify
        // them as bound.
        let scheme: HashScheme<u64> = HashScheme::new(7);
        let mut arena = ExprArena::new();
        let bound = parse(&mut arena, r"\x. \y. x y").unwrap();
        let free = parse(&mut arena, "x y").unwrap();
        let mut preparer = Preparer::new(&arena, &scheme);
        let _ = preparer.hash_and_canon(&arena, bound);
        let (_, canon, canon_root) = preparer.hash_and_canon(&arena, free);
        assert_eq!(db_print(&canon, canon_root), "x y");
    }

    #[test]
    fn deep_terms_are_stack_safe() {
        let scheme: HashScheme<u64> = HashScheme::new(9);
        let mut arena = ExprArena::new();
        let mut e = arena.var_named("z");
        for i in 0..120_000 {
            let x = arena.intern(&format!("x{i}"));
            e = arena.lam(x, e);
        }
        let mut preparer = Preparer::new(&arena, &scheme);
        let (_, canon, canon_root) = preparer.hash_and_canon(&arena, e);
        assert_eq!(canon.len(), 120_001);
        assert!(matches!(canon.node(canon_root), DbNode::Lam(_)));
    }
}
