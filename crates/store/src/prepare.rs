//! Fused single-pass ingest preparation: the alpha-hash **and** the
//! canonical form of a term, from one traversal — with canonical storage
//! interned straight into the shared canon DAG (`crate::dag`).
//!
//! The store used to prepare a term in two walks — `hash_expr` (post-order
//! summarisation) followed by `to_debruijn` (scoped conversion) — and each
//! walk rebuilt its scaffolding from scratch. [`Preparer`] fuses the two,
//! and one `Preparer` serves a whole batch, so its environment table, node
//! stacks, summariser scratch buffers and caches are all reused from term
//! to term.
//!
//! Two preparation shapes:
//!
//! * [`Preparer::hash_and_canon`] — root granularity and read-only probes:
//!   one fused scoped walk yields the term's hash and a standalone
//!   **frontier** [`DbArena`] canonical form. Frontier forms are cheap
//!   (no table traffic on the hot path) and are only interned into the
//!   DAG if the insert actually creates a class.
//! * `Preparer::prepare_term` (crate-internal) — subexpression granularity: one
//!   O(n (log n)²) post-order pass hashes **every** node (the paper's
//!   headline result), then each subexpression clearing the `min_nodes`
//!   floor is canonicalized by an O(size) scoped sub-walk that interns its
//!   nodes **directly into the canon DAG** — no per-subterm arena is ever
//!   allocated. Because interning is exact hash-consing, identical
//!   subterms *within* a term come back as the same [`CanonRef`], and the
//!   preparer collapses them into one `SubEntry` with an occurrence
//!   `multiplicity` instead of k copies. Downstream, the shard sweep
//!   confirms interned entries against candidate classes with an O(1) ref
//!   compare.
//!
//! A subterm's canonical form cannot be sliced out of the root's — a
//! variable bound *outside* a subterm is free *by name* inside it — which
//! is why each indexed subterm gets its own scoped sub-walk from an empty
//! environment. What interning adds is that those walks now share every
//! node they produce, within a term, across terms, and across classes.

use crate::dag::CanonTable;
use alpha_hash::combine::{HashScheme, HashWord};
use alpha_hash::hashed::HashedSummariser;
use lambda_lang::arena::{ExprArena, ExprNode, NodeId};
use lambda_lang::canon::{CanonNode, CanonRef, NameId};
use lambda_lang::debruijn::{DbArena, DbId, DbNode};
use lambda_lang::symbol::Symbol;
use lambda_lang::visit::{postorder_with, walk_scoped_with, ScopeEvent, ScopeStack};
use std::collections::HashMap;

/// How a prepared entry carries its canonical form to the shard sweep.
#[derive(Debug)]
pub(crate) enum PreparedCanon {
    /// Already interned into the canon DAG (subexpression-granularity
    /// entries, replayed records): merge confirmation is one ref compare.
    Interned(CanonRef),
    /// A standalone arena not yet in the DAG (root-granularity inserts and
    /// read-only probes): confirmation walks the DAG structurally, and the
    /// form is interned only if a class is created.
    Frontier {
        /// The canonical de Bruijn form.
        canon: DbArena,
        /// Root of `canon`.
        canon_root: DbId,
    },
}

/// One prepared (sub)expression: everything the store needs to index it —
/// content address, size, occurrence multiplicity within its term, and the
/// canonical form that confirms merges exactly.
#[derive(Debug)]
pub(crate) struct SubEntry<H> {
    /// The alpha-invariant hash (content address).
    pub hash: H,
    /// Node count of the subexpression **as a tree** (what
    /// [`AlphaStore::node_count`](crate::AlphaStore::node_count) reports).
    pub node_count: u64,
    /// How many times this exact canonical form occurs in the prepared
    /// term (always 1 for roots). Duplicate occurrences are collapsed at
    /// prepare time by [`CanonRef`] equality — an exact dedup, since refs
    /// are hash-consed.
    pub multiplicity: u32,
    /// The canonical form.
    pub canon: PreparedCanon,
}

/// A term prepared at subexpression granularity by
/// [`Preparer::prepare_term`]: the root entry plus one entry per
/// **distinct** indexed proper subexpression.
#[derive(Debug)]
pub(crate) struct PreparedTerm<H> {
    /// The whole term (always indexed, whatever its size).
    pub root: SubEntry<H>,
    /// Distinct indexed proper subexpressions, in first-occurrence
    /// post-order, each carrying its occurrence multiplicity.
    pub subs: Vec<SubEntry<H>>,
    /// Proper subexpression **occurrences** skipped by the `min_nodes`
    /// floor.
    pub skipped: u64,
}

/// Brings `sym` into scope at the current depth, remembering any shadowed
/// outer binding on the `saved` stack. Shared by the fused root walk and
/// the per-subexpression interning sub-walks, so the two can never drift
/// apart.
fn bind(
    env: &mut HashMap<Symbol, u32>,
    saved: &mut Vec<Option<u32>>,
    depth: &mut u32,
    sym: Symbol,
) {
    saved.push(env.insert(sym, *depth));
    *depth += 1;
}

/// Takes `sym` out of scope, restoring whatever binding [`bind`] shadowed.
fn unbind(
    env: &mut HashMap<Symbol, u32>,
    saved: &mut Vec<Option<u32>>,
    depth: &mut u32,
    sym: Symbol,
) {
    *depth -= 1;
    match saved.pop().expect("balanced bind/unbind") {
        Some(level) => {
            env.insert(sym, level);
        }
        None => {
            env.remove(&sym);
        }
    }
}

/// Converts one post-order node to de Bruijn form against the current
/// binder environment. `env` maps binder symbols to binding levels
/// (distance from the walk root); occurrences of symbols not in `env` are
/// free and keep their names.
fn emit_db(
    arena: &ExprArena,
    n: NodeId,
    env: &HashMap<Symbol, u32>,
    depth: u32,
    dst: &mut DbArena,
    db_stack: &mut Vec<DbId>,
) {
    let id = match arena.node(n) {
        ExprNode::Var(s) => match env.get(&s) {
            // `level` counts binders from the root; the index counts from
            // the occurrence inward.
            Some(&level) => dst.push(DbNode::BVar(depth - level - 1)),
            None => {
                let name = dst.intern(arena.name(s));
                dst.push(DbNode::FVar(name))
            }
        },
        ExprNode::Lit(l) => dst.push(DbNode::Lit(l)),
        ExprNode::Lam(_, _) => {
            let body = db_stack.pop().expect("lam body");
            dst.push(DbNode::Lam(body))
        }
        ExprNode::App(_, _) => {
            let arg = db_stack.pop().expect("app arg");
            let fun = db_stack.pop().expect("app fun");
            dst.push(DbNode::App(fun, arg))
        }
        ExprNode::Let(_, _, _) => {
            let body = db_stack.pop().expect("let body");
            let rhs = db_stack.pop().expect("let rhs");
            dst.push(DbNode::Let(rhs, body))
        }
    };
    db_stack.push(id);
}

/// Reusable state for preparing many terms of one arena: the streaming
/// summariser plus the conversion environments, stacks and caches. A
/// `Preparer` is arena-affine — like the summariser's name-hash cache, the
/// symbol→[`NameId`] cache assumes every call passes the arena the
/// preparer was built for.
pub struct Preparer<'s, H: HashWord> {
    summariser: HashedSummariser<'s, H>,
    /// Binder symbol → binding level (distance from the root), for the
    /// innermost binding. Save/restore via `saved` handles shadowing.
    env: HashMap<Symbol, u32>,
    saved: Vec<Option<u32>>,
    db_stack: Vec<DbId>,
    /// Value stack of the interning sub-walks.
    ref_stack: Vec<CanonRef>,
    /// Traversal scratch shared by every scoped walk this preparer runs.
    scope: ScopeStack,
    /// Scratch for the pure post-order hashing pass.
    post_stack: Vec<(NodeId, bool)>,
    /// Per-node `(node, hash, size)` records of the latest hashing pass,
    /// in post-order (so the root is last). Only filled by `prepare_term`.
    sub_infos: Vec<(NodeId, H, u64)>,
    /// Arena symbol → global canon-DAG name, cached per preparer.
    name_ids: HashMap<Symbol, NameId>,
    /// Intra-term dedup: interned ref bits → index into the subs vec.
    dedup: HashMap<u32, usize>,
}

impl<'s, H: HashWord> Preparer<'s, H> {
    /// A preparer for terms of `arena`, hashing with `scheme`.
    pub fn new(arena: &ExprArena, scheme: &'s HashScheme<H>) -> Self {
        Preparer {
            summariser: HashedSummariser::new(arena, scheme),
            env: HashMap::new(),
            saved: Vec::new(),
            db_stack: Vec::new(),
            ref_stack: Vec::new(),
            scope: ScopeStack::new(),
            post_stack: Vec::new(),
            sub_infos: Vec::new(),
            name_ids: HashMap::new(),
            dedup: HashMap::new(),
        }
    }

    /// Drains the summariser's cumulative work counters — `(nodes pushed,
    /// name-hash cache misses)` since the last drain — for the store's
    /// instrumentation seam. Resets both to zero.
    pub(crate) fn take_hash_counters(&mut self) -> (u64, u64) {
        let nodes = self.summariser.nodes_pushed;
        let misses = self.summariser.name_cache_misses;
        self.summariser.nodes_pushed = 0;
        self.summariser.name_cache_misses = 0;
        (nodes, misses)
    }

    /// Computes the term's alpha-hash and its canonical de Bruijn form in
    /// one fused post-order pass — the frontier shape used by
    /// root-granularity ingest and by read-only probes.
    ///
    /// The de Bruijn output is structurally identical to
    /// [`lambda_lang::debruijn::to_debruijn`]'s (the property tests
    /// cross-check this), and the hash equals
    /// [`alpha_hash::hashed::hash_expr`]. Terms must satisfy the
    /// unique-binder precondition (§2.2), as for `hash_expr`.
    pub fn hash_and_canon(&mut self, arena: &ExprArena, root: NodeId) -> (H, DbArena, DbId) {
        debug_assert!(
            lambda_lang::uniquify::check_unique_binders(arena, root).is_ok(),
            "store ingest requires distinct binders (run uniquify first)"
        );
        let mut dst = DbArena::new();
        let mut depth: u32 = 0;
        let mut root_hash = None;
        self.summariser.begin();
        self.db_stack.clear();

        // Split-borrow the fields once so the closure can use them all.
        let summariser = &mut self.summariser;
        let env = &mut self.env;
        let saved = &mut self.saved;
        let db_stack = &mut self.db_stack;

        walk_scoped_with(arena, root, &mut self.scope, |ev| match ev {
            ScopeEvent::Enter(_) => {}
            ScopeEvent::Bind { sym, .. } => bind(env, saved, &mut depth, sym),
            ScopeEvent::Unbind { sym, .. } => unbind(env, saved, &mut depth, sym),
            ScopeEvent::Exit(n) => {
                let (hash, _) = summariser.push_node_sized(arena, n);
                root_hash = Some(hash);
                emit_db(arena, n, env, depth, &mut dst, db_stack);
            }
        });

        self.summariser.finish_discard();
        let db_root = self.db_stack.pop().expect("prepare produced a root");
        debug_assert!(self.db_stack.is_empty());
        debug_assert!(self.saved.is_empty());
        debug_assert!(self.env.is_empty());
        debug_assert_eq!(depth, 0);
        (root_hash.expect("non-empty term"), dst, db_root)
    }

    /// The pure hashing pass of [`Preparer::prepare_term`]: one post-order
    /// walk records `(node, hash, size)` for every node into `sub_infos`.
    fn hash_all(&mut self, arena: &ExprArena, root: NodeId) -> H {
        debug_assert!(
            lambda_lang::uniquify::check_unique_binders(arena, root).is_ok(),
            "store ingest requires distinct binders (run uniquify first)"
        );
        self.summariser.begin();
        self.sub_infos.clear();
        let mut root_hash = None;
        let summariser = &mut self.summariser;
        let sub_infos = &mut self.sub_infos;
        postorder_with(arena, root, &mut self.post_stack, |n| {
            let (hash, size) = summariser.push_node_sized(arena, n);
            root_hash = Some(hash);
            sub_infos.push((n, hash, size));
        });
        self.summariser.finish_discard();
        root_hash.expect("non-empty term")
    }

    /// Prepares a term at subexpression granularity: **one** fused
    /// O(n (log n)²) walk hashes every node (no per-subterm `hash_expr`),
    /// then each proper subexpression with at least `min_nodes` nodes is
    /// canonicalized by an O(size) interning sub-walk straight into
    /// `table`, and duplicate occurrences collapse into one entry with a
    /// multiplicity (exact, by hash-consed ref equality). The root is
    /// always included, whatever its size.
    pub(crate) fn prepare_term(
        &mut self,
        arena: &ExprArena,
        root: NodeId,
        min_nodes: usize,
        table: &CanonTable,
    ) -> PreparedTerm<H> {
        let min_nodes = min_nodes.max(1) as u64;
        let root_hash = self.hash_all(arena, root);
        let infos = std::mem::take(&mut self.sub_infos);
        debug_assert_eq!(infos.last().map(|&(n, _, _)| n), Some(root));

        let mut subs: Vec<SubEntry<H>> = Vec::new();
        let mut skipped = 0u64;
        let mut root_size = 0u64;
        self.dedup.clear();
        for &(node, hash, size) in &infos {
            if node == root {
                root_size = size;
                continue;
            }
            if size < min_nodes {
                skipped += 1;
                continue;
            }
            let cref = self.intern_subterm(arena, node, table);
            match self.dedup.get(&cref.to_bits()) {
                Some(&at) => {
                    debug_assert_eq!(subs[at].hash, hash, "equal canon implies equal hash");
                    subs[at].multiplicity += 1;
                }
                None => {
                    self.dedup.insert(cref.to_bits(), subs.len());
                    subs.push(SubEntry {
                        hash,
                        node_count: size,
                        multiplicity: 1,
                        canon: PreparedCanon::Interned(cref),
                    });
                }
            }
        }
        self.sub_infos = infos; // give the buffer back for reuse
        let root_ref = self.intern_subterm(arena, root, table);
        PreparedTerm {
            root: SubEntry {
                hash: root_hash,
                node_count: root_size,
                multiplicity: 1,
                canon: PreparedCanon::Interned(root_ref),
            },
            subs,
            skipped,
        }
    }

    /// Canonicalizes the subexpression at `node` by interning it into the
    /// canon DAG, bottom-up: a scoped walk that starts from an **empty**
    /// environment, so binders outside the subexpression are simply
    /// unknown and their occurrences come out free, by name — exactly the
    /// semantics the subexpression has as a term of its own. Allocates no
    /// arena; every produced node lands (deduplicated) in `table`.
    fn intern_subterm(&mut self, arena: &ExprArena, node: NodeId, table: &CanonTable) -> CanonRef {
        let mut depth: u32 = 0;
        self.ref_stack.clear();

        let env = &mut self.env;
        let saved = &mut self.saved;
        let refs = &mut self.ref_stack;
        let name_ids = &mut self.name_ids;

        walk_scoped_with(arena, node, &mut self.scope, |ev| match ev {
            ScopeEvent::Enter(_) => {}
            ScopeEvent::Bind { sym, .. } => bind(env, saved, &mut depth, sym),
            ScopeEvent::Unbind { sym, .. } => unbind(env, saved, &mut depth, sym),
            ScopeEvent::Exit(n) => {
                let canon = match arena.node(n) {
                    ExprNode::Var(s) => match env.get(&s) {
                        Some(&level) => CanonNode::BVar(depth - level - 1),
                        None => CanonNode::FVar(
                            *name_ids
                                .entry(s)
                                .or_insert_with(|| table.intern_name(arena.name(s))),
                        ),
                    },
                    ExprNode::Lit(l) => CanonNode::Lit(l),
                    ExprNode::Lam(_, _) => {
                        let body = refs.pop().expect("lam body");
                        CanonNode::Lam(body)
                    }
                    ExprNode::App(_, _) => {
                        let arg = refs.pop().expect("app arg");
                        let fun = refs.pop().expect("app fun");
                        CanonNode::App(fun, arg)
                    }
                    ExprNode::Let(_, _, _) => {
                        let body = refs.pop().expect("let body");
                        let rhs = refs.pop().expect("let rhs");
                        CanonNode::Let(rhs, body)
                    }
                };
                refs.push(table.intern_node(canon));
            }
        });

        let out = self
            .ref_stack
            .pop()
            .expect("intern_subterm produced a root");
        debug_assert!(self.ref_stack.is_empty());
        debug_assert!(self.env.is_empty());
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dag::{extract_one, TableView};
    use lambda_lang::debruijn::{db_eq, db_print, to_debruijn};
    use lambda_lang::parse::parse;
    use lambda_lang::visit::postorder;

    fn print_entry<H: HashWord>(table: &CanonTable, entry: &SubEntry<H>) -> String {
        let PreparedCanon::Interned(cref) = entry.canon else {
            panic!("prepare_term entries are interned");
        };
        let mut view = TableView::new(table);
        let (arena, root) = extract_one(&mut view, cref);
        db_print(&arena, root)
    }

    #[test]
    fn fused_pass_matches_the_two_walk_version() {
        let scheme: HashScheme<u64> = HashScheme::new(0xFEED);
        let mut arena = ExprArena::new();
        let sources = [
            r"\x. x + 7",
            r"\x. \y. x + y*7",
            r"foo (\x. x+7) (\y. y+7)",
            "let bar = x+1 in bar*y",
            r"\t. foo (\q. q + t) (\y. \w. w + t)",
            "(a + (v+7)) * (v+7)",
            "42",
            "free",
        ];
        let mut preparer = Preparer::new(&arena, &scheme);
        for src in sources {
            let parsed = parse(&mut arena, src).unwrap();
            let (hash, canon, canon_root) = preparer.hash_and_canon(&arena, parsed);
            assert_eq!(
                hash,
                alpha_hash::hashed::hash_expr(&arena, parsed, &scheme),
                "hash mismatch for {src}"
            );
            let (expected, expected_root) = to_debruijn(&arena, parsed);
            assert!(
                db_eq(&canon, canon_root, &expected, expected_root),
                "canon mismatch for {src}: {} vs {}",
                db_print(&canon, canon_root),
                db_print(&expected, expected_root)
            );
        }
    }

    #[test]
    fn preparer_state_is_clean_between_terms() {
        // A term with deep binders followed by a term with free variables
        // of the same names: stale environment state would misclassify
        // them as bound.
        let scheme: HashScheme<u64> = HashScheme::new(7);
        let mut arena = ExprArena::new();
        let bound = parse(&mut arena, r"\x. \y. x y").unwrap();
        let free = parse(&mut arena, "x y").unwrap();
        let mut preparer = Preparer::new(&arena, &scheme);
        let _ = preparer.hash_and_canon(&arena, bound);
        let (_, canon, canon_root) = preparer.hash_and_canon(&arena, free);
        assert_eq!(db_print(&canon, canon_root), "x y");
    }

    #[test]
    fn deep_terms_are_stack_safe() {
        let scheme: HashScheme<u64> = HashScheme::new(9);
        let mut arena = ExprArena::new();
        let mut e = arena.var_named("z");
        for i in 0..120_000 {
            let x = arena.intern(&format!("x{i}"));
            e = arena.lam(x, e);
        }
        let mut preparer = Preparer::new(&arena, &scheme);
        let (_, canon, canon_root) = preparer.hash_and_canon(&arena, e);
        assert_eq!(canon.len(), 120_001);
        assert!(matches!(canon.node(canon_root), DbNode::Lam(_)));
    }

    #[test]
    fn prepare_term_hashes_match_the_batch_hasher_per_node() {
        // The per-subexpression hashes must equal what hash_expr computes
        // on each subtree standalone — i.e. the fused pass really is the
        // paper's all-subexpressions result, not a root-only shortcut.
        let scheme: HashScheme<u64> = HashScheme::new(0xBEEF);
        let table = CanonTable::new();
        let mut arena = ExprArena::new();
        let sources = [
            r"\x. \y. x + y*7",
            r"foo (\x. x+7) (\y. y+7)",
            "let bar = x+1 in bar*(bar+y)",
        ];
        let mut preparer = Preparer::new(&arena, &scheme);
        for src in sources {
            let parsed = parse(&mut arena, src).unwrap();
            let pt = preparer.prepare_term(&arena, parsed, 1, &table);
            assert_eq!(pt.skipped, 0);
            let nodes = postorder(&arena, parsed);
            // Every proper subexpression occurrence is accounted for
            // (multiplicities sum to the occurrence count)…
            let occurrences: u64 = pt.subs.iter().map(|s| s.multiplicity as u64).sum();
            assert_eq!(occurrences as usize, nodes.len() - 1);
            // …and every entry's hash and canon match the standalone
            // reference computation on one of its occurrences.
            for entry in &pt.subs {
                let node = nodes
                    .iter()
                    .copied()
                    .find(|&n| alpha_hash::hashed::hash_expr(&arena, n, &scheme) == entry.hash)
                    .expect("entry corresponds to a subterm");
                assert_eq!(entry.node_count as usize, arena.subtree_size(node));
                let (expected, expected_root) = to_debruijn(&arena, node);
                assert_eq!(
                    print_entry(&table, entry),
                    db_print(&expected, expected_root),
                    "canon mismatch for a subexpression of {src}"
                );
            }
        }
    }

    #[test]
    fn duplicate_subterms_collapse_into_one_entry_with_multiplicity() {
        let scheme: HashScheme<u64> = HashScheme::new(0xD0D0);
        let table = CanonTable::new();
        let mut arena = ExprArena::new();
        // (v+7) appears twice; so do its sub-pieces.
        let parsed = parse(&mut arena, "(v + 7) * (v + 7)").unwrap();
        let mut preparer = Preparer::new(&arena, &scheme);
        let pt = preparer.prepare_term(&arena, parsed, 1, &table);
        // 13 nodes; 12 proper-subterm occurrences; distinct proper
        // subterms: mul, v, 7, add, `add v`, `add v 7`, `mul (add v 7)`.
        let occurrences: u64 = pt.subs.iter().map(|s| s.multiplicity as u64).sum();
        assert_eq!(occurrences, 12);
        assert_eq!(pt.subs.len(), 7, "duplicates deduplicated at prepare time");
        let dup = pt
            .subs
            .iter()
            .find(|s| print_entry(&table, s) == "add v 7")
            .expect("v+7 entry");
        assert_eq!(dup.multiplicity, 2);
        assert_eq!(pt.root.node_count, 13);
        assert_eq!(print_entry(&table, &pt.root), "mul (add v 7) (add v 7)");
    }

    #[test]
    fn subterm_canonical_forms_free_outer_binders_by_name() {
        // In \x. x + 1, the body subterm x + 1 standalone has x *free*:
        // its canonical form must name it, not index it. (`x + 1` is the
        // curried App(App(add, x), 1), so the term has 6 nodes.)
        let scheme: HashScheme<u64> = HashScheme::new(1);
        let table = CanonTable::new();
        let mut arena = ExprArena::new();
        let parsed = parse(&mut arena, r"\x. x + 1").unwrap();
        let mut preparer = Preparer::new(&arena, &scheme);
        let pt = preparer.prepare_term(&arena, parsed, 3, &table);
        // Two subterms clear the 3-node floor: `add x` and `add x 1`; the
        // leaves add, x and 1 are skipped.
        assert_eq!(pt.subs.len(), 2);
        assert_eq!(pt.skipped, 3);
        assert_eq!(print_entry(&table, &pt.subs[0]), "add x");
        assert_eq!(print_entry(&table, &pt.subs[1]), "add x 1");
        assert_eq!(print_entry(&table, &pt.root), r"\. add %0 1");
        assert_eq!(pt.root.node_count, 6);
    }

    #[test]
    fn min_nodes_floor_skips_small_subterms_but_never_the_root() {
        let scheme: HashScheme<u64> = HashScheme::new(2);
        let table = CanonTable::new();
        let mut arena = ExprArena::new();
        let parsed = parse(&mut arena, "v").unwrap();
        let mut preparer = Preparer::new(&arena, &scheme);
        let pt = preparer.prepare_term(&arena, parsed, 50, &table);
        assert!(pt.subs.is_empty());
        assert_eq!(pt.skipped, 0);
        assert_eq!(pt.root.node_count, 1);
    }
}
