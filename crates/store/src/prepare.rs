//! Fused single-pass ingest preparation: the alpha-hash **and** the
//! canonical de Bruijn form of a term, from one traversal.
//!
//! The store used to prepare a term in two walks — `hash_expr` (post-order
//! summarisation) followed by `to_debruijn` (scoped conversion) — and each
//! walk rebuilt its scaffolding from scratch, including re-hashing every
//! variable name in the arena's interner. [`Preparer`] fuses the two: a
//! single [`walk_scoped_with`] traversal drives the streaming
//! [`HashedSummariser`] (post-order `Exit` events are exactly the
//! summariser's feed order) while the bracketed `Bind`/`Unbind` events
//! maintain the binder environment the de Bruijn conversion needs. One
//! `Preparer` serves a whole batch, so its environment table, node stacks,
//! summariser scratch buffers and name-hash cache are all reused from term
//! to term.
//!
//! Two preparation shapes share that fused walk:
//!
//! * [`Preparer::hash_and_canon`] — root granularity: the term's hash and
//!   canonical form, nothing else.
//! * [`Preparer::prepare_term`] — subexpression granularity: the same
//!   fused walk additionally records `(hash, node_count)` for **every**
//!   node (the summariser computes them anyway — this is the paper's
//!   headline result), then builds a standalone canonical form per
//!   subexpression that clears the `min_nodes` floor. Those forms cannot
//!   be sliced out of the root's form — a variable bound *outside* a
//!   subterm is free *by name* inside it — so each one is a dedicated
//!   O(size) scoped sub-walk (`Preparer::canon_subterm`), with no
//!   re-hashing anywhere.
//!
//! What a batch *shares* across roots is all per-term scaffolding — above
//! all the name-hash cache, whose per-term recomputation (O(interner) per
//! insert) dominated the seed's ingest profile. Per-subexpression
//! *summaries* are deliberately not memoised across roots: the hashed
//! algorithm consumes (and mutates) each child's variable map at its
//! parent, so sharing summaries of common subtrees would need persistent
//! maps (the §6.3 incremental engine's trade).

use alpha_hash::combine::{HashScheme, HashWord};
use alpha_hash::hashed::HashedSummariser;
use lambda_lang::arena::{ExprArena, ExprNode, NodeId};
use lambda_lang::debruijn::{DbArena, DbId, DbNode};
use lambda_lang::symbol::Symbol;
use lambda_lang::visit::{walk_scoped_with, ScopeEvent, ScopeStack};
use std::collections::HashMap;

/// One prepared (sub)expression: everything the store needs to index it —
/// content address, size, and the standalone canonical de Bruijn form that
/// confirms merges exactly.
#[derive(Debug)]
pub struct SubEntry<H> {
    /// The alpha-invariant hash (content address).
    pub hash: H,
    /// Node count of the subexpression.
    pub node_count: u64,
    /// Canonical de Bruijn form, standalone: variables bound outside the
    /// subexpression appear free, by name.
    pub canon: DbArena,
    /// Root of `canon`.
    pub canon_root: DbId,
}

/// A term prepared at subexpression granularity by
/// [`Preparer::prepare_term`]: the root entry plus one entry per indexed
/// proper subexpression.
#[derive(Debug)]
pub struct PreparedTerm<H> {
    /// The whole term (always indexed, whatever its size).
    pub root: SubEntry<H>,
    /// Indexed proper subexpressions, in post-order.
    pub subs: Vec<SubEntry<H>>,
    /// Proper subexpressions skipped by the `min_nodes` floor.
    pub skipped: u64,
}

/// Brings `sym` into scope at the current depth, remembering any shadowed
/// outer binding on the `saved` stack. Shared, like [`unbind`] and
/// [`emit_db`], by the fused root walk and the per-subexpression
/// canonicalizing sub-walks, so the two can never drift apart.
fn bind(
    env: &mut HashMap<Symbol, u32>,
    saved: &mut Vec<Option<u32>>,
    depth: &mut u32,
    sym: Symbol,
) {
    saved.push(env.insert(sym, *depth));
    *depth += 1;
}

/// Takes `sym` out of scope, restoring whatever binding [`bind`] shadowed.
fn unbind(
    env: &mut HashMap<Symbol, u32>,
    saved: &mut Vec<Option<u32>>,
    depth: &mut u32,
    sym: Symbol,
) {
    *depth -= 1;
    match saved.pop().expect("balanced bind/unbind") {
        Some(level) => {
            env.insert(sym, level);
        }
        None => {
            env.remove(&sym);
        }
    }
}

/// Converts one post-order node to de Bruijn form against the current
/// binder environment. `env` maps binder symbols to binding levels
/// (distance from the walk root); occurrences of symbols not in `env` are
/// free and keep their names. Shared by the fused root walk and the
/// per-subexpression canonicalizing sub-walks.
fn emit_db(
    arena: &ExprArena,
    n: NodeId,
    env: &HashMap<Symbol, u32>,
    depth: u32,
    dst: &mut DbArena,
    db_stack: &mut Vec<DbId>,
) {
    let id = match arena.node(n) {
        ExprNode::Var(s) => match env.get(&s) {
            // `level` counts binders from the root; the index counts from
            // the occurrence inward.
            Some(&level) => dst.push(DbNode::BVar(depth - level - 1)),
            None => {
                let name = dst.intern(arena.name(s));
                dst.push(DbNode::FVar(name))
            }
        },
        ExprNode::Lit(l) => dst.push(DbNode::Lit(l)),
        ExprNode::Lam(_, _) => {
            let body = db_stack.pop().expect("lam body");
            dst.push(DbNode::Lam(body))
        }
        ExprNode::App(_, _) => {
            let arg = db_stack.pop().expect("app arg");
            let fun = db_stack.pop().expect("app fun");
            dst.push(DbNode::App(fun, arg))
        }
        ExprNode::Let(_, _, _) => {
            let body = db_stack.pop().expect("let body");
            let rhs = db_stack.pop().expect("let rhs");
            dst.push(DbNode::Let(rhs, body))
        }
    };
    db_stack.push(id);
}

/// Reusable state for preparing many terms of one arena: the streaming
/// summariser plus the de Bruijn conversion's environment and stacks.
pub struct Preparer<'s, H: HashWord> {
    summariser: HashedSummariser<'s, H>,
    /// Binder symbol → binding level (distance from the root), for the
    /// innermost binding. Save/restore via `saved` handles shadowing.
    env: HashMap<Symbol, u32>,
    saved: Vec<Option<u32>>,
    db_stack: Vec<DbId>,
    /// Traversal scratch shared by every scoped walk this preparer runs.
    scope: ScopeStack,
    /// Per-node `(node, hash, size)` records of the latest fused walk, in
    /// post-order (so the root is last). Only filled by `prepare_term`.
    sub_infos: Vec<(NodeId, H, u64)>,
}

impl<'s, H: HashWord> Preparer<'s, H> {
    /// A preparer for terms of `arena`, hashing with `scheme`.
    pub fn new(arena: &ExprArena, scheme: &'s HashScheme<H>) -> Self {
        Preparer {
            summariser: HashedSummariser::new(arena, scheme),
            env: HashMap::new(),
            saved: Vec::new(),
            db_stack: Vec::new(),
            scope: ScopeStack::new(),
            sub_infos: Vec::new(),
        }
    }

    /// The fused pass: one scoped traversal drives the streaming
    /// summariser (hashes) and the de Bruijn conversion (root canonical
    /// form) together. With `record`, also logs every node's
    /// `(hash, size)` — the per-subexpression table of the batched
    /// summariser — into `self.sub_infos`.
    fn fused_walk(&mut self, arena: &ExprArena, root: NodeId, record: bool) -> (H, DbArena, DbId) {
        debug_assert!(
            lambda_lang::uniquify::check_unique_binders(arena, root).is_ok(),
            "store ingest requires distinct binders (run uniquify first)"
        );
        let mut dst = DbArena::new();
        let mut depth: u32 = 0;
        let mut root_hash = None;
        self.summariser.begin();
        self.db_stack.clear();
        self.sub_infos.clear();

        // Split-borrow the fields once so the closure can use them all.
        let summariser = &mut self.summariser;
        let env = &mut self.env;
        let saved = &mut self.saved;
        let db_stack = &mut self.db_stack;
        let sub_infos = &mut self.sub_infos;

        walk_scoped_with(arena, root, &mut self.scope, |ev| match ev {
            ScopeEvent::Enter(_) => {}
            ScopeEvent::Bind { sym, .. } => bind(env, saved, &mut depth, sym),
            ScopeEvent::Unbind { sym, .. } => unbind(env, saved, &mut depth, sym),
            ScopeEvent::Exit(n) => {
                let (hash, size) = summariser.push_node_sized(arena, n);
                root_hash = Some(hash);
                if record {
                    sub_infos.push((n, hash, size));
                }
                emit_db(arena, n, env, depth, &mut dst, db_stack);
            }
        });

        self.summariser.finish_discard();
        let db_root = self.db_stack.pop().expect("prepare produced a root");
        debug_assert!(self.db_stack.is_empty());
        debug_assert!(self.saved.is_empty());
        debug_assert!(self.env.is_empty());
        debug_assert_eq!(depth, 0);
        (root_hash.expect("non-empty term"), dst, db_root)
    }

    /// Computes the term's alpha-hash and its canonical de Bruijn form in
    /// one post-order pass.
    ///
    /// The de Bruijn output is structurally identical to
    /// [`lambda_lang::debruijn::to_debruijn`]'s (the property tests
    /// cross-check this), and the hash equals
    /// [`alpha_hash::hashed::hash_expr`]. Terms must satisfy the
    /// unique-binder precondition (§2.2), as for `hash_expr`.
    pub fn hash_and_canon(&mut self, arena: &ExprArena, root: NodeId) -> (H, DbArena, DbId) {
        self.fused_walk(arena, root, false)
    }

    /// Prepares a term at subexpression granularity: **one** fused
    /// O(n (log n)²) walk hashes every node (no per-subterm `hash_expr`),
    /// then each proper subexpression with at least `min_nodes` nodes gets
    /// its standalone canonical form from an O(size) non-hashing sub-walk.
    /// The root is always included, whatever its size.
    pub fn prepare_term(
        &mut self,
        arena: &ExprArena,
        root: NodeId,
        min_nodes: usize,
    ) -> PreparedTerm<H> {
        let min_nodes = min_nodes.max(1) as u64;
        let (root_hash, root_canon, root_canon_root) = self.fused_walk(arena, root, true);
        let infos = std::mem::take(&mut self.sub_infos);
        debug_assert_eq!(infos.last().map(|&(n, _, _)| n), Some(root));

        let mut subs = Vec::new();
        let mut skipped = 0u64;
        let mut root_size = 0u64;
        for &(node, hash, size) in &infos {
            if node == root {
                root_size = size;
                continue;
            }
            if size < min_nodes {
                skipped += 1;
                continue;
            }
            let (canon, canon_root) = self.canon_subterm(arena, node);
            debug_assert_eq!(canon.len() as u64, size);
            subs.push(SubEntry {
                hash,
                node_count: size,
                canon,
                canon_root,
            });
        }
        self.sub_infos = infos; // give the buffer back for reuse
        PreparedTerm {
            root: SubEntry {
                hash: root_hash,
                node_count: root_size,
                canon: root_canon,
                canon_root: root_canon_root,
            },
            subs,
            skipped,
        }
    }

    /// The standalone canonical de Bruijn form of the subexpression at
    /// `node`: a scoped walk that starts from an **empty** environment, so
    /// binders outside the subexpression are simply unknown and their
    /// occurrences come out free, by name — exactly the semantics the
    /// subexpression has as a term of its own. No hashing happens here.
    fn canon_subterm(&mut self, arena: &ExprArena, node: NodeId) -> (DbArena, DbId) {
        let mut dst = DbArena::new();
        let mut depth: u32 = 0;
        self.db_stack.clear();

        let env = &mut self.env;
        let saved = &mut self.saved;
        let db_stack = &mut self.db_stack;

        walk_scoped_with(arena, node, &mut self.scope, |ev| match ev {
            ScopeEvent::Enter(_) => {}
            ScopeEvent::Bind { sym, .. } => bind(env, saved, &mut depth, sym),
            ScopeEvent::Unbind { sym, .. } => unbind(env, saved, &mut depth, sym),
            ScopeEvent::Exit(n) => emit_db(arena, n, env, depth, &mut dst, db_stack),
        });

        let root_id = self.db_stack.pop().expect("canon_subterm produced a root");
        debug_assert!(self.db_stack.is_empty());
        debug_assert!(self.env.is_empty());
        (dst, root_id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lambda_lang::debruijn::{db_eq, db_print, to_debruijn};
    use lambda_lang::parse::parse;
    use lambda_lang::visit::postorder;

    #[test]
    fn fused_pass_matches_the_two_walk_version() {
        let scheme: HashScheme<u64> = HashScheme::new(0xFEED);
        let mut arena = ExprArena::new();
        let sources = [
            r"\x. x + 7",
            r"\x. \y. x + y*7",
            r"foo (\x. x+7) (\y. y+7)",
            "let bar = x+1 in bar*y",
            r"\t. foo (\q. q + t) (\y. \w. w + t)",
            "(a + (v+7)) * (v+7)",
            "42",
            "free",
        ];
        let mut preparer = Preparer::new(&arena, &scheme);
        for src in sources {
            let parsed = parse(&mut arena, src).unwrap();
            let (hash, canon, canon_root) = preparer.hash_and_canon(&arena, parsed);
            assert_eq!(
                hash,
                alpha_hash::hashed::hash_expr(&arena, parsed, &scheme),
                "hash mismatch for {src}"
            );
            let (expected, expected_root) = to_debruijn(&arena, parsed);
            assert!(
                db_eq(&canon, canon_root, &expected, expected_root),
                "canon mismatch for {src}: {} vs {}",
                db_print(&canon, canon_root),
                db_print(&expected, expected_root)
            );
        }
    }

    #[test]
    fn preparer_state_is_clean_between_terms() {
        // A term with deep binders followed by a term with free variables
        // of the same names: stale environment state would misclassify
        // them as bound.
        let scheme: HashScheme<u64> = HashScheme::new(7);
        let mut arena = ExprArena::new();
        let bound = parse(&mut arena, r"\x. \y. x y").unwrap();
        let free = parse(&mut arena, "x y").unwrap();
        let mut preparer = Preparer::new(&arena, &scheme);
        let _ = preparer.hash_and_canon(&arena, bound);
        let (_, canon, canon_root) = preparer.hash_and_canon(&arena, free);
        assert_eq!(db_print(&canon, canon_root), "x y");
    }

    #[test]
    fn deep_terms_are_stack_safe() {
        let scheme: HashScheme<u64> = HashScheme::new(9);
        let mut arena = ExprArena::new();
        let mut e = arena.var_named("z");
        for i in 0..120_000 {
            let x = arena.intern(&format!("x{i}"));
            e = arena.lam(x, e);
        }
        let mut preparer = Preparer::new(&arena, &scheme);
        let (_, canon, canon_root) = preparer.hash_and_canon(&arena, e);
        assert_eq!(canon.len(), 120_001);
        assert!(matches!(canon.node(canon_root), DbNode::Lam(_)));
    }

    #[test]
    fn prepare_term_hashes_match_the_batch_hasher_per_node() {
        // The per-subexpression hashes must equal what hash_expr computes
        // on each subtree standalone — i.e. the fused pass really is the
        // paper's all-subexpressions result, not a root-only shortcut.
        let scheme: HashScheme<u64> = HashScheme::new(0xBEEF);
        let mut arena = ExprArena::new();
        let sources = [
            r"\x. \y. x + y*7",
            r"foo (\x. x+7) (\y. y+7)",
            "let bar = x+1 in bar*(bar+y)",
        ];
        let mut preparer = Preparer::new(&arena, &scheme);
        for src in sources {
            let parsed = parse(&mut arena, src).unwrap();
            let pt = preparer.prepare_term(&arena, parsed, 1);
            assert_eq!(pt.skipped, 0);
            let nodes = postorder(&arena, parsed);
            // Every proper subexpression appears, in post-order, and its
            // recorded hash equals the standalone hash.
            assert_eq!(pt.subs.len(), nodes.len() - 1);
            for (entry, &node) in pt.subs.iter().zip(&nodes) {
                assert_eq!(
                    entry.hash,
                    alpha_hash::hashed::hash_expr(&arena, node, &scheme),
                    "subexpression hash mismatch in {src}"
                );
                assert_eq!(entry.node_count as usize, arena.subtree_size(node));
                // The canonical form is the subterm's own, standalone.
                let (expected, expected_root) = to_debruijn(&arena, node);
                assert!(
                    db_eq(&entry.canon, entry.canon_root, &expected, expected_root),
                    "canon mismatch for a subexpression of {src}"
                );
            }
        }
    }

    #[test]
    fn subterm_canonical_forms_free_outer_binders_by_name() {
        // In \x. x + 1, the body subterm x + 1 standalone has x *free*:
        // its canonical form must name it, not index it. (`x + 1` is the
        // curried App(App(add, x), 1), so the term has 6 nodes.)
        let scheme: HashScheme<u64> = HashScheme::new(1);
        let mut arena = ExprArena::new();
        let parsed = parse(&mut arena, r"\x. x + 1").unwrap();
        let mut preparer = Preparer::new(&arena, &scheme);
        let pt = preparer.prepare_term(&arena, parsed, 3);
        // Two subterms clear the 3-node floor: `add x` and `add x 1`; the
        // leaves add, x and 1 are skipped.
        assert_eq!(pt.subs.len(), 2);
        assert_eq!(pt.skipped, 3);
        assert_eq!(db_print(&pt.subs[0].canon, pt.subs[0].canon_root), "add x");
        assert_eq!(
            db_print(&pt.subs[1].canon, pt.subs[1].canon_root),
            "add x 1"
        );
        assert_eq!(db_print(&pt.root.canon, pt.root.canon_root), r"\. add %0 1");
        assert_eq!(pt.root.node_count, 6);
    }

    #[test]
    fn min_nodes_floor_skips_small_subterms_but_never_the_root() {
        let scheme: HashScheme<u64> = HashScheme::new(2);
        let mut arena = ExprArena::new();
        let parsed = parse(&mut arena, "v").unwrap();
        let mut preparer = Preparer::new(&arena, &scheme);
        let pt = preparer.prepare_term(&arena, parsed, 50);
        assert!(pt.subs.is_empty());
        assert_eq!(pt.skipped, 0);
        assert_eq!(pt.root.node_count, 1);
    }
}
