//! Store granularity as a first-class, configured-once choice, and the
//! [`StoreBuilder`] front door that fixes it.
//!
//! The paper's central result is that **one** O(n (log n)²) pass hashes
//! *every* subexpression of a term, not just its root. Which of those
//! hashes a store indexes is a property of the store, not of an individual
//! call — a containment index built by some inserts but not others would
//! answer queries inconsistently. So granularity is chosen once, at build
//! time, through [`StoreBuilder`], and every `insert`/`insert_batch`/query
//! obeys it:
//!
//! * [`Granularity::Roots`] — the classic mode: each inserted term is
//!   indexed as a whole. `lookup` answers "was an alpha-equivalent term
//!   ingested?". Ingest cost per term is one fused hash+canonicalize pass,
//!   O(n (log n)²) hashing plus O(n) canonicalization.
//! * [`Granularity::Subexpressions`] — the containment mode: every
//!   subexpression with at least `min_nodes` nodes (the root always) is
//!   hashed in the **same** fused batched pass — no per-subterm
//!   `hash_expr` calls — and indexed as its own class member, so
//!   [`AlphaStore::contains`](crate::AlphaStore::contains) can answer
//!   "does any ingested term contain this pattern, modulo alpha?".
//!
//! ## Cost model
//!
//! Hashing all subexpressions stays one O(n (log n)²) pass (the paper's
//! headline bound). What subexpression *indexing* adds is canonical-form
//! material: each indexed subterm needs its standalone de Bruijn form,
//! both to confirm candidate merges exactly and to seed new classes, and
//! those forms are genuinely different terms (a variable bound outside a
//! subterm is *free by name* inside it), so they cannot be shared with the
//! root's form. Building them costs O(size) per indexed subterm — Σ sizes
//! over indexed subterms per term, which is O(n · depth) in the worst case
//! (a left spine indexes suffixes of every length). `min_nodes` is the
//! lever that bounds this: raising it skips the long tail of tiny
//! subterms, which dominate the count but rarely matter for containment
//! queries.

use crate::store::AlphaStore;
use alpha_hash::combine::{HashScheme, HashWord};

/// Which terms an [`AlphaStore`] indexes: whole inserted terms only, or
/// every subexpression of them. Fixed at build time via [`StoreBuilder`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Granularity {
    /// Index each inserted term as a whole (the classic store mode).
    Roots,
    /// Index every subexpression of each inserted term whose node count is
    /// at least `min_nodes` (the root is always indexed, whatever its
    /// size), enabling containment queries. `min_nodes <= 1` indexes
    /// everything, down to single variables and literals.
    Subexpressions {
        /// Smallest subexpression (in nodes) worth indexing.
        min_nodes: usize,
    },
}

impl Default for Granularity {
    /// [`Granularity::Roots`] — the compatible, cheapest mode.
    fn default() -> Self {
        Granularity::Roots
    }
}

impl Granularity {
    /// Whether this mode indexes proper subexpressions.
    pub fn indexes_subexpressions(self) -> bool {
        matches!(self, Granularity::Subexpressions { .. })
    }

    /// The indexing size floor: subexpressions smaller than this are
    /// skipped (1 for [`Granularity::Roots`], where only roots exist).
    pub fn min_nodes(self) -> usize {
        match self {
            Granularity::Roots => 1,
            Granularity::Subexpressions { min_nodes } => min_nodes.max(1),
        }
    }
}

/// Configures and builds an [`AlphaStore`]: hash scheme, shard count and
/// [`Granularity`], chosen once, queried many times.
///
/// ```
/// use alpha_store::{AlphaStore, StoreBuilder};
/// use alpha_hash::combine::HashScheme;
/// use lambda_lang::{parse, ExprArena};
///
/// let store: AlphaStore<u64> = StoreBuilder::new()
///     .scheme(HashScheme::new(0x5EED))
///     .shards(8)
///     .subexpressions(2)
///     .build();
///
/// let mut arena = ExprArena::new();
/// let t = parse(&mut arena, r"\x. (v + 7) * x").unwrap();
/// store.insert(&arena, t);
///
/// // The pattern never appeared as a whole term, but it is *contained*.
/// let pattern = parse(&mut arena, "v + 7").unwrap();
/// assert!(store.contains(&arena, pattern).is_some());
/// assert!(store.lookup(&arena, pattern).is_none());
/// ```
#[derive(Clone, Copy, Debug)]
pub struct StoreBuilder<H: HashWord = u64> {
    scheme: HashScheme<H>,
    shards: usize,
    granularity: Granularity,
}

impl<H: HashWord> Default for StoreBuilder<H> {
    fn default() -> Self {
        Self::new()
    }
}

impl<H: HashWord> StoreBuilder<H> {
    /// A builder with the default scheme, the [default shard
    /// count](AlphaStore::DEFAULT_SHARDS) and [`Granularity::Roots`].
    pub fn new() -> Self {
        StoreBuilder {
            scheme: HashScheme::default(),
            shards: AlphaStore::<H>::DEFAULT_SHARDS,
            granularity: Granularity::Roots,
        }
    }

    /// Sets the hash scheme terms are addressed with.
    pub fn scheme(mut self, scheme: HashScheme<H>) -> Self {
        self.scheme = scheme;
        self
    }

    /// Sets the hash scheme from a seed (shorthand for
    /// `scheme(HashScheme::new(seed))`).
    pub fn seed(self, seed: u64) -> Self {
        self.scheme(HashScheme::new(seed))
    }

    /// Sets the lock-stripe count (rounded up to a power of two and
    /// clamped to `1..=65536` at build time).
    pub fn shards(mut self, shards: usize) -> Self {
        self.shards = shards;
        self
    }

    /// Sets the granularity mode explicitly.
    pub fn granularity(mut self, granularity: Granularity) -> Self {
        self.granularity = granularity;
        self
    }

    /// Selects [`Granularity::Roots`] (the default).
    pub fn roots(self) -> Self {
        self.granularity(Granularity::Roots)
    }

    /// Selects [`Granularity::Subexpressions`] with the given indexing
    /// floor. See the [module docs](self) for the cost model.
    pub fn subexpressions(self, min_nodes: usize) -> Self {
        self.granularity(Granularity::Subexpressions { min_nodes })
    }

    /// Builds the store.
    pub fn build(self) -> AlphaStore<H> {
        AlphaStore::with_config(self.scheme, self.shards, self.granularity)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_defaults_match_the_classic_constructor() {
        let built: AlphaStore<u64> = StoreBuilder::new().build();
        let classic: AlphaStore<u64> = AlphaStore::default();
        assert_eq!(built.shard_count(), classic.shard_count());
        assert_eq!(built.granularity(), Granularity::Roots);
        assert_eq!(classic.granularity(), Granularity::Roots);
    }

    #[test]
    fn builder_configures_granularity_and_shards() {
        let store: AlphaStore<u64> = StoreBuilder::new()
            .seed(7)
            .shards(4)
            .subexpressions(3)
            .build();
        assert_eq!(store.shard_count(), 4);
        assert_eq!(
            store.granularity(),
            Granularity::Subexpressions { min_nodes: 3 }
        );
        assert!(store.granularity().indexes_subexpressions());
        assert_eq!(store.granularity().min_nodes(), 3);
        assert_eq!(Granularity::Roots.min_nodes(), 1);
        assert_eq!(Granularity::Subexpressions { min_nodes: 0 }.min_nodes(), 1);
    }
}
