//! Store granularity as a first-class, configured-once choice, and the
//! [`StoreBuilder`] front door that fixes it.
//!
//! The paper's central result is that **one** O(n (log n)²) pass hashes
//! *every* subexpression of a term, not just its root. Which of those
//! hashes a store indexes is a property of the store, not of an individual
//! call — a containment index built by some inserts but not others would
//! answer queries inconsistently. So granularity is chosen once, at build
//! time, through [`StoreBuilder`], and every `insert`/`insert_batch`/query
//! obeys it:
//!
//! * [`Granularity::Roots`] — the classic mode: each inserted term is
//!   indexed as a whole. `lookup` answers "was an alpha-equivalent term
//!   ingested?". Ingest cost per term is one fused hash+canonicalize pass,
//!   O(n (log n)²) hashing plus O(n) canonicalization.
//! * [`Granularity::Subexpressions`] — the containment mode: every
//!   subexpression with at least `min_nodes` nodes (the root always) is
//!   hashed in the **same** fused batched pass — no per-subterm
//!   `hash_expr` calls — and indexed as its own class member, so
//!   [`AlphaStore::contains`](crate::AlphaStore::contains) can answer
//!   "does any ingested term contain this pattern, modulo alpha?".
//!
//! ## Cost model
//!
//! Hashing all subexpressions stays one O(n (log n)²) pass (the paper's
//! headline bound). What subexpression *indexing* adds is canonical-form
//! material: each indexed subterm needs its standalone de Bruijn form,
//! both to confirm candidate merges exactly and to seed new classes, and
//! those forms are genuinely different terms (a variable bound outside a
//! subterm is *free by name* inside it), so they cannot be shared with the
//! root's form. Building them costs O(size) per indexed subterm — Σ sizes
//! over indexed subterms per term, which is O(n · depth) in the worst case
//! (a left spine indexes suffixes of every length). `min_nodes` is the
//! lever that bounds this: raising it skips the long tail of tiny
//! subterms, which dominate the count but rarely matter for containment
//! queries.
//!
//! ```
//! use alpha_store::{AlphaStore, Granularity};
//! use lambda_lang::{parse, ExprArena};
//!
//! let store: AlphaStore<u64> = AlphaStore::builder()
//!     .seed(0x5EED)
//!     .subexpressions(3) // index every subterm of >= 3 nodes
//!     .build();
//! assert_eq!(
//!     store.granularity(),
//!     Granularity::Subexpressions { min_nodes: 3 }
//! );
//!
//! let mut arena = ExprArena::new();
//! let t = parse(&mut arena, r"\x. x + (v * 3)").unwrap();
//! let outcome = store.insert(&arena, t);
//! assert!(outcome.subs.indexed > 0);           // subterms joined the index
//! assert!(outcome.subs.skipped_min_nodes > 0); // tiny leaves did not
//! ```

use crate::persist::vfs::{OsVfs, Vfs};
use crate::persist::{ExpectedConfig, PersistError};
use crate::store::{AlphaStore, AutoCheckpoint, RetryPolicy};
use alpha_hash::combine::{HashScheme, HashWord};
use std::fmt;
use std::sync::Arc;
use std::time::Duration;

/// A [`StoreBuilder`] setting that cannot describe a working store,
/// reported by [`StoreBuilder::try_build`]. The infallible
/// [`StoreBuilder::build`] instead silently clamps each of these to the
/// nearest legal value (kept for compatibility); `try_build` is for
/// callers wiring user- or config-file-supplied numbers through, where a
/// silently corrected typo (`shards(0)` for `shards(10)`, say) is worse
/// than an error.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ConfigError {
    /// `shards(0)`: a store needs at least one lock stripe.
    ZeroShards,
    /// More lock stripes than the 16-bit shard index in [`ClassId`] can
    /// address (the limit is 65 536).
    ///
    /// [`ClassId`]: crate::ClassId
    TooManyShards {
        /// The out-of-range stripe count that was requested.
        requested: usize,
    },
    /// `chunk_entries(0)`: batch ingest must be allowed to hold at least
    /// one prepared entry, or it could never drain.
    ZeroChunkEntries,
    /// `table_shards(n)` outside the legal range: canon-table stripe
    /// counts must be a power of two in `1..=256` (refs pack the stripe
    /// into their low bits, so the count must be an exact bit width; 8
    /// stripe bits is the packing's ceiling).
    BadTableShards {
        /// The out-of-range stripe count that was requested.
        requested: usize,
    },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::ZeroShards => {
                write!(f, "shard count must be at least 1 (got 0)")
            }
            ConfigError::TooManyShards { requested } => {
                write!(
                    f,
                    "shard count {requested} exceeds the maximum of 65536 \
                     (ClassId addresses shards with 16 bits)"
                )
            }
            ConfigError::ZeroChunkEntries => {
                write!(f, "chunk_entries must be at least 1 (got 0)")
            }
            ConfigError::BadTableShards { requested } => {
                write!(
                    f,
                    "table_shards must be a power of two in 1..=256 (got {requested})"
                )
            }
        }
    }
}

impl std::error::Error for ConfigError {}

/// Which terms an [`AlphaStore`] indexes: whole inserted terms only, or
/// every subexpression of them. Fixed at build time via [`StoreBuilder`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Granularity {
    /// Index each inserted term as a whole (the classic store mode).
    Roots,
    /// Index every subexpression of each inserted term whose node count is
    /// at least `min_nodes` (the root is always indexed, whatever its
    /// size), enabling containment queries. `min_nodes <= 1` indexes
    /// everything, down to single variables and literals.
    Subexpressions {
        /// Smallest subexpression (in nodes) worth indexing.
        min_nodes: usize,
    },
}

impl Default for Granularity {
    /// [`Granularity::Roots`] — the compatible, cheapest mode.
    fn default() -> Self {
        Granularity::Roots
    }
}

impl Granularity {
    /// Whether this mode indexes proper subexpressions.
    pub fn indexes_subexpressions(self) -> bool {
        matches!(self, Granularity::Subexpressions { .. })
    }

    /// The indexing size floor: subexpressions smaller than this are
    /// skipped (1 for [`Granularity::Roots`], where only roots exist).
    pub fn min_nodes(self) -> usize {
        match self {
            Granularity::Roots => 1,
            Granularity::Subexpressions { min_nodes } => min_nodes.max(1),
        }
    }
}

/// Configures and builds an [`AlphaStore`]: hash scheme, shard count and
/// [`Granularity`], chosen once, queried many times.
///
/// ```
/// use alpha_store::{AlphaStore, StoreBuilder};
/// use alpha_hash::combine::HashScheme;
/// use lambda_lang::{parse, ExprArena};
///
/// let store: AlphaStore<u64> = StoreBuilder::new()
///     .scheme(HashScheme::new(0x5EED))
///     .shards(8)
///     .subexpressions(2)
///     .build();
///
/// let mut arena = ExprArena::new();
/// let t = parse(&mut arena, r"\x. (v + 7) * x").unwrap();
/// store.insert(&arena, t);
///
/// // The pattern never appeared as a whole term, but it is *contained*.
/// let pattern = parse(&mut arena, "v + 7").unwrap();
/// assert!(store.contains(&arena, pattern).is_some());
/// assert!(store.lookup(&arena, pattern).is_none());
/// ```
#[derive(Clone, Debug)]
pub struct StoreBuilder<H: HashWord = u64> {
    scheme: HashScheme<H>,
    shards: usize,
    table_shards: usize,
    granularity: Granularity,
    chunk_entries: usize,
    sync_on_commit: bool,
    verify_on_replay: bool,
    vfs: Arc<dyn Vfs>,
    retry: RetryPolicy,
    auto_ckpt: AutoCheckpoint,
}

impl<H: HashWord> Default for StoreBuilder<H> {
    fn default() -> Self {
        Self::new()
    }
}

impl<H: HashWord> StoreBuilder<H> {
    /// A builder with the default scheme, the [default shard
    /// count](AlphaStore::default_shards) and [`Granularity::Roots`].
    pub fn new() -> Self {
        StoreBuilder {
            scheme: HashScheme::default(),
            shards: AlphaStore::<H>::default_shards(),
            table_shards: crate::dag::default_table_shards(),
            granularity: Granularity::Roots,
            chunk_entries: AlphaStore::<H>::DEFAULT_CHUNK_ENTRIES,
            sync_on_commit: false,
            verify_on_replay: false,
            vfs: Arc::new(OsVfs),
            retry: RetryPolicy::default(),
            auto_ckpt: AutoCheckpoint::default(),
        }
    }

    /// Sets the hash scheme terms are addressed with.
    pub fn scheme(mut self, scheme: HashScheme<H>) -> Self {
        self.scheme = scheme;
        self
    }

    /// Sets the hash scheme from a seed (shorthand for
    /// `scheme(HashScheme::new(seed))`).
    pub fn seed(self, seed: u64) -> Self {
        self.scheme(HashScheme::new(seed))
    }

    /// Sets the lock-stripe count (rounded up to a power of two and
    /// clamped to `1..=65536` at build time).
    pub fn shards(mut self, shards: usize) -> Self {
        self.shards = shards;
        self
    }

    /// Sets the canon-table lock-stripe count — a per-process concurrency
    /// knob, independent of the store shard count and **not** part of the
    /// persisted configuration (the same directory can be reopened under
    /// any stripe count). Defaults from `available_parallelism`, floored
    /// at 16. [`StoreBuilder::build`] clamps out-of-range values to the
    /// nearest power of two in `1..=256`;
    /// [`StoreBuilder::try_build`] rejects them with
    /// [`ConfigError::BadTableShards`] instead — stripe counts pack into
    /// ref bits, so unlike [`StoreBuilder::shards`] a non-power-of-two
    /// here is an error, not a round-up.
    pub fn table_shards(mut self, shards: usize) -> Self {
        self.table_shards = shards;
        self
    }

    /// Sets the granularity mode explicitly.
    pub fn granularity(mut self, granularity: Granularity) -> Self {
        self.granularity = granularity;
        self
    }

    /// Selects [`Granularity::Roots`] (the default).
    pub fn roots(self) -> Self {
        self.granularity(Granularity::Roots)
    }

    /// Selects [`Granularity::Subexpressions`] with the given indexing
    /// floor. See the [module docs](self) for the cost model.
    pub fn subexpressions(self, min_nodes: usize) -> Self {
        self.granularity(Granularity::Subexpressions { min_nodes })
    }

    /// Caps how many prepared entries (a term's root plus its indexed
    /// subexpressions) a batch ingest accumulates before draining them
    /// into the shards — and, on a durable store, before group-committing
    /// them to the write-ahead log. Bounds batch ingest's peak memory to
    /// Θ(budget) canonical forms whatever the batch size, at the cost of a
    /// few extra lock rounds per chunk. Clamped to at least 1; the default
    /// is [`AlphaStore::DEFAULT_CHUNK_ENTRIES`].
    pub fn chunk_entries(mut self, entries: usize) -> Self {
        self.chunk_entries = entries;
        self
    }

    /// Upgrades every durable group commit from an OS-buffered write (the
    /// default: data survives a process crash, but an OS crash or power
    /// loss can drop the unsynced WAL tail) to a full `fsync` (power-loss
    /// durable, at a large per-commit cost). Only meaningful with
    /// [`StoreBuilder::open_durable`].
    pub fn sync_on_commit(mut self, sync: bool) -> Self {
        self.sync_on_commit = sync;
        self
    }

    /// Paranoid recovery: during WAL replay, **re-hash** every record —
    /// rebuild a named term from its canonical payload and push it through
    /// the full hashing pipeline — and fail the open with
    /// [`PersistError::Corrupt`] if the recomputed address disagrees with
    /// the recorded one.
    ///
    /// The frame CRC catches random torn writes, and the normal replay
    /// path re-confirms every merge by canonical-form identity — but both
    /// trust that a record's `(hash, canon)` *pair* is the one ingest
    /// wrote. A consistent corruption (firmware bit rot after the CRC was
    /// computed, a buggy backup tool rewriting bytes and re-framing them)
    /// could alter the canon and still replay "cleanly" into a class
    /// addressed by the stale hash. Re-hashing closes that hole at the
    /// cost of roughly re-preparing every replayed record. Only meaningful
    /// with [`StoreBuilder::open_durable`].
    pub fn verify_on_replay(mut self, verify: bool) -> Self {
        self.verify_on_replay = verify;
        self
    }

    /// Replaces the storage backend every persisted byte flows through.
    /// The default is [`OsVfs`] (the real filesystem); tests substitute
    /// [`FaultVfs`](crate::FaultVfs) to inject deterministic I/O failures
    /// at chosen operation indices. Only meaningful with
    /// [`StoreBuilder::open_durable`].
    pub fn vfs(mut self, vfs: Arc<dyn Vfs>) -> Self {
        self.vfs = vfs;
        self
    }

    /// How many times a failed WAL append/sync is retried (with
    /// exponential backoff, see [`StoreBuilder::persist_backoff`]) before
    /// the store gives up and flips to
    /// [`Health::ReadOnly`](crate::Health::ReadOnly). `0` disables
    /// retries: the first failure is final. Default: 2. Only meaningful
    /// with [`StoreBuilder::open_durable`].
    pub fn persist_retries(mut self, retries: u32) -> Self {
        self.retry.retries = retries;
        self
    }

    /// Base delay of the exponential backoff between WAL retries: attempt
    /// *n* sleeps `backoff × 2ⁿ⁻¹`. The WAL mutex is held across the
    /// sleeps — concurrent ingest waits rather than reordering around a
    /// failing append. Default: 5 ms. Only meaningful with
    /// [`StoreBuilder::open_durable`].
    pub fn persist_backoff(mut self, backoff: Duration) -> Self {
        self.retry.backoff = backoff;
        self
    }

    /// Replaces the clock the retry loop sleeps on — the injectable-clock
    /// seam that lets tests drive the backoff path without real delays.
    /// The default is [`std::thread::sleep`].
    pub fn persist_sleeper(mut self, sleeper: Arc<dyn Fn(Duration) + Send + Sync>) -> Self {
        self.retry.sleeper = sleeper;
        self
    }

    /// Arms the byte watermark for auto-checkpoint: after any ingest that
    /// leaves at least `bytes` of WAL appended since the last checkpoint,
    /// the store checkpoints itself (snapshot + WAL reset) through the
    /// maintenance lock. Off by default. Only meaningful with
    /// [`StoreBuilder::open_durable`]; see `docs/RELIABILITY.md`.
    pub fn auto_checkpoint_bytes(mut self, bytes: u64) -> Self {
        self.auto_ckpt.bytes = Some(bytes);
        self
    }

    /// Arms the record-count watermark for auto-checkpoint, like
    /// [`StoreBuilder::auto_checkpoint_bytes`] but counting WAL records.
    /// Off by default.
    pub fn auto_checkpoint_records(mut self, records: u64) -> Self {
        self.auto_ckpt.records = Some(records);
        self
    }

    /// Checks the numeric settings without building anything.
    fn validate(&self) -> Result<(), ConfigError> {
        if self.shards == 0 {
            return Err(ConfigError::ZeroShards);
        }
        if self.shards > 1 << 16 {
            return Err(ConfigError::TooManyShards {
                requested: self.shards,
            });
        }
        if self.chunk_entries == 0 {
            return Err(ConfigError::ZeroChunkEntries);
        }
        if !self.table_shards.is_power_of_two() || self.table_shards > crate::dag::MAX_TABLE_SHARDS
        {
            return Err(ConfigError::BadTableShards {
                requested: self.table_shards,
            });
        }
        Ok(())
    }

    /// The clamped canon-table stripe count [`StoreBuilder::build`] and
    /// [`StoreBuilder::open_durable`] actually use.
    fn effective_table_shards(&self) -> usize {
        self.table_shards
            .clamp(1, crate::dag::MAX_TABLE_SHARDS)
            .next_power_of_two()
    }

    /// Builds the store (in-memory), silently clamping degenerate
    /// settings to the nearest legal value: shard counts round up to a
    /// power of two in `1..=65536`, `chunk_entries` to at least 1. Use
    /// [`StoreBuilder::try_build`] to get an error instead of a clamp.
    pub fn build(self) -> AlphaStore<H> {
        let table_shards = self.effective_table_shards();
        AlphaStore::with_config(
            self.scheme,
            self.shards,
            self.granularity,
            self.chunk_entries,
            table_shards,
        )
    }

    /// Builds the store (in-memory), rejecting settings that
    /// [`StoreBuilder::build`] would silently clamp — the right entry
    /// point when shard or chunk counts come from configuration rather
    /// than literals. (Non-power-of-two shard counts in range are not an
    /// error in either entry point; they round up as documented on
    /// [`StoreBuilder::shards`].)
    ///
    /// ```
    /// use alpha_store::{AlphaStore, ConfigError, StoreBuilder};
    ///
    /// let err = StoreBuilder::<u64>::new().shards(0).try_build().err();
    /// assert_eq!(err, Some(ConfigError::ZeroShards));
    ///
    /// let store: AlphaStore<u64> = StoreBuilder::new().shards(8).try_build().unwrap();
    /// assert_eq!(store.shard_count(), 8);
    /// ```
    pub fn try_build(self) -> Result<AlphaStore<H>, ConfigError> {
        self.validate()?;
        Ok(self.build())
    }

    /// Builds a **durable** store rooted at `dir`: every insert is teed
    /// into a write-ahead log there, and [`AlphaStore::snapshot`] /
    /// [`AlphaStore::compact`] keep a point-in-time image alongside it.
    ///
    /// If `dir` already holds a store, it is recovered — snapshot loaded,
    /// WAL tail replayed with every merge re-confirmed — and its on-disk
    /// configuration must match this builder's scheme, shard count and
    /// granularity ([`PersistError::Mismatch`] otherwise). If `dir` is
    /// empty or missing, a fresh store is created there. See
    /// [`crate::persist`] for the crash-consistency story.
    ///
    /// ```
    /// use alpha_store::AlphaStore;
    /// use lambda_lang::{parse, ExprArena};
    ///
    /// let dir = std::env::temp_dir().join(format!("doc-durable-{}", std::process::id()));
    /// let builder = || AlphaStore::<u64>::builder().seed(7).subexpressions(2);
    ///
    /// let mut arena = ExprArena::new();
    /// let t = parse(&mut arena, r"map (\x. x + 1) things").unwrap();
    /// builder().open_durable(&dir).unwrap().insert(&arena, t);
    ///
    /// // A new process reopens the same directory: containment queries
    /// // keep working on the recovered subexpression index.
    /// let store = builder().open_durable(&dir).unwrap();
    /// let pattern = parse(&mut arena, r"\q. q + 1").unwrap();
    /// assert!(store.contains(&arena, pattern).is_some());
    /// # std::fs::remove_dir_all(&dir).unwrap();
    /// ```
    pub fn open_durable(
        self,
        dir: impl AsRef<std::path::Path>,
    ) -> Result<AlphaStore<H>, PersistError> {
        let dir = dir.as_ref();
        let table_shards = self.effective_table_shards();
        let expect = ExpectedConfig {
            shard_count: u32::try_from(self.shards.clamp(1, 1 << 16).next_power_of_two())
                .expect("shard count fits u32"),
            scheme: self.scheme,
            granularity: self.granularity,
        };
        // The recover-vs-create decision happens inside, under the
        // directory lock, so a racing opener can never truncate files a
        // first opener is writing.
        crate::persist::open_or_create_store(
            dir,
            &expect,
            crate::persist::OpenConfig {
                sync_on_commit: self.sync_on_commit,
                chunk_entries: self.chunk_entries.max(1),
                verify_on_replay: self.verify_on_replay,
                vfs: self.vfs,
                retry: self.retry,
                auto_ckpt: self.auto_ckpt,
                table_shards,
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_defaults_match_the_classic_constructor() {
        let built: AlphaStore<u64> = StoreBuilder::new().build();
        let classic: AlphaStore<u64> = AlphaStore::default();
        assert_eq!(built.shard_count(), classic.shard_count());
        assert_eq!(built.granularity(), Granularity::Roots);
        assert_eq!(classic.granularity(), Granularity::Roots);
    }

    #[test]
    fn builder_configures_granularity_and_shards() {
        let store: AlphaStore<u64> = StoreBuilder::new()
            .seed(7)
            .shards(4)
            .subexpressions(3)
            .build();
        assert_eq!(store.shard_count(), 4);
        assert_eq!(
            store.granularity(),
            Granularity::Subexpressions { min_nodes: 3 }
        );
        assert!(store.granularity().indexes_subexpressions());
        assert_eq!(store.granularity().min_nodes(), 3);
        assert_eq!(Granularity::Roots.min_nodes(), 1);
        assert_eq!(Granularity::Subexpressions { min_nodes: 0 }.min_nodes(), 1);
    }

    #[test]
    fn try_build_rejects_degenerate_configs() {
        assert_eq!(
            StoreBuilder::<u64>::new().shards(0).try_build().err(),
            Some(ConfigError::ZeroShards)
        );
        assert_eq!(
            StoreBuilder::<u64>::new()
                .shards((1 << 16) + 1)
                .try_build()
                .err(),
            Some(ConfigError::TooManyShards {
                requested: (1 << 16) + 1
            })
        );
        assert_eq!(
            StoreBuilder::<u64>::new()
                .chunk_entries(0)
                .try_build()
                .err(),
            Some(ConfigError::ZeroChunkEntries)
        );
        // Errors render something actionable.
        let msg = ConfigError::TooManyShards { requested: 70_000 }.to_string();
        assert!(msg.contains("70000") && msg.contains("65536"), "{msg}");
    }

    #[test]
    fn table_shards_validate_and_clamp() {
        // try_build: power-of-two bound check, typed error.
        for bad in [0usize, 3, 24, 512] {
            assert_eq!(
                StoreBuilder::<u64>::new()
                    .table_shards(bad)
                    .try_build()
                    .err(),
                Some(ConfigError::BadTableShards { requested: bad }),
                "table_shards({bad}) must be rejected"
            );
        }
        let msg = ConfigError::BadTableShards { requested: 24 }.to_string();
        assert!(msg.contains("24") && msg.contains("256"), "{msg}");
        // In-range powers of two pass through exactly.
        for good in [1usize, 4, 64, 256] {
            let store: AlphaStore<u64> =
                StoreBuilder::new().table_shards(good).try_build().unwrap();
            assert_eq!(store.table_shard_count(), good);
        }
        // build() clamps the same inputs silently.
        let clamped: AlphaStore<u64> = StoreBuilder::new().table_shards(0).build();
        assert_eq!(clamped.table_shard_count(), 1);
        let clamped: AlphaStore<u64> = StoreBuilder::new().table_shards(600).build();
        assert_eq!(clamped.table_shard_count(), 256);
        let rounded: AlphaStore<u64> = StoreBuilder::new().table_shards(24).build();
        assert_eq!(rounded.table_shard_count(), 32);
    }

    #[test]
    fn try_build_accepts_what_build_accepts() {
        let store: AlphaStore<u64> = StoreBuilder::new()
            .shards(6) // in range, not a power of two: rounds up, no error
            .chunk_entries(16)
            .subexpressions(2)
            .try_build()
            .unwrap();
        assert_eq!(store.shard_count(), 8);
        // build() still clamps the same degenerate inputs silently.
        let clamped: AlphaStore<u64> = StoreBuilder::new().shards(0).build();
        assert_eq!(clamped.shard_count(), 1);
    }
}
