//! Incremental re-ingest: [`AlphaStore::update`] applies a local rewrite
//! to a previously ingested term **without** re-hashing, re-canonicalizing
//! or re-indexing the parts of the term the rewrite did not touch.
//!
//! The paper's §6.3 observation is that a local edit perturbs a term's
//! alpha-hash only along the spine from the edit site to the root. This
//! module turns that observation into a store operation:
//!
//! * **Hashing** — under [`Granularity::Roots`]
//!   the store keeps a bounded cache of live
//!   [`IncrementalHasher`]s,
//!   one per recently updated term, so a rewrite re-hashes the patch plus
//!   the O(spine) path to the root instead of the whole term.
//! * **Canonical storage** — the rewritten canonical form is produced by
//!   *splicing* the patch's canon into the class's existing canon along
//!   the rewrite path. Every untouched subtree reuses its interned
//!   [`CanonRef`]; only the spine's nodes are re-interned.
//! * **Durability** — the WAL records a format-v3 **delta**: the term
//!   handle, the old root hash (an integrity anchor), the rewrite path
//!   and the patch's canonical node run. Recovery re-splices the delta
//!   through this same code, re-confirming the result exactly like insert
//!   replay, so exactness (zero unconfirmed merges) survives restarts.
//! * **Subexpression index** — under
//!   [`Granularity::Subexpressions`]
//!   the update diffs the term's old `(class, multiplicity)` pairs against
//!   the rewritten term's and touches only the entries whose membership
//!   actually changed; unchanged pairs keep their classes without a probe
//!   (class ↔ canon is a bijection, so ref equality decides).
//!
//! ## Semantics: normalized delete + re-insert
//!
//! `update(term, rewrite)` behaves exactly as if the term were deleted
//! and the **effective rewritten term** were re-inserted under the same
//! [`TermId`], where the effective term is built from canonical forms:
//! the class's canonical representative (fresh machine binders) with the
//! *patch's* canonical representative spliced in at `rewrite.path`. The
//! patch contributes only its canonical content — its binder names are
//! discarded, its free variables keep their names. This makes the result
//! independent of which alpha-variant originally created the class
//! (live, replayed and [previewed](AlphaStore::preview_rewrite) updates
//! all agree bit for bit). [`AlphaStore::preview_rewrite`] returns the
//! effective term so callers (and the differential oracle tests) can see
//! precisely what the update ingests.
//!
//! Because every machine-generated binder name contains `'%'` (the
//! interner's freshening scheme) and source names never do, a replacement
//! whose free variables mention a `'%'` name could only be trying to
//! reference — and be captured by — a binder of the host's canonical
//! representative. Those rewrites are rejected up front with
//! [`StoreError::InvalidRewrite`] rather than silently mis-hashing (the
//! by-name capture hazard `alpha_hash::incremental` documents). Accepted
//! patches are therefore always closed over the host's binders.
//!
//! ## What an update does **not** do
//!
//! The term count is unchanged (the same handle is repointed), so
//! [`StoreStats::terms_ingested`](crate::StoreStats::terms_ingested) does
//! not move. Classes are never removed: a class whose last member is
//! rewritten away stays resident with `members == 0` (and possibly
//! `occurrences == 0`) and is skipped by root-only probes — the same
//! stale-class rule the rest of the store follows.

use crate::canon::rebuild_named;
use crate::dag::{extract_one, CanonTable, TableView};
use crate::granularity::Granularity;
use crate::persist::format::RawDelta;
use crate::persist::wal::{frame_commit, frame_delta};
use crate::persist::PersistError;
use crate::prepare::{PreparedCanon, PreparedTerm, Preparer, SubEntry};
use crate::stats::StatCounters;
use crate::store::{AlphaStore, ClassId, StoreError, SubexprSummary, TermId};
use alpha_hash::combine::HashWord;
use alpha_hash::incremental::IncrementalHasher;
use lambda_lang::arena::{Children, ExprArena, NodeId};
use lambda_lang::canon::{CanonNode, CanonRef};
use lambda_lang::debruijn::{to_debruijn, DbArena, DbId};
use std::collections::HashMap;

/// One local rewrite of a previously ingested term: replace the subtree
/// at `path` (child-slot steps from the root of the term's **canonical
/// representative**) with the term rooted at `root` in `arena`.
///
/// Path slots follow [`ExprNode::children`](lambda_lang::arena::ExprNode)
/// order: a lambda's body is slot `0`; an application is `0` = function,
/// `1` = argument; a let is `0` = bound expression, `1` = body. An empty
/// path replaces the whole term.
///
/// The replacement must be closed over the host's binders: its free
/// variables are global names (never containing `'%'`, the marker of
/// machine-generated binders) and its own binder names are irrelevant —
/// only its canonical content is spliced in.
#[derive(Clone, Copy, Debug)]
pub struct Rewrite<'a> {
    /// Child-slot steps from the canonical representative's root to the
    /// replacement site.
    pub path: &'a [u32],
    /// Arena holding the replacement subterm.
    pub arena: &'a ExprArena,
    /// Root of the replacement within `arena`.
    pub root: NodeId,
}

/// What one [`AlphaStore::update`] did.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct UpdateOutcome {
    /// The updated term (the same handle that was passed in: updates
    /// repoint, they never reissue).
    pub term: TermId,
    /// The class the term belonged to before the rewrite.
    pub old_class: ClassId,
    /// The class the rewritten term belongs to now.
    pub class: ClassId,
    /// `true` iff the rewrite created its class (no existing term or
    /// indexed subexpression was alpha-equivalent to the result).
    pub fresh: bool,
    /// What the update did to the subexpression index. `indexed` counts
    /// the rewritten term's subexpression occurrences; `merged` counts
    /// those that landed in classes that already existed (pairs the old
    /// version of the term already held count as merged). All-zero in
    /// `Roots` mode.
    pub subs: SubexprSummary,
    /// Nodes re-hashed to produce the new root hash: patch plus spine in
    /// `Roots` mode (the incremental win), the full rewritten term in
    /// `Subexpressions` mode (the index needs every node's hash anyway).
    pub spine_nodes_rehashed: u64,
}

/// How many per-term incremental hashers the store keeps alive. Each one
/// holds a named copy of its term plus O(n) hash state, so the cache is
/// deliberately small; evicted terms just pay one O(n) rebuild on their
/// next update.
const UPDATE_CACHE_CAP: usize = 64;

/// The store's incremental-rewrite state: a bounded map from
/// `TermId::to_bits` to the live [`IncrementalHasher`] tracking that
/// term's evolving named form. Guarded by the `updates` mutex, which
/// doubles as the serializer for all updates (both granularities).
pub(crate) struct UpdateCache<H: HashWord> {
    entries: HashMap<u64, CachedSpine<H>>,
}

struct CachedSpine<H: HashWord> {
    /// `ClassId::to_bits` of the term's class when the hasher was last
    /// synchronized — the cache-validity check.
    class_bits: u64,
    hasher: IncrementalHasher<H>,
}

impl<H: HashWord> Default for UpdateCache<H> {
    fn default() -> Self {
        UpdateCache {
            entries: HashMap::new(),
        }
    }
}

impl<H: HashWord> UpdateCache<H> {
    /// Removes and returns the cached hasher for `term_bits` iff it is
    /// still synchronized with `class_bits`. A stale entry (the term was
    /// repointed without the cache hearing about it) is dropped.
    fn take(&mut self, term_bits: u64, class_bits: u64) -> Option<IncrementalHasher<H>> {
        let cached = self.entries.remove(&term_bits)?;
        (cached.class_bits == class_bits).then_some(cached.hasher)
    }

    /// (Re-)caches a hasher, evicting an arbitrary entry at capacity.
    fn put(&mut self, term_bits: u64, class_bits: u64, hasher: IncrementalHasher<H>) {
        if self.entries.len() >= UPDATE_CACHE_CAP && !self.entries.contains_key(&term_bits) {
            if let Some(&victim) = self.entries.keys().next() {
                self.entries.remove(&victim);
            }
        }
        self.entries
            .insert(term_bits, CachedSpine { class_bits, hasher });
    }
}

fn invalid(reason: impl Into<String>) -> StoreError {
    StoreError::InvalidRewrite {
        reason: reason.into(),
    }
}

/// One step of a rewrite path in a named arena.
fn child_at(children: Children, slot: u32) -> Option<NodeId> {
    match (children, slot) {
        (Children::One(b), 0) => Some(b),
        (Children::Two(f, _), 0) => Some(f),
        (Children::Two(_, a), 1) => Some(a),
        _ => None,
    }
}

/// Resolves a child-slot path from `root`, or says which step failed.
fn resolve_path_named(arena: &ExprArena, root: NodeId, path: &[u32]) -> Result<NodeId, String> {
    let mut cur = root;
    for (depth, &slot) in path.iter().enumerate() {
        let children = arena.node(cur).children();
        cur = child_at(children, slot).ok_or_else(|| {
            format!(
                "path step {depth} asks for child {slot} of a node with {} children",
                children.len()
            )
        })?;
    }
    Ok(cur)
}

/// The canonical mirror of [`child_at`].
fn canon_child(node: &CanonNode, slot: u32) -> Option<CanonRef> {
    match (node, slot) {
        (CanonNode::Lam(b), 0) => Some(*b),
        (CanonNode::App(f, _), 0) => Some(*f),
        (CanonNode::App(_, a), 1) => Some(*a),
        (CanonNode::Let(r, _), 0) => Some(*r),
        (CanonNode::Let(_, b), 1) => Some(*b),
        _ => None,
    }
}

/// `node` with the child at `slot` replaced (slot already validated).
fn canon_with_child(node: CanonNode, slot: u32, child: CanonRef) -> CanonNode {
    match (node, slot) {
        (CanonNode::Lam(_), 0) => CanonNode::Lam(child),
        (CanonNode::App(_, a), 0) => CanonNode::App(child, a),
        (CanonNode::App(f, _), 1) => CanonNode::App(f, child),
        (CanonNode::Let(_, b), 0) => CanonNode::Let(child, b),
        (CanonNode::Let(r, _), 1) => CanonNode::Let(r, child),
        _ => unreachable!("slot was validated while walking the spine"),
    }
}

/// Splices `patch` into the canon rooted at `old_root` along `path`,
/// re-interning **only the spine**: every untouched subtree keeps its
/// existing [`CanonRef`]. De Bruijn indices need no shifting — the patch
/// is closed over the host's binders (its free variables are by-name
/// `FVar`s), so its bound indices are self-contained, and the spine's
/// sibling subtrees sit at unchanged binding depths.
fn splice_canon(
    table: &CanonTable,
    old_root: CanonRef,
    path: &[u32],
    patch: CanonRef,
) -> Result<CanonRef, String> {
    if path.is_empty() {
        return Ok(patch);
    }
    let mut spine: Vec<(CanonNode, u32)> = Vec::with_capacity(path.len());
    {
        // Walk down under a read view; released before interning (the
        // table's documented view-before-write discipline).
        let mut view = TableView::new(table);
        let mut cur = old_root;
        for (depth, &slot) in path.iter().enumerate() {
            let node = view.node(cur);
            cur = canon_child(&node, slot).ok_or_else(|| {
                format!("path step {depth} asks for child {slot}, which the canonical form lacks")
            })?;
            spine.push((node, slot));
        }
    }
    let mut replacement = patch;
    for (node, slot) in spine.into_iter().rev() {
        replacement = table.intern_node(canon_with_child(node, slot, replacement));
    }
    Ok(replacement)
}

/// Rejects replacements that are not closed over the host's binders: a
/// free variable whose name contains `'%'` can only be naming a
/// machine-generated binder of the canonical representative, which the
/// by-name splice would capture (or, in the canon, silently *not*
/// capture — a mis-hash either way).
fn check_patch_closed(arena: &ExprArena, root: NodeId) -> Result<(), StoreError> {
    for &sym in lambda_lang::stats::free_vars(arena, root).keys() {
        let name = arena.name(sym);
        if name.contains('%') {
            return Err(invalid(format!(
                "replacement has free variable `{name}`: names containing '%' are \
                 machine-generated binders of the host term, and capturing them is \
                 not expressible — rewrites must be closed over the host's binders"
            )));
        }
    }
    Ok(())
}

/// Builds the **effective rewritten term** into `dst` and returns its
/// root: the class canon's named rebuild with the patch canon's named
/// rebuild spliced in at `path`. Fully deterministic given the two
/// canonical forms — the construction live updates, WAL replay and
/// [`AlphaStore::preview_rewrite`] all share.
fn build_rewritten<H: HashWord>(
    store: &AlphaStore<H>,
    old_canon: CanonRef,
    path: &[u32],
    patch: &DbArena,
    patch_root: DbId,
    dst: &mut ExprArena,
) -> Result<NodeId, String> {
    let (host_db, host_db_root) = {
        let mut view = TableView::new(&store.table);
        extract_one(&mut view, old_canon)
    };
    let host_root = rebuild_named(&host_db, host_db_root, dst);
    if path.is_empty() {
        return Ok(rebuild_named(patch, patch_root, dst));
    }
    let target = resolve_path_named(dst, host_root, path)?;
    // The fresh-name counter continues past the host's binders, so the
    // patch's binders are unique against the whole spliced term.
    let patch_named = rebuild_named(patch, patch_root, dst);
    dst.replace_node(target, dst.node(patch_named));
    Ok(host_root)
}

impl<H: HashWord> AlphaStore<H> {
    /// Applies a local rewrite to a previously ingested term, re-hashing
    /// only the patch and the spine to the root, reusing interned canon
    /// for every untouched subtree, and re-indexing only the
    /// subexpression entries whose membership changed. Durable stores log
    /// one compact WAL **delta record** instead of the full term. See the
    /// [module docs](self) for the exact semantics.
    ///
    /// ```
    /// use alpha_store::{AlphaStore, Rewrite};
    /// use lambda_lang::{parse, ExprArena};
    ///
    /// let store: AlphaStore<u64> = AlphaStore::default();
    /// let mut arena = ExprArena::new();
    /// let t = parse(&mut arena, r"\x. x + (v * 3)").unwrap();
    /// let inserted = store.insert(&arena, t);
    ///
    /// // Rewrite the multiplication argument: lam body (0), then the
    /// // application's argument (1).
    /// let patch = parse(&mut arena, "v * 4").unwrap();
    /// let outcome = store.update(
    ///     inserted.term,
    ///     Rewrite { path: &[0, 1], arena: &arena, root: patch },
    /// );
    /// assert_eq!(outcome.term, inserted.term);
    /// assert_ne!(outcome.class, inserted.class);
    /// assert_eq!(store.class_of(inserted.term), outcome.class);
    ///
    /// // The store now holds `\x. x + (v * 4)`, not the original.
    /// let rewritten = parse(&mut arena, r"\q. q + (v * 4)").unwrap();
    /// assert_eq!(store.lookup(&arena, rewritten), Some(outcome.class));
    /// assert_eq!(store.num_terms(), 1); // same handle, repointed
    /// ```
    ///
    /// # Panics
    ///
    /// Panics on any [`StoreError`] — an invalid rewrite, a read-only
    /// store, or a WAL append that failed beyond the retry policy. Use
    /// [`AlphaStore::try_update`] to handle those as errors.
    pub fn update(&self, term: TermId, rewrite: Rewrite<'_>) -> UpdateOutcome {
        self.try_update(term, rewrite)
            .unwrap_or_else(|e| panic!("update failed: {e}"))
    }

    /// [`AlphaStore::update`], but failures come back as a typed
    /// [`StoreError`]. [`StoreError::InvalidRewrite`] (unknown term, bad
    /// path, non-closed replacement) is returned **before any state
    /// changes** — store, WAL and cache are exactly as they were. A WAL
    /// failure ([`StoreError::Persist`]) likewise leaves memory
    /// untouched; it only evicts the term's cached hasher, which the
    /// next update rebuilds.
    pub fn try_update(
        &self,
        term: TermId,
        rewrite: Rewrite<'_>,
    ) -> Result<UpdateOutcome, StoreError> {
        self.validate_term(term)?;
        check_patch_closed(rewrite.arena, rewrite.root)?;
        match self.granularity {
            Granularity::Roots => self.update_roots(term, &rewrite),
            Granularity::Subexpressions { min_nodes } => {
                self.update_subs(term, &rewrite, min_nodes)
            }
        }
    }

    /// Applies a sequence of rewrites, one [`AlphaStore::try_update`]
    /// each, in order. On `Err`, every rewrite before the failing one was
    /// fully applied (they are independent durable operations) and the
    /// failing one plus everything after it was not.
    pub fn try_update_batch(
        &self,
        edits: &[(TermId, Rewrite<'_>)],
    ) -> Result<Vec<UpdateOutcome>, StoreError> {
        edits
            .iter()
            .map(|&(term, rewrite)| self.try_update(term, rewrite))
            .collect()
    }

    /// Builds the **effective rewritten term** — what
    /// [`AlphaStore::update`] would ingest for this `(term, rewrite)` —
    /// into `dst` and returns its root, without changing the store. This
    /// is the normalized form: the class's canonical representative with
    /// the patch's canonical content spliced in, fresh machine binders
    /// throughout. The differential oracle tests feed this to a fresh
    /// store to cross-check `update` against plain ingest.
    pub fn preview_rewrite(
        &self,
        term: TermId,
        rewrite: Rewrite<'_>,
        dst: &mut ExprArena,
    ) -> Result<NodeId, StoreError> {
        self.validate_term(term)?;
        check_patch_closed(rewrite.arena, rewrite.root)?;
        let old_canon = self.with_class(self.class_of(term), |c| c.canon);
        let (patch_db, patch_db_root) = to_debruijn(rewrite.arena, rewrite.root);
        build_rewritten(self, old_canon, rewrite.path, &patch_db, patch_db_root, dst)
            .map_err(invalid)
    }

    /// Rejects handles this store never issued (including out-of-range
    /// bits arriving from the wire) with a typed error instead of a
    /// panic.
    fn validate_term(&self, term: TermId) -> Result<(), StoreError> {
        let s = term.shard as usize;
        if s < self.shards.len() {
            let shard = self.shards[s].read().expect("shard lock poisoned");
            if (term.index as usize) < shard.terms.len() {
                return Ok(());
            }
        }
        Err(invalid(format!(
            "unknown term {term:?}: handle was not issued by this store"
        )))
    }

    /// The `Roots`-granularity update: O(spine) re-hash through the
    /// cached [`IncrementalHasher`], O(spine) canon re-intern through
    /// [`splice_canon`], one delta WAL append, three brief shard
    /// critical sections.
    fn update_roots(
        &self,
        term: TermId,
        rewrite: &Rewrite<'_>,
    ) -> Result<UpdateOutcome, StoreError> {
        let outcome = {
            // Lock order: maintenance (shared) → updates → WAL → shards.
            let _ingest = self.maintenance.read().expect("maintenance lock poisoned");
            self.check_writable()?;
            let mut cache = self.updates.lock().expect("update lock poisoned");
            let term_bits = term.to_bits();
            let old_class = {
                let shard = self.shards[term.shard as usize]
                    .read()
                    .expect("shard lock poisoned");
                ClassId::from_bits(shard.terms[term.index as usize])
            };
            let (old_hash, old_canon) = self.with_class(old_class, |c| (c.hash, c.canon));

            // The spine hasher: cached from the previous update of this
            // term, or rebuilt (O(n), once) from the class canon.
            let mut hasher = match cache.take(term_bits, old_class.to_bits()) {
                Some(h) => h,
                None => {
                    let (db, db_root) = {
                        let mut view = TableView::new(&self.table);
                        extract_one(&mut view, old_canon)
                    };
                    let mut arena = ExprArena::new();
                    let root = rebuild_named(&db, db_root, &mut arena);
                    IncrementalHasher::new(arena, root, self.scheme)
                }
            };

            // Validate the path and build the canonical splice before
            // mutating anything: a refusal here leaves store, cache and
            // hasher exactly as they were (interned orphan nodes aside,
            // which is the same pre-WAL interning the prepare path does).
            let target = match resolve_path_named(hasher.arena(), hasher.root(), rewrite.path) {
                Ok(t) => t,
                Err(reason) => {
                    cache.put(term_bits, old_class.to_bits(), hasher);
                    return Err(invalid(reason));
                }
            };
            let (patch_db, patch_db_root) = to_debruijn(rewrite.arena, rewrite.root);
            let patch_ref = self.table.intern_arena(&patch_db, patch_db_root);
            let new_canon = match splice_canon(&self.table, old_canon, rewrite.path, patch_ref) {
                Ok(r) => r,
                Err(reason) => {
                    cache.put(term_bits, old_class.to_bits(), hasher);
                    return Err(invalid(reason));
                }
            };

            // O(spine) re-hash. From here the hasher has diverged from
            // the stored class: failure paths drop it (eviction) instead
            // of re-caching, and the next update rebuilds from canon.
            let replaced = hasher
                .replace_subtree(target, rewrite.arena, rewrite.root)
                .map_err(|e| invalid(format!("replacement target is not live: {e}")))?;
            let spine_nodes = replaced.stats.nodes_recomputed as u64;
            let new_hash = hasher.root_hash();
            let new_node_count = hasher.live_nodes() as u64;

            let delta = RawDelta {
                term_bits,
                old_hash,
                new_hash,
                new_node_count,
                path: rewrite.path.to_vec(),
                patch: patch_db,
                patch_root: patch_db_root,
            };
            // WAL failure: memory untouched, hasher dropped by `?`.
            self.wal_log_delta(&delta)?;

            let (class, fresh) =
                self.apply_root_update(term, old_class, new_hash, new_node_count, new_canon);
            cache.put(term_bits, class.to_bits(), hasher);
            self.obs.rec_update(spine_nodes);
            UpdateOutcome {
                term,
                old_class,
                class,
                fresh,
                subs: SubexprSummary::default(),
                spine_nodes_rehashed: spine_nodes,
            }
        };
        self.maybe_auto_checkpoint();
        Ok(outcome)
    }

    /// The `Subexpressions`-granularity update: build the effective
    /// rewritten term, re-prepare it (the index needs every node's hash),
    /// log the same compact delta, then **diff** the old and new
    /// `(class, multiplicity)` pair lists so only changed entries touch
    /// their shards.
    fn update_subs(
        &self,
        term: TermId,
        rewrite: &Rewrite<'_>,
        min_nodes: usize,
    ) -> Result<UpdateOutcome, StoreError> {
        let outcome = {
            let _ingest = self.maintenance.read().expect("maintenance lock poisoned");
            self.check_writable()?;
            // The cache is unused here, but its mutex is the update
            // serializer: the old-pairs snapshot must stay consistent
            // with the apply.
            let _serial = self.updates.lock().expect("update lock poisoned");
            let (old_class, old_pairs) = {
                let shard = self.shards[term.shard as usize]
                    .read()
                    .expect("shard lock poisoned");
                (
                    ClassId::from_bits(shard.terms[term.index as usize]),
                    shard.term_subs[term.index as usize].to_vec(),
                )
            };
            let (old_hash, old_canon) = self.with_class(old_class, |c| (c.hash, c.canon));

            let (patch_db, patch_db_root) = to_debruijn(rewrite.arena, rewrite.root);
            let mut dst = ExprArena::new();
            let new_root = build_rewritten(
                self,
                old_canon,
                rewrite.path,
                &patch_db,
                patch_db_root,
                &mut dst,
            )
            .map_err(invalid)?;
            let mut preparer = Preparer::new(&dst, &self.scheme);
            let pt = preparer.prepare_term(&dst, new_root, min_nodes, &self.table);
            let rehashed = pt.root.node_count;

            let delta = RawDelta {
                term_bits: term.to_bits(),
                old_hash,
                new_hash: pt.root.hash,
                new_node_count: pt.root.node_count,
                path: rewrite.path.to_vec(),
                patch: patch_db,
                patch_root: patch_db_root,
            };
            self.wal_log_delta(&delta)?;

            let (class, fresh, subs) = self.apply_sub_update(term, old_class, old_pairs, pt);
            self.obs.rec_update(rehashed);
            UpdateOutcome {
                term,
                old_class,
                class,
                fresh,
                subs,
                spine_nodes_rehashed: rehashed,
            }
        };
        self.maybe_auto_checkpoint();
        Ok(outcome)
    }

    /// Tees one delta record into the WAL as its own group commit. No-op
    /// on in-memory stores; retried per the store's policy like insert
    /// appends.
    fn wal_log_delta(&self, delta: &RawDelta<H>) -> Result<(), StoreError> {
        let Some(durable) = &self.durable else {
            return Ok(());
        };
        let mut frames = Vec::with_capacity(96 + delta.patch.len() * 10 + delta.path.len() * 4);
        frame_delta(&mut frames, delta);
        frame_commit(&mut frames, 1);
        self.wal_append_with_retry(durable, &frames, 1)
    }

    /// The shared memory apply of a `Roots`-mode update (live and
    /// replay): leave the old class (never removing it), join or create
    /// the new one — merge confirmation is the usual interned ref
    /// compare — and repoint the term.
    pub(crate) fn apply_root_update(
        &self,
        term: TermId,
        old_class: ClassId,
        new_hash: H,
        new_node_count: u64,
        new_canon: CanonRef,
    ) -> (ClassId, bool) {
        {
            let mut shard = self.shards[old_class.shard as usize]
                .write()
                .expect("shard lock poisoned");
            let c = &mut shard.classes[old_class.index as usize];
            c.members -= 1;
            c.occurrences -= 1;
        }
        let shard_index = self.shard_of(new_hash);
        let entry = SubEntry {
            hash: new_hash,
            node_count: new_node_count,
            multiplicity: 1,
            canon: PreparedCanon::Interned(new_canon),
        };
        let (class_index, fresh, collided) = {
            let mut shard = self.shards[shard_index]
                .write()
                .expect("shard lock poisoned");
            let mut view = TableView::new(&self.table);
            shard.insert_entry(&self.table, &mut view, entry, true, &self.obs)
        };
        if fresh {
            StatCounters::bump(&self.counters.classes_created);
        } else {
            StatCounters::bump(&self.counters.merges_confirmed);
        }
        if collided {
            StatCounters::bump(&self.counters.hash_collisions);
        }
        let class = ClassId {
            shard: u16::try_from(shard_index).expect("shard count fits u16"),
            index: class_index,
        };
        {
            let mut shard = self.shards[term.shard as usize]
                .write()
                .expect("shard lock poisoned");
            shard.terms[term.index as usize] = class.to_bits();
        }
        (class, fresh)
    }

    /// The shared memory apply of a `Subexpressions`-mode update (live
    /// and replay): diff the old pair list against the prepared new term.
    /// Pairs whose class recurs keep it without a probe (ref bijection);
    /// only the occurrence delta is applied. Entries only the new term
    /// has go through the normal exact insert; entries only the old term
    /// had are un-indexed by their recorded multiplicity.
    pub(crate) fn apply_sub_update(
        &self,
        term: TermId,
        old_class: ClassId,
        old_pairs: Vec<(u64, u32)>,
        pt: PreparedTerm<H>,
    ) -> (ClassId, bool, SubexprSummary) {
        // Key the old pairs by their class's canon ref: class ↔ canon is
        // a bijection (merges are exact), so ref equality identifies
        // "same subexpression class" without touching buckets.
        let old_root_bits = old_class.to_bits();
        let mut old_map: HashMap<CanonRef, (u64, u32)> = HashMap::with_capacity(old_pairs.len());
        for &(bits, mult) in &old_pairs {
            if bits == old_root_bits {
                // The root's own pair carries exactly the root occurrence:
                // a proper subterm is strictly smaller than the root, so
                // it can never share the root's class.
                debug_assert_eq!(mult, 1, "root pair carries only the root occurrence");
                continue;
            }
            let cref = self.with_class(ClassId::from_bits(bits), |c| c.canon);
            old_map.insert(cref, (bits, mult));
        }

        let mut summary = SubexprSummary {
            skipped_min_nodes: pt.skipped,
            ..SubexprSummary::default()
        };
        let mut new_pairs: Vec<(u64, u32)> = Vec::with_capacity(pt.subs.len() + 1);
        let (mut n_indexed, mut n_created, mut n_merged, mut n_collided) = (0u64, 0u64, 0u64, 0u64);
        for entry in pt.subs {
            let cref = match &entry.canon {
                PreparedCanon::Interned(r) => *r,
                PreparedCanon::Frontier { .. } => {
                    unreachable!("prepare_term interns every subexpression entry")
                }
            };
            let mult = entry.multiplicity;
            let m = u64::from(mult);
            n_indexed += m;
            summary.indexed += m;
            match old_map.remove(&cref) {
                Some((bits, old_mult)) => {
                    // Retained pair: same class, possibly different count.
                    if old_mult != mult {
                        let class = ClassId::from_bits(bits);
                        let mut shard = self.shards[class.shard as usize]
                            .write()
                            .expect("shard lock poisoned");
                        let c = &mut shard.classes[class.index as usize];
                        c.occurrences += m;
                        c.occurrences -= u64::from(old_mult);
                    }
                    n_merged += m;
                    summary.merged += m;
                    new_pairs.push((bits, mult));
                }
                None => {
                    let shard_index = self.shard_of(entry.hash);
                    let (class_index, fresh, collided) = {
                        let mut shard = self.shards[shard_index]
                            .write()
                            .expect("shard lock poisoned");
                        let mut view = TableView::new(&self.table);
                        shard.insert_entry(&self.table, &mut view, entry, false, &self.obs)
                    };
                    let bits = ClassId {
                        shard: u16::try_from(shard_index).expect("shard count fits u16"),
                        index: class_index,
                    }
                    .to_bits();
                    if fresh {
                        n_created += 1;
                        n_merged += m - 1;
                        summary.merged += m - 1;
                    } else {
                        n_merged += m;
                        summary.merged += m;
                    }
                    if collided {
                        n_collided += 1;
                    }
                    new_pairs.push((bits, mult));
                }
            }
        }
        // Entries only the old term indexed: un-index by their recorded
        // multiplicity. The class stays resident (possibly at zero).
        for (bits, mult) in old_map.into_values() {
            let class = ClassId::from_bits(bits);
            let mut shard = self.shards[class.shard as usize]
                .write()
                .expect("shard lock poisoned");
            shard.classes[class.index as usize].occurrences -= u64::from(mult);
        }
        // The root: leave the old class, join or create the new one.
        {
            let mut shard = self.shards[old_class.shard as usize]
                .write()
                .expect("shard lock poisoned");
            let c = &mut shard.classes[old_class.index as usize];
            c.members -= 1;
            c.occurrences -= 1;
        }
        let root_shard = self.shard_of(pt.root.hash);
        let (class_index, fresh, collided) = {
            let mut shard = self.shards[root_shard]
                .write()
                .expect("shard lock poisoned");
            let mut view = TableView::new(&self.table);
            shard.insert_entry(&self.table, &mut view, pt.root, true, &self.obs)
        };
        let class = ClassId {
            shard: u16::try_from(root_shard).expect("shard count fits u16"),
            index: class_index,
        };
        if fresh {
            StatCounters::bump(&self.counters.classes_created);
        } else {
            StatCounters::bump(&self.counters.merges_confirmed);
        }
        if collided {
            StatCounters::bump(&self.counters.hash_collisions);
        }
        StatCounters::add(&self.counters.subterms_indexed, n_indexed);
        StatCounters::add(&self.counters.classes_created, n_created);
        StatCounters::add(&self.counters.subterm_merges_confirmed, n_merged);
        StatCounters::add(&self.counters.hash_collisions, n_collided);
        StatCounters::add(&self.counters.subterms_skipped_min_nodes, pt.skipped);

        // Sort + coalesce, then splice the root's own bit — the same
        // sorted-unique invariant finish_insert maintains.
        new_pairs.sort_unstable();
        new_pairs.dedup_by(|b, a| {
            if a.0 == b.0 {
                a.1 += b.1;
                true
            } else {
                false
            }
        });
        let bits = class.to_bits();
        match new_pairs.binary_search_by_key(&bits, |p| p.0) {
            Ok(pos) => new_pairs[pos].1 += 1,
            Err(pos) => new_pairs.insert(pos, (bits, 1)),
        }
        {
            let mut shard = self.shards[term.shard as usize]
                .write()
                .expect("shard lock poisoned");
            shard.terms[term.index as usize] = bits;
            shard.term_subs[term.index as usize] = new_pairs.into_boxed_slice();
        }
        (class, fresh, summary)
    }
}

/// Re-applies one recovered WAL delta record, called from the store's
/// replay loop in log order. The recorded old root hash must match the
/// class the term currently points at — a mismatch means the log and the
/// snapshot disagree about history and recovery must not guess. `Roots`
/// mode re-splices the canon and (under `verify`) re-hashes the result
/// from scratch; `Subexpressions` mode re-runs the full deterministic
/// sub-index construction, so its recomputed root hash is **always**
/// cross-checked against the record.
pub(crate) fn apply_update_replay<H: HashWord>(
    store: &AlphaStore<H>,
    delta: RawDelta<H>,
    verify: bool,
) -> Result<(), PersistError> {
    let corrupt = |context: String| PersistError::Corrupt { context };
    let term = TermId::from_bits(delta.term_bits);
    let s = term.shard as usize;
    if s >= store.shards.len() {
        return Err(corrupt(format!(
            "delta names shard {} of a {}-shard store",
            term.shard,
            store.shards.len()
        )));
    }
    let old_class_bits = {
        let shard = store.shards[s].read().expect("shard lock poisoned");
        let i = term.index as usize;
        if i >= shard.terms.len() {
            return Err(corrupt(format!("delta names unknown term {term:?}")));
        }
        shard.terms[i]
    };
    let old_class = ClassId::from_bits(old_class_bits);
    let (old_hash, old_canon) = store.with_class(old_class, |c| (c.hash, c.canon));
    if old_hash != delta.old_hash {
        return Err(corrupt(format!(
            "delta old-hash mismatch for {term:?}: log and store disagree about the \
             term's pre-update class"
        )));
    }
    match store.granularity {
        Granularity::Roots => {
            let patch_ref = store.table.intern_arena(&delta.patch, delta.patch_root);
            let new_canon = splice_canon(&store.table, old_canon, &delta.path, patch_ref)
                .map_err(|e| corrupt(format!("delta does not splice: {e}")))?;
            if verify {
                // Paranoid mode: rebuild a named representative of the
                // spliced canon and push it through the full hashing
                // pipeline before trusting the recorded hash.
                let (db, db_root) = {
                    let mut view = TableView::new(&store.table);
                    extract_one(&mut view, new_canon)
                };
                let mut arena = ExprArena::new();
                let root = rebuild_named(&db, db_root, &mut arena);
                let mut preparer = Preparer::new(&arena, &store.scheme);
                let (hash, _, _) = preparer.hash_and_canon(&arena, root);
                if hash != delta.new_hash {
                    return Err(corrupt(
                        "delta re-hash mismatch: spliced canon does not hash to the \
                         recorded root hash"
                            .to_owned(),
                    ));
                }
            }
            store.apply_root_update(
                term,
                old_class,
                delta.new_hash,
                delta.new_node_count,
                new_canon,
            );
        }
        Granularity::Subexpressions { min_nodes } => {
            let old_pairs = {
                let shard = store.shards[s].read().expect("shard lock poisoned");
                shard.term_subs[term.index as usize].to_vec()
            };
            let mut dst = ExprArena::new();
            let new_root = build_rewritten(
                store,
                old_canon,
                &delta.path,
                &delta.patch,
                delta.patch_root,
                &mut dst,
            )
            .map_err(|e| corrupt(format!("delta does not splice: {e}")))?;
            let mut preparer = Preparer::new(&dst, &store.scheme);
            let pt = preparer.prepare_term(&dst, new_root, min_nodes, &store.table);
            if pt.root.hash != delta.new_hash || pt.root.node_count != delta.new_node_count {
                return Err(corrupt(
                    "delta re-hash mismatch: replayed rewrite does not reproduce the \
                     recorded root hash and node count"
                        .to_owned(),
                ));
            }
            store.apply_sub_update(term, old_class, old_pairs, pt);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use alpha_hash::combine::HashScheme;
    use lambda_lang::parse::parse;

    fn roots_store() -> AlphaStore<u64> {
        AlphaStore::with_shards(HashScheme::new(0xA1FA), 8)
    }

    fn subs_store() -> AlphaStore<u64> {
        AlphaStore::builder()
            .scheme(HashScheme::new(0xA1FA))
            .shards(8)
            .subexpressions(1)
            .build()
    }

    #[test]
    fn roots_update_matches_fresh_ingest_of_the_preview() {
        let store = roots_store();
        let mut arena = ExprArena::new();
        let t = parse(&mut arena, r"\x. x + (v * 3)").unwrap();
        let ins = store.insert(&arena, t);
        let patch = parse(&mut arena, "v * 4").unwrap();
        let rw = Rewrite {
            path: &[0, 1],
            arena: &arena,
            root: patch,
        };

        let mut preview = ExprArena::new();
        let preview_root = store.preview_rewrite(ins.term, rw, &mut preview).unwrap();

        let out = store.update(ins.term, rw);
        assert_eq!(out.term, ins.term);
        assert_eq!(out.old_class, ins.class);
        assert_ne!(out.class, ins.class);
        assert!(out.fresh);
        assert!(out.spine_nodes_rehashed > 0);
        assert_eq!(store.class_of(ins.term), out.class);
        // The old class is stale but resident, and root-only probes skip it.
        assert_eq!(store.members(ins.class), 0);
        assert_eq!(store.lookup(&arena, t), None);
        // A fresh store fed the preview lands on the same canonical text.
        let fresh = roots_store();
        let fresh_ins = fresh.insert(&preview, preview_root);
        assert_eq!(
            fresh.canonical_text(fresh_ins.class),
            store.canonical_text(out.class)
        );
        assert_eq!(fresh.hash_of(fresh_ins.class), store.hash_of(out.class));
        assert!(store.stats().is_exact());
        // Terms are repointed, never reissued.
        assert_eq!(store.num_terms(), 1);
        assert_eq!(store.stats().terms_ingested, 1);
    }

    #[test]
    fn update_into_an_existing_class_merges_exactly() {
        let store = roots_store();
        let mut arena = ExprArena::new();
        let a = parse(&mut arena, r"\x. x + 1").unwrap();
        let b = parse(&mut arena, r"\y. y + 2").unwrap();
        let ia = store.insert(&arena, a);
        let ib = store.insert(&arena, b);
        assert_ne!(ia.class, ib.class);
        // Rewrite b's literal 2 → 1: it must join a's class, confirmed.
        let one = parse(&mut arena, "1").unwrap();
        let out = store.update(
            ib.term,
            Rewrite {
                path: &[0, 1],
                arena: &arena,
                root: one,
            },
        );
        assert_eq!(out.class, ia.class);
        assert!(!out.fresh);
        assert_eq!(store.members(ia.class), 2);
        assert_eq!(store.members(ib.class), 0);
        assert!(store.stats().is_exact());
    }

    #[test]
    fn consecutive_updates_reuse_the_cached_spine_hasher() {
        let store = roots_store();
        let mut arena = ExprArena::new();
        let t = parse(&mut arena, r"\x. x + (v * 3)").unwrap();
        let ins = store.insert(&arena, t);
        let mut term = ins.term;
        let mut last = ins.class;
        for k in 5..9 {
            let patch_src = format!("v * {k}");
            let patch = parse(&mut arena, &patch_src).unwrap();
            let out = store.update(
                term,
                Rewrite {
                    path: &[0, 1],
                    arena: &arena,
                    root: patch,
                },
            );
            assert_ne!(out.class, last);
            // Spine-local: far fewer nodes re-hashed than the whole term.
            assert!(out.spine_nodes_rehashed < 10);
            term = out.term;
            last = out.class;
        }
        let expect = parse(&mut arena, r"\q. q + (v * 8)").unwrap();
        assert_eq!(store.lookup(&arena, expect), Some(last));
    }

    #[test]
    fn sub_mode_update_diffs_the_index() {
        let store = subs_store();
        let mut arena = ExprArena::new();
        let t = parse(&mut arena, "(v + 7) * (v + 7)").unwrap();
        let ins = store.insert(&arena, t);
        let pat = parse(&mut arena, "v + 7").unwrap();
        let shared = store.contains(&arena, pat).unwrap();
        assert_eq!(store.occurrences(shared), 2);

        // Rewrite the right factor to (v + 8): one occurrence of v+7
        // remains, and v+8 appears.
        let patch = parse(&mut arena, "v + 8").unwrap();
        let out = store.update(
            ins.term,
            Rewrite {
                path: &[1],
                arena: &arena,
                root: patch,
            },
        );
        assert_ne!(out.class, ins.class);
        assert!(out.subs.indexed > 0);
        assert_eq!(store.occurrences(shared), 1);
        let pat8 = parse(&mut arena, "v + 8").unwrap();
        let c8 = store.contains(&arena, pat8).expect("newly indexed");
        assert_eq!(store.occurrences(c8), 1);
        // The term's pair list agrees with the live classes.
        let classes: Vec<ClassId> = store.subterm_classes(ins.term).collect();
        assert!(classes.contains(&shared));
        assert!(classes.contains(&c8));
        assert!(classes.contains(&out.class));
        assert!(store.stats().is_exact());
    }

    #[test]
    fn invalid_rewrites_are_typed_refusals_that_change_nothing() {
        let store = roots_store();
        let mut arena = ExprArena::new();
        let t = parse(&mut arena, r"\x. x + 1").unwrap();
        let ins = store.insert(&arena, t);
        let patch = parse(&mut arena, "2").unwrap();

        // Unknown term handle (wire bits): refused, not a panic.
        let bogus = TermId::from_bits(0xFFFF_0000_0000_0123);
        let err = store
            .try_update(
                bogus,
                Rewrite {
                    path: &[],
                    arena: &arena,
                    root: patch,
                },
            )
            .unwrap_err();
        assert!(matches!(err, StoreError::InvalidRewrite { .. }), "{err}");

        // Path off the end of a leaf.
        let err = store
            .try_update(
                ins.term,
                Rewrite {
                    path: &[0, 0, 0, 0, 0, 0],
                    arena: &arena,
                    root: patch,
                },
            )
            .unwrap_err();
        assert!(matches!(err, StoreError::InvalidRewrite { .. }), "{err}");

        // Nothing moved.
        assert_eq!(store.class_of(ins.term), ins.class);
        assert_eq!(store.members(ins.class), 1);
        assert_eq!(store.num_classes(), 1);
    }

    #[test]
    fn replacements_touching_machine_binders_are_rejected() {
        let store = roots_store();
        let mut arena = ExprArena::new();
        let t = parse(&mut arena, r"\x. x + 1").unwrap();
        let ins = store.insert(&arena, t);
        // The canonical representative's binder is machine-named (r%N).
        // A patch that names it would be captured by the by-name splice.
        let mut rep = ExprArena::new();
        let rep_root = store.representative_into(ins.class, &mut rep);
        let binder = rep
            .node(rep_root)
            .binder()
            .expect("representative is a lambda");
        let binder_name = rep.name(binder).to_owned();
        assert!(binder_name.contains('%'));
        let mut patch_arena = ExprArena::new();
        let patch = patch_arena.var_named(&binder_name);
        let err = store
            .try_update(
                ins.term,
                Rewrite {
                    path: &[0],
                    arena: &patch_arena,
                    root: patch,
                },
            )
            .unwrap_err();
        assert!(matches!(err, StoreError::InvalidRewrite { .. }), "{err}");
        assert_eq!(store.class_of(ins.term), ins.class);
    }

    #[test]
    fn whole_root_replacement_uses_the_empty_path() {
        let store = roots_store();
        let mut arena = ExprArena::new();
        let t = parse(&mut arena, r"\x. x").unwrap();
        let ins = store.insert(&arena, t);
        let patch = parse(&mut arena, r"\a. \b. a b").unwrap();
        let out = store.update(
            ins.term,
            Rewrite {
                path: &[],
                arena: &arena,
                root: patch,
            },
        );
        assert_eq!(store.canonical_text(out.class), r"\. \. %1 %0");
        assert_eq!(store.class_of(ins.term), out.class);
    }

    #[test]
    fn batch_updates_apply_a_prefix_on_error() {
        let store = roots_store();
        let mut arena = ExprArena::new();
        let a = parse(&mut arena, r"\x. x + 1").unwrap();
        let b = parse(&mut arena, r"\y. y * 2").unwrap();
        let ia = store.insert(&arena, a);
        let ib = store.insert(&arena, b);
        let patch = parse(&mut arena, "9").unwrap();
        let good = Rewrite {
            path: &[0, 1],
            arena: &arena,
            root: patch,
        };
        let bad = Rewrite {
            path: &[7],
            arena: &arena,
            root: patch,
        };
        let err = store
            .try_update_batch(&[(ia.term, good), (ib.term, bad)])
            .unwrap_err();
        assert!(matches!(err, StoreError::InvalidRewrite { .. }));
        // The first edit landed, the failing one did not.
        let rewritten = parse(&mut arena, r"\q. q + 9").unwrap();
        assert_eq!(
            store.lookup(&arena, rewritten),
            Some(store.class_of(ia.term))
        );
        assert_eq!(store.class_of(ib.term), ib.class);
    }
}
