//! The hash-consed canon DAG: one shared, append-only node table for every
//! canonical form the store holds.
//!
//! ## Why
//!
//! The store used to own one standalone [`DbArena`] per class — and, at
//! [`Granularity::Subexpressions`](crate::Granularity::Subexpressions),
//! per indexed subterm class. Canonical forms overlap massively (every
//! subterm of a spine shares its suffix with every larger subterm; alpha-
//! duplicated corpora repeat whole trees), so the resident bytes were a
//! large multiple of the distinct structure. The paper's own framing (§3)
//! is that the corpus of equivalence classes *is* a DAG; this module makes
//! the storage match: canonical de Bruijn nodes are **interned once** into
//! a [`CanonTable`], children are [`CanonRef`]s, and classes hold a single
//! root ref.
//!
//! ## Exactness
//!
//! Interning is keyed on the node itself (`HashMap<CanonNode, index>`,
//! compared by `Eq`), and de Bruijn structure is context-free, so by
//! induction **two refs are equal iff the terms they root are identical**.
//! That upgrades merge confirmation: when both sides are interned, `db_eq`
//! is one ref compare; only *frontier* terms (not yet interned — the root-
//! granularity hot path, and read-only queries) fall back to a structural
//! walk against the DAG ([`eq_frontier`]). Either way no merge is ever
//! taken on hash equality alone.
//!
//! ## Concurrency
//!
//! The table is sharded by node hash ([`DEFAULT_TABLE_SHARDS`] stripes
//! unless the builder configures another power of two). Each stripe holds
//! its nodes in an append-only `RwLock<Vec<CanonNode>>` plus an interning
//! map behind a `Mutex`. Readers use a [`TableView`], which lazily caches
//! one read guard per stripe so a whole compare or extraction walk costs
//! one batch of lock acquisitions, not one per node. Lock order: store locks are always taken **before**
//! table locks (maintenance → WAL → store shards → canon table), and
//! interning never holds more than one table lock at a time, so the lock
//! graph is acyclic. A [`TableView`] must be [released](TableView::release)
//! before its thread interns (read→write upgrade on one stripe would
//! deadlock); the store does this exactly where a fresh class interns its
//! frontier canon.

use alpha_hash::combine::mix64;
use lambda_lang::canon::{CanonNode, CanonRef, NameId};
use lambda_lang::debruijn::{DbArena, DbId, DbNode};
use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, RwLock, RwLockReadGuard};

/// Default number of lock stripes in a [`CanonTable`] — the value the
/// table always used before stripe counts became builder-configurable.
/// Refs pack the stripe into their low bits, but nothing **on disk**
/// depends on the count (serialization uses flat topological positions,
/// not refs), so it is a per-process concurrency knob: the same
/// directory can be reopened under any stripe count.
pub(crate) const DEFAULT_TABLE_SHARDS: usize = 16;

/// Largest permitted stripe count: 8 stripe bits still leave 2^24 nodes
/// of packed-ref capacity per stripe, and lock stripes beyond the core
/// count stop paying for themselves long before 256.
pub(crate) const MAX_TABLE_SHARDS: usize = 256;

/// The adaptive stripe default: enough stripes to cover the machine's
/// cores, never fewer than the classic 16 (so small boxes keep exactly
/// the historical layout and its benchmark numbers), never more than
/// [`MAX_TABLE_SHARDS`].
pub(crate) fn default_table_shards() -> usize {
    std::thread::available_parallelism()
        .map_or(DEFAULT_TABLE_SHARDS, |n| n.get().next_power_of_two())
        .clamp(DEFAULT_TABLE_SHARDS, MAX_TABLE_SHARDS)
}

#[inline]
fn pack_ref(shard_bits: u32, shard: usize, index: u32) -> CanonRef {
    // A hard check, not a debug_assert: a truncated shift would alias two
    // distinct nodes under one ref, silently breaking the hash-consing
    // invariant (ref equality ⟺ term identity) the store's exactness
    // rests on. 2^(32-bits) nodes per stripe is the packing's capacity.
    assert!(
        // u64 shift: with a single stripe `shard_bits` is 0 and the
        // capacity is the full 2^32, which a u32 shift cannot express.
        (index as u64) < (1u64 << (32 - shard_bits)),
        "canon table stripe overflow: {index} does not fit a packed CanonRef"
    );
    CanonRef::from_bits((index << shard_bits) | shard as u32)
}

#[inline]
fn unpack_ref(shard_bits: u32, shard_mask: u32, r: CanonRef) -> (usize, usize) {
    let bits = r.to_bits();
    ((bits & shard_mask) as usize, (bits >> shard_bits) as usize)
}

/// A fast, deterministic hasher for [`CanonNode`] interning maps and for
/// routing nodes to table stripes (std's default hasher is both slower and
/// randomly seeded; stripe routing wants determinism for reproducible
/// profiles). Folds every written word through the splitmix64 finaliser.
#[derive(Default)]
pub(crate) struct NodeHasher(u64);

impl Hasher for NodeHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.0 = mix64(self.0 ^ u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.0 = mix64(self.0 ^ v as u64);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.0 = mix64(self.0 ^ v as u64);
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.0 = mix64(self.0 ^ v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.0 = mix64(self.0 ^ v as u64);
    }
}

type NodeMap = HashMap<CanonNode, u32, BuildHasherDefault<NodeHasher>>;

#[inline]
fn node_hash(node: &CanonNode) -> u64 {
    let mut h = NodeHasher::default();
    node.hash(&mut h);
    h.finish()
}

/// One lock stripe of the table: append-only node storage plus the
/// interning map over it. The map mutex serialises interning per stripe;
/// the node `RwLock` lets any number of [`TableView`]s read concurrently
/// with interning on *other* stripes.
struct TableShard {
    nodes: RwLock<Vec<CanonNode>>,
    map: Mutex<NodeMap>,
}

impl TableShard {
    fn new() -> Self {
        TableShard {
            nodes: RwLock::new(Vec::new()),
            map: Mutex::new(NodeMap::default()),
        }
    }
}

/// The shared, sharded, hash-consed canon node table. One per
/// [`AlphaStore`](crate::AlphaStore); every class and every interned
/// prepared entry holds [`CanonRef`]s into it.
pub(crate) struct CanonTable {
    shards: Vec<TableShard>,
    /// log2 of the stripe count: how far packed refs shift their index.
    shard_bits: u32,
    /// Stripe count minus one, for masking node hashes and packed refs.
    shard_mask: u32,
    names: RwLock<Vec<Box<str>>>,
    name_map: Mutex<HashMap<Box<str>, u32>>,
    /// Intern probes answered from the table (node already resident).
    hits: AtomicU64,
    /// Intern probes that appended a fresh node. Equals
    /// [`resident_nodes`](Self::resident_nodes) exactly: the stripe map
    /// mutex is held across the check-and-insert, so no probe is double
    /// counted.
    misses: AtomicU64,
}

impl CanonTable {
    /// A table with the default stripe count. Production stores size the
    /// table through the builder; this is the test shorthand.
    #[cfg(test)]
    pub(crate) fn new() -> Self {
        Self::with_shards(DEFAULT_TABLE_SHARDS)
    }

    /// A table with `count` lock stripes. `count` must be a power of two
    /// in `1..=`[`MAX_TABLE_SHARDS`] — the builder validates before
    /// calling, so violation here is a store bug, not bad user input.
    pub(crate) fn with_shards(count: usize) -> Self {
        assert!(
            count.is_power_of_two() && count <= MAX_TABLE_SHARDS,
            "canon table stripe count must be a power of two in 1..={MAX_TABLE_SHARDS}, got {count}"
        );
        CanonTable {
            shards: (0..count).map(|_| TableShard::new()).collect(),
            shard_bits: count.trailing_zeros(),
            shard_mask: count as u32 - 1,
            names: RwLock::new(Vec::new()),
            name_map: Mutex::new(HashMap::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Number of lock stripes this table was built with.
    pub(crate) fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Interns one node (children already interned), returning its ref.
    /// Idempotent: equal nodes always return the same ref.
    pub(crate) fn intern_node(&self, node: CanonNode) -> CanonRef {
        let shard = (node_hash(&node) & u64::from(self.shard_mask)) as usize;
        let stripe = &self.shards[shard];
        let mut map = stripe.map.lock().expect("canon map poisoned");
        if let Some(&index) = map.get(&node) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return pack_ref(self.shard_bits, shard, index);
        }
        let mut nodes = stripe.nodes.write().expect("canon nodes poisoned");
        let index = u32::try_from(nodes.len()).expect("canon stripe overflow");
        nodes.push(node);
        drop(nodes);
        map.insert(node, index);
        self.misses.fetch_add(1, Ordering::Relaxed);
        pack_ref(self.shard_bits, shard, index)
    }

    /// `(hits, misses)` of the intern probes since construction — the
    /// dedup ratio of the hash-consing layer. Only the obs surface reads
    /// it today, but the counters are maintained unconditionally (two
    /// relaxed atomics per intern) so the numbers are honest whenever
    /// the feature is recompiled in.
    #[cfg_attr(not(feature = "obs"), allow(dead_code))]
    pub(crate) fn intern_stats(&self) -> (u64, u64) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
        )
    }

    /// Interns a free-variable name, returning its global id. Idempotent.
    pub(crate) fn intern_name(&self, name: &str) -> NameId {
        let mut map = self.name_map.lock().expect("name map poisoned");
        if let Some(&index) = map.get(name) {
            return NameId::from_index(index);
        }
        let mut names = self.names.write().expect("names poisoned");
        let index = u32::try_from(names.len()).expect("name table overflow");
        names.push(name.into());
        drop(names);
        map.insert(name.into(), index);
        NameId::from_index(index)
    }

    /// Interns every node of a [`DbArena`] term bottom-up (arena order is
    /// topological), returning one ref per arena position. The whole-arena
    /// variant exists because decoded records address entries by position.
    pub(crate) fn intern_arena_refs(&self, arena: &DbArena) -> Vec<CanonRef> {
        let names: Vec<NameId> = arena.names().map(|n| self.intern_name(n)).collect();
        let mut refs: Vec<CanonRef> = Vec::with_capacity(arena.len());
        for node in arena.nodes() {
            let canon = match node {
                DbNode::BVar(i) => CanonNode::BVar(i),
                DbNode::FVar(sym) => CanonNode::FVar(names[sym.index() as usize]),
                DbNode::Lam(b) => CanonNode::Lam(refs[b.index()]),
                DbNode::App(f, a) => CanonNode::App(refs[f.index()], refs[a.index()]),
                DbNode::Let(r, b) => CanonNode::Let(refs[r.index()], refs[b.index()]),
                DbNode::Lit(l) => CanonNode::Lit(l),
            };
            refs.push(self.intern_node(canon));
        }
        refs
    }

    /// Interns the term rooted at `root` of `arena`, returning its ref —
    /// the frontier→DAG crossing for freshly created classes.
    pub(crate) fn intern_arena(&self, arena: &DbArena, root: DbId) -> CanonRef {
        self.intern_arena_refs(arena)[root.index()]
    }

    /// Resident distinct nodes across all stripes.
    pub(crate) fn resident_nodes(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.nodes.read().expect("canon nodes poisoned").len() as u64)
            .sum()
    }

    /// Resident distinct names and their total string bytes.
    pub(crate) fn resident_names(&self) -> (u64, u64) {
        let names = self.names.read().expect("names poisoned");
        let bytes: u64 = names.iter().map(|n| n.len() as u64).sum();
        (names.len() as u64, bytes)
    }
}

/// A read-only view of a [`CanonTable`] that caches one read guard per
/// stripe (plus the name table), acquired all-at-once on first use, so a
/// DAG walk costs O(stripes) lock acquisitions and then indexes guards
/// directly — no per-node branching. Create one per locked sweep, and
/// [release](TableView::release) it before interning on the same thread.
pub(crate) struct TableView<'t> {
    table: &'t CanonTable,
    guards: Option<ViewGuards<'t>>,
}

/// The acquired read guards: every node stripe plus the name table.
pub(crate) struct ViewGuards<'t> {
    nodes: Vec<RwLockReadGuard<'t, Vec<CanonNode>>>,
    /// Copied from the owning table so ref unpacking needs no extra hop.
    shard_bits: u32,
    shard_mask: u32,
    names: RwLockReadGuard<'t, Vec<Box<str>>>,
}

impl ViewGuards<'_> {
    /// The node behind `r` — two array indexes, no locking.
    #[inline]
    pub(crate) fn node(&self, r: CanonRef) -> CanonNode {
        let (shard, index) = unpack_ref(self.shard_bits, self.shard_mask, r);
        self.nodes[shard][index]
    }

    /// The name string behind `id`.
    #[inline]
    pub(crate) fn name(&self, id: NameId) -> &str {
        &self.names[id.index() as usize]
    }

    /// Flattens the guard set to plain slices — hot walks resolve these
    /// once per walk and then read nodes with a single dependent load
    /// each, instead of re-dereferencing a guard per node. One small
    /// allocation per walk, amortised over its whole node count.
    #[inline]
    pub(crate) fn slices(&self) -> Vec<&[CanonNode]> {
        self.nodes.iter().map(|g| g.as_slice()).collect()
    }
}

impl<'t> TableView<'t> {
    pub(crate) fn new(table: &'t CanonTable) -> Self {
        TableView {
            table,
            guards: None,
        }
    }

    /// The guard set, acquired on first use. Hoist this out of node-walk
    /// loops: the returned reference indexes without branches.
    pub(crate) fn guards(&mut self) -> &ViewGuards<'t> {
        let table = self.table;
        self.guards.get_or_insert_with(|| ViewGuards {
            nodes: table
                .shards
                .iter()
                .map(|s| s.nodes.read().expect("canon nodes poisoned"))
                .collect(),
            shard_bits: table.shard_bits,
            shard_mask: table.shard_mask,
            names: table.names.read().expect("names poisoned"),
        })
    }

    /// The node behind `r` (acquiring the guards if needed).
    pub(crate) fn node(&mut self, r: CanonRef) -> CanonNode {
        self.guards().node(r)
    }

    /// The name string behind `id` (acquiring the guards if needed).
    pub(crate) fn name(&mut self, id: NameId) -> &str {
        self.guards();
        // Reborrow through the field so the returned &str ties to the
        // stored guards, not to the &mut self borrow `guards()` took.
        self.guards.as_ref().expect("just acquired").name(id)
    }

    /// Drops every cached guard. **Required** before the owning thread
    /// interns (a stripe's read guard would deadlock its write lock).
    pub(crate) fn release(&mut self) {
        self.guards = None;
    }
}

/// Structural equality between an interned term (`cref` in the DAG) and a
/// frontier term (`root` in `arena`) — the walk-compare that confirms
/// merges at the intern frontier. Exactly [`lambda_lang::debruijn::db_eq`]
/// semantics: indices by value, free variables by name, literals by value.
/// `steps` accumulates the number of node pairs visited (the walk length
/// the instrumentation seam reports for frontier merge confirmations);
/// pass `&mut 0` when the count is not wanted.
pub(crate) fn eq_frontier(
    view: &mut TableView<'_>,
    cref: CanonRef,
    arena: &DbArena,
    root: DbId,
    steps: &mut u64,
) -> bool {
    // Acquire the guard set once and flatten it to slices; the walk then
    // costs one dependent load per table node, like an arena walk.
    let guards = view.guards();
    let (shard_bits, shard_mask) = (guards.shard_bits, guards.shard_mask);
    let slices = guards.slices();
    let node_at = |r: CanonRef| {
        let (shard, index) = unpack_ref(shard_bits, shard_mask, r);
        slices[shard][index]
    };
    let mut stack: Vec<(CanonRef, DbId)> = vec![(cref, root)];
    while let Some((r, d)) = stack.pop() {
        *steps += 1;
        match (node_at(r), arena.node(d)) {
            (CanonNode::BVar(i), DbNode::BVar(j)) => {
                if i != j {
                    return false;
                }
            }
            (CanonNode::FVar(id), DbNode::FVar(sym)) => {
                if guards.name(id) != arena.name(sym) {
                    return false;
                }
            }
            (CanonNode::Lit(l1), DbNode::Lit(l2)) => {
                if l1 != l2 {
                    return false;
                }
            }
            (CanonNode::Lam(b1), DbNode::Lam(b2)) => stack.push((b1, b2)),
            (CanonNode::App(f1, a1), DbNode::App(f2, a2)) => {
                stack.push((a1, a2));
                stack.push((f1, f2));
            }
            (CanonNode::Let(r1, b1), DbNode::Let(r2, b2)) => {
                stack.push((b1, b2));
                stack.push((r1, r2));
            }
            _ => return false,
        }
    }
    true
}

/// Extracts the sub-DAG reachable from `roots` into a fresh [`DbArena`],
/// **preserving sharing** (each distinct ref becomes one arena node), and
/// returns the arena ids corresponding to `roots`. This is how classes
/// leave the table: representatives, printing, and snapshot encoding all
/// serialize through this walk. Children land at smaller arena positions
/// than parents (post-order emission), matching the wire format's
/// topological-order rule.
pub(crate) fn extract_canon(
    view: &mut TableView<'_>,
    roots: &[CanonRef],
    dst: &mut DbArena,
) -> Vec<DbId> {
    let mut memo: HashMap<u32, DbId> = HashMap::new();
    let mut name_memo: HashMap<u32, lambda_lang::Symbol> = HashMap::new();
    let mut stack: Vec<(CanonRef, bool)> = Vec::new();
    for &root in roots {
        stack.push((root, false));
        while let Some((r, expanded)) = stack.pop() {
            if memo.contains_key(&r.to_bits()) {
                continue;
            }
            let node = view.node(r);
            if !expanded {
                stack.push((r, true));
                let mut push_child = |c: CanonRef, memo: &HashMap<u32, DbId>| {
                    if !memo.contains_key(&c.to_bits()) {
                        stack.push((c, false));
                    }
                };
                match node {
                    CanonNode::Lam(b) => push_child(b, &memo),
                    CanonNode::App(f, a) => {
                        push_child(a, &memo);
                        push_child(f, &memo);
                    }
                    CanonNode::Let(rh, b) => {
                        push_child(b, &memo);
                        push_child(rh, &memo);
                    }
                    _ => {}
                }
            } else {
                let db = match node {
                    CanonNode::BVar(i) => DbNode::BVar(i),
                    CanonNode::FVar(id) => {
                        let sym = match name_memo.get(&id.index()) {
                            Some(&sym) => sym,
                            None => {
                                let sym = dst.intern(view.name(id));
                                name_memo.insert(id.index(), sym);
                                sym
                            }
                        };
                        DbNode::FVar(sym)
                    }
                    CanonNode::Lam(b) => DbNode::Lam(memo[&b.to_bits()]),
                    CanonNode::App(f, a) => DbNode::App(memo[&f.to_bits()], memo[&a.to_bits()]),
                    CanonNode::Let(rh, b) => DbNode::Let(memo[&rh.to_bits()], memo[&b.to_bits()]),
                    CanonNode::Lit(l) => DbNode::Lit(l),
                };
                memo.insert(r.to_bits(), dst.push(db));
            }
        }
    }
    roots.iter().map(|r| memo[&r.to_bits()]).collect()
}

/// Convenience wrapper: extracts one interned term as a standalone
/// `(arena, root)` pair.
pub(crate) fn extract_one(view: &mut TableView<'_>, cref: CanonRef) -> (DbArena, DbId) {
    let mut dst = DbArena::new();
    let root = extract_canon(view, &[cref], &mut dst)[0];
    (dst, root)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lambda_lang::debruijn::{db_eq, db_print, to_debruijn};
    use lambda_lang::parse::parse;
    use lambda_lang::ExprArena;

    fn canon_of(src: &str) -> (DbArena, DbId) {
        let mut a = ExprArena::new();
        let root = parse(&mut a, src).unwrap();
        to_debruijn(&a, root)
    }

    #[test]
    fn interning_is_idempotent_and_identity_preserving() {
        let table = CanonTable::new();
        let (c1, r1) = canon_of(r"\x. \y. x + y*7");
        let (c2, r2) = canon_of(r"\p. \q. p + q*7"); // alpha-equal: same canon
        let (c3, r3) = canon_of(r"\p. \q. q + p*7"); // different term
        let i1 = table.intern_arena(&c1, r1);
        let i2 = table.intern_arena(&c2, r2);
        let i3 = table.intern_arena(&c3, r3);
        assert_eq!(i1, i2, "identical canonical forms intern to one ref");
        assert_ne!(i1, i3, "distinct terms intern to distinct refs");
        // Second interning allocated nothing new.
        let resident = table.resident_nodes();
        assert_eq!(table.intern_arena(&c1, r1), i1);
        assert_eq!(table.resident_nodes(), resident);
    }

    #[test]
    fn shared_suffixes_are_stored_once() {
        let table = CanonTable::new();
        // Both terms contain the subterm v + 7 — its nodes intern once.
        let (c1, r1) = canon_of("(v + 7) * 3");
        let (c2, r2) = canon_of("(v + 7) * 4");
        table.intern_arena(&c1, r1);
        let after_first = table.resident_nodes();
        table.intern_arena(&c2, r2);
        let after_second = table.resident_nodes();
        // Only `4` and the two fresh applications of `mul` are new.
        assert!(
            after_second - after_first < c2.len() as u64 / 2,
            "second term should reuse the shared v+7 structure: {after_first} -> {after_second}"
        );
    }

    #[test]
    fn eq_frontier_agrees_with_db_eq() {
        let table = CanonTable::new();
        let samples = [
            (r"\x. x + y", r"\p. p + y", true),
            (r"\x. x + y", r"\q. q + z", false),
            (r"\x. \x. x", r"\a. \b. b", true),
            ("let bar = x+1 in bar*y", "let p = x+1 in p*y", true),
            ("let x = x in x", "let y = y in y", false),
            ("42", "42", true),
            ("42", "43", false),
        ];
        for (s1, s2, expected) in samples {
            let (c1, r1) = canon_of(s1);
            let (c2, r2) = canon_of(s2);
            let i1 = table.intern_arena(&c1, r1);
            let mut view = TableView::new(&table);
            let mut steps = 0u64;
            assert_eq!(
                eq_frontier(&mut view, i1, &c2, r2, &mut steps),
                expected,
                "{s1} vs {s2}"
            );
            assert!(steps > 0, "the walk visited at least the roots");
            assert_eq!(db_eq(&c1, r1, &c2, r2), expected);
        }
    }

    #[test]
    fn extract_round_trips_and_preserves_sharing() {
        let table = CanonTable::new();
        let (c, r) = canon_of(r"foo (\x. x+7) (\y. y+7) ((v+1) * (v+1))");
        let cref = table.intern_arena(&c, r);
        let mut view = TableView::new(&table);
        let (out, out_root) = extract_one(&mut view, cref);
        assert!(db_eq(&c, r, &out, out_root), "extraction changed the term");
        // Sharing survives: the extracted arena holds one node per
        // *distinct* subterm, strictly fewer than the tree size.
        assert!(out.len() < c.len(), "{} vs {}", out.len(), c.len());
        assert_eq!(db_print(&out, out_root), db_print(&c, r));
    }

    #[test]
    fn deep_terms_are_stack_safe_through_the_table() {
        let table = CanonTable::new();
        let mut a = ExprArena::new();
        let x = a.intern("x");
        let mut e = a.var(x);
        for _ in 0..120_000 {
            e = a.lam(x, e);
        }
        let (c, r) = to_debruijn(&a, e);
        let cref = table.intern_arena(&c, r);
        assert_eq!(table.resident_nodes(), 120_001);
        let mut view = TableView::new(&table);
        let (out, out_root) = extract_one(&mut view, cref);
        assert_eq!(out.len(), 120_001);
        assert!(matches!(out.node(out_root), DbNode::Lam(_)));
    }

    #[test]
    fn stripe_counts_are_interchangeable_views_of_the_same_terms() {
        // The stripe count is a per-process concurrency knob: the same
        // corpus interned under 1, 4, or 256 stripes yields identical
        // equality structure (refs differ in packing only).
        let sources = [r"\x. x + y", r"\p. p + y", r"\q. q + z", "v * (v + 1)"];
        let canons: Vec<(DbArena, DbId)> = sources.iter().map(|s| canon_of(s)).collect();
        let baseline = CanonTable::new();
        let base_refs: Vec<CanonRef> = canons
            .iter()
            .map(|(c, r)| baseline.intern_arena(c, *r))
            .collect();
        for count in [1usize, 4, MAX_TABLE_SHARDS] {
            let table = CanonTable::with_shards(count);
            assert_eq!(table.shard_count(), count);
            let refs: Vec<CanonRef> = canons
                .iter()
                .map(|(c, r)| table.intern_arena(c, *r))
                .collect();
            for i in 0..refs.len() {
                for j in 0..refs.len() {
                    assert_eq!(
                        refs[i] == refs[j],
                        base_refs[i] == base_refs[j],
                        "{count} stripes disagree on {} vs {}",
                        sources[i],
                        sources[j]
                    );
                }
            }
            assert_eq!(table.resident_nodes(), baseline.resident_nodes());
            // Extraction round-trips under every stripe count.
            let mut view = TableView::new(&table);
            let (out, out_root) = extract_one(&mut view, refs[0]);
            assert!(db_eq(&canons[0].0, canons[0].1, &out, out_root));
        }
    }

    #[test]
    fn concurrent_interning_converges_to_one_ref_per_term() {
        let table = CanonTable::new();
        let sources = [r"\x. x + 1", r"\y. y + 1", "v * (v + 1)", r"\a. \b. a b"];
        let canons: Vec<(DbArena, DbId)> = sources.iter().map(|s| canon_of(s)).collect();
        let refs: Vec<Vec<CanonRef>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    scope.spawn(|| {
                        canons
                            .iter()
                            .map(|(c, r)| table.intern_arena(c, *r))
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for other in &refs[1..] {
            assert_eq!(&refs[0], other);
        }
        assert_eq!(refs[0][0], refs[0][1], "alpha-equal terms share a ref");
    }
}
