//! The [`AlphaStore`]: sharded, concurrent, content-addressed storage of
//! alpha-equivalence classes.
//!
//! ## Concurrency model
//!
//! The store is lock-striped: the term's alpha-hash selects one of N
//! shards (N a power of two, fixed at construction), and each shard is an
//! independent `RwLock`-protected map from hash to classes. Ingesting
//! threads therefore contend only when their terms land on the same
//! stripe. All expensive work — hashing the term, converting it to
//! canonical de Bruijn form — happens *outside* the lock; the critical
//! section is a bucket probe plus (on a candidate match) a linear
//! canonical-form comparison.
//!
//! ## Exactness
//!
//! Content-addressed stores are usually probabilistic: equal address ⇒
//! assumed equal content. This store is exact. A hash match only nominates
//! a candidate class; the merge happens after [`db_eq`] confirms true
//! alpha-equivalence of canonical forms. Colliding-but-inequivalent terms
//! coexist in the same bucket as distinct classes, and the collision is
//! counted in [`StoreStats::hash_collisions`].

use crate::canon::rebuild_named;
use crate::prepare::Preparer;
use crate::stats::{StatCounters, StoreStats};
use alpha_hash::combine::{mix64, HashScheme, HashWord};
use lambda_lang::arena::{ExprArena, NodeId};
use lambda_lang::debruijn::{db_eq, db_print, DbArena, DbId};
use std::collections::HashMap;
use std::fmt;
use std::sync::RwLock;

/// Shared `Debug` shape for the two handle types: `c3.17` = shard 3,
/// index 17.
macro_rules! fmt_id {
    ($prefix:literal) => {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, concat!($prefix, "{}.{}"), self.shard, self.index)
        }
    };
}

/// Handle to an equivalence class inside one [`AlphaStore`].
///
/// Handles are only meaningful relative to the store that issued them;
/// they are stable for the lifetime of the store (classes are never
/// removed or renumbered).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ClassId {
    shard: u16,
    index: u32,
}

impl ClassId {
    /// Packs the handle into a single word (shard in the high bits), for
    /// use as a compact foreign key.
    pub fn to_bits(self) -> u64 {
        (u64::from(self.shard) << 32) | u64::from(self.index)
    }

    /// Inverse of [`ClassId::to_bits`].
    pub fn from_bits(bits: u64) -> Self {
        ClassId {
            shard: (bits >> 32) as u16,
            index: bits as u32,
        }
    }
}

impl fmt::Debug for ClassId {
    fmt_id!("c");
}

/// Handle to one ingested term inside one [`AlphaStore`].
///
/// Every successful [`AlphaStore::insert`] issues a fresh `TermId`, even
/// when the term merges into an existing class; [`AlphaStore::class_of`]
/// maps it back to its class.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TermId {
    shard: u16,
    index: u32,
}

impl fmt::Debug for TermId {
    fmt_id!("t");
}

/// What one insert did.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct InsertOutcome {
    /// Handle for the ingested term.
    pub term: TermId,
    /// The class the term belongs to.
    pub class: ClassId,
    /// `true` iff this insert created the class (first member).
    pub fresh: bool,
}

/// One stored equivalence class: the canonical de Bruijn form of its
/// members plus bookkeeping.
struct StoredClass<H> {
    hash: H,
    canon: DbArena,
    canon_root: DbId,
    node_count: usize,
    members: u64,
}

/// One lock stripe: hash-addressed classes plus the shard-local term log.
struct Shard<H> {
    /// Hash → indexes into `classes`. Almost always a single entry; more
    /// only under a true hash collision.
    buckets: HashMap<H, Vec<u32>>,
    classes: Vec<StoredClass<H>>,
    /// Term-local index → class index.
    terms: Vec<u32>,
}

impl<H: HashWord> Shard<H> {
    fn new() -> Self {
        Shard {
            buckets: HashMap::new(),
            classes: Vec::new(),
            terms: Vec::new(),
        }
    }

    /// Inserts a prepared term, returning (class index, fresh, collided).
    /// `collided` is true whenever this insert's hash matched at least one
    /// class that turned out not to be alpha-equivalent — on the merge
    /// path as well as on class creation — matching the definition of
    /// [`StoreStats::hash_collisions`].
    fn insert_prepared(&mut self, p: Prepared<H>) -> (u32, bool, bool) {
        let bucket = self.buckets.entry(p.hash).or_default();
        let mut mismatched = false;
        for &ci in bucket.iter() {
            let class = &self.classes[ci as usize];
            if db_eq(&class.canon, class.canon_root, &p.canon, p.canon_root) {
                self.classes[ci as usize].members += 1;
                return (ci, false, mismatched);
            }
            mismatched = true;
        }
        let collided = !bucket.is_empty();
        let ci = u32::try_from(self.classes.len()).expect("shard class overflow");
        bucket.push(ci);
        self.classes.push(StoredClass {
            hash: p.hash,
            node_count: p.canon.len(),
            canon: p.canon,
            canon_root: p.canon_root,
            members: 1,
        });
        (ci, true, collided)
    }

    fn find(&self, p: &Prepared<H>) -> Option<u32> {
        self.buckets.get(&p.hash)?.iter().copied().find(|&ci| {
            let class = &self.classes[ci as usize];
            db_eq(&class.canon, class.canon_root, &p.canon, p.canon_root)
        })
    }
}

/// The per-term work done outside any lock: hash plus canonical form.
struct Prepared<H> {
    hash: H,
    shard: usize,
    canon: DbArena,
    canon_root: DbId,
}

/// A sharded, concurrent, content-addressed store of alpha-equivalence
/// classes. See the [module docs](self) for the design.
///
/// The store is `Sync`: share it by reference (or `Arc`) and ingest from
/// many threads concurrently.
///
/// ```
/// use alpha_store::AlphaStore;
/// use lambda_lang::{parse, ExprArena};
///
/// let store: AlphaStore<u64> = AlphaStore::default();
/// let mut arena = ExprArena::new();
/// let roots = [
///     parse(&mut arena, r"\x. x + 1").unwrap(),
///     parse(&mut arena, r"\y. y + 1").unwrap(),
///     parse(&mut arena, r"\z. z + 2").unwrap(),
/// ];
/// std::thread::scope(|scope| {
///     for chunk in roots.chunks(2) {
///         scope.spawn(|| store.insert_batch(&arena, chunk));
///     }
/// });
/// assert_eq!(store.num_terms(), 3);
/// assert_eq!(store.num_classes(), 2); // the two x+1 lambdas merged
/// assert!(store.stats().is_exact());
/// ```
pub struct AlphaStore<H: HashWord = u64> {
    scheme: HashScheme<H>,
    shards: Box<[RwLock<Shard<H>>]>,
    mask: usize,
    counters: StatCounters,
}

impl<H: HashWord> Default for AlphaStore<H> {
    /// A store with the default [`HashScheme`] and [default shard
    /// count](AlphaStore::DEFAULT_SHARDS).
    fn default() -> Self {
        AlphaStore::new(HashScheme::default())
    }
}

impl<H: HashWord> AlphaStore<H> {
    /// Shard count used by [`AlphaStore::new`]: enough stripes that 8–16
    /// ingest threads rarely contend, cheap enough to be negligible for
    /// single-threaded use.
    pub const DEFAULT_SHARDS: usize = 16;

    /// A store hashing with `scheme`, with the default shard count.
    pub fn new(scheme: HashScheme<H>) -> Self {
        Self::with_shards(scheme, Self::DEFAULT_SHARDS)
    }

    /// A store with an explicit shard count. The count is rounded up to a
    /// power of two and clamped to `1..=65536`.
    pub fn with_shards(scheme: HashScheme<H>, shards: usize) -> Self {
        let count = shards.clamp(1, 1 << 16).next_power_of_two();
        let shards: Box<[RwLock<Shard<H>>]> =
            (0..count).map(|_| RwLock::new(Shard::new())).collect();
        AlphaStore {
            scheme,
            shards,
            mask: count - 1,
            counters: StatCounters::default(),
        }
    }

    /// The hash scheme terms are addressed with.
    pub fn scheme(&self) -> &HashScheme<H> {
        &self.scheme
    }

    /// Number of lock stripes.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Routes a hash to its shard. Re-mixed so that shard choice is not
    /// correlated with the low bits used by the buckets' `HashMap`.
    fn shard_of(&self, hash: H) -> usize {
        let (lo, hi) = hash.to_lanes();
        (mix64(lo ^ hi.rotate_left(32)) as usize) & self.mask
    }

    /// Hashing and canonicalization, done outside any lock: one fused
    /// post-order pass per term, with all scratch state (name-hash cache,
    /// traversal stacks, map pool) living in `preparer` so batches reuse
    /// it across terms.
    fn prepare(
        &self,
        preparer: &mut Preparer<'_, H>,
        arena: &ExprArena,
        root: NodeId,
    ) -> Prepared<H> {
        let (hash, canon, canon_root) = preparer.hash_and_canon(arena, root);
        Prepared {
            hash,
            shard: self.shard_of(hash),
            canon,
            canon_root,
        }
    }

    /// Ingests one term: routes it by content address, confirms any
    /// candidate merge by canonical-form comparison, and either joins an
    /// existing class or creates a new one.
    ///
    /// ```
    /// use alpha_store::AlphaStore;
    /// use lambda_lang::{parse, ExprArena};
    ///
    /// let store: AlphaStore<u64> = AlphaStore::default();
    /// let mut arena = ExprArena::new();
    /// let t = parse(&mut arena, "let w = v+7 in w*w").unwrap();
    /// let outcome = store.insert(&arena, t);
    /// assert!(outcome.fresh);
    /// assert_eq!(store.class_of(outcome.term), outcome.class);
    /// ```
    pub fn insert(&self, arena: &ExprArena, root: NodeId) -> InsertOutcome {
        let mut preparer = Preparer::new(arena, &self.scheme);
        let prepared = self.prepare(&mut preparer, arena, root);
        let mut shard = self.shards[prepared.shard]
            .write()
            .expect("shard lock poisoned");
        self.finish_insert(&mut shard, prepared)
    }

    /// Ingests a batch of terms, taking each shard lock at most once.
    ///
    /// Outcomes are returned in input order. Equivalent to calling
    /// [`AlphaStore::insert`] per term, but with per-term lock traffic
    /// amortised and one shared [`Preparer`] across the batch, so hashing
    /// scratch state and the name-hash cache are never rebuilt per term —
    /// the natural entry point for high-throughput ingest.
    pub fn insert_batch(&self, arena: &ExprArena, roots: &[NodeId]) -> Vec<InsertOutcome> {
        // All hashing/canonicalization first, outside any lock…
        let mut preparer = Preparer::new(arena, &self.scheme);
        let prepared: Vec<Prepared<H>> = roots
            .iter()
            .map(|&r| self.prepare(&mut preparer, arena, r))
            .collect();

        // …then group by shard and drain shard by shard, one lock each.
        let mut by_shard: HashMap<usize, Vec<(usize, Prepared<H>)>> = HashMap::new();
        for (i, p) in prepared.into_iter().enumerate() {
            by_shard.entry(p.shard).or_default().push((i, p));
        }

        let mut outcomes: Vec<Option<InsertOutcome>> = vec![None; roots.len()];
        for (shard_index, items) in by_shard {
            let mut shard = self.shards[shard_index]
                .write()
                .expect("shard lock poisoned");
            for (i, p) in items {
                outcomes[i] = Some(self.finish_insert(&mut shard, p));
            }
        }
        outcomes
            .into_iter()
            .map(|o| o.expect("every term processed"))
            .collect()
    }

    /// The critical section of an insert (shard lock already held).
    fn finish_insert(&self, shard: &mut Shard<H>, prepared: Prepared<H>) -> InsertOutcome {
        StatCounters::bump(&self.counters.terms_ingested);
        let shard_u16 = u16::try_from(prepared.shard).expect("shard count fits u16");
        let (class_index, fresh, collided) = shard.insert_prepared(prepared);
        if fresh {
            StatCounters::bump(&self.counters.classes_created);
        } else {
            StatCounters::bump(&self.counters.merges_confirmed);
        }
        if collided {
            StatCounters::bump(&self.counters.hash_collisions);
        }
        let term_index = u32::try_from(shard.terms.len()).expect("shard term overflow");
        shard.terms.push(class_index);
        InsertOutcome {
            term: TermId {
                shard: shard_u16,
                index: term_index,
            },
            class: ClassId {
                shard: shard_u16,
                index: class_index,
            },
            fresh,
        }
    }

    /// Finds the class of a term **without** ingesting it.
    pub fn lookup(&self, arena: &ExprArena, root: NodeId) -> Option<ClassId> {
        let mut preparer = Preparer::new(arena, &self.scheme);
        let prepared = self.prepare(&mut preparer, arena, root);
        let shard = self.shards[prepared.shard]
            .read()
            .expect("shard lock poisoned");
        shard.find(&prepared).map(|index| ClassId {
            shard: u16::try_from(prepared.shard).expect("shard count fits u16"),
            index,
        })
    }

    /// The class a previously ingested term belongs to.
    ///
    /// # Panics
    ///
    /// Panics if `term` was not issued by this store.
    pub fn class_of(&self, term: TermId) -> ClassId {
        let shard = self.shards[term.shard as usize]
            .read()
            .expect("shard lock poisoned");
        ClassId {
            shard: term.shard,
            index: shard.terms[term.index as usize],
        }
    }

    /// Number of distinct alpha-equivalence classes stored.
    pub fn num_classes(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.read().expect("shard lock poisoned").classes.len())
            .sum()
    }

    /// Number of terms ingested (every insert counts, merged or fresh).
    pub fn num_terms(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.read().expect("shard lock poisoned").terms.len())
            .sum()
    }

    /// Whether no term has been ingested yet.
    pub fn is_empty(&self) -> bool {
        self.num_terms() == 0
    }

    /// Snapshot of every class handle, ordered by shard then creation.
    ///
    /// The snapshot is taken shard by shard: classes created concurrently
    /// with the call may or may not appear, but every handle returned is
    /// valid forever.
    pub fn classes(&self) -> Vec<ClassId> {
        let mut out = Vec::new();
        for (si, stripe) in self.shards.iter().enumerate() {
            let shard = stripe.read().expect("shard lock poisoned");
            let si = u16::try_from(si).expect("shard count fits u16");
            out.extend((0..shard.classes.len() as u32).map(|index| ClassId { shard: si, index }));
        }
        out
    }

    /// How many ingested terms belong to `class`.
    ///
    /// # Panics
    ///
    /// Panics if `class` was not issued by this store.
    pub fn members(&self, class: ClassId) -> u64 {
        self.with_class(class, |c| c.members)
    }

    /// Node count of the class's canonical form (the size every member
    /// shares, alpha-equivalent terms being equisized).
    ///
    /// # Panics
    ///
    /// Panics if `class` was not issued by this store.
    pub fn node_count(&self, class: ClassId) -> usize {
        self.with_class(class, |c| c.node_count)
    }

    /// The content address (alpha-hash) of `class`.
    ///
    /// # Panics
    ///
    /// Panics if `class` was not issued by this store.
    pub fn hash_of(&self, class: ClassId) -> H {
        self.with_class(class, |c| c.hash)
    }

    /// The class's canonical form in the paper's de Bruijn notation
    /// (`\. %0`, free variables by name).
    ///
    /// # Panics
    ///
    /// Panics if `class` was not issued by this store.
    pub fn canonical_text(&self, class: ClassId) -> String {
        self.with_class(class, |c| db_print(&c.canon, c.canon_root))
    }

    /// Rebuilds a named representative of `class` into `dst` (fresh binder
    /// names, unique-binder invariant holds) and returns its root.
    ///
    /// # Panics
    ///
    /// Panics if `class` was not issued by this store.
    pub fn representative_into(&self, class: ClassId, dst: &mut ExprArena) -> NodeId {
        self.with_class(class, |c| rebuild_named(&c.canon, c.canon_root, dst))
    }

    /// Shared-DAG size of a corpus under this store's hash scheme; see
    /// [`crate::corpus::corpus_shared_dag_size`].
    pub fn shared_dag_size(&self, arena: &ExprArena, roots: &[NodeId]) -> usize {
        crate::corpus::corpus_shared_dag_size(arena, roots, &self.scheme)
    }

    /// Snapshot of the ingest statistics.
    pub fn stats(&self) -> StoreStats {
        self.counters.snapshot()
    }

    fn with_class<T>(&self, class: ClassId, f: impl FnOnce(&StoredClass<H>) -> T) -> T {
        let shard = self.shards[class.shard as usize]
            .read()
            .expect("shard lock poisoned");
        f(&shard.classes[class.index as usize])
    }
}

// The whole point of the sharded design: the store is shareable across
// ingest threads. Fails to compile if a non-Sync type sneaks in.
const _: fn() = || {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<AlphaStore<u64>>();
    assert_send_sync::<AlphaStore<u128>>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use lambda_lang::parse::parse;

    fn store() -> AlphaStore<u64> {
        AlphaStore::with_shards(HashScheme::new(0xA1FA), 8)
    }

    #[test]
    fn insert_is_idempotent_modulo_alpha() {
        let store = store();
        let mut arena = ExprArena::new();
        let a = parse(&mut arena, r"\x. x + 1").unwrap();
        let b = parse(&mut arena, r"\y. y + 1").unwrap();
        let first = store.insert(&arena, a);
        let second = store.insert(&arena, b);
        assert!(first.fresh);
        assert!(!second.fresh);
        assert_eq!(first.class, second.class);
        assert_ne!(first.term, second.term);
        assert_eq!(store.num_classes(), 1);
        assert_eq!(store.num_terms(), 2);
        assert_eq!(store.members(first.class), 2);
        let stats = store.stats();
        assert_eq!(stats.merges_confirmed, 1);
        assert_eq!(stats.classes_created, 1);
        assert!(stats.is_exact());
    }

    #[test]
    fn inequivalent_terms_get_distinct_classes() {
        let store = store();
        let mut arena = ExprArena::new();
        let terms = [
            parse(&mut arena, r"\x. x").unwrap(),
            parse(&mut arena, r"\x. x x").unwrap(),
            parse(&mut arena, r"\x. x + y").unwrap(),
            parse(&mut arena, r"\x. x + z").unwrap(), // free var differs
        ];
        let classes: Vec<ClassId> = terms
            .iter()
            .map(|&t| store.insert(&arena, t).class)
            .collect();
        for i in 0..classes.len() {
            for j in 0..i {
                assert_ne!(classes[i], classes[j], "terms {i} and {j} merged");
            }
        }
    }

    #[test]
    fn batch_matches_singles_and_preserves_order() {
        let mut arena = ExprArena::new();
        let roots: Vec<NodeId> = [r"\a. a", r"\b. b", "v + 7", r"\c. c + (v+7)"]
            .iter()
            .map(|s| parse(&mut arena, s).unwrap())
            .collect();

        let singles = store();
        let one_by_one: Vec<ClassId> = roots
            .iter()
            .map(|&r| singles.insert(&arena, r).class)
            .collect();

        let batched = store();
        let batch = batched.insert_batch(&arena, &roots);
        assert_eq!(batch.len(), roots.len());
        // Same partition: term i and j share a class in one store iff they
        // do in the other.
        for i in 0..roots.len() {
            for j in 0..roots.len() {
                assert_eq!(
                    one_by_one[i] == one_by_one[j],
                    batch[i].class == batch[j].class,
                );
            }
        }
        assert!(batch[0].fresh && !batch[1].fresh);
    }

    #[test]
    fn lookup_does_not_ingest() {
        let store = store();
        let mut arena = ExprArena::new();
        let t = parse(&mut arena, r"\x. x * x").unwrap();
        assert_eq!(store.lookup(&arena, t), None);
        let inserted = store.insert(&arena, t);
        let alpha = parse(&mut arena, r"\q. q * q").unwrap();
        assert_eq!(store.lookup(&arena, alpha), Some(inserted.class));
        assert_eq!(store.num_terms(), 1);
    }

    #[test]
    fn representative_is_alpha_equivalent_to_members() {
        let store = store();
        let mut arena = ExprArena::new();
        let t = parse(&mut arena, r"\x. \y. x + y*7").unwrap();
        let outcome = store.insert(&arena, t);
        let mut dst = ExprArena::new();
        let rep = store.representative_into(outcome.class, &mut dst);
        assert!(lambda_lang::alpha_eq(&arena, t, &dst, rep));
        assert_eq!(store.node_count(outcome.class), arena.subtree_size(t));
        assert_eq!(
            store.canonical_text(outcome.class),
            r"\. \. add %1 (mul %0 7)"
        );
    }

    #[test]
    fn narrow_hashes_surface_collisions_without_merging() {
        // At b = 16 random inequivalent terms collide readily (the
        // Appendix B study); the store must keep them separate and count
        // the collisions rather than merge unconfirmed.
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let store: AlphaStore<u16> = AlphaStore::with_shards(HashScheme::new(3), 4);
        let mut arena = ExprArena::new();
        let mut rng = StdRng::seed_from_u64(11);
        let mut roots = Vec::new();
        for _ in 0..600 {
            roots.push(expr_gen::balanced(&mut arena, 30, &mut rng));
        }
        let outcomes = store.insert_batch(&arena, &roots);

        // Exactness check against ground truth on every pair.
        for i in 0..roots.len() {
            for j in 0..i {
                let same_class = outcomes[i].class == outcomes[j].class;
                let equivalent = lambda_lang::alpha_eq(&arena, roots[i], &arena, roots[j]);
                assert_eq!(same_class, equivalent, "pair ({i},{j})");
            }
        }
        let stats = store.stats();
        assert!(stats.is_exact());
        assert!(
            stats.hash_collisions > 0,
            "600 random 30-node terms at b=16 should collide at least once: {stats}"
        );
    }

    #[test]
    fn class_ids_round_trip_through_bits() {
        let id = ClassId {
            shard: 7,
            index: 123_456,
        };
        assert_eq!(ClassId::from_bits(id.to_bits()), id);
        assert_eq!(format!("{id:?}"), "c7.123456");
    }
}
