//! The [`AlphaStore`]: sharded, concurrent, content-addressed storage of
//! alpha-equivalence classes over a hash-consed canon DAG.
//!
//! ## Concurrency model
//!
//! The store is lock-striped: the term's alpha-hash selects one of N
//! shards (N a power of two, fixed at construction), and each shard is an
//! independent `RwLock`-protected map from hash to classes. Ingesting
//! threads therefore contend only when their terms land on the same
//! stripe. All expensive work — hashing the term, canonicalizing it —
//! happens *outside* the lock; the critical section is a bucket probe plus
//! a merge confirmation that is **O(1)** for entries already interned into
//! the shared canon DAG (a ref compare) and a linear
//! canonical-form walk only at the intern frontier.
//!
//! Canonical forms themselves live in one store-wide `CanonTable`
//! (`crate::dag`):
//! classes hold a [`CanonRef`] root instead of owning an arena, so
//! identical structure — across classes, across subterm entries, across
//! whole alpha-duplicated corpora — is resident exactly once. See
//! [`AlphaStore::canon_dag_stats`] for the sharing it buys.
//!
//! ## Exactness
//!
//! Content-addressed stores are usually probabilistic: equal address ⇒
//! assumed equal content. This store is exact. A hash match only nominates
//! a candidate class; the merge happens after canonical-form identity is
//! confirmed — by hash-consed ref equality (interned side) or a structural
//! walk (`dag::eq_frontier`) at the frontier, both exact.
//! Colliding-but-inequivalent terms coexist in the same bucket as distinct
//! classes, and the collision is counted in
//! [`StoreStats::hash_collisions`].

use crate::canon::rebuild_named;
use crate::dag::{eq_frontier, extract_canon, extract_one, CanonTable, TableView};
use crate::granularity::{Granularity, StoreBuilder};
use crate::obs::StoreObs;
use crate::persist::format::RawRecord;
use crate::persist::snapshot::SnapshotHeader;
use crate::persist::vfs::Vfs;
use crate::persist::wal::{WalEntry, WalHeader};
use crate::persist::{Durable, PersistError, SNAPSHOT_FILE};
use crate::prepare::{PreparedCanon, PreparedTerm, Preparer, SubEntry};
use crate::stats::{CanonDagStats, StatCounters, StoreStats};
use alpha_hash::combine::{mix64, HashScheme, HashWord};
use lambda_lang::arena::{ExprArena, NodeId};
use lambda_lang::canon::{CanonNode, CanonRef};
use lambda_lang::debruijn::db_print;
use std::collections::HashMap;
use std::fmt;
use std::path::Path;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::time::Duration;

/// Shared `Debug` shape for the two handle types: `c3.17` = shard 3,
/// index 17.
macro_rules! fmt_id {
    ($prefix:literal) => {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, concat!($prefix, "{}.{}"), self.shard, self.index)
        }
    };
}

/// Handle to an equivalence class inside one [`AlphaStore`].
///
/// Handles are only meaningful relative to the store that issued them;
/// they are stable for the lifetime of the store (classes are never
/// removed or renumbered).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ClassId {
    pub(crate) shard: u16,
    pub(crate) index: u32,
}

impl ClassId {
    /// Packs the handle into a single word (shard in the high bits), for
    /// use as a compact foreign key.
    pub fn to_bits(self) -> u64 {
        (u64::from(self.shard) << 32) | u64::from(self.index)
    }

    /// Inverse of [`ClassId::to_bits`].
    pub fn from_bits(bits: u64) -> Self {
        ClassId {
            shard: (bits >> 32) as u16,
            index: bits as u32,
        }
    }
}

impl fmt::Debug for ClassId {
    fmt_id!("c");
}

/// Handle to one ingested term inside one [`AlphaStore`].
///
/// Every successful [`AlphaStore::insert`] issues a fresh `TermId`, even
/// when the term merges into an existing class; [`AlphaStore::class_of`]
/// maps it back to its class.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TermId {
    pub(crate) shard: u16,
    pub(crate) index: u32,
}

impl TermId {
    /// Packs the handle into a single word (shard in the high bits), for
    /// use as a compact foreign key — the form WAL delta records and the
    /// wire protocol carry.
    pub fn to_bits(self) -> u64 {
        (u64::from(self.shard) << 32) | u64::from(self.index)
    }

    /// Inverse of [`TermId::to_bits`]. Only meaningful for bits produced
    /// by [`TermId::to_bits`] against the same store; the fallible update
    /// paths range-check the result before trusting it.
    pub fn from_bits(bits: u64) -> Self {
        TermId {
            shard: (bits >> 32) as u16,
            index: bits as u32,
        }
    }
}

impl fmt::Debug for TermId {
    fmt_id!("t");
}

/// What one insert did to the subexpression index. All-zero in
/// [`Granularity::Roots`] mode, where no subexpressions are indexed.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SubexprSummary {
    /// Proper subexpression occurrences indexed by this insert (the root
    /// itself is accounted by the term's own class, not here).
    pub indexed: u64,
    /// Of those, how many merged into an already-existing class (merge
    /// confirmed by canonical-form identity, as always). Duplicate
    /// occurrences beyond the first within one term count here too.
    pub merged: u64,
    /// Proper subexpression occurrences skipped by the granularity's
    /// `min_nodes` floor.
    pub skipped_min_nodes: u64,
}

/// What one insert did.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct InsertOutcome {
    /// Handle for the ingested term.
    pub term: TermId,
    /// The class the term belongs to.
    pub class: ClassId,
    /// `true` iff this insert created the class (first member).
    pub fresh: bool,
    /// What the insert did to the subexpression index.
    pub subs: SubexprSummary,
}

/// Operational health of a store's durability, reported by
/// [`AlphaStore::health`] and driven by the WAL/snapshot outcomes the
/// store observes. In-memory stores are always [`Health::Healthy`].
///
/// The machine is `Healthy → Degraded → ReadOnly`, with two healing
/// edges back to `Healthy`: a WAL append that succeeds after retries
/// (the transient fault passed), and a successful
/// [`checkpoint`](AlphaStore::checkpoint) (which re-establishes the
/// clean `(snapshot, empty WAL)` state from scratch — the only way out
/// of `ReadOnly`). See `docs/RELIABILITY.md` for the full transition
/// diagram.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Health {
    /// Every persistence operation is succeeding.
    Healthy,
    /// A recent persistence operation failed but the store still accepts
    /// writes: a WAL append is mid-retry, or a snapshot/checkpoint failed
    /// while the WAL kept working. The payload is a human-readable
    /// description of the last failure.
    Degraded(String),
    /// WAL writes failed persistently (every retry exhausted, or a WAL
    /// reset failed and left the log unusable): ingest is refused with
    /// [`StoreError::Degraded`] so in-memory state cannot silently
    /// diverge from what recovery could rebuild, while `lookup` /
    /// `contains` / `contains_batch` keep serving the state already
    /// ingested. A successful [`checkpoint`](AlphaStore::checkpoint)
    /// heals the store.
    ReadOnly(String),
}

impl Health {
    /// The state as a stable machine-readable code — the same encoding
    /// the `alpha_store_health` gauge uses and the one network front
    /// ends put on the wire: 0 = healthy, 1 = degraded, 2 = read-only.
    pub fn code(&self) -> u8 {
        match self {
            Health::Healthy => HEALTH_HEALTHY,
            Health::Degraded(_) => HEALTH_DEGRADED,
            Health::ReadOnly(_) => HEALTH_READ_ONLY,
        }
    }

    /// The failure description carried by the degraded states (empty for
    /// [`Health::Healthy`]).
    pub fn reason(&self) -> &str {
        match self {
            Health::Healthy => "",
            Health::Degraded(r) | Health::ReadOnly(r) => r,
        }
    }
}

/// What recovery did when a durable store was [opened](AlphaStore::open),
/// reported by [`AlphaStore::recovery_info`]. Lets operators (and the
/// `alphahashd` daemon's shutdown test) distinguish a **clean** reopen —
/// the snapshot already held every WAL record, nothing was replayed —
/// from a crash recovery that had to replay a WAL tail.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RecoveryInfo {
    /// WAL records replayed through the ingest path during the open.
    pub replayed_records: u64,
    /// `true` when the open was clean: intact snapshot, intact same-epoch
    /// WAL fully absorbed by it, so the O(store) recovery checkpoint was
    /// skipped and the existing WAL simply continues.
    pub clean: bool,
}

/// What a fallible ingest ([`AlphaStore::try_insert`] /
/// [`AlphaStore::try_insert_batch`]) can fail with. The infallible
/// [`AlphaStore::insert`] / [`AlphaStore::insert_batch`] panic on these
/// instead (the pre-health-machine contract).
#[derive(Debug)]
pub enum StoreError {
    /// The store is in [`Health::ReadOnly`]: its WAL failed persistently
    /// and ingest is refused until a [`checkpoint`](AlphaStore::checkpoint)
    /// succeeds. Read paths keep working.
    Degraded {
        /// Why the store went read-only.
        reason: String,
    },
    /// The WAL write for **this** ingest failed after exhausting the
    /// retry policy; the store has just flipped to [`Health::ReadOnly`].
    /// Nothing from the failed chunk was applied to memory.
    Persist(PersistError),
    /// An [`AlphaStore::try_update`] rewrite was refused **before any
    /// state changed**: the term handle is unknown, the path does not
    /// resolve inside the term, or the replacement's free variables could
    /// capture a binder of the host term (the hazard
    /// `alpha_hash::incremental` documents — the store boundary rejects
    /// it rather than silently mis-hashing).
    InvalidRewrite {
        /// Why the rewrite was refused.
        reason: String,
    },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Degraded { reason } => {
                write!(f, "store is read-only (degraded): {reason}")
            }
            StoreError::Persist(e) => write!(f, "store ingest failed to persist: {e}"),
            StoreError::InvalidRewrite { reason } => {
                write!(f, "invalid rewrite: {reason}")
            }
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Degraded { .. } | StoreError::InvalidRewrite { .. } => None,
            StoreError::Persist(e) => Some(e),
        }
    }
}

impl From<PersistError> for StoreError {
    fn from(e: PersistError) -> Self {
        StoreError::Persist(e)
    }
}

/// Retry policy for WAL appends: `retries` bounded attempts after the
/// first failure, exponential backoff from `backoff`, sleeping through
/// the injectable `sleeper` (see [`StoreBuilder::persist_sleeper`]).
#[derive(Clone)]
pub(crate) struct RetryPolicy {
    pub(crate) retries: u32,
    pub(crate) backoff: Duration,
    pub(crate) sleeper: Arc<dyn Fn(Duration) + Send + Sync>,
}

impl fmt::Debug for RetryPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RetryPolicy")
            .field("retries", &self.retries)
            .field("backoff", &self.backoff)
            .finish_non_exhaustive()
    }
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            retries: 2,
            backoff: Duration::from_millis(5),
            sleeper: Arc::new(std::thread::sleep),
        }
    }
}

/// Auto-checkpoint watermarks (both off by default): after an ingest
/// leaves the WAL at or past either one, the store checkpoints itself.
#[derive(Clone, Copy, Debug, Default)]
pub(crate) struct AutoCheckpoint {
    pub(crate) bytes: Option<u64>,
    pub(crate) records: Option<u64>,
}

impl AutoCheckpoint {
    fn armed(&self) -> bool {
        self.bytes.is_some() || self.records.is_some()
    }

    fn reached(&self, bytes: u64, records: u64) -> bool {
        self.bytes.is_some_and(|w| bytes >= w) || self.records.is_some_and(|w| records >= w)
    }
}

/// Health gauge/state encoding shared with `alpha_store_health`.
const HEALTH_HEALTHY: u8 = 0;
const HEALTH_DEGRADED: u8 = 1;
const HEALTH_READ_ONLY: u8 = 2;

/// The store-internal half of the health machine: a lock-free state tag
/// read on every durable ingest, plus the last failure description. The
/// reason mutex is a **leaf lock** (nothing is acquired while holding
/// it) and is only touched on transitions and `health()` calls — never
/// on the healthy hot path, which reads one relaxed atomic.
#[derive(Debug)]
struct HealthState {
    state: AtomicU8,
    reason: Mutex<String>,
}

impl Default for HealthState {
    fn default() -> Self {
        HealthState {
            state: AtomicU8::new(HEALTH_HEALTHY),
            reason: Mutex::new(String::new()),
        }
    }
}

/// One stored equivalence class: the root of its canonical form in the
/// shared canon DAG, plus bookkeeping.
pub(crate) struct StoredClass<H> {
    pub(crate) hash: H,
    /// Root of the class's canonical de Bruijn form in the canon DAG.
    pub(crate) canon: CanonRef,
    /// Tree node count of the canonical form (the size every member
    /// shares, alpha-equivalent terms being equisized). The *resident*
    /// footprint is smaller: DAG nodes are shared across classes.
    pub(crate) node_count: u64,
    /// Whole-term inserts into this class. Zero for classes that only ever
    /// appeared as subexpressions of ingested terms.
    pub(crate) members: u64,
    /// Total appearances: whole-term inserts plus every indexed
    /// subexpression occurrence. Equals `members` in `Roots` mode.
    pub(crate) occurrences: u64,
}

/// Capacity of each shard's [`HotClassCache`]: big enough to cover the
/// working set of a merge-heavy ingest (a corpus rarely hammers more
/// than a few dozen classes per stripe at once), small enough that the
/// linear probe is a handful of cache lines.
const HOT_CLASS_CAP: usize = 32;

/// A small bounded map of recently-merged `(hash, CanonRef)` pairs, one
/// per shard, replaced ring-style once full.
///
/// The cache is **advisory only**: a hit never decides equality. It
/// routes a frontier entry whose hash recently merged through the canon
/// table's interner — pure hash-consing lookups on a hot class, since
/// every node is already resident — so the merge confirms by O(1) ref
/// compare instead of a structural [`eq_frontier`] walk over the whole
/// form. A colliding entry costs one wasted intern (which class
/// creation would have paid anyway) and nothing else, which is why
/// recovery can simply start the cache empty: exactness never depends
/// on its contents. Refs stay valid for the store's lifetime (the canon
/// table is append-only), so entries never go stale in-process.
pub(crate) struct HotClassCache<H> {
    entries: Vec<(H, CanonRef)>,
    /// Next ring slot to evict once `entries` is full.
    clock: usize,
}

impl<H: HashWord> HotClassCache<H> {
    fn new() -> Self {
        HotClassCache {
            entries: Vec::new(),
            clock: 0,
        }
    }

    fn get(&self, hash: H) -> Option<CanonRef> {
        self.entries
            .iter()
            .find(|(h, _)| *h == hash)
            .map(|&(_, r)| r)
    }

    fn insert(&mut self, hash: H, canon: CanonRef) {
        if let Some(slot) = self.entries.iter_mut().find(|(h, _)| *h == hash) {
            slot.1 = canon;
        } else if self.entries.len() < HOT_CLASS_CAP {
            self.entries.push((hash, canon));
        } else {
            self.entries[self.clock] = (hash, canon);
            self.clock = (self.clock + 1) % HOT_CLASS_CAP;
        }
    }
}

/// One lock stripe: hash-addressed classes plus the shard-local term log.
pub(crate) struct Shard<H> {
    /// Hash → indexes into `classes`. Almost always a single entry; more
    /// only under a true hash collision.
    buckets: HashMap<H, Vec<u32>>,
    pub(crate) classes: Vec<StoredClass<H>>,
    /// Term-local index → [`ClassId::to_bits`] of the term's class. A
    /// term starts in the shard its hash routes to, but a later
    /// [`AlphaStore::update`] can repoint it at a class in **any** shard,
    /// hence full bits rather than a same-shard class index.
    pub(crate) terms: Vec<u64>,
    /// Term-local index → `(ClassId::to_bits, multiplicity)` pairs for
    /// the term's indexed subexpression classes (including the term's own
    /// class), sorted by bits. The multiplicity is how many occurrences
    /// of that class this term contributes — what an update must subtract
    /// to un-index the old form exactly. Always empty boxes in `Roots`
    /// mode, where the root class is recovered from `terms` instead.
    pub(crate) term_subs: Vec<Box<[(u64, u32)]>>,
    /// Recently-merged classes, for the intern short-circuit in
    /// [`Shard::insert_entry`]. Process-local and advisory: never
    /// persisted, rebuilt empty by recovery ([`Shard::from_parts`]).
    pub(crate) hot_classes: HotClassCache<H>,
}

impl<H: HashWord> Shard<H> {
    pub(crate) fn empty() -> Self {
        Shard {
            buckets: HashMap::new(),
            classes: Vec::new(),
            terms: Vec::new(),
            term_subs: Vec::new(),
            hot_classes: HotClassCache::new(),
        }
    }

    /// Rebuilds a shard from snapshot parts. Buckets are reconstructed
    /// from the class hashes, pushing in class-index order so bucket scan
    /// order matches creation order (which keeps collision accounting
    /// deterministic across a save/load cycle).
    pub(crate) fn from_parts(
        classes: Vec<StoredClass<H>>,
        terms: Vec<u64>,
        term_subs: Vec<Box<[(u64, u32)]>>,
    ) -> Self {
        let mut buckets: HashMap<H, Vec<u32>> = HashMap::new();
        for (i, class) in classes.iter().enumerate() {
            buckets.entry(class.hash).or_default().push(i as u32);
        }
        Shard {
            buckets,
            classes,
            terms,
            term_subs,
            // Recovery starts the cache cold: cached refs are per-process
            // packings, and a cold cache only costs the first walk per
            // hot class.
            hot_classes: HotClassCache::new(),
        }
    }

    /// Inserts one prepared entry — a whole term (`is_root`) or an indexed
    /// subexpression — returning (class index, fresh, collided).
    /// `collided` is true whenever this insert's hash matched at least one
    /// class that turned out not to be alpha-equivalent — on the merge
    /// path as well as on class creation — matching the definition of
    /// [`StoreStats::hash_collisions`].
    ///
    /// Confirmation is an O(1) ref compare when the entry is interned; a
    /// structural DAG walk (through `view`) at the frontier. A frontier
    /// entry that creates a class is interned here — `view` is released
    /// first, since interning write-locks table stripes the view may hold
    /// read guards on.
    ///
    /// Frontier entries whose hash hits the shard's [`HotClassCache`]
    /// skip the walk: the form is interned up front (pure hash-consing
    /// hits on a hot class) and confirmed by ref compare, counted as
    /// `merge_confirm_cached`. The cache never decides equality — a
    /// false hit degrades to the intern class creation would have done.
    pub(crate) fn insert_entry(
        &mut self,
        table: &CanonTable,
        view: &mut TableView<'_>,
        mut entry: SubEntry<H>,
        is_root: bool,
        obs: &StoreObs,
    ) -> (u32, bool, bool) {
        let mut via_cache = false;
        if matches!(entry.canon, PreparedCanon::Frontier { .. })
            && self.buckets.get(&entry.hash).is_some_and(|b| !b.is_empty())
            && self.hot_classes.get(entry.hash).is_some()
        {
            let PreparedCanon::Frontier { canon, canon_root } = &entry.canon else {
                unreachable!("matched Frontier above");
            };
            // Same lock-order dance as frontier class creation: release
            // the read view before interning write-locks table stripes.
            view.release();
            let r = table.intern_arena(canon, *canon_root);
            entry.canon = PreparedCanon::Interned(r);
            via_cache = true;
        }
        let bucket = self.buckets.entry(entry.hash).or_default();
        let mut mismatched = false;
        for &ci in bucket.iter() {
            let class = &self.classes[ci as usize];
            let equal = class.node_count == entry.node_count
                && match &entry.canon {
                    PreparedCanon::Interned(r) => {
                        let eq = *r == class.canon;
                        if eq {
                            if via_cache {
                                obs.confirm_cached();
                            } else {
                                obs.confirm_ref();
                            }
                        }
                        eq
                    }
                    PreparedCanon::Frontier { canon, canon_root } => {
                        let mut steps = 0u64;
                        let eq = eq_frontier(view, class.canon, canon, *canon_root, &mut steps);
                        if eq {
                            obs.confirm_walk(steps);
                        }
                        eq
                    }
                };
            if equal {
                let class = &mut self.classes[ci as usize];
                class.occurrences += u64::from(entry.multiplicity);
                if is_root {
                    class.members += 1;
                }
                self.hot_classes.insert(entry.hash, class.canon);
                return (ci, false, mismatched);
            }
            mismatched = true;
        }
        let collided = !bucket.is_empty();
        let canon = match entry.canon {
            PreparedCanon::Interned(r) => r,
            PreparedCanon::Frontier { canon, canon_root } => {
                view.release();
                table.intern_arena(&canon, canon_root)
            }
        };
        let ci = u32::try_from(self.classes.len()).expect("shard class overflow");
        self.buckets
            .get_mut(&entry.hash)
            .expect("bucket just touched")
            .push(ci);
        self.classes.push(StoredClass {
            hash: entry.hash,
            canon,
            node_count: entry.node_count,
            members: u64::from(is_root),
            occurrences: u64::from(entry.multiplicity),
        });
        (ci, true, collided)
    }

    /// Read-only probe: the class whose canonical form equals the prepared
    /// frontier term, if any.
    pub(crate) fn find(&self, view: &mut TableView<'_>, p: &Prepared<H>) -> Option<u32> {
        let PreparedCanon::Frontier { canon, canon_root } = &p.entry.canon else {
            unreachable!("probes prepare frontier forms");
        };
        self.buckets
            .get(&p.entry.hash)?
            .iter()
            .copied()
            .find(|&ci| {
                let class = &self.classes[ci as usize];
                class.node_count == p.entry.node_count
                    && eq_frontier(view, class.canon, canon, *canon_root, &mut 0)
            })
    }
}

/// The per-term work done outside any lock: hash, canonical form, shard.
pub(crate) struct Prepared<H> {
    pub(crate) entry: SubEntry<H>,
    pub(crate) shard: usize,
}

/// A sharded, concurrent, content-addressed store of alpha-equivalence
/// classes. See the [module docs](self) for the design.
///
/// The store is `Sync`: share it by reference (or `Arc`) and ingest from
/// many threads concurrently.
///
/// ```
/// use alpha_store::AlphaStore;
/// use lambda_lang::{parse, ExprArena};
///
/// let store: AlphaStore<u64> = AlphaStore::default();
/// let mut arena = ExprArena::new();
/// let roots = [
///     parse(&mut arena, r"\x. x + 1").unwrap(),
///     parse(&mut arena, r"\y. y + 1").unwrap(),
///     parse(&mut arena, r"\z. z + 2").unwrap(),
/// ];
/// std::thread::scope(|scope| {
///     for chunk in roots.chunks(2) {
///         scope.spawn(|| store.insert_batch(&arena, chunk));
///     }
/// });
/// assert_eq!(store.num_terms(), 3);
/// assert_eq!(store.num_classes(), 2); // the two x+1 lambdas merged
/// assert!(store.stats().is_exact());
/// ```
pub struct AlphaStore<H: HashWord = u64> {
    pub(crate) scheme: HashScheme<H>,
    pub(crate) shards: Box<[RwLock<Shard<H>>]>,
    mask: usize,
    pub(crate) counters: StatCounters,
    pub(crate) granularity: Granularity,
    /// The shared, hash-consed storage of every canonical form the store
    /// holds. Lock order: store locks (maintenance → WAL → shards) are
    /// always taken before table locks, and a thread never holds a table
    /// read guard while acquiring a store lock.
    pub(crate) table: CanonTable,
    /// Batch ingest drains in chunks of at most this many prepared
    /// entries, bounding both the prepared-state high-water mark and the
    /// WAL group-commit buffer. See [`StoreBuilder::chunk_entries`].
    chunk_entries: usize,
    /// `Some` for durable stores: the open WAL plus its directory.
    pub(crate) durable: Option<Durable>,
    /// WAL append retry policy (durable stores; see
    /// [`StoreBuilder::persist_retries`]).
    retry: RetryPolicy,
    /// Auto-checkpoint watermarks (durable stores; off by default).
    auto_ckpt: AutoCheckpoint,
    /// The `Healthy → Degraded → ReadOnly` machine. Its state tag is a
    /// relaxed atomic read on the durable ingest path; its reason mutex
    /// is a leaf lock touched only on transitions.
    health: HealthState,
    /// Ingest holds this shared; [`AlphaStore::snapshot`] and
    /// [`AlphaStore::compact`] hold it exclusive, so a snapshot's
    /// `(WAL record count, shard state)` cut is consistent — no insert is
    /// ever logged-but-unapplied or applied-but-unlogged at the moment the
    /// cut is taken. Lock order: `maintenance` → `updates` → WAL mutex →
    /// shard locks → canon-table locks.
    pub(crate) maintenance: RwLock<()>,
    /// Incremental-rewrite state ([`crate::update`]): a bounded cache of
    /// live spine hashers keyed by term, behind the mutex that serializes
    /// updates. Lock order: after `maintenance` (shared), before the WAL
    /// mutex and shard locks.
    pub(crate) updates: Mutex<crate::update::UpdateCache<H>>,
    /// The instrumentation seam (`crate::obs`): a real metric registry
    /// with the `obs` cargo feature, an inlined no-op ZST without. Obs
    /// recording never takes a store lock; inside critical sections only
    /// wait-free operations (atomic adds, monotonic clock reads) happen.
    pub(crate) obs: StoreObs,
    /// What recovery did, for stores built by the durable open paths
    /// (`None` for in-memory stores and fresh creations).
    pub(crate) recovery: Option<RecoveryInfo>,
}

impl<H: HashWord> Default for AlphaStore<H> {
    /// A store with the default [`HashScheme`] and [default shard
    /// count](AlphaStore::DEFAULT_SHARDS).
    fn default() -> Self {
        AlphaStore::new(HashScheme::default())
    }
}

impl<H: HashWord> AlphaStore<H> {
    /// Floor of the default shard count: enough stripes that 8–16 ingest
    /// threads rarely contend, cheap enough to be negligible for
    /// single-threaded use. [`AlphaStore::default_shards`] scales above
    /// this on wider machines.
    pub const DEFAULT_SHARDS: usize = 16;

    /// The shard count [`AlphaStore::new`] and [`StoreBuilder::new`] use:
    /// the machine's `available_parallelism` rounded up to a power of
    /// two, floored at [`AlphaStore::DEFAULT_SHARDS`] (so boxes up to 16
    /// cores keep the historical layout) and capped at the 16-bit
    /// [`ClassId`] shard-index limit. Durable stores persist and validate
    /// whatever count they were built with, so a store created on a wide
    /// machine reopens elsewhere by passing that count to
    /// [`StoreBuilder::shards`] explicitly.
    pub fn default_shards() -> usize {
        std::thread::available_parallelism()
            .map_or(Self::DEFAULT_SHARDS, |n| n.get().next_power_of_two())
            .clamp(Self::DEFAULT_SHARDS, 1 << 16)
    }

    /// The configuring front door: a [`StoreBuilder`] with the default
    /// scheme, shard count and [`Granularity::Roots`].
    pub fn builder() -> StoreBuilder<H> {
        StoreBuilder::new()
    }

    /// A [`Granularity::Roots`] store hashing with `scheme`, with the
    /// [default shard count](AlphaStore::default_shards). Thin shim over
    /// [`AlphaStore::builder`], kept so pre-builder call sites stay
    /// source-compatible.
    pub fn new(scheme: HashScheme<H>) -> Self {
        Self::with_shards(scheme, Self::default_shards())
    }

    /// A [`Granularity::Roots`] store with an explicit shard count (shim
    /// over [`AlphaStore::builder`], like [`AlphaStore::new`]). The count
    /// is rounded up to a power of two and clamped to `1..=65536`.
    pub fn with_shards(scheme: HashScheme<H>, shards: usize) -> Self {
        Self::with_config(
            scheme,
            shards,
            Granularity::Roots,
            Self::DEFAULT_CHUNK_ENTRIES,
            crate::dag::default_table_shards(),
        )
    }

    /// Default for [`StoreBuilder::chunk_entries`]: big enough that chunk
    /// overhead (extra lock rounds, WAL flushes) is negligible, small
    /// enough to bound batch ingest's peak memory to a few thousand
    /// canonical forms whatever the batch size.
    pub const DEFAULT_CHUNK_ENTRIES: usize = 8192;

    /// The actual constructor, reached via [`StoreBuilder::build`].
    pub(crate) fn with_config(
        scheme: HashScheme<H>,
        shards: usize,
        granularity: Granularity,
        chunk_entries: usize,
        table_shards: usize,
    ) -> Self {
        let count = shards.clamp(1, 1 << 16).next_power_of_two();
        let shards: Box<[RwLock<Shard<H>>]> =
            (0..count).map(|_| RwLock::new(Shard::empty())).collect();
        AlphaStore {
            scheme,
            shards,
            mask: count - 1,
            counters: StatCounters::default(),
            granularity,
            table: CanonTable::with_shards(table_shards),
            chunk_entries: chunk_entries.max(1),
            durable: None,
            retry: RetryPolicy::default(),
            auto_ckpt: AutoCheckpoint::default(),
            health: HealthState::default(),
            maintenance: RwLock::new(()),
            updates: Mutex::new(crate::update::UpdateCache::default()),
            obs: StoreObs::new(),
            recovery: None,
        }
    }

    /// Rebuilds a store from loaded snapshot state (the recovery path).
    /// `table` is the canon table the snapshot's classes were interned
    /// into during decode.
    pub(crate) fn from_loaded(
        scheme: HashScheme<H>,
        shards: Vec<Shard<H>>,
        granularity: Granularity,
        stats: &StoreStats,
        chunk_entries: usize,
        table: CanonTable,
    ) -> Result<Self, PersistError> {
        let count = shards.len();
        if !(1..=1 << 16).contains(&count) || !count.is_power_of_two() {
            return Err(PersistError::Corrupt {
                context: format!("shard count {count} is not a power of two in 1..=65536"),
            });
        }
        let counters = StatCounters::default();
        counters.restore(stats);
        Ok(AlphaStore {
            scheme,
            shards: shards.into_iter().map(RwLock::new).collect(),
            mask: count - 1,
            counters,
            granularity,
            table,
            chunk_entries: chunk_entries.max(1),
            durable: None,
            retry: RetryPolicy::default(),
            auto_ckpt: AutoCheckpoint::default(),
            health: HealthState::default(),
            maintenance: RwLock::new(()),
            updates: Mutex::new(crate::update::UpdateCache::default()),
            obs: StoreObs::new(),
            recovery: None,
        })
    }

    pub(crate) fn attach_durable(&mut self, mut durable: Durable) {
        // Hand the WAL its slice of this store's instruments before it
        // can see any traffic.
        durable.wal.get_mut().expect("wal lock poisoned").obs = self.obs.wal_obs();
        self.durable = Some(durable);
    }

    /// Installs the builder's reliability knobs (called by the durable
    /// open paths before any ingest can run).
    pub(crate) fn set_reliability(&mut self, retry: RetryPolicy, auto_ckpt: AutoCheckpoint) {
        self.retry = retry;
        self.auto_ckpt = auto_ckpt;
    }

    /// Recovery phases are timed in `persist::open_store_locked`, before
    /// this store exists; they arrive here as raw durations.
    pub(crate) fn record_recovery(&self, snapshot_load_ns: u64, replay_ns: u64) {
        self.obs.rec_recovery(snapshot_load_ns, replay_ns);
    }

    /// The hash scheme terms are addressed with.
    pub fn scheme(&self) -> &HashScheme<H> {
        &self.scheme
    }

    /// The granularity mode fixed at build time.
    pub fn granularity(&self) -> Granularity {
        self.granularity
    }

    /// Number of lock stripes.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Number of lock stripes in the shared canon table — a per-process
    /// concurrency knob ([`StoreBuilder::table_shards`]), not part of the
    /// persisted configuration.
    pub fn table_shard_count(&self) -> usize {
        self.table.shard_count()
    }

    /// Routes a hash to its shard. Re-mixed so that shard choice is not
    /// correlated with the low bits used by the buckets' `HashMap`.
    pub(crate) fn shard_of(&self, hash: H) -> usize {
        let (lo, hi) = hash.to_lanes();
        (mix64(lo ^ hi.rotate_left(32)) as usize) & self.mask
    }

    /// Hashing and canonicalization, done outside any lock: one fused
    /// post-order pass per term, with all scratch state (name-hash cache,
    /// traversal stacks) living in `preparer` so batches reuse it across
    /// terms. Produces a frontier form: nothing is interned unless the
    /// insert creates a class.
    pub(crate) fn prepare(
        &self,
        preparer: &mut Preparer<'_, H>,
        arena: &ExprArena,
        root: NodeId,
    ) -> Prepared<H> {
        let (hash, canon, canon_root) = preparer.hash_and_canon(arena, root);
        Prepared {
            shard: self.shard_of(hash),
            entry: SubEntry {
                hash,
                node_count: canon.len() as u64,
                multiplicity: 1,
                canon: PreparedCanon::Frontier { canon, canon_root },
            },
        }
    }

    /// Ingests one term: routes it by content address, confirms any
    /// candidate merge by canonical-form identity, and either joins an
    /// existing class or creates a new one. Under
    /// [`Granularity::Subexpressions`], additionally indexes every
    /// subexpression clearing the `min_nodes` floor, all hashed in the
    /// same fused pass and interned into the shared canon DAG.
    ///
    /// ```
    /// use alpha_store::AlphaStore;
    /// use lambda_lang::{parse, ExprArena};
    ///
    /// let store: AlphaStore<u64> = AlphaStore::default();
    /// let mut arena = ExprArena::new();
    /// let t = parse(&mut arena, "let w = v+7 in w*w").unwrap();
    /// let outcome = store.insert(&arena, t);
    /// assert!(outcome.fresh);
    /// assert_eq!(store.class_of(outcome.term), outcome.class);
    /// ```
    ///
    /// # Panics
    ///
    /// On a durable store whose WAL write fails beyond the retry policy
    /// (durability would silently diverge otherwise). Use
    /// [`AlphaStore::try_insert`] to handle that as an error instead.
    pub fn insert(&self, arena: &ExprArena, root: NodeId) -> InsertOutcome {
        self.try_insert(arena, root)
            .unwrap_or_else(|e| panic!("WAL append failed; cannot continue durably: {e}"))
    }

    /// [`AlphaStore::insert`], but a durable-store persistence failure
    /// comes back as a typed [`StoreError`] instead of a panic: the term
    /// was **not** applied (memory and WAL stay in agreement), and the
    /// store's [`health`](AlphaStore::health) says what to do next. For
    /// in-memory stores this never errors.
    pub fn try_insert(&self, arena: &ExprArena, root: NodeId) -> Result<InsertOutcome, StoreError> {
        match self.granularity {
            Granularity::Roots => {
                let mut preparer = Preparer::new(arena, &self.scheme);
                let t = self.obs.tick();
                let prepared = self.prepare(&mut preparer, arena, root);
                self.obs.rec_prepare(t, prepared.entry.node_count);
                let (nodes, misses) = preparer.take_hash_counters();
                self.obs.add_hash_counters(nodes, misses);
                Ok(self
                    .ingest_prepared_roots(vec![prepared])?
                    .pop()
                    .expect("one term ingested"))
            }
            Granularity::Subexpressions { min_nodes } => {
                let mut preparer = Preparer::new(arena, &self.scheme);
                let t = self.obs.tick();
                let pt = preparer.prepare_term(arena, root, min_nodes, &self.table);
                self.obs.rec_prepare(t, pt.root.node_count);
                let (nodes, misses) = preparer.take_hash_counters();
                self.obs.add_hash_counters(nodes, misses);
                Ok(self
                    .ingest_prepared_terms(vec![pt])?
                    .pop()
                    .expect("one term ingested"))
            }
        }
    }

    /// Ingests a batch of terms, draining in chunks of at most
    /// [`chunk_entries`](StoreBuilder::chunk_entries) prepared entries so
    /// peak memory is bounded whatever the batch size; within a chunk,
    /// each shard lock is taken at most once (at most twice under
    /// [`Granularity::Subexpressions`]: one sweep for the chunk's
    /// subexpression entries, one for the roots).
    ///
    /// Outcomes are returned in input order. Equivalent to calling
    /// [`AlphaStore::insert`] per term, but with per-term lock traffic
    /// amortised and one shared [`Preparer`] across the batch, so hashing
    /// scratch state and the name-hash cache are never rebuilt per term —
    /// the natural entry point for high-throughput ingest. On a durable
    /// store, each chunk is one group-committed WAL append.
    ///
    /// # Panics
    ///
    /// On a durable store whose WAL write fails beyond the retry policy,
    /// like [`AlphaStore::insert`]. Use
    /// [`AlphaStore::try_insert_batch`] to handle that as an error.
    pub fn insert_batch(&self, arena: &ExprArena, roots: &[NodeId]) -> Vec<InsertOutcome> {
        self.try_insert_batch(arena, roots)
            .unwrap_or_else(|e| panic!("WAL append failed; cannot continue durably: {e}"))
    }

    /// [`AlphaStore::insert_batch`], but a durable-store persistence
    /// failure comes back as a typed [`StoreError`]. Chunks are applied
    /// in order and each chunk is atomic with respect to failure: on
    /// `Err`, every chunk before the failing one was fully ingested
    /// (memory and WAL agree) and the failing chunk plus everything
    /// after it was not applied at all.
    pub fn try_insert_batch(
        &self,
        arena: &ExprArena,
        roots: &[NodeId],
    ) -> Result<Vec<InsertOutcome>, StoreError> {
        match self.granularity {
            Granularity::Roots => self.insert_batch_roots(arena, roots),
            Granularity::Subexpressions { min_nodes } => {
                self.insert_batch_subs(arena, roots, min_nodes)
            }
        }
    }

    fn insert_batch_roots(
        &self,
        arena: &ExprArena,
        roots: &[NodeId],
    ) -> Result<Vec<InsertOutcome>, StoreError> {
        let mut preparer = Preparer::new(arena, &self.scheme);
        let mut outcomes = Vec::with_capacity(roots.len());
        // One prepared entry per root: chunks are `chunk_entries` terms.
        for chunk in roots.chunks(self.chunk_entries) {
            // All hashing/canonicalization first, outside any lock…
            let prepared: Vec<Prepared<H>> = chunk
                .iter()
                .map(|&r| {
                    let t = self.obs.tick();
                    let p = self.prepare(&mut preparer, arena, r);
                    self.obs.rec_prepare(t, p.entry.node_count);
                    p
                })
                .collect();
            let (nodes, misses) = preparer.take_hash_counters();
            self.obs.add_hash_counters(nodes, misses);
            // …then log and drain shard by shard.
            outcomes.extend(self.ingest_prepared_roots(prepared)?);
        }
        Ok(outcomes)
    }

    /// The root-granularity apply path shared by `insert` (a one-element
    /// batch) and each `insert_batch` chunk: group-commit the chunk to the
    /// WAL (durable stores), then drain shard by shard. A one-element
    /// chunk skips the by-shard regrouping and goes straight to its shard
    /// lock, so per-term `insert` keeps the old direct path's cost.
    fn ingest_prepared_roots(
        &self,
        mut prepared: Vec<Prepared<H>>,
    ) -> Result<Vec<InsertOutcome>, StoreError> {
        let outcomes = {
            let _ingest = self.maintenance.read().expect("maintenance lock poisoned");
            self.check_writable()?;
            self.wal_log_roots(&prepared)?;
            if prepared.len() == 1 {
                let p = prepared.pop().expect("one prepared term");
                let t_apply = self.obs.tick();
                let outcome = {
                    let t_lock = self.obs.tick();
                    let mut shard = self.shards[p.shard].write().expect("shard lock poisoned");
                    self.obs.rec_shard_lock_wait(t_lock);
                    let mut view = TableView::new(&self.table);
                    self.finish_insert(
                        &mut shard,
                        &mut view,
                        p,
                        SubexprSummary::default(),
                        Vec::new(),
                    )
                };
                self.obs.rec_apply(t_apply, 1);
                vec![outcome]
            } else {
                self.drain_roots(prepared, |_| (SubexprSummary::default(), Vec::new()))
            }
        };
        // The ingest guard is released: housekeeping takes the exclusive
        // maintenance lock if a watermark tripped.
        self.maybe_auto_checkpoint();
        Ok(outcomes)
    }

    /// Drains prepared roots grouped by shard, one write lock per shard,
    /// finishing each insert in input order. `extras` supplies the i-th
    /// term's subexpression summary and class-bits list — trivially empty
    /// in `Roots` mode. The shared drain protocol for both granularities.
    fn drain_roots(
        &self,
        prepared: Vec<Prepared<H>>,
        mut extras: impl FnMut(usize) -> (SubexprSummary, Vec<(u64, u32)>),
    ) -> Vec<InsertOutcome> {
        let count = prepared.len();
        let mut by_shard: HashMap<usize, Vec<(usize, Prepared<H>)>> = HashMap::new();
        for (i, p) in prepared.into_iter().enumerate() {
            by_shard.entry(p.shard).or_default().push((i, p));
        }
        let mut outcomes: Vec<Option<InsertOutcome>> = vec![None; count];
        for (shard_index, items) in by_shard {
            let n_items = items.len() as u64;
            let t_apply = self.obs.tick();
            {
                let t_lock = self.obs.tick();
                let mut shard = self.shards[shard_index]
                    .write()
                    .expect("shard lock poisoned");
                self.obs.rec_shard_lock_wait(t_lock);
                // One view per critical section: table guards are only ever
                // taken *after* the shard lock (the documented lock order).
                let mut view = TableView::new(&self.table);
                for (i, p) in items {
                    let (summary, sub_bits) = extras(i);
                    outcomes[i] =
                        Some(self.finish_insert(&mut shard, &mut view, p, summary, sub_bits));
                }
            }
            self.obs.rec_apply(t_apply, n_items);
        }
        outcomes
            .into_iter()
            .map(|o| o.expect("every term processed"))
            .collect()
    }

    /// Subexpression-granularity batch ingest: every term is prepared by
    /// the fused batched pass (all subexpression hashes from one walk,
    /// canonical forms interned into the canon DAG with intra-term
    /// duplicates collapsed), then handed to
    /// [`AlphaStore::ingest_prepared_terms`] — in chunks of at most
    /// `chunk_entries` prepared entries (a term's root plus its distinct
    /// indexed subexpressions), so peak memory is Θ(chunk budget) instead
    /// of Σ subterm sizes over the whole batch.
    fn insert_batch_subs(
        &self,
        arena: &ExprArena,
        roots: &[NodeId],
        min_nodes: usize,
    ) -> Result<Vec<InsertOutcome>, StoreError> {
        let mut preparer = Preparer::new(arena, &self.scheme);
        let mut outcomes = Vec::with_capacity(roots.len());
        let mut pending: Vec<PreparedTerm<H>> = Vec::new();
        let mut pending_entries = 0usize;
        for &root in roots {
            let t = self.obs.tick();
            let pt = preparer.prepare_term(arena, root, min_nodes, &self.table);
            self.obs.rec_prepare(t, pt.root.node_count);
            pending_entries += 1 + pt.subs.len();
            pending.push(pt);
            if pending_entries >= self.chunk_entries {
                outcomes.extend(self.ingest_prepared_terms(std::mem::take(&mut pending))?);
                pending_entries = 0;
            }
        }
        if !pending.is_empty() {
            outcomes.extend(self.ingest_prepared_terms(pending)?);
        }
        let (nodes, misses) = preparer.take_hash_counters();
        self.obs.add_hash_counters(nodes, misses);
        Ok(outcomes)
    }

    /// The subexpression-granularity critical path, shared by `insert` (a
    /// one-element batch), each `insert_batch` chunk and WAL replay: the
    /// chunk is group-committed to the WAL (durable stores), then its
    /// subexpression entries are drained shard by shard, then the roots —
    /// each shard locked at most twice. Entries arrive pre-interned, so
    /// every confirmation inside the locks is an O(1) ref compare.
    pub(crate) fn ingest_prepared_terms(
        &self,
        terms: Vec<PreparedTerm<H>>,
    ) -> Result<Vec<InsertOutcome>, StoreError> {
        let outcomes = {
            let _ingest = self.maintenance.read().expect("maintenance lock poisoned");
            self.check_writable()?;
            self.wal_log_terms(&terms)?;
            self.apply_prepared_terms(terms)
        };
        self.maybe_auto_checkpoint();
        Ok(outcomes)
    }

    /// The lock-side second half of [`AlphaStore::ingest_prepared_terms`]
    /// (everything after the WAL tee).
    fn apply_prepared_terms(&self, terms: Vec<PreparedTerm<H>>) -> Vec<InsertOutcome> {
        let count = terms.len();
        let mut summaries: Vec<SubexprSummary> = Vec::with_capacity(count);
        let mut sub_bits: Vec<Vec<(u64, u32)>> = Vec::with_capacity(count);
        let mut roots_prepared: Vec<Prepared<H>> = Vec::with_capacity(count);
        let mut by_shard: HashMap<usize, Vec<(usize, SubEntry<H>)>> = HashMap::new();
        let mut total_skipped = 0u64;

        for (ti, pt) in terms.into_iter().enumerate() {
            summaries.push(SubexprSummary {
                skipped_min_nodes: pt.skipped,
                ..SubexprSummary::default()
            });
            total_skipped += pt.skipped;
            sub_bits.push(Vec::with_capacity(pt.subs.len() + 1));
            for entry in pt.subs {
                let shard = self.shard_of(entry.hash);
                by_shard.entry(shard).or_default().push((ti, entry));
            }
            let root_shard = self.shard_of(pt.root.hash);
            roots_prepared.push(Prepared {
                entry: pt.root,
                shard: root_shard,
            });
        }
        StatCounters::add(&self.counters.subterms_skipped_min_nodes, total_skipped);

        // Sweep 1: the batch's subexpression entries, one lock per shard.
        // Counter deltas accumulate locally and publish once at the end,
        // so no atomic traffic happens inside the critical sections. A
        // fresh entry with multiplicity m counts as 1 creation + (m-1)
        // merges: the collapsed duplicates merged into the class the first
        // occurrence created.
        let (mut n_indexed, mut n_created, mut n_merged, mut n_collided) = (0u64, 0u64, 0u64, 0u64);
        for (shard_index, entries) in by_shard {
            let n_entries = entries.len() as u64;
            let t_apply = self.obs.tick();
            let t_lock = self.obs.tick();
            let mut shard = self.shards[shard_index]
                .write()
                .expect("shard lock poisoned");
            self.obs.rec_shard_lock_wait(t_lock);
            let mut view = TableView::new(&self.table);
            let shard_u16 = u16::try_from(shard_index).expect("shard count fits u16");
            for (ti, entry) in entries {
                let mult = entry.multiplicity;
                let m = u64::from(mult);
                let (class_index, fresh, collided) =
                    shard.insert_entry(&self.table, &mut view, entry, false, &self.obs);
                n_indexed += m;
                summaries[ti].indexed += m;
                if fresh {
                    n_created += 1;
                    n_merged += m - 1;
                    summaries[ti].merged += m - 1;
                } else {
                    n_merged += m;
                    summaries[ti].merged += m;
                }
                if collided {
                    n_collided += 1;
                }
                sub_bits[ti].push((
                    ClassId {
                        shard: shard_u16,
                        index: class_index,
                    }
                    .to_bits(),
                    mult,
                ));
            }
            drop(shard);
            self.obs.rec_apply(t_apply, n_entries);
        }
        StatCounters::add(&self.counters.subterms_indexed, n_indexed);
        StatCounters::add(&self.counters.classes_created, n_created);
        StatCounters::add(&self.counters.subterm_merges_confirmed, n_merged);
        StatCounters::add(&self.counters.hash_collisions, n_collided);

        // Sort each term's class pairs by bits now, outside any lock —
        // finish_insert only splices in the root's own class bit. Within
        // one term every pair's class is distinct (prepare collapses
        // duplicate canons into one multiplicity, and merges are exact),
        // but coalesce defensively so the sorted-unique key invariant
        // cannot break.
        for bits in &mut sub_bits {
            bits.sort_unstable();
            bits.dedup_by(|b, a| {
                if a.0 == b.0 {
                    a.1 += b.1;
                    true
                } else {
                    false
                }
            });
        }

        // Sweep 2: the roots, one lock per shard.
        self.drain_roots(roots_prepared, |i| {
            (summaries[i], std::mem::take(&mut sub_bits[i]))
        })
    }

    /// The critical section of a root insert (shard lock already held).
    /// `sub_bits` are the term's indexed subexpression classes as
    /// [`ClassId::to_bits`], **already sorted and deduplicated** (the
    /// caller does that outside the lock); only the term's own class bit
    /// is spliced in here, since it is not known until the insert.
    fn finish_insert(
        &self,
        shard: &mut Shard<H>,
        view: &mut TableView<'_>,
        prepared: Prepared<H>,
        subs: SubexprSummary,
        mut sub_bits: Vec<(u64, u32)>,
    ) -> InsertOutcome {
        StatCounters::bump(&self.counters.terms_ingested);
        let shard_u16 = u16::try_from(prepared.shard).expect("shard count fits u16");
        let (class_index, fresh, collided) =
            shard.insert_entry(&self.table, view, prepared.entry, true, &self.obs);
        if fresh {
            StatCounters::bump(&self.counters.classes_created);
        } else {
            StatCounters::bump(&self.counters.merges_confirmed);
        }
        if collided {
            StatCounters::bump(&self.counters.hash_collisions);
        }
        let class = ClassId {
            shard: shard_u16,
            index: class_index,
        };
        if self.granularity.indexes_subexpressions() {
            let bits = class.to_bits();
            match sub_bits.binary_search_by_key(&bits, |p| p.0) {
                Ok(pos) => sub_bits[pos].1 += 1,
                Err(pos) => sub_bits.insert(pos, (bits, 1)),
            }
        }
        let term_index = u32::try_from(shard.terms.len()).expect("shard term overflow");
        shard.terms.push(class.to_bits());
        shard.term_subs.push(sub_bits.into_boxed_slice());
        InsertOutcome {
            term: TermId {
                shard: shard_u16,
                index: term_index,
            },
            class,
            fresh,
            subs,
        }
    }

    /// The read-only probe shared by [`AlphaStore::lookup`] and
    /// [`AlphaStore::contains`]: hash + canonicalize outside the lock,
    /// then find the confirming class under the shard's read lock.
    /// `roots_only` narrows the answer to classes with at least one
    /// whole-term member. Probes never intern: the canon DAG only grows
    /// through ingest.
    pub(crate) fn probe(
        &self,
        arena: &ExprArena,
        root: NodeId,
        roots_only: bool,
    ) -> Option<ClassId> {
        let mut preparer = Preparer::new(arena, &self.scheme);
        let prepared = self.prepare(&mut preparer, arena, root);
        let (nodes, misses) = preparer.take_hash_counters();
        self.obs.add_hash_counters(nodes, misses);
        self.probe_prepared(&prepared, roots_only)
    }

    fn probe_prepared(&self, prepared: &Prepared<H>, roots_only: bool) -> Option<ClassId> {
        let t = self.obs.tick();
        let t_lock = self.obs.tick();
        let shard = self.shards[prepared.shard]
            .read()
            .expect("shard lock poisoned");
        self.obs.rec_shard_lock_wait(t_lock);
        let mut view = TableView::new(&self.table);
        let found = shard
            .find(&mut view, prepared)
            .filter(|&index| !roots_only || shard.classes[index as usize].members > 0)
            .map(|index| ClassId {
                shard: u16::try_from(prepared.shard).expect("shard count fits u16"),
                index,
            });
        drop(shard);
        self.obs.rec_probe(t);
        found
    }

    /// Batched probes sharing one [`Preparer`] (and therefore one
    /// name-hash cache and one set of traversal buffers) across all
    /// patterns, grouped so each shard's read lock is taken at most once.
    /// Backs [`AlphaStore::contains_batch`]; results are in input order.
    pub(crate) fn probe_batch(
        &self,
        arena: &ExprArena,
        patterns: &[NodeId],
        roots_only: bool,
    ) -> Vec<Option<ClassId>> {
        let mut preparer = Preparer::new(arena, &self.scheme);
        let mut by_shard: HashMap<usize, Vec<(usize, Prepared<H>)>> = HashMap::new();
        for (i, &p) in patterns.iter().enumerate() {
            let prepared = self.prepare(&mut preparer, arena, p);
            by_shard
                .entry(prepared.shard)
                .or_default()
                .push((i, prepared));
        }
        let (nodes, misses) = preparer.take_hash_counters();
        self.obs.add_hash_counters(nodes, misses);
        let mut results: Vec<Option<ClassId>> = vec![None; patterns.len()];
        for (shard_index, items) in by_shard {
            let t_lock = self.obs.tick();
            let shard = self.shards[shard_index]
                .read()
                .expect("shard lock poisoned");
            self.obs.rec_shard_lock_wait(t_lock);
            let mut view = TableView::new(&self.table);
            let shard_u16 = u16::try_from(shard_index).expect("shard count fits u16");
            for (i, prepared) in items {
                let t = self.obs.tick();
                results[i] = shard
                    .find(&mut view, &prepared)
                    .filter(|&index| !roots_only || shard.classes[index as usize].members > 0)
                    .map(|index| ClassId {
                        shard: shard_u16,
                        index,
                    });
                self.obs.rec_probe(t);
            }
        }
        results
    }

    /// Finds the class of a term ingested **as a whole term**, without
    /// ingesting the query. Classes that only ever appeared as
    /// subexpressions of ingested terms do not count — that is what
    /// [`AlphaStore::contains`] answers.
    pub fn lookup(&self, arena: &ExprArena, root: NodeId) -> Option<ClassId> {
        self.probe(arena, root, true)
    }

    /// The class a previously ingested term belongs to.
    ///
    /// # Panics
    ///
    /// Panics if `term` was not issued by this store.
    pub fn class_of(&self, term: TermId) -> ClassId {
        let shard = self.shards[term.shard as usize]
            .read()
            .expect("shard lock poisoned");
        ClassId::from_bits(shard.terms[term.index as usize])
    }

    /// Number of distinct alpha-equivalence classes stored.
    pub fn num_classes(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.read().expect("shard lock poisoned").classes.len())
            .sum()
    }

    /// Number of terms ingested (every insert counts, merged or fresh).
    pub fn num_terms(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.read().expect("shard lock poisoned").terms.len())
            .sum()
    }

    /// Whether no term has been ingested yet.
    pub fn is_empty(&self) -> bool {
        self.num_terms() == 0
    }

    /// Every class handle, ordered by shard then creation, as a **lazy**
    /// iterator: nothing is allocated up front, and each stripe's lock is
    /// taken (briefly, read-only) only when the iteration reaches it.
    ///
    /// The view is taken shard by shard: classes created concurrently with
    /// the iteration may or may not appear, but every handle returned is
    /// valid forever. Collect with [`AlphaStore::classes_vec`] when a
    /// point-in-time `Vec` is wanted (e.g. to sort).
    pub fn classes(&self) -> impl Iterator<Item = ClassId> + '_ {
        self.shards.iter().enumerate().flat_map(|(si, stripe)| {
            let len = stripe.read().expect("shard lock poisoned").classes.len() as u32;
            let si = u16::try_from(si).expect("shard count fits u16");
            (0..len).map(move |index| ClassId { shard: si, index })
        })
    }

    /// [`AlphaStore::classes`] collected into a `Vec` — the allocating
    /// shape the API originally exposed.
    pub fn classes_vec(&self) -> Vec<ClassId> {
        self.classes().collect()
    }

    /// How many **whole ingested terms** belong to `class`. Zero for
    /// classes that only ever appeared as subexpressions (see
    /// [`AlphaStore::occurrences`] for the count that includes those).
    ///
    /// # Panics
    ///
    /// Panics if `class` was not issued by this store.
    pub fn members(&self, class: ClassId) -> u64 {
        self.with_class(class, |c| c.members)
    }

    /// Tree node count of the class's canonical form (the size every
    /// member shares, alpha-equivalent terms being equisized). The
    /// *resident* cost is lower: canonical structure is stored once in the
    /// shared canon DAG, see [`AlphaStore::canon_dag_stats`].
    ///
    /// # Panics
    ///
    /// Panics if `class` was not issued by this store.
    pub fn node_count(&self, class: ClassId) -> usize {
        usize::try_from(self.with_class(class, |c| c.node_count)).expect("node count fits usize")
    }

    /// The content address (alpha-hash) of `class`.
    ///
    /// # Panics
    ///
    /// Panics if `class` was not issued by this store.
    pub fn hash_of(&self, class: ClassId) -> H {
        self.with_class(class, |c| c.hash)
    }

    /// The class's canonical form in the paper's de Bruijn notation
    /// (`\. %0`, free variables by name), extracted from the canon DAG.
    ///
    /// # Panics
    ///
    /// Panics if `class` was not issued by this store.
    pub fn canonical_text(&self, class: ClassId) -> String {
        let cref = self.with_class(class, |c| c.canon);
        let mut view = TableView::new(&self.table);
        let (arena, root) = extract_one(&mut view, cref);
        db_print(&arena, root)
    }

    /// Rebuilds a named representative of `class` into `dst` (fresh binder
    /// names, unique-binder invariant holds) and returns its root.
    ///
    /// # Panics
    ///
    /// Panics if `class` was not issued by this store.
    pub fn representative_into(&self, class: ClassId, dst: &mut ExprArena) -> NodeId {
        let cref = self.with_class(class, |c| c.canon);
        let mut view = TableView::new(&self.table);
        let (arena, root) = extract_one(&mut view, cref);
        drop(view);
        rebuild_named(&arena, root, dst)
    }

    /// Shared-DAG size of a corpus under this store's hash scheme; see
    /// [`crate::corpus::corpus_shared_dag_size`].
    pub fn shared_dag_size(&self, arena: &ExprArena, roots: &[NodeId]) -> usize {
        crate::corpus::corpus_shared_dag_size(arena, roots, &self.scheme)
    }

    /// Snapshot of the ingest statistics.
    pub fn stats(&self) -> StoreStats {
        self.counters.snapshot()
    }

    /// Resident footprint of the hash-consed canon DAG versus the
    /// standalone storage it replaces: distinct nodes and bytes actually
    /// resident, and the logical (per-class tree) node total a
    /// one-arena-per-class design would hold. The ratio of the two is the
    /// structure-sharing win.
    pub fn canon_dag_stats(&self) -> CanonDagStats {
        let resident_nodes = self.table.resident_nodes();
        let (resident_names, name_bytes) = self.table.resident_names();
        let logical_nodes: u64 = self
            .shards
            .iter()
            .map(|s| {
                s.read()
                    .expect("shard lock poisoned")
                    .classes
                    .iter()
                    .map(|c| c.node_count)
                    .sum::<u64>()
            })
            .sum();
        CanonDagStats {
            resident_nodes,
            resident_bytes: resident_nodes * std::mem::size_of::<CanonNode>() as u64 + name_bytes,
            resident_names,
            logical_nodes,
        }
    }

    // ---- persistence ---------------------------------------------------

    /// Opens a durable store from its directory, reading the whole
    /// configuration (hash scheme, shard count, granularity) from disk:
    /// loads the latest snapshot, replays the WAL tail — **re-confirming
    /// every replayed merge by canonical-form identity**, so exactness
    /// survives restarts — truncates any torn tail left by a crash, and
    /// checkpoints (fresh snapshot, reset WAL). Use
    /// [`StoreBuilder::open_durable`] instead when the caller knows the
    /// configuration and wants it verified against what is on disk (or
    /// wants [`StoreBuilder::verify_on_replay`] paranoia).
    ///
    /// The hash width is the one thing the type system fixes: opening a
    /// store whose snapshot was written at a different `H` fails with
    /// [`PersistError::Mismatch`].
    ///
    /// ```
    /// use alpha_store::AlphaStore;
    /// use lambda_lang::{parse, ExprArena};
    ///
    /// let dir = std::env::temp_dir().join(format!("doc-open-{}", std::process::id()));
    /// let mut arena = ExprArena::new();
    /// let t = parse(&mut arena, r"\x. x + 1").unwrap();
    /// let class = {
    ///     let store: AlphaStore<u64> =
    ///         AlphaStore::builder().open_durable(&dir).unwrap();
    ///     store.insert(&arena, t).class
    /// }; // dropped: the store is gone from memory…
    ///
    /// let reopened: AlphaStore<u64> = AlphaStore::open(&dir).unwrap();
    /// let alpha = parse(&mut arena, r"\q. q + 1").unwrap();
    /// assert_eq!(reopened.lookup(&arena, alpha), Some(class)); // …not from disk
    /// assert!(reopened.stats().is_exact());
    /// # std::fs::remove_dir_all(&dir).unwrap();
    /// ```
    pub fn open(dir: impl AsRef<Path>) -> Result<Self, PersistError> {
        crate::persist::open_store(
            dir.as_ref(),
            None,
            crate::persist::OpenConfig {
                sync_on_commit: false,
                chunk_entries: Self::DEFAULT_CHUNK_ENTRIES,
                verify_on_replay: false,
                vfs: Arc::new(crate::persist::vfs::OsVfs),
                retry: RetryPolicy::default(),
                auto_ckpt: AutoCheckpoint::default(),
                table_shards: crate::dag::default_table_shards(),
            },
        )
    }

    /// Whether this store tees inserts into a write-ahead log (built via
    /// [`StoreBuilder::open_durable`] or [`AlphaStore::open`]).
    pub fn is_durable(&self) -> bool {
        self.durable.is_some()
    }

    /// What recovery did when this store was opened from a durable
    /// directory: how many WAL records were replayed, and whether the
    /// reopen was **clean** (snapshot already current, no replay, no
    /// recovery checkpoint). `None` for in-memory stores and for
    /// directories created fresh by this open.
    pub fn recovery_info(&self) -> Option<RecoveryInfo> {
        self.recovery
    }

    /// The durable store's directory, if any.
    pub fn persist_dir(&self) -> Option<&Path> {
        self.durable.as_ref().map(|d| d.dir.as_path())
    }

    /// Records currently in the write-ahead log (zero right after
    /// [`AlphaStore::compact`] or a fresh open). `None` for in-memory
    /// stores.
    pub fn wal_records(&self) -> Option<u64> {
        self.durable
            .as_ref()
            .map(|d| d.wal.lock().expect("wal lock poisoned").records)
    }

    /// Writes a fresh snapshot of the current state (atomically: temp
    /// file, `fsync`, rename) without touching the WAL. The snapshot
    /// records how many WAL records it absorbed, so a subsequent
    /// [`AlphaStore::open`] replays only the records that arrive after
    /// this call.
    ///
    /// Errors with [`PersistError::Mismatch`] on an in-memory store. A
    /// write failure marks the store [`Health::Degraded`] (the previous
    /// snapshot and the WAL are untouched, so nothing is lost).
    pub fn snapshot(&self) -> Result<(), PersistError> {
        let durable = self.require_durable()?;
        let _cut = self.maintenance.write().expect("maintenance lock poisoned");
        let wal = durable.wal.lock().expect("wal lock poisoned");
        let result = self.write_snapshot_file(
            &*durable.vfs,
            &durable.dir.join(SNAPSHOT_FILE),
            wal.epoch,
            wal.records,
        );
        if let Err(e) = &result {
            self.obs.persist_error();
            self.set_degraded(format!("snapshot failed: {e}"));
        }
        result
    }

    /// Checkpoints the durable state: writes a fresh snapshot under the
    /// **next epoch**, then truncates the WAL and restamps it with that
    /// epoch. The snapshot rename is the commit point — a crash between
    /// the two steps leaves a stale-epoch WAL that recovery recognises and
    /// discards instead of replaying records the snapshot already holds.
    ///
    /// This is also the manual **healing** path: a successful checkpoint
    /// proves the storage can absorb the full state again, so it resets
    /// [`health`](AlphaStore::health) to [`Health::Healthy`] — including
    /// out of [`Health::ReadOnly`], re-enabling ingest. A failed snapshot
    /// write leaves the previous snapshot and the WAL untouched (the
    /// store stays degraded but loses nothing); a failed WAL truncation
    /// *after* the snapshot committed flips the store read-only, since
    /// appending to a WAL whose truncation half-happened could corrupt it.
    ///
    /// Errors with [`PersistError::Mismatch`] on an in-memory store.
    pub fn checkpoint(&self) -> Result<(), PersistError> {
        let durable = self.require_durable()?;
        let _cut = self.maintenance.write().expect("maintenance lock poisoned");
        self.checkpoint_locked(durable)
    }

    /// [`AlphaStore::checkpoint`] under an already-held exclusive
    /// maintenance guard — shared with the auto-checkpoint path.
    fn checkpoint_locked(&self, durable: &Durable) -> Result<(), PersistError> {
        let mut wal = durable.wal.lock().expect("wal lock poisoned");
        let new_epoch = wal.epoch + 1;
        if let Err(e) = self.write_snapshot_file(
            &*durable.vfs,
            &durable.dir.join(SNAPSHOT_FILE),
            new_epoch,
            0,
        ) {
            self.obs.persist_error();
            self.set_degraded(format!("checkpoint snapshot failed: {e}"));
            return Err(e);
        }
        match wal.reset(WalHeader {
            hash_bits: H::BITS,
            scheme_seed: self.scheme.seed(),
            shard_count: u32::try_from(self.shard_count()).expect("shard count fits u32"),
            granularity: self.granularity,
            epoch: new_epoch,
        }) {
            Ok(()) => {
                self.heal();
                Ok(())
            }
            Err(e) => {
                self.set_read_only(format!("WAL reset failed after checkpoint: {e}"));
                Err(e)
            }
        }
    }

    /// Alias for [`AlphaStore::checkpoint`], kept for callers of the
    /// pre-health-machine API.
    pub fn compact(&self) -> Result<(), PersistError> {
        self.checkpoint()
    }

    /// Checks the auto-checkpoint watermarks after an ingest chunk lands
    /// and, if one tripped, runs a checkpoint opportunistically. Never
    /// fails the insert that triggered it: a contended maintenance lock
    /// skips (someone else is compacting or snapshotting anyway), and a
    /// checkpoint error only moves [`health`](AlphaStore::health) — the
    /// chunk itself is already committed to the WAL.
    pub(crate) fn maybe_auto_checkpoint(&self) {
        let Some(durable) = &self.durable else {
            return;
        };
        if !self.auto_ckpt.armed() {
            return;
        }
        let (bytes, records) = {
            let wal = durable.wal.lock().expect("wal lock poisoned");
            (wal.bytes_since_checkpoint(), wal.records)
        };
        if !self.auto_ckpt.reached(bytes, records) {
            return;
        }
        // try_write, not write: if maintenance is already running (another
        // auto-checkpoint, an explicit compact), the watermark stays
        // tripped and the next chunk re-checks.
        let Ok(_cut) = self.maintenance.try_write() else {
            return;
        };
        {
            let wal = durable.wal.lock().expect("wal lock poisoned");
            if !self
                .auto_ckpt
                .reached(wal.bytes_since_checkpoint(), wal.records)
            {
                return;
            }
        }
        self.obs.rec_auto_checkpoint();
        // checkpoint_locked does the health bookkeeping on failure.
        let _ = self.checkpoint_locked(durable);
    }

    fn require_durable(&self) -> Result<&Durable, PersistError> {
        self.durable.as_ref().ok_or_else(|| PersistError::Mismatch {
            context: "store is in-memory; build it with StoreBuilder::open_durable".to_owned(),
        })
    }

    /// Serializes the current state to `path` (the caller has quiesced
    /// ingest or owns the store exclusively). Shard read locks are taken
    /// in index order, then the canon table is read — after the
    /// maintenance/WAL locks, per the documented lock order. The node
    /// table is emitted **once** (the reachable sub-DAG, sharing
    /// preserved); classes serialize as positions into it.
    pub(crate) fn write_snapshot_file(
        &self,
        vfs: &dyn Vfs,
        path: &Path,
        wal_epoch: u64,
        wal_records_applied: u64,
    ) -> Result<(), PersistError> {
        let t = self.obs.tick();
        let guards: Vec<_> = self
            .shards
            .iter()
            .map(|s| s.read().expect("shard lock poisoned"))
            .collect();
        let shard_refs: Vec<&Shard<H>> = guards.iter().map(|g| &**g).collect();
        // Extract the class-reachable sub-DAG once, sharing preserved:
        // one arena, one id per distinct node, every class root an id.
        let refs: Vec<CanonRef> = shard_refs
            .iter()
            .flat_map(|s| s.classes.iter().map(|c| c.canon))
            .collect();
        let mut dag = lambda_lang::debruijn::DbArena::new();
        let mut view = TableView::new(&self.table);
        let class_roots = extract_canon(&mut view, &refs, &mut dag);
        drop(view);
        let header = SnapshotHeader {
            hash_bits: H::BITS,
            scheme_seed: self.scheme.seed(),
            shard_count: u32::try_from(self.shards.len()).expect("shard count fits u32"),
            granularity: self.granularity,
            wal_epoch,
            wal_records_applied,
            stats: self.counters.snapshot(),
        };
        let bytes =
            crate::persist::snapshot::encode_snapshot(&header, &shard_refs, &dag, &class_roots);
        let result = crate::persist::snapshot::write_atomically(vfs, path, &bytes);
        drop(guards);
        if result.is_ok() {
            self.obs.rec_snapshot_write(t, bytes.len() as u64);
        }
        result
    }

    /// Replays recovered WAL records through the normal ingest path,
    /// group by group — each group is one original group commit, so the
    /// root-vs-subterm merge-counter split is reproduced exactly (groups
    /// are re-chunked by `chunk_entries`, which is the identity when the
    /// store reopens with the configuration that wrote them). Every
    /// replayed merge is re-confirmed by canonical-form identity. With
    /// `verify`, every record is additionally **re-hashed** (its canon
    /// rebuilt to a named term and pushed through the full hashing
    /// pipeline) before being trusted — the paranoid mode that catches
    /// canon payload corruption consistent enough to slip past CRC and
    /// confirmation. Runs before the WAL is attached, so nothing is
    /// re-logged.
    ///
    /// Delta records (v3 `update` frames) interleave with inserts in log
    /// order: any pending insert chunk is flushed first, then the delta
    /// is re-applied through the same deterministic splice the live
    /// update used, its recorded root hash cross-checked
    /// ([`PersistError::Corrupt`] on mismatch).
    pub(crate) fn replay(
        &mut self,
        groups: Vec<Vec<WalEntry<H>>>,
        verify: bool,
    ) -> Result<(), PersistError> {
        debug_assert!(self.durable.is_none(), "replay must not re-log records");
        for group in groups {
            let mut pending: Vec<PreparedTerm<H>> = Vec::new();
            let mut pending_entries = 0usize;
            for entry in group {
                match entry {
                    WalEntry::Insert(raw) => {
                        if verify {
                            crate::persist::verify_record(&self.scheme, &raw)?;
                        }
                        let pt = self.intern_raw(raw);
                        pending_entries += 1 + pt.subs.len();
                        pending.push(pt);
                        if pending_entries >= self.chunk_entries {
                            self.ingest_prepared_terms(std::mem::take(&mut pending))
                                .expect("in-memory replay ingest cannot fail");
                            pending_entries = 0;
                        }
                    }
                    WalEntry::Update(delta) => {
                        if !pending.is_empty() {
                            self.ingest_prepared_terms(std::mem::take(&mut pending))
                                .expect("in-memory replay ingest cannot fail");
                            pending_entries = 0;
                        }
                        crate::update::apply_update_replay(self, delta, verify)?;
                    }
                }
            }
            if !pending.is_empty() {
                self.ingest_prepared_terms(pending)
                    .expect("in-memory replay ingest cannot fail");
            }
        }
        Ok(())
    }

    /// Interns one decoded WAL record's canon DAG into the store's table
    /// and re-addresses its entries as interned prepared entries.
    fn intern_raw(&self, raw: RawRecord<H>) -> PreparedTerm<H> {
        let refs = self.table.intern_arena_refs(&raw.canon);
        let entry = |e: &crate::persist::format::RawEntry<H>| SubEntry {
            hash: e.hash,
            node_count: e.node_count,
            multiplicity: e.multiplicity,
            canon: PreparedCanon::Interned(refs[e.pos.index()]),
        };
        PreparedTerm {
            root: entry(&raw.root),
            subs: raw.subs.iter().map(entry).collect(),
            skipped: raw.skipped,
        }
    }

    /// Tees a chunk of root-granularity inserts into the WAL as one group
    /// commit (the chunk's records, then a boundary marker so replay can
    /// reproduce the group exactly). No-op on in-memory stores. A write
    /// failure is retried per the store's [`RetryPolicy`]; exhausting the
    /// retries returns [`StoreError::Persist`] **without** applying the
    /// chunk to memory, so memory and WAL stay in agreement.
    fn wal_log_roots(&self, prepared: &[Prepared<H>]) -> Result<(), StoreError> {
        let Some(durable) = &self.durable else {
            return Ok(());
        };
        // ~10 bytes per canon node plus fixed costs: a close-enough guess
        // that the frame buffer almost never regrows mid-chunk.
        let estimate: usize = prepared
            .iter()
            .map(|p| 80 + p.entry.node_count as usize * 10)
            .sum();
        let mut frames = Vec::with_capacity(estimate);
        for p in prepared {
            let PreparedCanon::Frontier { canon, canon_root } = &p.entry.canon else {
                unreachable!("root-granularity prepares frontier forms");
            };
            crate::persist::wal::frame_record_frontier(
                &mut frames,
                p.entry.hash,
                canon,
                *canon_root,
            );
        }
        crate::persist::wal::frame_commit(&mut frames, prepared.len() as u64);
        self.wal_append_with_retry(durable, &frames, prepared.len() as u64)
    }

    /// Tees a chunk of subexpression-granularity inserts into the WAL as
    /// one group commit. Each record's canon is encoded as one
    /// node-deduplicated DAG (extracted from the canon table) with entries
    /// addressing positions in it — duplicates within a term cost one
    /// position and a multiplicity, not k copies. No-op on in-memory
    /// stores; retried on write failure like [`AlphaStore::wal_log_roots`].
    fn wal_log_terms(&self, terms: &[PreparedTerm<H>]) -> Result<(), StoreError> {
        let Some(durable) = &self.durable else {
            return Ok(());
        };
        let estimate: usize = terms
            .iter()
            .map(|pt| 96 + 28 * pt.subs.len() + pt.root.node_count as usize * 10)
            .sum();
        let mut frames = Vec::with_capacity(estimate);
        // Table reads happen here, before the WAL mutex is taken (lock
        // order), and the view is dropped before appending.
        let mut view = TableView::new(&self.table);
        for pt in terms {
            crate::persist::wal::frame_record_interned(&mut frames, &mut view, pt);
        }
        drop(view);
        crate::persist::wal::frame_commit(&mut frames, terms.len() as u64);
        self.wal_append_with_retry(durable, &frames, terms.len() as u64)
    }

    /// The shared locked-append tail of the two `wal_log_*` tees, with the
    /// degraded-mode retry loop around it. Transient failures sleep a
    /// bounded exponential backoff (the WAL mutex is **held across the
    /// sleeps** — concurrent ingest queues behind the same broken disk
    /// either way, and releasing it would let groups land out of order);
    /// a retried append that succeeds heals the store back to
    /// [`Health::Healthy`], while exhausting the policy flips it to
    /// [`Health::ReadOnly`] and returns the underlying error.
    pub(crate) fn wal_append_with_retry(
        &self,
        durable: &Durable,
        frames: &[u8],
        count: u64,
    ) -> Result<(), StoreError> {
        let t = self.obs.tick();
        let mut wal = durable.wal.lock().expect("wal lock poisoned");
        let mut attempt = 0u32;
        loop {
            match wal.append_group(frames, count) {
                Ok(()) => {
                    drop(wal);
                    self.obs.rec_wal_commit(t, count);
                    if attempt > 0 {
                        self.heal();
                    }
                    return Ok(());
                }
                Err(e) => {
                    if attempt >= self.retry.retries {
                        drop(wal);
                        let reason = format!("WAL write failed after {attempt} retries: {e}");
                        self.set_read_only(reason);
                        return Err(StoreError::Persist(e));
                    }
                    attempt += 1;
                    self.obs.rec_wal_retry();
                    self.set_degraded(format!(
                        "WAL write failing (retry {attempt}/{}): {e}",
                        self.retry.retries
                    ));
                    let delay = self
                        .retry
                        .backoff
                        .saturating_mul(1u32 << (attempt - 1).min(16));
                    (self.retry.sleeper)(delay);
                }
            }
        }
    }

    /// The store's current [`Health`]. `Healthy` stores persist normally;
    /// `Degraded` stores have seen transient persistence failures (recent
    /// ingests still landed, but the storage deserves attention);
    /// `ReadOnly` stores refuse ingest — lookups keep serving from memory
    /// — until a successful [`AlphaStore::checkpoint`] proves the storage
    /// recovered. In-memory stores are always `Healthy`.
    pub fn health(&self) -> Health {
        match self.health.state.load(Ordering::Acquire) {
            HEALTH_HEALTHY => Health::Healthy,
            HEALTH_DEGRADED => Health::Degraded(
                self.health
                    .reason
                    .lock()
                    .expect("health lock poisoned")
                    .clone(),
            ),
            _ => Health::ReadOnly(
                self.health
                    .reason
                    .lock()
                    .expect("health lock poisoned")
                    .clone(),
            ),
        }
    }

    /// Ingest-path gate: one relaxed atomic load when healthy, a typed
    /// refusal when read-only.
    pub(crate) fn check_writable(&self) -> Result<(), StoreError> {
        if self.health.state.load(Ordering::Relaxed) == HEALTH_READ_ONLY {
            return Err(StoreError::Degraded {
                reason: self
                    .health
                    .reason
                    .lock()
                    .expect("health lock poisoned")
                    .clone(),
            });
        }
        Ok(())
    }

    /// Healthy → Degraded (or refreshes a Degraded reason). ReadOnly
    /// outranks Degraded, so an already-read-only store is left alone.
    fn set_degraded(&self, reason: String) {
        match self.health.state.compare_exchange(
            HEALTH_HEALTHY,
            HEALTH_DEGRADED,
            Ordering::AcqRel,
            Ordering::Acquire,
        ) {
            Ok(_) => {
                *self.health.reason.lock().expect("health lock poisoned") = reason;
                self.obs
                    .rec_health("store.degraded", u64::from(HEALTH_DEGRADED));
            }
            Err(HEALTH_DEGRADED) => {
                *self.health.reason.lock().expect("health lock poisoned") = reason;
            }
            Err(_) => {}
        }
    }

    /// Any state → ReadOnly: persistence is gone until an operator (or a
    /// successful [`AlphaStore::checkpoint`]) intervenes.
    fn set_read_only(&self, reason: String) {
        let prev = self.health.state.swap(HEALTH_READ_ONLY, Ordering::AcqRel);
        *self.health.reason.lock().expect("health lock poisoned") = reason;
        if prev != HEALTH_READ_ONLY {
            self.obs
                .rec_health("store.read_only", u64::from(HEALTH_READ_ONLY));
        }
    }

    /// Any state → Healthy, after storage proved itself again (a retried
    /// append landed, or a checkpoint completed).
    fn heal(&self) {
        let prev = self.health.state.swap(HEALTH_HEALTHY, Ordering::AcqRel);
        if prev != HEALTH_HEALTHY {
            self.health
                .reason
                .lock()
                .expect("health lock poisoned")
                .clear();
            self.obs
                .rec_health("store.healed", u64::from(HEALTH_HEALTHY));
        }
    }

    pub(crate) fn with_class<T>(&self, class: ClassId, f: impl FnOnce(&StoredClass<H>) -> T) -> T {
        let shard = self.shards[class.shard as usize]
            .read()
            .expect("shard lock poisoned");
        f(&shard.classes[class.index as usize])
    }
}

/// Observability surface, present with the `obs` cargo feature
/// (default). See `docs/OBSERVABILITY.md` for the metric catalog.
#[cfg(feature = "obs")]
impl<H: HashWord> AlphaStore<H> {
    /// A point-in-time snapshot of every instrument this store owns —
    /// latency histograms, confirmation counters, WAL gauges — unified
    /// with [`StoreStats`] and [`CanonDagStats`] derived values so one
    /// call yields the full picture. Render it with
    /// [`Report::to_json`](alpha_obs::Report::to_json) or
    /// [`Report::to_prometheus`](alpha_obs::Report::to_prometheus).
    pub fn obs_report(&self) -> alpha_obs::Report {
        use alpha_obs::{Desc, Sample};
        const fn d(name: &'static str, help: &'static str, unit: &'static str) -> Desc {
            Desc { name, help, unit }
        }
        let stats = self.stats();
        let dag = self.canon_dag_stats();
        let (intern_hits, intern_misses) = self.table.intern_stats();
        let mut extras = vec![
            Sample::counter(
                d(
                    "alpha_store_terms_ingested",
                    "Whole terms ingested",
                    "terms",
                ),
                stats.terms_ingested,
            ),
            Sample::counter(
                d(
                    "alpha_store_classes_created",
                    "Fresh equivalence classes created",
                    "classes",
                ),
                stats.classes_created,
            ),
            Sample::counter(
                d(
                    "alpha_store_merges_confirmed",
                    "Whole-term merges confirmed by canonical identity",
                    "merges",
                ),
                stats.merges_confirmed,
            ),
            Sample::counter(
                d(
                    "alpha_store_hash_collisions",
                    "Inserts whose hash matched a non-equivalent class",
                    "collisions",
                ),
                stats.hash_collisions,
            ),
            Sample::counter(
                d(
                    "alpha_store_unconfirmed_merges",
                    "Merges accepted without confirmation (always 0: merges are exact)",
                    "merges",
                ),
                stats.unconfirmed_merges,
            ),
            Sample::counter(
                d(
                    "alpha_store_subterms_indexed",
                    "Subexpression occurrences indexed",
                    "subterms",
                ),
                stats.subterms_indexed,
            ),
            Sample::counter(
                d(
                    "alpha_store_subterm_merges_confirmed",
                    "Subexpression merges confirmed by canonical identity",
                    "merges",
                ),
                stats.subterm_merges_confirmed,
            ),
            Sample::counter(
                d(
                    "alpha_store_subterms_skipped_min_nodes",
                    "Subexpressions skipped by the min_nodes floor",
                    "subterms",
                ),
                stats.subterms_skipped_min_nodes,
            ),
            Sample::counter(
                d(
                    "alpha_store_canon_intern_hits",
                    "Canon-table intern calls answered by an existing node",
                    "nodes",
                ),
                intern_hits,
            ),
            Sample::counter(
                d(
                    "alpha_store_canon_intern_misses",
                    "Canon-table intern calls that inserted a new node",
                    "nodes",
                ),
                intern_misses,
            ),
            Sample::gauge(
                d(
                    "alpha_store_canon_resident_nodes",
                    "Distinct canon DAG nodes resident",
                    "nodes",
                ),
                dag.resident_nodes,
            ),
            Sample::gauge(
                d(
                    "alpha_store_canon_logical_nodes",
                    "Logical canon nodes a tree-per-class design would hold",
                    "nodes",
                ),
                dag.logical_nodes,
            ),
            Sample::gauge(
                d(
                    "alpha_store_canon_resident_bytes",
                    "Approximate bytes resident in the canon DAG",
                    "bytes",
                ),
                dag.resident_bytes,
            ),
            Sample::gauge(
                d(
                    "alpha_store_shards",
                    "Effective store lock-stripe count",
                    "shards",
                ),
                self.shard_count() as u64,
            ),
            Sample::gauge(
                d(
                    "alpha_store_table_shards",
                    "Effective canon-table lock-stripe count",
                    "shards",
                ),
                self.table_shard_count() as u64,
            ),
        ];
        if let Some(records) = self.wal_records() {
            extras.push(Sample::gauge(
                d(
                    "alpha_store_wal_records",
                    "Records in the live WAL epoch",
                    "records",
                ),
                records,
            ));
        }
        self.obs.report(extras)
    }

    /// Runtime toggle for the clock-reading / event-emitting half of
    /// instrumentation (on by default). Counters and length histograms
    /// keep recording regardless — one relaxed atomic op each — so
    /// reconciliation invariants (e.g. confirmations vs
    /// [`StoreStats::merges_confirmed`]) hold in either state.
    pub fn set_obs_enabled(&self, on: bool) {
        self.obs.set_enabled(on);
    }

    /// Whether timed instrumentation is currently enabled.
    pub fn obs_enabled(&self) -> bool {
        self.obs.enabled()
    }

    /// The most recent trace events from the default ring-buffer
    /// subscriber (newest last). Empty after
    /// [`set_obs_subscriber`](Self::set_obs_subscriber) replaces the
    /// ring.
    pub fn obs_recent_events(&self) -> Vec<alpha_obs::Event> {
        self.obs.recent_events()
    }

    /// Replaces the trace subscriber (the default is a bounded ring
    /// buffer readable via
    /// [`obs_recent_events`](Self::obs_recent_events)). The subscriber
    /// is called with store locks possibly held: it must not call back
    /// into this store.
    pub fn set_obs_subscriber(&self, s: std::sync::Arc<dyn alpha_obs::Subscriber>) {
        self.obs.set_subscriber(s);
    }
}

// The whole point of the sharded design: the store is shareable across
// ingest threads. Fails to compile if a non-Sync type sneaks in.
const _: fn() = || {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<AlphaStore<u64>>();
    assert_send_sync::<AlphaStore<u128>>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use lambda_lang::parse::parse;

    fn store() -> AlphaStore<u64> {
        AlphaStore::with_shards(HashScheme::new(0xA1FA), 8)
    }

    #[test]
    fn insert_is_idempotent_modulo_alpha() {
        let store = store();
        let mut arena = ExprArena::new();
        let a = parse(&mut arena, r"\x. x + 1").unwrap();
        let b = parse(&mut arena, r"\y. y + 1").unwrap();
        let first = store.insert(&arena, a);
        let second = store.insert(&arena, b);
        assert!(first.fresh);
        assert!(!second.fresh);
        assert_eq!(first.class, second.class);
        assert_ne!(first.term, second.term);
        assert_eq!(store.num_classes(), 1);
        assert_eq!(store.num_terms(), 2);
        assert_eq!(store.members(first.class), 2);
        let stats = store.stats();
        assert_eq!(stats.merges_confirmed, 1);
        assert_eq!(stats.classes_created, 1);
        assert!(stats.is_exact());
    }

    #[test]
    fn inequivalent_terms_get_distinct_classes() {
        let store = store();
        let mut arena = ExprArena::new();
        let terms = [
            parse(&mut arena, r"\x. x").unwrap(),
            parse(&mut arena, r"\x. x x").unwrap(),
            parse(&mut arena, r"\x. x + y").unwrap(),
            parse(&mut arena, r"\x. x + z").unwrap(), // free var differs
        ];
        let classes: Vec<ClassId> = terms
            .iter()
            .map(|&t| store.insert(&arena, t).class)
            .collect();
        for i in 0..classes.len() {
            for j in 0..i {
                assert_ne!(classes[i], classes[j], "terms {i} and {j} merged");
            }
        }
    }

    #[test]
    fn batch_matches_singles_and_preserves_order() {
        let mut arena = ExprArena::new();
        let roots: Vec<NodeId> = [r"\a. a", r"\b. b", "v + 7", r"\c. c + (v+7)"]
            .iter()
            .map(|s| parse(&mut arena, s).unwrap())
            .collect();

        let singles = store();
        let one_by_one: Vec<ClassId> = roots
            .iter()
            .map(|&r| singles.insert(&arena, r).class)
            .collect();

        let batched = store();
        let batch = batched.insert_batch(&arena, &roots);
        assert_eq!(batch.len(), roots.len());
        // Same partition: term i and j share a class in one store iff they
        // do in the other.
        for i in 0..roots.len() {
            for j in 0..roots.len() {
                assert_eq!(
                    one_by_one[i] == one_by_one[j],
                    batch[i].class == batch[j].class,
                );
            }
        }
        assert!(batch[0].fresh && !batch[1].fresh);
    }

    #[test]
    fn lookup_does_not_ingest() {
        let store = store();
        let mut arena = ExprArena::new();
        let t = parse(&mut arena, r"\x. x * x").unwrap();
        assert_eq!(store.lookup(&arena, t), None);
        let inserted = store.insert(&arena, t);
        let alpha = parse(&mut arena, r"\q. q * q").unwrap();
        assert_eq!(store.lookup(&arena, alpha), Some(inserted.class));
        assert_eq!(store.num_terms(), 1);
    }

    #[test]
    fn representative_is_alpha_equivalent_to_members() {
        let store = store();
        let mut arena = ExprArena::new();
        let t = parse(&mut arena, r"\x. \y. x + y*7").unwrap();
        let outcome = store.insert(&arena, t);
        let mut dst = ExprArena::new();
        let rep = store.representative_into(outcome.class, &mut dst);
        assert!(lambda_lang::alpha_eq(&arena, t, &dst, rep));
        assert_eq!(store.node_count(outcome.class), arena.subtree_size(t));
        assert_eq!(
            store.canonical_text(outcome.class),
            r"\. \. add %1 (mul %0 7)"
        );
    }

    #[test]
    fn alpha_duplicates_share_resident_canon_storage() {
        // Ten alpha-renamings of one term: one class, and the canon DAG
        // holds the structure exactly once.
        let store = store();
        let mut arena = ExprArena::new();
        for i in 0..10 {
            let src = format!(r"\v{i}. v{i} + (w * 7)");
            let t = parse(&mut arena, &src).unwrap();
            store.insert(&arena, t);
        }
        assert_eq!(store.num_classes(), 1);
        let dag = store.canon_dag_stats();
        assert_eq!(dag.logical_nodes, 10); // one 10-node canonical tree
        assert_eq!(dag.resident_nodes, 10); // …resident exactly once
                                            // A second, overlapping term shares its common suffix.
        let t2 = parse(&mut arena, r"\q. q * (w * 7)").unwrap();
        store.insert(&arena, t2);
        let dag2 = store.canon_dag_stats();
        assert!(
            dag2.resident_nodes < dag2.logical_nodes,
            "cross-class sharing: {dag2:?}"
        );
    }

    #[test]
    fn contains_batch_matches_single_probes() {
        let store: AlphaStore<u64> = AlphaStore::builder().seed(0xBA7C).subexpressions(1).build();
        let mut arena = ExprArena::new();
        let t = parse(&mut arena, r"foo (\x. x + 7) (v * 3)").unwrap();
        store.insert(&arena, t);
        let patterns: Vec<NodeId> = [r"\p. p + 7", "v * 3", "v * 4", "foo", r"\z. z"]
            .iter()
            .map(|s| parse(&mut arena, s).unwrap())
            .collect();
        let batch = store.contains_batch(&arena, &patterns);
        for (i, &p) in patterns.iter().enumerate() {
            assert_eq!(batch[i], store.contains(&arena, p), "pattern {i}");
        }
        assert!(batch[0].is_some() && batch[1].is_some());
        assert!(batch[2].is_none() && batch[4].is_none());
    }

    #[test]
    fn narrow_hashes_surface_collisions_without_merging() {
        // At b = 16 random inequivalent terms collide readily (the
        // Appendix B study); the store must keep them separate and count
        // the collisions rather than merge unconfirmed.
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let store: AlphaStore<u16> = AlphaStore::with_shards(HashScheme::new(3), 4);
        let mut arena = ExprArena::new();
        let mut rng = StdRng::seed_from_u64(11);
        let mut roots = Vec::new();
        for _ in 0..600 {
            roots.push(expr_gen::balanced(&mut arena, 30, &mut rng));
        }
        let outcomes = store.insert_batch(&arena, &roots);

        // Exactness check against ground truth on every pair.
        for i in 0..roots.len() {
            for j in 0..i {
                let same_class = outcomes[i].class == outcomes[j].class;
                let equivalent = lambda_lang::alpha_eq(&arena, roots[i], &arena, roots[j]);
                assert_eq!(same_class, equivalent, "pair ({i},{j})");
            }
        }
        let stats = store.stats();
        assert!(stats.is_exact());
        assert!(
            stats.hash_collisions > 0,
            "600 random 30-node terms at b=16 should collide at least once: {stats}"
        );
    }

    #[test]
    fn class_ids_round_trip_through_bits() {
        let id = ClassId {
            shard: 7,
            index: 123_456,
        };
        assert_eq!(ClassId::from_bits(id.to_bits()), id);
        assert_eq!(format!("{id:?}"), "c7.123456");
    }
}
