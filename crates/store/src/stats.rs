//! Ingest statistics: what the store did, and proof that it stayed exact.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

/// A point-in-time snapshot of store activity, from
/// [`AlphaStore::stats`](crate::AlphaStore::stats).
///
/// The invariant worth auditing in production is
/// `unconfirmed_merges == 0`: every merge of a term into an existing class
/// was confirmed by a canonical-form comparison, never taken on the hash
/// alone, so the store is exact even in the (cryptographically unlikely,
/// paper Theorem 6.8) event of hash collisions.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Terms ingested (insert calls, batched or not).
    pub terms_ingested: u64,
    /// Classes created (first member of a new equivalence class).
    pub classes_created: u64,
    /// Terms merged into an existing class after the canonical de Bruijn
    /// comparison confirmed true alpha-equivalence.
    pub merges_confirmed: u64,
    /// Inserts whose hash matched one or more existing classes that turned
    /// out **not** to be alpha-equivalent — true hash collisions, kept as
    /// separate classes.
    pub hash_collisions: u64,
    /// Merges taken on hash equality without confirmation. The store never
    /// does this; the counter exists so auditing code can assert it.
    pub unconfirmed_merges: u64,
    /// Subexpression entries indexed (subexpression-granularity stores
    /// only; roots are counted in `terms_ingested`, never here).
    pub subterms_indexed: u64,
    /// Of `subterms_indexed`, how many merged into an existing class after
    /// the canonical comparison confirmed true alpha-equivalence. Kept
    /// apart from `merges_confirmed` so root-level dedup ratios stay
    /// comparable across granularities.
    pub subterm_merges_confirmed: u64,
    /// Subexpressions skipped by the granularity's `min_nodes` floor.
    pub subterms_skipped_min_nodes: u64,
}

impl StoreStats {
    /// Whether the partition is trustworthy as *exact* alpha-equivalence:
    /// no merge was ever taken unconfirmed.
    pub fn is_exact(&self) -> bool {
        self.unconfirmed_merges == 0
    }
}

impl fmt::Display for StoreStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} terms -> {} classes ({} confirmed merges, {} hash collisions, {} unconfirmed)",
            self.terms_ingested,
            self.classes_created,
            self.merges_confirmed,
            self.hash_collisions,
            self.unconfirmed_merges,
        )?;
        if self.subterms_indexed > 0 || self.subterms_skipped_min_nodes > 0 {
            write!(
                f,
                " + {} subterms indexed ({} confirmed subterm merges, {} skipped by min_nodes)",
                self.subterms_indexed,
                self.subterm_merges_confirmed,
                self.subterms_skipped_min_nodes,
            )?;
        }
        Ok(())
    }
}

/// Lock-free counters behind [`StoreStats`]. Relaxed ordering suffices:
/// the counters are monotone and only read as a snapshot.
#[derive(Debug, Default)]
pub(crate) struct StatCounters {
    pub(crate) terms_ingested: AtomicU64,
    pub(crate) classes_created: AtomicU64,
    pub(crate) merges_confirmed: AtomicU64,
    pub(crate) hash_collisions: AtomicU64,
    pub(crate) unconfirmed_merges: AtomicU64,
    pub(crate) subterms_indexed: AtomicU64,
    pub(crate) subterm_merges_confirmed: AtomicU64,
    pub(crate) subterms_skipped_min_nodes: AtomicU64,
}

impl StatCounters {
    pub(crate) fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn add(counter: &AtomicU64, n: u64) {
        if n > 0 {
            counter.fetch_add(n, Ordering::Relaxed);
        }
    }

    pub(crate) fn snapshot(&self) -> StoreStats {
        StoreStats {
            terms_ingested: self.terms_ingested.load(Ordering::Relaxed),
            classes_created: self.classes_created.load(Ordering::Relaxed),
            merges_confirmed: self.merges_confirmed.load(Ordering::Relaxed),
            hash_collisions: self.hash_collisions.load(Ordering::Relaxed),
            unconfirmed_merges: self.unconfirmed_merges.load(Ordering::Relaxed),
            subterms_indexed: self.subterms_indexed.load(Ordering::Relaxed),
            subterm_merges_confirmed: self.subterm_merges_confirmed.load(Ordering::Relaxed),
            subterms_skipped_min_nodes: self.subterms_skipped_min_nodes.load(Ordering::Relaxed),
        }
    }
}
